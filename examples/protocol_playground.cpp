// Protocol playground: one fixed conflict scenario, every built-in protocol.
//
// Shows, side by side, how each declarative protocol decides the same
// pending-request set — the most direct way to see that the *scheduler* is
// constant and only the *rules* change. Then dumps what each declarative
// protocol compiles to (ExplainProtocol: the lowered IR operator tree, or
// the interpreter fallback), and finally prints the declarative
// deadlock-detection program and runs it on a crafted deadlock.
//
//   ./build/examples/protocol_playground

#include <cstdio>

#include "scheduler/deadlock_resolver.h"
#include "scheduler/ir/explain.h"
#include "scheduler/protocol.h"
#include "scheduler/protocol_library.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

namespace {

Request Op(int64_t id, txn::TxnId ta, int64_t intrata, txn::OpType op,
           int64_t object, int priority = 0) {
  Request r;
  r.id = id;
  r.ta = ta;
  r.intrata = intrata;
  r.op = op;
  r.object = object;
  r.priority = priority;
  return r;
}

/// Scenario: T1 holds a write lock on 10 and a read lock on 20 (history).
/// Pending: T2 read 10 (blocked by wlock), T3 write 20 (blocked by rlock),
/// T4 read 30 premium, T5 write 30 free (pending-pending, younger loses),
/// T6 read 20 (readers share).
void FillScenario(RequestStore* store) {
  RequestBatch held = {Op(9000001, 1, 1, txn::OpType::kWrite, 10),
                       Op(9000002, 1, 2, txn::OpType::kRead, 20)};
  if (!store->InsertPending(held).ok() || !store->MarkScheduled(held).ok()) {
    std::printf("scenario setup failed\n");
    std::exit(1);
  }
  RequestBatch pending = {
      Op(1, 2, 1, txn::OpType::kRead, 10),
      Op(2, 3, 1, txn::OpType::kWrite, 20),
      Op(3, 4, 1, txn::OpType::kRead, 30, /*priority=*/0),
      Op(4, 5, 1, txn::OpType::kWrite, 30, /*priority=*/1),
      Op(5, 6, 1, txn::OpType::kRead, 20),
  };
  if (!store->InsertPending(pending).ok()) {
    std::printf("scenario setup failed\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("=== One scenario, every protocol ===\n\n");
  std::printf("History: T1 wrote row 10, read row 20 (still active).\n"
              "Pending: r2[10] w3[20] r4[30](premium) w5[30](free) r6[20]\n\n");
  std::printf("%-26s %-40s\n", "protocol", "dispatch order");

  std::string backends;
  for (const std::string& backend : ProtocolFactory::Global().Backends()) {
    if (!backends.empty()) backends += ", ";
    backends += backend;
  }
  std::printf("(registered backends: %s)\n\n", backends.c_str());

  for (const std::string& name : ProtocolRegistry::BuiltIns().Names()) {
    auto spec = ProtocolRegistry::BuiltIns().Get(name);
    if (!spec.ok()) continue;
    RequestStore store;
    FillScenario(&store);
    auto compiled = ProtocolFactory::Global().Compile(*spec, &store);
    if (!compiled.ok()) {
      std::printf("%-26s compile error: %s\n", name.c_str(),
                  compiled.status().ToString().c_str());
      continue;
    }
    auto batch = (*compiled)->Schedule(ScheduleContext{&store, SimTime()});
    if (!batch.ok()) {
      std::printf("%-26s error: %s\n", name.c_str(),
                  batch.status().ToString().c_str());
      continue;
    }
    std::string order;
    for (const Request& r : *batch) {
      if (!order.empty()) order += "  ";
      order += r.ToString();
    }
    std::printf("%-26s %s\n", name.c_str(), order.empty() ? "(nothing)" : order.c_str());
  }

  std::printf("\n=== What the declarative protocols compile to ===\n"
              "(ExplainProtocol: lowered IR operator trees; interp:-prefixed\n"
              "texts or queries outside the IR dialect run interpreted)\n\n");
  for (const char* name : {"ss2pl-sql", "wfq-datalog", "tenant-cap-sql"}) {
    auto spec = ProtocolRegistry::BuiltIns().Get(name);
    if (!spec.ok()) continue;
    RequestStore explain_store;
    auto explain = ir::ExplainProtocol(*spec, &explain_store);
    if (explain.ok()) std::printf("%s\n", explain->c_str());
    auto interp = ir::ExplainProtocol(InterpretedVariant(*spec), &explain_store);
    if (interp.ok() && name == std::string("ss2pl-sql")) {
      std::printf("%s\n", interp->c_str());
    }
  }

  std::printf("\n=== Declarative deadlock detection ===\n%s\n",
              DeadlockResolver::ProgramText());
  RequestStore store;
  RequestBatch held = {Op(9000001, 1, 1, txn::OpType::kWrite, 100),
                       Op(9000002, 2, 1, txn::OpType::kWrite, 200)};
  store.InsertPending(held).ok();
  store.MarkScheduled(held).ok();
  store.InsertPending({Op(1, 1, 2, txn::OpType::kWrite, 200),
                       Op(2, 2, 2, txn::OpType::kWrite, 100)})
      .ok();
  auto resolver = DeadlockResolver::Create();
  if (resolver.ok()) {
    auto victims = resolver->FindVictims(store);
    if (victims.ok()) {
      std::printf("Crafted T1<->T2 deadlock; victims chosen by the Datalog "
                  "program:");
      for (txn::TxnId v : *victims) std::printf(" T%lld", static_cast<long long>(v));
      std::printf("\n");
    }
  }
  return 0;
}
