// SLA tiers: premium vs. free customers (the paper's Section 1 motivation:
// "service-level agreements, e.g. for premium vs. free customers in Web
// applications").
//
// Thirty web-shop clients — one third premium — run checkout transactions
// through the middleware. The `sla-priority-sql` protocol is the SS2PL query
// plus a single ORDER BY: under server saturation, premium requests jump the
// dispatch queue and see a fraction of the free tier's latency.
//
//   ./build/examples/sla_tiers

#include <cstdio>

#include "scheduler/middleware_sim.h"
#include "scheduler/protocol_library.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

namespace {

void RunAndReport(const char* label, ProtocolSpec spec) {
  MiddlewareSimConfig config;
  config.num_clients = 30;
  config.duration = SimTime::FromSeconds(300);
  config.workload.num_objects = 5000;
  config.workload.reads_per_txn = 4;
  config.workload.writes_per_txn = 4;
  config.workload.num_sla_classes = 2;  // 0 = premium, 1 = free
  config.server.num_rows = 5000;
  config.seed = 11;
  config.max_committed_txns = 400;
  config.scheduler.protocol = std::move(spec);
  config.scheduler.max_dispatch_per_cycle = 6;  // saturated server

  auto result = RunMiddlewareSimulation(config);
  if (!result.ok()) {
    std::printf("simulation failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  const Histogram& premium = result->latency_by_class[0];
  const Histogram& free_tier = result->latency_by_class[1];
  std::printf("%-18s premium: mean %6.1f ms  p95 %6.1f ms (%lld txns)\n", label,
              premium.Mean() / 1000.0, premium.Percentile(95) / 1000.0,
              static_cast<long long>(premium.count()));
  std::printf("%-18s free:    mean %6.1f ms  p95 %6.1f ms (%lld txns)\n", "",
              free_tier.Mean() / 1000.0, free_tier.Percentile(95) / 1000.0,
              static_cast<long long>(free_tier.count()));
}

}  // namespace

int main() {
  std::printf("=== SLA tiers: premium vs free checkout latency ===\n\n");
  std::printf("Protocol text difference: one ORDER BY clause.\n\n");
  RunAndReport("ss2pl (no SLA):", Ss2plSql());
  std::printf("\n");
  RunAndReport("sla-priority:", SlaPrioritySql());
  std::printf(
      "\nWith the SLA protocol, premium requests are dispatched first within\n"
      "every scheduler batch; the free tier absorbs the queueing delay.\n"
      "Changing or adding tiers is a protocol-text edit - no scheduler code.\n");
  return 0;
}
