// Application-specific consistency for a reservation system (the paper's
// Section 2: "for most parts of modern highly scalable web applications,
// e.g., hotel or flight reservation systems, ... relaxed consistency is
// sufficient").
//
// A hotel booking service where:
//   * availability *reads* may be slightly stale (never block), but
//   * *bookings* (writes) must serialize per room.
// That consistency contract is exactly the read-committed protocol — but
// here we write it from scratch as a ~6-rule Datalog program, register it,
// and run the service, demonstrating how a new application-specific protocol
// ships as text.
//
//   ./build/examples/reservation_system

#include <cstdio>

#include "scheduler/middleware_sim.h"
#include "scheduler/protocol_library.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

namespace {

// The booking contract, written for this application. Rooms are objects;
// "w" requests are bookings, "r" requests are availability checks.
constexpr const char* kBookingProtocol = R"(
% A room is being booked by Ta if Ta wrote it and has not finished.
finished(Ta) :- hist(_, Ta, _, "c", _).
finished(Ta) :- hist(_, Ta, _, "a", _).
booking(Room, Ta) :- hist(_, Ta, _, "w", Room), !finished(Ta).

% A booking request must wait while another transaction books the room,
% or while an older pending booking exists for it.
blocked(Ta, In) :- req(_, Ta, In, "w", Room), booking(Room, T2), Ta != T2.
blocked(T2, In2) :- req(_, T2, In2, "w", Room), req(_, T1, _, "w", Room), T2 > T1.

% Availability checks never block.
qualified(Id, Ta, In, Op, Room) :- req(Id, Ta, In, Op, Room), !blocked(Ta, In).
)";

}  // namespace

int main() {
  std::printf("=== Hotel reservations with an application-specific protocol ===\n\n");
  std::printf("The booking contract as Datalog (%d rules):\n%s\n",
              7, kBookingProtocol);

  ProtocolSpec booking;
  booking.name = "hotel-booking";
  booking.description = "stale reads allowed; bookings serialize per room";
  booking.backend = "datalog";
  booking.text = kBookingProtocol;

  ProtocolRegistry registry = ProtocolRegistry::BuiltIns();
  if (auto status = registry.Register(booking); !status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Registered protocols:");
  for (const std::string& name : registry.Names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // 200 rooms, 25 concurrent booking agents, 2 availability checks + 2
  // bookings per transaction.
  auto run = [&](const char* label, ProtocolSpec spec) {
    MiddlewareSimConfig config;
    config.num_clients = 25;
    config.duration = SimTime::FromSeconds(300);
    config.workload.num_objects = 200;
    config.workload.reads_per_txn = 2;
    config.workload.writes_per_txn = 2;
    config.server.num_rows = 200;
    config.seed = 29;
    config.max_committed_txns = 500;
    config.scheduler.protocol = std::move(spec);
    auto result = RunMiddlewareSimulation(config);
    if (!result.ok()) {
      std::printf("failed: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("%-22s %8.1f txn/s, %5lld deadlock aborts, mean booking "
                "latency %6.1f ms\n",
                label, result->throughput_txns_per_sec(),
                static_cast<long long>(result->aborted_txns),
                result->latency_by_class[0].Mean() / 1000.0);
  };

  run("full SS2PL:", Ss2plSql());
  run("hotel-booking:", booking);
  std::printf(
      "\nThe custom contract keeps bookings conflict-free while availability\n"
      "reads fly past write locks - higher throughput, and the protocol is\n"
      "seven lines of Datalog the application team owns.\n");
  return 0;
}
