// Authoring a custom Protocol backend and a custom ComposedProtocol stage.
// This is the runnable twin of docs/BACKENDS.md — the guide's snippets are
// lifted from here, so "compiles in the example" means "correct in the
// docs".
//
// The backend ("oldest-first"): SS2PL-safe qualification reusing the
// shared lock-analysis helpers, dispatching oldest transaction first. It
// keeps an incremental LockTableState fed by the scheduler's delta hooks,
// so its per-cycle cost is O(pending + delta), not O(pending + history).
//
// The stage ("tier"): drops pending requests whose SLA priority is worse
// than the stage argument, so "tier:0 | filter:ss2pl | rank:fcfs" is a
// premium-only pipeline with no new backend code.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/logging.h"
#include "scheduler/backends/composed_protocol.h"
#include "scheduler/declarative_scheduler.h"
#include "scheduler/lock_table.h"
#include "scheduler/protocol.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

// --- a custom backend -------------------------------------------------------

// A Protocol is compiled against one store and evaluated once per cycle.
// Incremental state (the LockTableState here) is optional: the delta hooks
// default to no-ops, and a backend that skips them just pays a full
// BuildLockTable() scan per cycle instead. Everything below runs on the
// scheduler's cycle thread, so no locking is needed.
class OldestFirstProtocol : public Protocol {
 public:
  OldestFirstProtocol(ProtocolSpec spec, RequestStore* store)
      : Protocol(std::move(spec)), store_(store) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    // The store's typed mirror is the zero-copy way to read pending.
    RequestBatch pending;
    pending.reserve(context.store->pending_by_id().size());
    for (const auto& [id, request] : context.store->pending_by_id()) {
      pending.push_back(request);
    }
    // Refresh() is O(1) while the delta hooks below kept us synced; it
    // falls back to a full history scan if anything mutated the store
    // behind our back (the epoch/content-version staleness contract).
    const LockTable& locks = lock_state_.Refresh(*context.store);
    RequestBatch qualified = FilterSs2pl(locks, pending);
    std::stable_sort(qualified.begin(), qualified.end(),
                     [](const Request& a, const Request& b) {
                       return a.ta != b.ta ? a.ta < b.ta : a.id < b.id;
                     });
    return qualified;
  }

  // Delta hooks: the scheduler narrates each store mutation right after
  // making it. Apply the delta; the epoch handshake inside LockTableState
  // rejects anything out of order and forces a rebuild at next Refresh().
  void OnScheduled(const RequestBatch& batch) override {
    lock_state_.ApplyHistoryAppend(batch, *store_);
  }
  void OnFinished(const std::vector<txn::TxnId>& txns) override {
    lock_state_.ApplyFinished(txns, *store_);
  }

 private:
  RequestStore* store_;
  mutable LockTableState lock_state_;
};

// --- a custom composed stage ------------------------------------------------

// Stages transform the batch-in-flight (drop, reorder, truncate — never
// invent requests). Return true from NeedsLockTable() to make the pipeline
// maintain incremental lock state and pass it via ScheduleContext::locks.
class TierStage : public ProtocolStage {
 public:
  explicit TierStage(int max_priority) : max_priority_(max_priority) {}

  Result<RequestBatch> Apply(const ScheduleContext&,
                             RequestBatch batch) const override {
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [&](const Request& r) {
                                 return r.priority > max_priority_;
                               }),
                batch.end());
    return batch;
  }

 private:
  int max_priority_;
};

int main() {
  // Registration: a backend is one compile function under a name; any
  // ProtocolSpec naming that backend now compiles through it. Register in
  // Global() (process-wide) or in a local factory passed via
  // DeclarativeScheduler::Options::factory.
  DS_CHECK_OK(ProtocolFactory::Global().RegisterBackend(
      "oldest-first",
      [](const ProtocolSpec& spec, RequestStore* store)
          -> Result<std::unique_ptr<Protocol>> {
        return std::unique_ptr<Protocol>(new OldestFirstProtocol(spec, store));
      }));

  // Stage kinds register the same way; "tier:N" now works in any pipeline.
  DS_CHECK_OK(RegisterStage(
      "tier", [](const std::string& arg)
                  -> Result<std::unique_ptr<ProtocolStage>> {
        if (arg.empty()) return Status::BindError("tier needs a priority");
        return std::unique_ptr<ProtocolStage>(new TierStage(std::stoi(arg)));
      }));

  // Drive the custom backend through an ordinary scheduler.
  ProtocolSpec spec;
  spec.name = "oldest-first";
  spec.backend = "oldest-first";
  spec.ordered = true;  // our result order is the dispatch order

  DeclarativeScheduler::Options options;
  options.protocol = spec;
  DeclarativeScheduler scheduler(std::move(options), /*server=*/nullptr);
  DS_CHECK_OK(scheduler.Init());

  auto submit = [&](txn::TxnId ta, int64_t intrata, txn::OpType op,
                    int64_t object, int priority) {
    Request r;
    r.ta = ta;
    r.intrata = intrata;
    r.op = op;
    r.object = object;
    r.priority = priority;
    scheduler.Submit(r, SimTime());
  };
  submit(2, 1, txn::OpType::kWrite, 10, 1);  // younger, same object...
  submit(1, 1, txn::OpType::kWrite, 10, 0);  // ...older txn goes first
  submit(3, 1, txn::OpType::kRead, 20, 1);

  auto stats = scheduler.RunCycle(SimTime());
  DS_CHECK(stats.ok());
  std::printf("cycle 1 dispatched %lld:\n",
              static_cast<long long>(stats->dispatched));
  for (const Request& r : scheduler.last_dispatched()) {
    std::printf("  %s\n", r.ToString().c_str());
  }

  // The same scheduler hot-swaps onto a composed pipeline using the custom
  // stage — protocols are data, across backends.
  ProtocolSpec premium;
  premium.name = "premium-only";
  premium.backend = "composed";
  premium.text = "tier:0 | filter:ss2pl | rank:fcfs";
  DS_CHECK_OK(scheduler.SwitchProtocol(premium));

  submit(4, 1, txn::OpType::kRead, 30, 2);  // dropped by tier:0
  submit(5, 1, txn::OpType::kRead, 40, 0);  // premium: dispatched
  stats = scheduler.RunCycle(SimTime());
  DS_CHECK(stats.ok());
  std::printf("cycle 2 (premium-only pipeline) dispatched %lld:\n",
              static_cast<long long>(stats->dispatched));
  for (const Request& r : scheduler.last_dispatched()) {
    std::printf("  %s\n", r.ToString().c_str());
  }
  return 0;
}
