// Network front door: the full middleware stack behind an HTTP server —
// and, with --binary-port, the multi-reactor binary wire server beside it.
//
//   ./net_server --shards=4 --port=8080 --protocol=ss2pl-sql
//   ./net_server --port=8080 --binary-port=8081 --reactors=4
//
// Then, from another terminal:
//
//   curl -s localhost:8080/v1/stats
//   curl -s -X POST localhost:8080/v1/submit -d \
//     '{"tenant":1,"txns":[{"ops":[{"op":"write","object":3},
//                                  {"op":"write","object":9}]}]}'
//   curl -s localhost:8080/metrics | head
//   curl -s -X POST localhost:8080/v1/admin/protocol -d '{"protocol":"edf-sql"}'
//
// The submit response comes back only after every transaction in the body
// has committed through the scheduler — see src/net/front_door.h for the
// closed-loop submission contract and the admission-control order.
// Ctrl-C drains in-flight batches before exiting.
//
// With --data-dir=PATH the stack runs durable: submits are acknowledged
// only after their WAL records hit disk, restart replays the log (the
// /healthz endpoint reports "recovering" meanwhile), and the Ctrl-C drain
// also writes a clean-shutdown checkpoint so the next start replays
// nothing.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/crashpoint.h"
#include "net/front_door.h"
#include "scheduler/protocol_library.h"

using namespace declsched;  // NOLINT

namespace {

int64_t FlagValue(const char* arg, const char* name, int64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoll(arg + len + 1);
  }
  return fallback;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  int shards = 2;
  int port = 8080;
  int binary_port = 0;
  int reactors = 1;
  int max_connections = 0;
  int64_t max_inflight = 0;
  std::string protocol = "ss2pl-sql";
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    shards = static_cast<int>(FlagValue(argv[i], "--shards", shards));
    port = static_cast<int>(FlagValue(argv[i], "--port", port));
    binary_port =
        static_cast<int>(FlagValue(argv[i], "--binary-port", binary_port));
    reactors = static_cast<int>(FlagValue(argv[i], "--reactors", reactors));
    max_connections = static_cast<int>(
        FlagValue(argv[i], "--max-connections", max_connections));
    max_inflight = FlagValue(argv[i], "--max-inflight", max_inflight);
    if (std::strncmp(argv[i], "--protocol=", 11) == 0) protocol = argv[i] + 11;
    if (std::strncmp(argv[i], "--data-dir=", 11) == 0) data_dir = argv[i] + 11;
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--shards=N] [--port=P] [--protocol=NAME] "
          "[--data-dir=PATH]\n"
          "          [--binary-port=P (enables the wire server)] "
          "[--reactors=N]\n"
          "          [--max-connections=N] [--max-inflight=N]\n",
          argv[0]);
      return 0;
    }
  }
  InstallCrashPointFromEnv();  // DECLSCHED_CRASHPOINT=<name>[:<nth>]

  scheduler::ProtocolRegistry registry = scheduler::ProtocolRegistry::BuiltIns();
  Result<scheduler::ProtocolSpec> spec = registry.Get(protocol);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown protocol %s; known:", protocol.c_str());
    for (const std::string& name : registry.Names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  net::FrontDoor::Options options;
  options.http.port = static_cast<uint16_t>(port);
  if (max_connections > 0) options.http.max_connections = max_connections;
  if (binary_port > 0) {
    net::wire::BinaryServer::Options binary;
    binary.port = static_cast<uint16_t>(binary_port);
    binary.reactor_threads = reactors;
    if (max_connections > 0) binary.max_connections = max_connections;
    options.binary = binary;
  }
  if (max_inflight > 0) options.max_inflight_statements = max_inflight;
  options.num_shards = shards;
  options.shard.protocol = std::move(spec).MoveValue();
  options.server.num_rows = 100000;
  if (!data_dir.empty()) {
    options.durability.enabled = true;
    options.durability.dir = data_dir;
    options.durability.checkpoint_interval_ms = 2000;
  }
  net::FrontDoor door(std::move(options));
  const Status started = door.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!data_dir.empty()) {
    const storage::RecoveryResult& rec = door.sched()->recovery_result();
    std::printf(
        "recovery: %lld records replayed (snapshot lsn %llu%s), %lld us\n",
        static_cast<long long>(rec.records_replayed),
        static_cast<unsigned long long>(rec.snapshot_lsn),
        rec.tail_truncated ? ", torn tail truncated" : "",
        static_cast<long long>(rec.duration_us));
  }
  std::printf("front door listening on 127.0.0.1:%u (%d shards, %s)\n",
              door.port(), shards, protocol.c_str());
  if (binary_port > 0) {
    std::printf("binary wire server on 127.0.0.1:%u (%d reactors, %s)\n",
                door.binary_port(), reactors,
                door.binary_server()->reuseport_active()
                    ? "SO_REUSEPORT"
                    : "fd-handoff fallback");
  }
  std::printf("try: curl -s localhost:%u/v1/stats\n", door.port());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    struct timespec ts {0, 100000000};  // 100 ms
    nanosleep(&ts, nullptr);
  }
  std::printf("draining...\n");
  door.Shutdown();  // with --data-dir this also writes a clean checkpoint
  if (!data_dir.empty()) std::printf("clean shutdown: checkpoint written\n");
  return 0;
}
