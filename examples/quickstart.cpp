// Quickstart: requests are data, scheduling is a query.
//
// Builds the middleware of the paper's Figure 1 by hand: submit a few
// conflicting requests, run scheduler cycles, and watch the SS2PL protocol
// (the paper's Listing 1, executed verbatim by the bundled SQL engine)
// decide declaratively who runs and who waits.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "scheduler/declarative_scheduler.h"
#include "scheduler/protocol_library.h"
#include "server/database_server.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

namespace {

Request Op(txn::TxnId ta, int64_t intrata, txn::OpType op, int64_t object) {
  Request r;
  r.ta = ta;
  r.intrata = intrata;
  r.op = op;
  r.object = object;
  return r;
}

void ShowCycle(DeclarativeScheduler& sched, const char* label) {
  auto stats = sched.RunCycle(SimTime());
  if (!stats.ok()) {
    std::printf("cycle failed: %s\n", stats.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n  qualified=%lld dispatched=%lld pending_left=%lld "
              "(query took %lld us)\n",
              label, static_cast<long long>(stats->qualified),
              static_cast<long long>(stats->dispatched),
              static_cast<long long>(sched.store()->pending_count()),
              static_cast<long long>(stats->query_us));
  for (const Request& r : sched.last_dispatched()) {
    std::printf("    dispatched %s\n", r.ToString().c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== declsched quickstart ===\n\n");
  std::printf("The active protocol is '%s' - %d lines of SQL, no scheduler "
              "code:\n%s\n",
              Ss2plSql().name.c_str(), Ss2plSql().CodeSize(),
              "  (see scheduler/protocol_library.cc for the full Listing 1 text)");

  server::DatabaseServer::Config server_config;
  server_config.num_rows = 1000;
  server::DatabaseServer server(server_config);

  DeclarativeScheduler::Options options;  // defaults: ss2pl-sql, eager trigger
  DeclarativeScheduler sched(options, &server);
  if (auto status = sched.Init(); !status.ok()) {
    std::printf("init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Transaction 1 writes row 7; transaction 2 wants to read the same row.
  sched.Submit(Op(1, 1, txn::OpType::kWrite, 7), SimTime());
  sched.Submit(Op(2, 1, txn::OpType::kRead, 7), SimTime());
  sched.Submit(Op(3, 1, txn::OpType::kRead, 99), SimTime());
  std::printf("\nSubmitted: w1[7], r2[7], r3[99]\n\n");

  ShowCycle(sched, "Cycle 1: T1's write and T3's read qualify; T2 must wait "
                   "(write lock on row 7):");

  // T1 commits - as a request like any other (Table 2's operation 'c').
  sched.Submit(Op(1, 2, txn::OpType::kCommit, Request::kNoObject), SimTime());
  ShowCycle(sched, "\nCycle 2: T1's commit qualifies (releases its locks):");
  ShowCycle(sched, "\nCycle 3: now T2's blocked read qualifies:");

  std::printf("\nThe request/history relations are plain tables - inspect them "
              "with SQL:\n\n");
  auto result = sched.store()->sql_engine()->Query(
      "SELECT ta, COUNT(*) AS ops FROM history GROUP BY ta ORDER BY ta");
  if (result.ok()) std::printf("%s\n", result->ToString().c_str());
  return 0;
}
