// Interactive SQL shell over the request store — poke at the scheduler's
// relations (or any tables you create) with the bundled engine.
//
//   ./build/examples/sql_shell
//   sql> CREATE TABLE demo (a INT, b TEXT);
//   sql> INSERT INTO demo VALUES (1, 'x'), (2, 'y');
//   sql> SELECT * FROM demo WHERE a > 1;
//   sql> EXPLAIN SELECT * FROM requests r, history h WHERE r.ta = h.ta;
//   sql> EXPLAIN PROTOCOL ss2pl-sql;
//   sql> \q
//
// EXPLAIN <select> prints the physical SQL plan; EXPLAIN PROTOCOL <name>
// prints what a registry protocol compiles to — the lowered protocol IR,
// or the interpreter fallback with the reason.
//
// Starts with the scheduler's `requests` and `history` tables pre-created
// and a small demo scenario loaded.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "scheduler/ir/explain.h"
#include "scheduler/protocol_library.h"
#include "scheduler/request_store.h"
#include "sql/explain.h"
#include "sql/parser.h"
#include "sql/planner.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

namespace {

void LoadDemoScenario(RequestStore* store) {
  auto op = [](int64_t id, int64_t ta, int64_t intrata, txn::OpType type,
               int64_t object) {
    Request r;
    r.id = id;
    r.ta = ta;
    r.intrata = intrata;
    r.op = type;
    r.object = object;
    return r;
  };
  RequestBatch history = {op(1, 1, 1, txn::OpType::kWrite, 10),
                          op(2, 1, 2, txn::OpType::kRead, 20)};
  RequestBatch pending = {op(3, 2, 1, txn::OpType::kRead, 10),
                          op(4, 3, 1, txn::OpType::kWrite, 30)};
  if (!store->InsertPending(history).ok() || !store->MarkScheduled(history).ok() ||
      !store->InsertPending(pending).ok()) {
    std::fprintf(stderr, "demo scenario failed to load\n");
  }
}

}  // namespace

int main() {
  RequestStore store;
  LoadDemoScenario(&store);
  sql::SqlEngine* engine = store.sql_engine();

  std::printf("declsched SQL shell. Tables: requests, history (demo data "
              "loaded).\nCommands: SQL statements, EXPLAIN <select>, \\q to "
              "quit.\n");

  std::string line;
  std::string statement;
  while (true) {
    std::printf(statement.empty() ? "sql> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string_view trimmed = Trim(line);
    if (trimmed == "\\q" || trimmed == "quit" || trimmed == "exit") break;
    if (trimmed.empty()) continue;
    statement += std::string(trimmed) + " ";
    if (trimmed.back() != ';') continue;  // multi-line until ';'

    std::string text = statement;
    statement.clear();
    const std::string_view body = Trim(text);

    // EXPLAIN PROTOCOL <name>
    constexpr char kExplainProtocol[] = "EXPLAIN PROTOCOL ";
    if (body.size() > sizeof(kExplainProtocol) - 1 &&
        EqualsIgnoreCase(body.substr(0, sizeof(kExplainProtocol) - 1),
                         kExplainProtocol)) {
      std::string name(Trim(body.substr(sizeof(kExplainProtocol) - 1)));
      if (!name.empty() && name.back() == ';') {
        name = std::string(Trim(std::string_view(name).substr(0, name.size() - 1)));
      }
      auto spec = scheduler::ProtocolRegistry::BuiltIns().Get(name);
      if (!spec.ok()) {
        std::printf("error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      auto explain = scheduler::ir::ExplainProtocol(*spec, &store);
      if (!explain.ok()) {
        std::printf("error: %s\n", explain.status().ToString().c_str());
        continue;
      }
      std::printf("%s", explain->c_str());
      continue;
    }

    // EXPLAIN <select>
    if (body.size() > 8 && EqualsIgnoreCase(body.substr(0, 8), "EXPLAIN ")) {
      auto stmt = sql::ParseSelect(body.substr(8));
      if (!stmt.ok()) {
        std::printf("error: %s\n", stmt.status().ToString().c_str());
        continue;
      }
      auto plan = sql::PlanSelectStatement(*store.catalog(), **stmt);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", sql::ExplainPlan(*plan).c_str());
      continue;
    }

    // SELECT vs DML/DDL: try as a query first.
    auto query = engine->Query(body);
    if (query.ok()) {
      std::printf("%s", query->ToString(100).c_str());
      continue;
    }
    if (!query.status().IsInvalidArgument() && !query.status().IsParseError()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto affected = engine->Execute(body);
    if (affected.ok()) {
      std::printf("ok, %lld row(s) affected\n", static_cast<long long>(*affected));
    } else {
      std::printf("error: %s\n", affected.status().ToString().c_str());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
