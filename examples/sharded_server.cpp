// Sharded server mode: the full stack — N scheduler shards with worker
// threads dispatching into one thread-safe DatabaseServer — driven by a
// closed-loop workload.
//
//   ./sharded_server --shards=4 --txns=5000 --cross=0.1
//
// Each transaction writes `ops` objects in ascending order (one at a time,
// closed loop) and commits; a --cross fraction of transactions touch two
// shards, so their commits go through the escrow path. Prints aggregate
// throughput, per-shard scheduler busy time, and the server's per-shard
// busy attribution. See docs/ARCHITECTURE.md for the shard/escrow design.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "scheduler/protocol_library.h"
#include "scheduler/sharded_scheduler.h"
#include "server/database_server.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t FlagValue(const char* arg, const char* name, int64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoll(arg + len + 1);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 4;
  int txns = 5000;
  int ops = 4;
  double cross = 0.1;
  for (int i = 1; i < argc; ++i) {
    shards = static_cast<int>(FlagValue(argv[i], "--shards", shards));
    txns = static_cast<int>(FlagValue(argv[i], "--txns", txns));
    ops = static_cast<int>(FlagValue(argv[i], "--ops", ops));
    if (std::strncmp(argv[i], "--cross=", 8) == 0) cross = std::atof(argv[i] + 8);
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--shards=N] [--txns=N] [--ops=N] [--cross=F]\n",
                  argv[0]);
      return 0;
    }
  }

  server::DatabaseServer::Config server_config;
  server_config.num_rows = 100000;
  server::DatabaseServer server(server_config);

  ShardedScheduler::Options options;
  options.num_shards = shards;
  options.shard.protocol = Ss2plNative();
  options.shard.deadlock_detection = false;  // ascending-object workload
  options.keep_dispatch_log = false;

  // Pre-generate the workload: per-shard object pools, ascending per txn.
  ShardRouter placement(shards);
  Rng rng(7);
  const int pool_per_shard = 256;
  std::vector<std::vector<int64_t>> pools(static_cast<size_t>(shards));
  for (int64_t object = 0;; ++object) {
    auto& pool = pools[static_cast<size_t>(placement.ShardOfObject(object))];
    if (static_cast<int>(pool.size()) < pool_per_shard) pool.push_back(object);
    bool full = true;
    for (const auto& p : pools) {
      full = full && static_cast<int>(p.size()) == pool_per_shard;
    }
    if (full) break;
  }
  std::vector<std::vector<int64_t>> txn_objects(static_cast<size_t>(txns));
  for (auto& objects : txn_objects) {
    const int s1 = static_cast<int>(rng.UniformInt(0, shards - 1));
    int s2 = s1;
    if (shards > 1 && rng.Bernoulli(cross)) {
      while (s2 == s1) s2 = static_cast<int>(rng.UniformInt(0, shards - 1));
    }
    while (static_cast<int>(objects.size()) < ops) {
      const auto& pool = pools[static_cast<size_t>(rng.Bernoulli(0.5) ? s1 : s2)];
      const int64_t o =
          pool[static_cast<size_t>(rng.UniformInt(0, pool_per_shard - 1))];
      if (std::find(objects.begin(), objects.end(), o) == objects.end()) {
        objects.push_back(o);
      }
    }
    std::sort(objects.begin(), objects.end());
  }

  // Closed loop: follow-ups submitted from the dispatch callbacks.
  std::vector<std::atomic<int>> next_op(static_cast<size_t>(txns));
  for (auto& n : next_op) n.store(1);
  std::atomic<int> next_txn{0};
  std::atomic<int> finished{0};
  ShardedScheduler* sched_ptr = nullptr;
  auto submit_op = [&](int i, int op_index) {
    Request r;
    r.ta = i + 1;
    r.intrata = op_index + 1;
    if (op_index < ops) {
      r.op = txn::OpType::kWrite;
      r.object = txn_objects[static_cast<size_t>(i)][static_cast<size_t>(op_index)];
    } else {
      r.op = txn::OpType::kCommit;
      r.object = Request::kNoObject;
    }
    sched_ptr->Submit(r, SimTime());
  };
  std::vector<std::atomic<uint64_t>> seen(static_cast<size_t>(txns));
  for (auto& s : seen) s.store(0);
  options.on_dispatch = [&](int shard_id, const RequestBatch& batch) {
    for (const Request& r : batch) {
      const int i = static_cast<int>(r.ta) - 1;
      const uint64_t bit = uint64_t{1} << (r.intrata - 1);
      const uint64_t prev = seen[static_cast<size_t>(i)].fetch_or(bit);
      if (prev & bit) {
        std::fprintf(stderr, "DOUBLE DISPATCH of %s on shard %d (seen=%llx)\n",
                     r.ToString().c_str(), shard_id,
                     static_cast<unsigned long long>(prev));
        std::abort();
      }
      if (r.op == txn::OpType::kCommit) {
        finished.fetch_add(1);
        const int next = next_txn.fetch_add(1);
        if (next < txns) submit_op(next, 0);
      } else {
        submit_op(i, next_op[static_cast<size_t>(i)].fetch_add(1));
      }
    }
  };

  ShardedScheduler sched(std::move(options), &server);
  sched_ptr = &sched;
  DS_CHECK_OK(sched.Init());
  DS_CHECK_OK(sched.Start());

  const int64_t t0 = WallMicros();
  const int window = std::min(txns, 256);
  // Reserve the whole window before submitting anything: a fast transaction
  // can complete while this loop still runs, and its commit callback must
  // hand out fresh indices, not race this loop for them.
  next_txn.store(window);
  for (int i = 0; i < window; ++i) submit_op(i, 0);
  while (finished.load() < txns) {
    const int before = finished.load();
    if (!sched.WaitIdle(/*timeout_us=*/30000000) ||
        (finished.load() == before && finished.load() < txns)) {
      std::fprintf(stderr, "stalled at %d/%d transactions\n", finished.load(),
                   txns);
      // Stop the workers before touching shard state: store()/queue reads
      // are cycle-thread-only while workers run.
      sched.Stop();
      for (int s = 0; s < shards; ++s) {
        std::fprintf(stderr, "  shard %d: queue=%lld pending=%lld\n", s,
                     static_cast<long long>(sched.shard(s)->queue_size()),
                     static_cast<long long>(sched.shard(s)->store()->pending_count()));
      }
      return 1;
    }
  }
  const int64_t elapsed_us = WallMicros() - t0;
  sched.Stop();

  const auto totals = sched.totals();
  std::printf("shards=%d txns=%d ops=%d cross=%.0f%%\n", shards, txns, ops,
              cross * 100);
  std::printf("dispatched %lld requests in %.1f ms (%.0f req/s), %lld cycles, "
              "%lld escrows, %lld mirrors\n",
              static_cast<long long>(totals.dispatched),
              static_cast<double>(elapsed_us) / 1000.0,
              static_cast<double>(totals.dispatched) * 1e6 /
                  static_cast<double>(elapsed_us),
              static_cast<long long>(totals.cycles),
              static_cast<long long>(totals.escrows),
              static_cast<long long>(totals.mirrors_applied));
  for (int s = 0; s < shards; ++s) {
    std::printf("  shard %d: scheduler busy %8lld us, server busy %8lld us\n",
                s, static_cast<long long>(sched.shard_busy_us(s)),
                static_cast<long long>(server.shard_busy(s).micros()));
  }
  std::printf("server executed %lld statements, total busy %lld us\n",
              static_cast<long long>(server.total_statements()),
              static_cast<long long>(server.total_busy().micros()));
  return 0;
}
