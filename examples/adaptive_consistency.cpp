// Adaptive consistency (the paper's Section 5 future work, implemented):
// "an adaptive consistency scheduler which varies the applied consistency
// protocols based on metadata and business application requirements".
//
// A flash-sale scenario: load on a small hot set spikes, pending work piles
// up, and the controller downgrades SS2PL to read-committed until the spike
// drains — then restores full serializability. Possible precisely because
// the protocol is data, not compiled code.
//
//   ./build/examples/adaptive_consistency

#include <cstdio>

#include "scheduler/middleware_sim.h"
#include "scheduler/protocol_library.h"
#include "txn/serializability.h"

using namespace declsched;             // NOLINT
using namespace declsched::scheduler;  // NOLINT

int main() {
  std::printf("=== Adaptive consistency under a load spike ===\n\n");

  MiddlewareSimConfig config;
  config.num_clients = 40;
  config.duration = SimTime::FromSeconds(120);
  config.workload.num_objects = 50;  // flash-sale hot set
  config.workload.reads_per_txn = 3;
  config.workload.writes_per_txn = 3;
  config.server.num_rows = 50;
  config.seed = 23;
  config.record_history = true;
  config.max_committed_txns = 400;

  // Strict first.
  auto strict = RunMiddlewareSimulation(config);
  if (!strict.ok()) {
    std::printf("failed: %s\n", strict.status().ToString().c_str());
    return 1;
  }

  // Same load with the adaptive controller.
  AdaptiveConsistencyController::Options adaptive;
  adaptive.strict = Ss2plSql();
  adaptive.relaxed = ReadCommittedSql();
  adaptive.relax_above = 30;
  adaptive.tighten_below = 8;
  config.adaptive = adaptive;
  auto adapted = RunMiddlewareSimulation(config);
  if (!adapted.ok()) {
    std::printf("failed: %s\n", adapted.status().ToString().c_str());
    return 1;
  }

  std::printf("%-28s %14s %14s\n", "", "strict SS2PL", "adaptive");
  std::printf("%-28s %14.1f %14.1f\n", "throughput (txn/s)",
              strict->throughput_txns_per_sec(),
              adapted->throughput_txns_per_sec());
  std::printf("%-28s %14lld %14lld\n", "deadlock aborts",
              static_cast<long long>(strict->aborted_txns),
              static_cast<long long>(adapted->aborted_txns));
  std::printf("%-28s %14d %14lld\n", "protocol switches", 0,
              static_cast<long long>(adapted->protocol_switches));

  auto strict_check = txn::CheckConflictSerializable(strict->history);
  auto adapted_check = txn::CheckConflictSerializable(adapted->history);
  std::printf("%-28s %14s %14s\n", "history serializable",
              strict_check.serializable ? "yes" : "no",
              adapted_check.serializable ? "yes" : "no");
  std::printf(
      "\nThe adaptive run trades serializability during the spike for\n"
      "throughput and fewer aborts - the CAP-style trade the paper's\n"
      "Section 2 argues highly scalable systems must be able to make,\n"
      "here as a declarative runtime decision.\n");
  return 0;
}
