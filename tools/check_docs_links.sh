#!/bin/sh
# Docs lint: fail on broken relative links in README.md and docs/*.md, and
# on fenced C++ snippets that drifted away from the code.
#
# Link check: every markdown inline link `[text](target)` outside fenced
# code blocks whose target is not an absolute URL or a pure in-page anchor;
# the target (minus any #anchor) must exist relative to the file containing
# the link.
#
# Snippet drift check: every CamelCase identifier (two humps or more, e.g.
# RequestStore, FilterSs2pl) inside a ```cpp fenced block must appear
# somewhere under src/, examples/, or tests/ — a cheap grep-level guard
# that catches docs quoting renamed or deleted API. Single-hump names
# (Protocol, Status) are deliberately skipped: too many generic words.
#
# Run from anywhere:
#   tools/check_docs_links.sh [repo-root]

set -u
root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

status=0
checked=0
idents_checked=0
for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Extract link targets, one per line, skipping ``` fenced code blocks
  # (where [](...) is usually a C++ lambda, not a link).
  targets=$(awk '
    /^```/ { fence = !fence; next }
    !fence {
      line = $0
      while (match(line, /\]\([^)]*\)/)) {
        print substr(line, RSTART + 2, RLENGTH - 3)
        line = substr(line, RSTART + RLENGTH)
      }
    }' "$doc")
  # Real markdown targets never contain spaces (ours never use <...> or
  # titles), so line-wise iteration is safe.
  old_ifs=$IFS
  IFS='
'
  for target in $targets; do
    IFS=$old_ifs
    case "$target" in
      http://*|https://*|mailto:*|\#*|*" "*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK in $doc: $target" >&2
      status=1
    fi
    checked=$((checked + 1))
  done
  IFS=$old_ifs
done

for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  # Identifiers from ```cpp blocks only (```sql / ```sh / untagged
  # diagrams are not C++ and would false-positive).
  idents=$(awk '
    /^```/ {
      in_cpp = ($0 ~ /^```[ \t]*(cpp|c\+\+)[ \t]*$/) ? !in_cpp && 1 : 0
      next
    }
    in_cpp { print }' "$doc" |
    grep -oE '[A-Z][a-z0-9]+([A-Z][A-Za-z0-9]*)+' | sort -u)
  old_ifs=$IFS
  IFS='
'
  for ident in $idents; do
    IFS=$old_ifs
    if ! grep -rqF "$ident" src examples tests; then
      echo "STALE SNIPPET in $doc: identifier '$ident' not found in src/, examples/, or tests/" >&2
      status=1
    fi
    idents_checked=$((idents_checked + 1))
  done
  IFS=$old_ifs
done

if [ "$checked" -eq 0 ]; then
  echo "docs lint: no links found — check the extraction pattern" >&2
  exit 2
fi
echo "docs lint: $checked relative links checked, $idents_checked snippet identifiers checked"
exit $status
