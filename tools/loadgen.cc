// loadgen: standalone load generator for the front door, speaking either
// transport.
//
//   ./loadgen --port=8080 --connections=128 --duration-ms=5000
//   ./loadgen --port=8080 --rps=2000 --connections=64 --json
//   ./loadgen --port=8081 --transport=binary --connections=1000
//             --pipeline=4 --threads=2 --settle-ms=500
//
// Closed loop by default (every connection keeps one request — or, on
// binary, --pipeline requests — in flight); pass --rps=N for an open-loop
// fixed-rate schedule. --threads splits the connections across driver
// threads. Prints a human summary, or one JSON row with --json (the same
// shape the bench emits). Exits nonzero when no connection could be
// established or every request failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/loadgen.h"

using declsched::Result;
using declsched::net::LoadgenOptions;
using declsched::net::LoadgenResult;
using declsched::net::LoadTransport;
using declsched::net::RunLoadgen;

namespace {

int64_t FlagValue(const char* arg, const char* name, int64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoll(arg + len + 1);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    options.port = static_cast<uint16_t>(
        FlagValue(argv[i], "--port", options.port));
    options.connections = static_cast<int>(
        FlagValue(argv[i], "--connections", options.connections));
    options.duration_ms = FlagValue(argv[i], "--duration-ms", options.duration_ms);
    options.open_loop_rps = static_cast<double>(
        FlagValue(argv[i], "--rps", static_cast<int64_t>(options.open_loop_rps)));
    options.tenant = static_cast<int>(
        FlagValue(argv[i], "--tenant", options.tenant));
    options.txns_per_request = static_cast<int>(
        FlagValue(argv[i], "--txns", options.txns_per_request));
    options.ops_per_txn = static_cast<int>(
        FlagValue(argv[i], "--ops", options.ops_per_txn));
    options.num_objects = FlagValue(argv[i], "--objects", options.num_objects);
    options.seed = static_cast<uint64_t>(
        FlagValue(argv[i], "--seed", static_cast<int64_t>(options.seed)));
    options.threads = static_cast<int>(
        FlagValue(argv[i], "--threads", options.threads));
    options.pipeline = static_cast<int>(
        FlagValue(argv[i], "--pipeline", options.pipeline));
    options.connect_settle_ms =
        FlagValue(argv[i], "--settle-ms", options.connect_settle_ms);
    if (std::strncmp(argv[i], "--host=", 7) == 0) options.host = argv[i] + 7;
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      const char* transport = argv[i] + 12;
      if (std::strcmp(transport, "binary") == 0) {
        options.transport = LoadTransport::kBinary;
      } else if (std::strcmp(transport, "http") == 0) {
        options.transport = LoadTransport::kHttp;
      } else {
        std::fprintf(stderr, "--transport must be http or binary\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s --port=P [--host=H] [--transport=http|binary]\n"
          "          [--connections=N] [--threads=N] [--pipeline=N]\n"
          "          [--duration-ms=N] [--settle-ms=N]\n"
          "          [--rps=N (0 = closed loop)] [--tenant=N] [--txns=N]\n"
          "          [--ops=N] [--objects=N] [--seed=N] [--json]\n",
          argv[0]);
      return 0;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required (see --help)\n");
    return 2;
  }

  Result<LoadgenResult> run = RunLoadgen(options);
  if (!run.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const LoadgenResult& r = run.ValueOrDie();
  if (json) {
    std::printf("%s\n", r.ToJson().c_str());
  } else {
    std::printf(
        "sent %lld  2xx %lld  429 %lld  other %lld  conn-errors %lld\n"
        "achieved %.1f req/s over %.2fs  latency p50 %lld us  p99 %lld us  "
        "max %lld us\n",
        static_cast<long long>(r.requests_sent),
        static_cast<long long>(r.responses_2xx),
        static_cast<long long>(r.responses_429),
        static_cast<long long>(r.responses_other),
        static_cast<long long>(r.connection_errors), r.achieved_rps,
        static_cast<double>(r.duration_us) / 1e6,
        static_cast<long long>(r.latency_us.Percentile(50)),
        static_cast<long long>(r.latency_us.Percentile(99)),
        static_cast<long long>(r.latency_us.max()));
    if (options.open_loop_rps > 0) {
      std::printf("open loop: %lld late sends (coordinated-omission signal)\n",
                  static_cast<long long>(r.late_sends));
    }
  }
  return r.responses_2xx > 0 || r.requests_sent == 0 ? 0 : 1;
}
