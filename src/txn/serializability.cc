#include "txn/serializability.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace declsched::txn {

namespace {

bool Conflicting(OpType a, OpType b) {
  return (a == OpType::kWrite && (b == OpType::kRead || b == OpType::kWrite)) ||
         (b == OpType::kWrite && (a == OpType::kRead || a == OpType::kWrite));
}

}  // namespace

SerializabilityResult CheckConflictSerializable(const std::vector<HistoryOp>& history) {
  // Committed transactions only.
  std::unordered_set<TxnId> committed;
  for (const HistoryOp& op : history) {
    if (op.type == OpType::kCommit) committed.insert(op.txn);
  }

  // Conflict-graph edges T -> U: T's op precedes a conflicting op of U.
  std::unordered_map<TxnId, std::unordered_set<TxnId>> edges;
  std::unordered_map<ObjectId, std::vector<std::pair<TxnId, OpType>>> per_object;
  for (const HistoryOp& op : history) {
    if (op.type != OpType::kRead && op.type != OpType::kWrite) continue;
    if (committed.count(op.txn) == 0) continue;
    auto& ops = per_object[op.object];
    for (const auto& [prev_txn, prev_type] : ops) {
      if (prev_txn != op.txn && Conflicting(prev_type, op.type)) {
        edges[prev_txn].insert(op.txn);
      }
    }
    ops.emplace_back(op.txn, op.type);
    edges.try_emplace(op.txn);  // ensure node exists
  }

  // Cycle detection + topological order via iterative DFS with colors.
  SerializabilityResult result;
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<TxnId, Color> color;
  std::unordered_map<TxnId, TxnId> parent;
  std::vector<TxnId> topo;

  // Deterministic iteration order for reproducible witnesses.
  std::set<TxnId> nodes;
  for (const auto& [node, targets] : edges) {
    nodes.insert(node);
    for (TxnId t : targets) nodes.insert(t);
  }

  for (TxnId root : nodes) {
    if (color[root] != kWhite) continue;
    // Stack holds (node, next-neighbor iterator index).
    std::vector<std::pair<TxnId, std::vector<TxnId>>> stack;
    auto neighbors = [&edges](TxnId n) {
      std::vector<TxnId> out;
      auto it = edges.find(n);
      if (it != edges.end()) out.assign(it->second.begin(), it->second.end());
      std::sort(out.begin(), out.end());
      return out;
    };
    color[root] = kGray;
    stack.emplace_back(root, neighbors(root));
    while (!stack.empty()) {
      auto& [node, nbrs] = stack.back();
      if (nbrs.empty()) {
        color[node] = kBlack;
        topo.push_back(node);
        stack.pop_back();
        continue;
      }
      const TxnId next = nbrs.back();
      nbrs.pop_back();
      if (color[next] == kWhite) {
        color[next] = kGray;
        parent[next] = node;
        stack.emplace_back(next, neighbors(next));
      } else if (color[next] == kGray) {
        // Found a back edge node -> next: reconstruct the cycle.
        std::vector<TxnId> cycle = {next};
        TxnId cur = node;
        while (cur != next) {
          cycle.push_back(cur);
          cur = parent[cur];
        }
        cycle.push_back(next);
        std::reverse(cycle.begin(), cycle.end());
        result.serializable = false;
        result.cycle = std::move(cycle);
        return result;
      }
    }
  }

  std::reverse(topo.begin(), topo.end());
  result.serializable = true;
  result.serial_order = std::move(topo);
  return result;
}

bool CheckStrict(const std::vector<HistoryOp>& history, std::string* violation) {
  // last uncommitted writer per object
  std::unordered_map<ObjectId, TxnId> dirty;
  std::unordered_set<TxnId> finished;
  for (size_t i = 0; i < history.size(); ++i) {
    const HistoryOp& op = history[i];
    switch (op.type) {
      case OpType::kCommit:
      case OpType::kAbort: {
        finished.insert(op.txn);
        for (auto it = dirty.begin(); it != dirty.end();) {
          if (it->second == op.txn) {
            it = dirty.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      case OpType::kRead:
      case OpType::kWrite: {
        auto it = dirty.find(op.object);
        if (it != dirty.end() && it->second != op.txn) {
          if (violation != nullptr) {
            *violation = StrFormat(
                "position %zu: %s on object %lld dirty-written by txn %lld",
                i, op.ToString().c_str(), static_cast<long long>(op.object),
                static_cast<long long>(it->second));
          }
          return false;
        }
        if (op.type == OpType::kWrite) dirty[op.object] = op.txn;
        break;
      }
    }
  }
  return true;
}

bool CheckRigorous(const std::vector<HistoryOp>& history, std::string* violation) {
  if (!CheckStrict(history, violation)) return false;
  // Additionally: no write on an object while another live txn has read it.
  std::unordered_map<ObjectId, std::set<TxnId>> live_readers;
  std::unordered_set<TxnId> finished;
  for (size_t i = 0; i < history.size(); ++i) {
    const HistoryOp& op = history[i];
    switch (op.type) {
      case OpType::kCommit:
      case OpType::kAbort: {
        for (auto& [object, readers] : live_readers) readers.erase(op.txn);
        break;
      }
      case OpType::kRead:
        live_readers[op.object].insert(op.txn);
        break;
      case OpType::kWrite: {
        auto it = live_readers.find(op.object);
        if (it != live_readers.end()) {
          for (TxnId reader : it->second) {
            if (reader != op.txn) {
              if (violation != nullptr) {
                *violation = StrFormat(
                    "position %zu: %s while txn %lld holds a live read",
                    i, op.ToString().c_str(), static_cast<long long>(reader));
              }
              return false;
            }
          }
        }
        break;
      }
    }
  }
  return true;
}

}  // namespace declsched::txn
