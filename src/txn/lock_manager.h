// Two-phase-locking lock manager: the "native scheduler" of the simulated
// DBMS (paper Section 4.2 measures exactly this component's overhead).
//
// Semantics:
//  * Shared/Exclusive locks per object, FIFO wait queues, lock upgrades.
//  * Each transaction has at most one outstanding (waiting) request — the
//    natural shape for closed-loop clients executing one statement at a time.
//  * Deadlock handling: before a request is queued, a waits-for cycle check
//    runs; if queuing would close a cycle the request is rejected with
//    kDeadlock and the *requester* is expected to abort (industry-standard
//    immediate-restart policy). This wasted re-execution is the mechanism
//    that produces the paper's Figure 2 thrashing collapse.

#ifndef DECLSCHED_TXN_LOCK_MANAGER_H_
#define DECLSCHED_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "txn/types.h"

namespace declsched::txn {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

class LockManager {
 public:
  enum class AcquireOutcome {
    kGranted,      // lock acquired (or upgraded) immediately
    kAlreadyHeld,  // txn already holds a sufficient lock
    kQueued,       // request enqueued; caller waits for a Grant
    kDeadlock,     // queuing would create a waits-for cycle; not enqueued
  };

  struct AcquireResult {
    AcquireOutcome outcome;
    /// For kDeadlock: the transactions on the detected cycle (starting and
    /// ending at the requester).
    std::vector<TxnId> cycle;
  };

  /// A queued request that became grantable after a release.
  struct Grant {
    TxnId txn;
    ObjectId object;
    LockMode mode;
  };

  /// Requests `mode` on `object` for `txn`.
  AcquireResult Request(TxnId txn, ObjectId object, LockMode mode);

  /// Releases all locks held by `txn` and removes any queued request it has.
  /// Returns requests that became granted, in FIFO order. (Strict 2PL: called
  /// exactly once, at commit or abort.)
  std::vector<Grant> ReleaseAll(TxnId txn);

  /// True if txn holds a lock on object at least as strong as `mode`.
  bool Holds(TxnId txn, ObjectId object, LockMode mode) const;
  /// True if txn has a queued (waiting) request.
  bool IsWaiting(TxnId txn) const { return waiting_on_.count(txn) > 0; }

  int64_t num_locked_objects() const { return static_cast<int64_t>(locks_.size()); }
  int64_t num_waiting_txns() const { return static_cast<int64_t>(waiting_on_.size()); }
  /// Number of locks held by `txn`.
  int64_t num_held(TxnId txn) const;

  /// Cumulative counters (monotone; for experiment reporting).
  int64_t total_acquires() const { return total_acquires_; }
  int64_t total_waits() const { return total_waits_; }
  int64_t total_deadlocks() const { return total_deadlocks_; }

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool upgrade;  // txn already holds kShared on this object
  };
  struct LockState {
    std::vector<Holder> holders;
    std::deque<Waiter> queue;
  };

  /// Transactions that prevent `txn` from being granted (mode, object):
  /// incompatible holders plus incompatible earlier-queued waiters.
  std::vector<TxnId> Blockers(const LockState& state, TxnId txn, LockMode mode,
                              bool upgrade) const;

  /// True if a waits-for path exists from `from` to `target` (DFS over the
  /// hypothetical graph that includes the pending edges `extra_from` -> ...).
  bool PathExists(TxnId from, TxnId target,
                  const std::vector<TxnId>& extra_targets) const;

  /// Grants compatible queue heads of `state`; appends to `grants`.
  void PumpQueue(ObjectId object, LockState& state, std::vector<Grant>* grants);

  static bool Compatible(LockMode a, LockMode b) {
    return a == LockMode::kShared && b == LockMode::kShared;
  }

  std::unordered_map<ObjectId, LockState> locks_;
  std::unordered_map<TxnId, std::unordered_set<ObjectId>> held_;
  std::unordered_map<TxnId, ObjectId> waiting_on_;

  int64_t total_acquires_ = 0;
  int64_t total_waits_ = 0;
  int64_t total_deadlocks_ = 0;
};

}  // namespace declsched::txn

#endif  // DECLSCHED_TXN_LOCK_MANAGER_H_
