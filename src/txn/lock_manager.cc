#include "txn/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace declsched::txn {

std::vector<TxnId> LockManager::Blockers(const LockState& state, TxnId txn,
                                         LockMode mode, bool upgrade) const {
  std::vector<TxnId> blockers;
  for (const Holder& h : state.holders) {
    if (h.txn == txn) continue;
    if (!Compatible(h.mode, mode)) blockers.push_back(h.txn);
  }
  if (!upgrade) {
    // FIFO fairness: an incompatible earlier waiter also blocks us. Upgrades
    // skip the queue (they only wait for other holders) to avoid the classic
    // upgrade-starves-behind-own-queue problem.
    for (const Waiter& w : state.queue) {
      if (w.txn == txn) break;
      if (!Compatible(w.mode, mode) || !Compatible(mode, w.mode)) {
        blockers.push_back(w.txn);
      }
    }
  }
  return blockers;
}

bool LockManager::PathExists(TxnId from, TxnId target,
                             const std::vector<TxnId>& /*extra_targets*/) const {
  // DFS over the waits-for graph: edge T -> U iff T waits on an object where
  // U is a blocker of T's queued request.
  std::vector<TxnId> stack = {from};
  std::unordered_set<TxnId> visited;
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (t == target) return true;
    if (!visited.insert(t).second) continue;
    auto wait_it = waiting_on_.find(t);
    if (wait_it == waiting_on_.end()) continue;
    auto lock_it = locks_.find(wait_it->second);
    if (lock_it == locks_.end()) continue;
    const LockState& state = lock_it->second;
    // Find t's queued request to know its mode/upgrade flag.
    for (const Waiter& w : state.queue) {
      if (w.txn != t) continue;
      for (TxnId b : Blockers(state, t, w.mode, w.upgrade)) stack.push_back(b);
      break;
    }
  }
  return false;
}

LockManager::AcquireResult LockManager::Request(TxnId txn, ObjectId object,
                                                LockMode mode) {
  ++total_acquires_;
  DS_CHECK(waiting_on_.count(txn) == 0);  // single outstanding request per txn

  LockState& state = locks_[object];

  // Already held?
  bool holds_shared = false;
  for (const Holder& h : state.holders) {
    if (h.txn != txn) continue;
    if (h.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return {AcquireOutcome::kAlreadyHeld, {}};
    }
    holds_shared = true;  // holds S, wants X: upgrade path
    break;
  }

  const bool upgrade = holds_shared;
  std::vector<TxnId> blockers = Blockers(state, txn, mode, upgrade);
  if (blockers.empty()) {
    if (upgrade) {
      for (Holder& h : state.holders) {
        if (h.txn == txn) h.mode = LockMode::kExclusive;
      }
    } else {
      state.holders.push_back(Holder{txn, mode});
      held_[txn].insert(object);
    }
    return {AcquireOutcome::kGranted, {}};
  }

  // Would waiting close a cycle? A cycle exists iff some blocker can already
  // reach `txn` through the waits-for graph.
  for (TxnId b : blockers) {
    if (b == txn) continue;
    if (PathExists(b, txn, {})) {
      ++total_deadlocks_;
      std::vector<TxnId> cycle = {txn, b, txn};  // witness endpoints
      // If the lock state vanished (it can't here — blockers nonempty), the
      // cycle is still reported with the requester as victim context.
      return {AcquireOutcome::kDeadlock, std::move(cycle)};
    }
  }

  ++total_waits_;
  if (upgrade) {
    // Upgrades go to the front, after any other queued upgrade.
    auto it = state.queue.begin();
    while (it != state.queue.end() && it->upgrade) ++it;
    state.queue.insert(it, Waiter{txn, mode, true});
  } else {
    state.queue.push_back(Waiter{txn, mode, false});
  }
  waiting_on_[txn] = object;
  return {AcquireOutcome::kQueued, {}};
}

void LockManager::PumpQueue(ObjectId object, LockState& state,
                            std::vector<Grant>* grants) {
  bool granted_one = true;
  while (granted_one && !state.queue.empty()) {
    granted_one = false;
    const Waiter w = state.queue.front();
    if (!Blockers(state, w.txn, w.mode, w.upgrade).empty()) break;
    state.queue.pop_front();
    if (w.upgrade) {
      for (Holder& h : state.holders) {
        if (h.txn == w.txn) h.mode = LockMode::kExclusive;
      }
    } else {
      state.holders.push_back(Holder{w.txn, w.mode});
      held_[w.txn].insert(object);
    }
    waiting_on_.erase(w.txn);
    grants->push_back(Grant{w.txn, object, w.mode});
    granted_one = true;
  }
}

std::vector<LockManager::Grant> LockManager::ReleaseAll(TxnId txn) {
  std::vector<Grant> grants;

  // Remove any queued request first.
  auto wait_it = waiting_on_.find(txn);
  if (wait_it != waiting_on_.end()) {
    auto lock_it = locks_.find(wait_it->second);
    if (lock_it != locks_.end()) {
      auto& queue = lock_it->second.queue;
      queue.erase(std::remove_if(queue.begin(), queue.end(),
                                 [txn](const Waiter& w) { return w.txn == txn; }),
                  queue.end());
      // Removing a waiter can unblock those queued behind it.
      PumpQueue(wait_it->second, lock_it->second, &grants);
      if (lock_it->second.holders.empty() && lock_it->second.queue.empty()) {
        locks_.erase(lock_it);
      }
    }
    waiting_on_.erase(wait_it);
  }

  auto held_it = held_.find(txn);
  if (held_it != held_.end()) {
    for (ObjectId object : held_it->second) {
      auto lock_it = locks_.find(object);
      if (lock_it == locks_.end()) continue;
      LockState& state = lock_it->second;
      state.holders.erase(
          std::remove_if(state.holders.begin(), state.holders.end(),
                         [txn](const Holder& h) { return h.txn == txn; }),
          state.holders.end());
      PumpQueue(object, state, &grants);
      if (state.holders.empty() && state.queue.empty()) locks_.erase(lock_it);
    }
    held_.erase(held_it);
  }
  return grants;
}

bool LockManager::Holds(TxnId txn, ObjectId object, LockMode mode) const {
  auto it = locks_.find(object);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) {
      return h.mode == LockMode::kExclusive || mode == LockMode::kShared;
    }
  }
  return false;
}

int64_t LockManager::num_held(TxnId txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

}  // namespace declsched::txn
