// Shared transaction-processing vocabulary types.

#ifndef DECLSCHED_TXN_TYPES_H_
#define DECLSCHED_TXN_TYPES_H_

#include <cstdint>
#include <string>

namespace declsched::txn {

using TxnId = int64_t;
using ObjectId = int64_t;

/// Operation kinds, matching the paper's Table 2 operation attribute
/// (read / write / abort / commit).
enum class OpType : uint8_t { kRead = 0, kWrite = 1, kAbort = 2, kCommit = 3 };

inline char OpTypeToChar(OpType op) {
  switch (op) {
    case OpType::kRead:
      return 'r';
    case OpType::kWrite:
      return 'w';
    case OpType::kAbort:
      return 'a';
    case OpType::kCommit:
      return 'c';
  }
  return '?';
}

/// One executed operation in a history (the serializability oracle's input).
struct HistoryOp {
  TxnId txn;
  OpType type;
  ObjectId object;  // ignored for commit/abort

  std::string ToString() const {
    std::string out(1, OpTypeToChar(type));
    out += std::to_string(txn);
    if (type == OpType::kRead || type == OpType::kWrite) {
      out += "[" + std::to_string(object) + "]";
    }
    return out;
  }
};

}  // namespace declsched::txn

#endif  // DECLSCHED_TXN_TYPES_H_
