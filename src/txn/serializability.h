// Correctness oracles over executed histories.
//
// Every schedule produced by a declarative consistency protocol (SS2PL in SQL
// or Datalog) is validated against these checkers in the property-test suite:
// conflict-serializability of the committed projection, and strictness.

#ifndef DECLSCHED_TXN_SERIALIZABILITY_H_
#define DECLSCHED_TXN_SERIALIZABILITY_H_

#include <string>
#include <vector>

#include "txn/types.h"

namespace declsched::txn {

struct SerializabilityResult {
  bool serializable = false;
  /// If not serializable: a witness cycle of transaction ids in the conflict
  /// graph (first == last).
  std::vector<TxnId> cycle;
  /// If serializable: one topological (equivalent serial) order.
  std::vector<TxnId> serial_order;
};

/// Conflict-serializability of the committed projection of `history`
/// (operations of aborted / still-active transactions are ignored).
/// Conflicts: r-w, w-r, w-w on the same object, ordered by history position.
SerializabilityResult CheckConflictSerializable(const std::vector<HistoryOp>& history);

/// Strictness: no transaction reads or overwrites an object whose last writer
/// has neither committed nor aborted. On violation, fills `violation` with a
/// human-readable description and returns false.
bool CheckStrict(const std::vector<HistoryOp>& history, std::string* violation);

/// Rigorousness (strong strictness, what SS2PL guarantees): additionally, no
/// transaction writes an object read by a live other transaction.
bool CheckRigorous(const std::vector<HistoryOp>& history, std::string* violation);

}  // namespace declsched::txn

#endif  // DECLSCHED_TXN_SERIALIZABILITY_H_
