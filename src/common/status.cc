#include "common/status.h"

namespace declsched {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace declsched
