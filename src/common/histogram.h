// Log-bucketed histogram for latency/throughput metrics.

#ifndef DECLSCHED_COMMON_HISTOGRAM_H_
#define DECLSCHED_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace declsched {

/// Records non-negative int64 samples (typically microseconds) into
/// exponentially sized buckets and answers approximate percentile queries.
/// Relative error is bounded by the bucket growth factor (~10%).
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Approximate value at percentile p in [0, 100].
  int64_t Percentile(double p) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 280;
  /// Index of the bucket whose range contains `value`.
  static int BucketFor(int64_t value);
  /// Upper bound (inclusive) of bucket `index`.
  static int64_t BucketUpper(int index);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace declsched

#endif  // DECLSCHED_COMMON_HISTOGRAM_H_
