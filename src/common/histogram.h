// Log-bucketed histogram for latency/throughput metrics.
//
// Two variants over the same bucket layout:
//   * Histogram — single-writer, the cheap per-shard / per-connection
//     recorder. Aggregation is by value: Merge() sums another histogram's
//     buckets in, so N single-writer histograms roll up without any lock on
//     the recording path.
//   * ConcurrentHistogram — multi-writer, lock-free relaxed atomics per
//     bucket; Snapshot() materializes a mergeable Histogram cut. The
//     metrics registry's histogram type (many threads record, one scraper
//     reads).

#ifndef DECLSCHED_COMMON_HISTOGRAM_H_
#define DECLSCHED_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace declsched {

/// Records non-negative int64 samples (typically microseconds) into
/// exponentially sized buckets and answers approximate percentile queries.
/// Relative error is bounded by the bucket growth factor (~10%).
/// Single writer; aggregate concurrent recorders via Merge() on snapshots.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Approximate value at percentile p in [0, 100].
  int64_t Percentile(double p) const;

  /// Samples recorded at or below `value`, rounded up to the containing
  /// bucket's boundary (over-counts by at most one bucket, ~10%). Monotone
  /// in `value` — the Prometheus cumulative-bucket (`le`) read.
  int64_t CountAtOrBelow(int64_t value) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  friend class ConcurrentHistogram;

  static constexpr int kNumBuckets = 280;
  /// Index of the bucket whose range contains `value`.
  static int BucketFor(int64_t value);
  /// Upper bound (inclusive) of bucket `index`.
  static int64_t BucketUpper(int index);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

/// Multi-writer histogram: Record() is lock-free (relaxed atomics), so any
/// number of threads may record on the hot path. Readers take Snapshot(),
/// a Histogram cut that merges like any other — the aggregation path shared
/// with the single-writer variant. A snapshot taken under concurrent writes
/// is internally consistent (count == sum of buckets) but may trail the
/// newest samples by a few records.
class ConcurrentHistogram {
 public:
  ConcurrentHistogram();

  void Record(int64_t value);
  Histogram Snapshot() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

}  // namespace declsched

#endif  // DECLSCHED_COMMON_HISTOGRAM_H_
