#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace declsched {

namespace {
// Bucket boundaries grow ~10% per bucket after an exact region for small
// values. Exact buckets cover [0, 64); geometric buckets cover the rest.
constexpr int kExactBuckets = 64;
constexpr double kGrowth = 1.1;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kExactBuckets) return static_cast<int>(value);
  int idx = kExactBuckets +
            static_cast<int>(std::log(static_cast<double>(value) / kExactBuckets) /
                             std::log(kGrowth));
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

int64_t Histogram::BucketUpper(int index) {
  if (index < kExactBuckets) return index;
  double upper = kExactBuckets * std::pow(kGrowth, index - kExactBuckets + 1);
  return static_cast<int64_t>(upper);
}

void Histogram::Record(int64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

int64_t Histogram::CountAtOrBelow(int64_t value) const {
  if (value < 0) return 0;
  const int last = BucketFor(value);
  int64_t seen = 0;
  for (int i = 0; i <= last; ++i) seen += buckets_[i];
  return seen;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::clamp(BucketUpper(i), min_, max_);
    }
  }
  return max_;
}

ConcurrentHistogram::ConcurrentHistogram()
    : buckets_(new std::atomic<int64_t>[Histogram::kNumBuckets]) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void ConcurrentHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[Histogram::BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram snap;
  // Count from the bucket sum, not count_, so the cut is self-consistent
  // (percentile math never chases samples it did not copy).
  int64_t count = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const int64_t b = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets_[i] = b;
    count += b;
  }
  if (count == 0) return snap;
  snap.count_ = count;
  snap.sum_ = static_cast<double>(sum_.load(std::memory_order_relaxed));
  const int64_t lo = min_.load(std::memory_order_relaxed);
  const int64_t hi = max_.load(std::memory_order_relaxed);
  snap.min_ = lo == INT64_MAX ? 0 : lo;
  snap.max_ = hi == INT64_MIN ? 0 : hi;
  return snap;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99) << " max=" << max();
  return os.str();
}

}  // namespace declsched
