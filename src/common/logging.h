// Minimal leveled logging and check macros.

#ifndef DECLSCHED_COMMON_LOGGING_H_
#define DECLSCHED_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace declsched {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to Info.
LogLevel& MinLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      std::fputs(stream_.str().c_str(), stderr);
    }
  }
  std::ostringstream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace declsched

#define DS_LOG(level)                                                            \
  ::declsched::internal::LogMessage(::declsched::LogLevel::k##level, __FILE__, \
                                    __LINE__)                                    \
      .stream()

/// Fatal invariant check: always on (benchmarks rely on invariants holding).
#define DS_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                  \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define DS_CHECK_OK(expr)                                                     \
  do {                                                                        \
    ::declsched::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                          \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, _st.ToString().c_str());                         \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#endif  // DECLSCHED_COMMON_LOGGING_H_
