#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace declsched {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
char LowerChar(char c) { return (c >= 'A' && c <= 'Z') ? c - 'A' + 'a' : c; }
char UpperChar(char c) { return (c >= 'a' && c <= 'z') ? c - 'a' + 'A' : c; }
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = LowerChar(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = UpperChar(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace declsched
