#include "common/crashpoint.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace declsched {

namespace internal {
std::atomic<bool> g_crashpoint_armed{false};
}  // namespace internal

namespace {

// Guarded by the flag above on the fast path; the slow path takes the
// mutex. Tests arm/disarm from one thread before the workload runs, so the
// only concurrency is armed readers, which is what the mutex covers.
std::mutex g_mu;
std::string g_name;
int g_remaining = 0;
std::function<void(const char*)> g_hook;

}  // namespace

namespace internal {

void CrashPointSlow(const char* name) {
  std::function<void(const char*)> hook;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_remaining <= 0 || g_name != name) return;
    if (--g_remaining > 0) return;
    g_crashpoint_armed.store(false, std::memory_order_relaxed);
    hook = g_hook;
  }
  if (hook) {
    hook(name);
    return;
  }
  // Simulated kill -9: no atexit handlers, no stream flushes. Everything
  // already write()n is in the kernel and survives; everything buffered in
  // user space is lost — exactly the failure model recovery must handle.
  _exit(kCrashPointExitCode);
}

}  // namespace internal

bool CrashPointWillTrigger(const char* name) {
  if (!internal::g_crashpoint_armed.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  return g_remaining == 1 && g_name == name;
}

void ArmCrashPoint(const char* name, int nth) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_name = name;
  g_remaining = nth < 1 ? 1 : nth;
  internal::g_crashpoint_armed.store(true, std::memory_order_relaxed);
}

void DisarmCrashPoint() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_name.clear();
  g_remaining = 0;
  internal::g_crashpoint_armed.store(false, std::memory_order_relaxed);
}

void SetCrashPointHook(std::function<void(const char*)> hook) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_hook = std::move(hook);
}

void InstallCrashPointFromEnv() {
  const char* env = std::getenv("DECLSCHED_CRASHPOINT");
  if (env == nullptr || env[0] == '\0') return;
  std::string spec(env);
  int nth = 1;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    const std::string tail = spec.substr(colon + 1);
    bool digits = true;
    for (char c : tail) digits = digits && c >= '0' && c <= '9';
    if (digits) {
      nth = std::atoi(tail.c_str());
      spec.resize(colon);
    }
  }
  ArmCrashPoint(spec.c_str(), nth);
}

}  // namespace declsched
