// Deterministic pseudo-random number generation.
//
// Every stochastic component (workload generation, simulated service times)
// takes an explicit Rng seeded by the experiment harness, so that every test
// and benchmark run is reproducible bit-for-bit.

#ifndef DECLSCHED_COMMON_RNG_H_
#define DECLSCHED_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace declsched {

/// xoshiro256** generator seeded via splitmix64. Fast, high quality, and
/// fully deterministic across platforms (no libstdc++ distribution quirks).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the four lanes of state.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in the closed interval [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
    // Lemire's nearly-divisionless bounded sampling with rejection.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < range) {
      const uint64_t threshold = (0 - range) % range;
      while (l < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<uint64_t>(m);
      }
    }
    return lo + static_cast<int64_t>(m >> 64);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean) {
    assert(mean > 0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace declsched

#endif  // DECLSCHED_COMMON_RNG_H_
