// Status and error-code plumbing used across the library.
//
// declsched follows the Arrow/RocksDB idiom for database code: fallible
// operations return a Status (or a Result<T>, see result.h) instead of
// throwing exceptions, so that error handling is explicit at every call site
// and hot paths stay allocation-free on success.

#ifndef DECLSCHED_COMMON_STATUS_H_
#define DECLSCHED_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace declsched {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kParseError = 4,
  kBindError = 5,
  kPlanError = 6,
  kExecutionError = 7,
  kTypeError = 8,
  kDeadlock = 9,
  kAborted = 10,
  kUnsupported = 11,
  kInternal = 12,
  /// A bounded resource (queue, token bucket, in-flight cap) is full; the
  /// caller should back off and retry — the HTTP layer's 429.
  kResourceExhausted = 13,
  /// The service is not accepting work (draining, shut down) — the HTTP
  /// layer's 503.
  kUnavailable = 14,
};

/// Human-readable name of a StatusCode (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// The OK state carries no allocation; error states heap-allocate their
/// payload, which keeps `Status` one pointer wide and cheap to move.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// Error message; empty string for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsDeadlock() const { return code() == StatusCode::kDeadlock; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace declsched

/// Propagates a non-OK Status to the caller.
#define DS_RETURN_NOT_OK(expr)                   \
  do {                                           \
    ::declsched::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define DS_CONCAT_IMPL(x, y) x##y
#define DS_CONCAT(x, y) DS_CONCAT_IMPL(x, y)

#endif  // DECLSCHED_COMMON_STATUS_H_
