#include "common/logging.h"

namespace declsched {

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace declsched
