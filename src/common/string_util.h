// Small string helpers shared by the SQL and Datalog front ends.

#ifndef DECLSCHED_COMMON_STRING_UTIL_H_
#define DECLSCHED_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace declsched {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);
/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);
/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);
/// Splits on a single character; keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);
/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace declsched

#endif  // DECLSCHED_COMMON_STRING_UTIL_H_
