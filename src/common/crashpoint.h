// Deterministic crash-point fault injection for the durability tests.
//
// Durability code calls CrashPoint("wal:post-fsync") at every point where a
// crash must be survivable. In production builds the call is one relaxed
// atomic load (no point armed -> ~free). The crash-recovery property test
// arms one named point — either programmatically (ArmCrashPoint) in a
// forked child, or via the DECLSCHED_CRASHPOINT environment variable
// ("name" or "name:nth") — and the Nth hit terminates the process with
// _exit(kCrashPointExitCode), simulating kill -9 at exactly that moment:
// no destructors, no buffer flushes, nothing but what already reached the
// kernel survives.
//
// The catalog of named points lives in docs/DURABILITY.md; the WAL and
// snapshot writers are the only call sites.

#ifndef DECLSCHED_COMMON_CRASHPOINT_H_
#define DECLSCHED_COMMON_CRASHPOINT_H_

#include <atomic>
#include <functional>

namespace declsched {

/// Exit code of a process killed by an armed crash point (distinguishes an
/// injected crash from a real failure in the harness's waitpid).
inline constexpr int kCrashPointExitCode = 42;

namespace internal {
extern std::atomic<bool> g_crashpoint_armed;
void CrashPointSlow(const char* name);
}  // namespace internal

/// Declares a survivable-crash point. Near-free unless a point is armed.
inline void CrashPoint(const char* name) {
  if (internal::g_crashpoint_armed.load(std::memory_order_relaxed)) {
    internal::CrashPointSlow(name);
  }
}

/// True if the very next CrashPoint(name) would terminate the process.
/// The WAL flusher uses this to cut a record short before dying (a torn
/// tail: _exit alone cannot lose bytes already written to the kernel).
bool CrashPointWillTrigger(const char* name);

/// Arms `name`: the `nth` call of CrashPoint(name) from now on _exits the
/// process. nth < 1 is treated as 1. Replaces any previously armed point.
void ArmCrashPoint(const char* name, int nth = 1);

/// Disarms everything (the parent side of a fork-based test).
void DisarmCrashPoint();

/// Replaces the default _exit with a custom action (in-process tests that
/// want to observe the hit instead of dying). Null restores _exit.
void SetCrashPointHook(std::function<void(const char*)> hook);

/// Arms from DECLSCHED_CRASHPOINT=<name>[:<nth>] if set. Point names
/// themselves contain a colon ("wal:post-fsync"), so only a final
/// all-digits token is read as nth. Call early in main(); no-op if unset.
void InstallCrashPointFromEnv();

}  // namespace declsched

#endif  // DECLSCHED_COMMON_CRASHPOINT_H_
