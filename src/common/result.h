// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef DECLSCHED_COMMON_RESULT_H_
#define DECLSCHED_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace declsched {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. Mirrors arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out. Requires ok().
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace declsched

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value into `lhs` (which may be a declaration).
#define DS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  DS_ASSIGN_OR_RETURN_IMPL(DS_CONCAT(_ds_result_, __LINE__), lhs, rexpr)

#define DS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).MoveValue()

#endif  // DECLSCHED_COMMON_RESULT_H_
