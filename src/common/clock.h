// Simulated-time representation.
//
// All server-side experiments run on a deterministic simulated clock (see
// DESIGN.md: the paper's 2.8 GHz single-core testbed is replaced by a
// discrete-event simulation). SimTime is a strongly typed microsecond count
// so that real (wall-clock) durations and simulated durations cannot be mixed
// by accident.

#ifndef DECLSCHED_COMMON_CLOCK_H_
#define DECLSCHED_COMMON_CLOCK_H_

#include <cstdint>
#include <ostream>

namespace declsched {

/// A point or span on the simulated timeline, in integer microseconds.
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}

  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }
  static constexpr SimTime FromMillis(int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime FromSeconds(int64_t s) { return SimTime(s * 1000000); }
  /// From fractional seconds; rounds to the nearest microsecond.
  static constexpr SimTime FromSecondsF(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double ToSecondsF() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double ToMillisF() const { return static_cast<double>(micros_) / 1e3; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.micros_ + b.micros_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.micros_ - b.micros_);
  }
  SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, int64_t k) {
    return SimTime(a.micros_ * k);
  }
  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.micros_ == b.micros_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) {
    return a.micros_ != b.micros_;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) { return a.micros_ < b.micros_; }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.micros_ <= b.micros_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) { return a.micros_ > b.micros_; }
  friend constexpr bool operator>=(SimTime a, SimTime b) {
    return a.micros_ >= b.micros_;
  }

 private:
  explicit constexpr SimTime(int64_t us) : micros_(us) {}
  int64_t micros_;
};

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.micros() << "us";
}

}  // namespace declsched

#endif  // DECLSCHED_COMMON_CLOCK_H_
