#include "server/database_server.h"

#include "common/string_util.h"
#include "storage/value.h"

namespace declsched::server {

using storage::Value;

DatabaseServer::DatabaseServer(const Config& config)
    : config_(config),
      table_("data", storage::Schema({{"key", storage::ValueType::kInt64},
                                      {"val", storage::ValueType::kInt64}})) {
  if (config_.materialize_rows) {
    for (int64_t k = 0; k < config_.num_rows; ++k) {
      // RowId equals key: dense insertion order.
      table_.Insert({Value::Int64(k), Value::Int64(0)}).ValueOrDie();
    }
  }
}

Status DatabaseServer::ValidateStatement(const Statement& stmt) const {
  if (stmt.op == txn::OpType::kRead || stmt.op == txn::OpType::kWrite) {
    if (stmt.object < 0 || stmt.object >= config_.num_rows) {
      return Status::InvalidArgument(
          StrFormat("row %lld out of range [0, %lld)",
                    static_cast<long long>(stmt.object),
                    static_cast<long long>(config_.num_rows)));
    }
  }
  if (!config_.known_tenants.empty()) {
    bool known = false;
    for (int t : config_.known_tenants) {
      if (t == stmt.tenant) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          StrFormat("unknown tenant %d", stmt.tenant));
    }
  }
  return Status::OK();
}

Status DatabaseServer::ValidateBatch(const StatementBatch& batch) const {
  if (config_.max_batch_statements > 0 &&
      static_cast<int64_t>(batch.size()) > config_.max_batch_statements) {
    return Status::InvalidArgument(
        StrFormat("batch of %lld statements exceeds limit %lld",
                  static_cast<long long>(batch.size()),
                  static_cast<long long>(config_.max_batch_statements)));
  }
  for (const Statement& stmt : batch) {
    DS_RETURN_NOT_OK(ValidateStatement(stmt));
  }
  return Status::OK();
}

Result<DatabaseServer::BatchStats> DatabaseServer::ExecuteBatch(
    const StatementBatch& batch, int shard) {
  BatchStats stats;
  if (batch.empty()) return stats;
  DS_RETURN_NOT_OK(ValidateBatch(batch));
  std::lock_guard<std::mutex> lock(mu_);
  stats.busy = config_.cost.batch_dispatch;
  for (const Statement& stmt : batch) {
    SimTime stmt_cost;
    switch (stmt.op) {
      case txn::OpType::kRead:
      case txn::OpType::kWrite: {
        if (config_.materialize_rows) {
          const storage::Row* row = table_.Get(stmt.object);
          if (stmt.op == txn::OpType::kWrite) {
            DS_RETURN_NOT_OK(table_.Update(
                stmt.object,
                {Value::Int64(stmt.object), Value::Int64((*row)[1].AsInt64() + 1)}));
          }
        }
        if (stmt.op == txn::OpType::kWrite) {
          ++stats.writes;
        } else {
          ++stats.reads;
        }
        stmt_cost = config_.cost.statement_service;
        break;
      }
      case txn::OpType::kCommit:
        ++stats.commits;
        stmt_cost = config_.cost.commit_service;
        break;
      case txn::OpType::kAbort:
        ++stats.aborts;
        stmt_cost = config_.cost.commit_service;
        break;
    }
    stats.busy += stmt_cost;
    tenant_busy_[stmt.tenant] += stmt_cost;
  }
  total_statements_ += static_cast<int64_t>(batch.size());
  total_busy_ += stats.busy;
  if (shard >= 0) {
    if (static_cast<size_t>(shard) >= shard_busy_.size()) {
      shard_busy_.resize(static_cast<size_t>(shard) + 1);
    }
    shard_busy_[static_cast<size_t>(shard)] += stats.busy;
  }
  return stats;
}

SimTime DatabaseServer::tenant_busy(int tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_busy_.find(tenant);
  return it == tenant_busy_.end() ? SimTime() : it->second;
}

SimTime DatabaseServer::shard_busy(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || static_cast<size_t>(shard) >= shard_busy_.size()) {
    return SimTime();
  }
  return shard_busy_[static_cast<size_t>(shard)];
}

Result<int64_t> DatabaseServer::RowValue(int64_t key) const {
  if (!config_.materialize_rows) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const storage::Row* row = table_.Get(key);
  if (row == nullptr) {
    return Status::NotFound(StrFormat("no row %lld", static_cast<long long>(key)));
  }
  return (*row)[1].AsInt64();
}

}  // namespace declsched::server
