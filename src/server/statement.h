// Statement: the unit of work the simulated DBMS executes.

#ifndef DECLSCHED_SERVER_STATEMENT_H_
#define DECLSCHED_SERVER_STATEMENT_H_

#include <cstdint>
#include <vector>

#include "txn/types.h"

namespace declsched::server {

/// One database statement against a single row, as in the paper's workload
/// ("each statement affected exactly one random row"). Commit/abort
/// statements terminate a transaction.
struct Statement {
  txn::TxnId txn = 0;
  int64_t intra_txn = 0;  // position within the transaction (Table 2 INTRATA)
  txn::OpType op = txn::OpType::kRead;
  txn::ObjectId object = 0;  // row key; ignored for commit/abort
  /// Submitting tenant (multi-tenant QoS attribution; 0 = default tenant).
  int tenant = 0;
};

using StatementBatch = std::vector<Statement>;

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_STATEMENT_H_
