#include "server/native_scheduler_sim.h"

#include <memory>

#include "common/logging.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "txn/lock_manager.h"

namespace declsched::server {

namespace {

using txn::LockManager;
using txn::LockMode;
using txn::OpType;
using txn::TxnId;

class Simulation {
 public:
  explicit Simulation(const NativeSimConfig& config)
      : config_(config),
        cpu_(&sim_),
        slowdown_(config.cost.MplSlowdown(config.num_clients)) {}

  Result<NativeSimResult> Run() {
    if (config_.num_clients <= 0) {
      return Status::InvalidArgument("num_clients must be positive");
    }
    clients_.reserve(static_cast<size_t>(config_.num_clients));
    for (int i = 0; i < config_.num_clients; ++i) {
      clients_.push_back(std::make_unique<Client>());
      Client& c = *clients_.back();
      c.index = i;
      c.generator = std::make_unique<workload::OltpWorkloadGenerator>(
          config_.workload, config_.seed + static_cast<uint64_t>(i) * 7919);
      BeginTransaction(c);
    }
    sim_.RunUntil(config_.duration);

    result_.elapsed = config_.duration;
    result_.cpu_busy = cpu_.busy_time();
    // CPU busy time can nominally extend past the window (the last job runs
    // to completion); clamp for utilization reporting.
    if (result_.cpu_busy > result_.elapsed) result_.cpu_busy = result_.elapsed;
    return std::move(result_);
  }

 private:
  struct Client {
    int index = 0;
    std::unique_ptr<workload::OltpWorkloadGenerator> generator;
    workload::TxnSpec spec;
    TxnId txn = 0;
    size_t next_op = 0;       // index of the statement being processed
    int64_t executed = 0;     // statements completed in this attempt
    SimTime txn_start;
    bool waiting = false;
    int64_t wait_epoch = 0;   // invalidates stale timeout events
    bool done = false;        // stopped by max_committed_txns
  };

  void BeginTransaction(Client& c) {
    c.spec = c.generator->NextTransaction();
    StartAttempt(c);
  }

  /// Starts (or restarts after abort) the current transaction spec under a
  /// fresh transaction id.
  void StartAttempt(Client& c) {
    c.txn = next_txn_id_++;
    c.next_op = 0;
    c.executed = 0;
    c.txn_start = sim_.Now();
    txn_owner_[c.txn] = c.index;
    NextStatement(c);
  }

  /// All CPU work slows down uniformly under MPL overcommit (memory
  /// pressure and context switching affect every job equally).
  SimTime Scaled(SimTime t) const {
    return SimTime::FromMicros(
        static_cast<int64_t>(static_cast<double>(t.micros()) * slowdown_ + 0.5));
  }

  void NextStatement(Client& c) {
    if (stopped_ || c.done) return;
    if (c.next_op >= c.spec.ops.size()) {
      Commit(c);
      return;
    }
    // Lock-manager bookkeeping burns CPU before the request is decided.
    cpu_.Submit(Scaled(config_.cost.lock_acquire),
                [this, &c, txn = c.txn] { RequestLock(c, txn); });
  }

  void RequestLock(Client& c, TxnId txn) {
    if (stopped_ || c.txn != txn) return;  // attempt was aborted meanwhile
    const workload::OpSpec& op = c.spec.ops[c.next_op];
    const LockMode mode = op.is_write ? LockMode::kExclusive : LockMode::kShared;
    auto outcome = lm_.Request(c.txn, op.object, mode);
    switch (outcome.outcome) {
      case LockManager::AcquireOutcome::kGranted:
      case LockManager::AcquireOutcome::kAlreadyHeld:
        ExecuteStatement(c);
        return;
      case LockManager::AcquireOutcome::kQueued: {
        ++result_.lock_waits;
        c.waiting = true;
        const int64_t epoch = ++c.wait_epoch;
        sim_.Schedule(config_.cost.lock_wait_timeout,
                      [this, &c, txn, epoch] { OnWaitTimeout(c, txn, epoch); });
        return;
      }
      case LockManager::AcquireOutcome::kDeadlock:
        ++result_.deadlock_aborts;
        Abort(c);
        return;
    }
  }

  void OnWaitTimeout(Client& c, TxnId txn, int64_t epoch) {
    if (stopped_ || c.txn != txn || !c.waiting || c.wait_epoch != epoch) return;
    ++result_.timeout_aborts;
    c.waiting = false;
    Abort(c);
  }

  void OnGrant(Client& c) {
    if (stopped_) return;
    c.waiting = false;
    ++c.wait_epoch;  // cancel the pending timeout
    ExecuteStatement(c);
  }

  void ExecuteStatement(Client& c) {
    cpu_.Submit(Scaled(config_.cost.statement_service),
                [this, &c, txn = c.txn] { OnStatementDone(c, txn); });
  }

  void OnStatementDone(Client& c, TxnId txn) {
    if (stopped_ || c.txn != txn) return;
    const workload::OpSpec& op = c.spec.ops[c.next_op];
    if (config_.record_history) {
      result_.history.push_back(txn::HistoryOp{
          c.txn, op.is_write ? OpType::kWrite : OpType::kRead, op.object});
    }
    ++c.executed;
    ++c.next_op;
    NextStatement(c);
  }

  void Commit(Client& c) {
    cpu_.Submit(Scaled(config_.cost.commit_service), [this, &c, txn = c.txn] {
      if (stopped_ || c.txn != txn) return;
      if (config_.record_history) {
        result_.history.push_back(txn::HistoryOp{c.txn, OpType::kCommit, 0});
      }
      ++result_.committed_txns;
      result_.committed_statements += static_cast<int64_t>(c.spec.ops.size());
      result_.txn_latency_us.Record((sim_.Now() - c.txn_start).micros());
      ReleaseAndDeliver(c.txn);
      txn_owner_.erase(c.txn);
      if (config_.max_committed_txns >= 0 &&
          result_.committed_txns >= config_.max_committed_txns) {
        stopped_ = true;
        sim_.Stop();
        return;
      }
      BeginTransaction(c);
    });
  }

  void Abort(Client& c) {
    result_.wasted_statements += c.executed;
    if (config_.record_history && c.executed > 0) {
      result_.history.push_back(txn::HistoryOp{c.txn, OpType::kAbort, 0});
    }
    ReleaseAndDeliver(c.txn);
    txn_owner_.erase(c.txn);
    c.txn = 0;  // invalidate in-flight callbacks of this attempt
    // Rollback burns CPU proportional to the executed statements, then the
    // transaction restarts from scratch (immediate-restart policy).
    const SimTime undo = Scaled(config_.cost.undo_per_statement * c.executed);
    cpu_.Submit(undo, [this, &c] {
      if (stopped_ || c.done) return;
      StartAttempt(c);
    });
  }

  void ReleaseAndDeliver(TxnId txn) {
    for (const LockManager::Grant& grant : lm_.ReleaseAll(txn)) {
      auto it = txn_owner_.find(grant.txn);
      if (it == txn_owner_.end()) continue;
      Client& granted = *clients_[it->second];
      if (granted.txn == grant.txn && granted.waiting) OnGrant(granted);
    }
  }

  NativeSimConfig config_;
  sim::Simulator sim_;
  sim::FifoResource cpu_;
  LockManager lm_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unordered_map<TxnId, int> txn_owner_;
  TxnId next_txn_id_ = 1;
  bool stopped_ = false;
  double slowdown_ = 1.0;
  NativeSimResult result_;
};

}  // namespace

Result<NativeSimResult> RunNativeSimulation(const NativeSimConfig& config) {
  Simulation simulation(config);
  return simulation.Run();
}

}  // namespace declsched::server
