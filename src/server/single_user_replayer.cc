#include "server/single_user_replayer.h"

namespace declsched::server {

SingleUserReplayResult ReplaySingleUser(int64_t num_statements,
                                        const CostModel& cost) {
  SingleUserReplayResult result;
  result.statements = num_statements;
  // One exclusive table lock (a single acquire), the statement sequence, and
  // a single commit.
  result.elapsed = cost.lock_acquire + cost.statement_service * num_statements +
                   cost.commit_service;
  return result;
}

}  // namespace declsched::server
