#include "server/trace.h"

#include <unordered_set>

#include "common/string_util.h"

namespace declsched::server {

ScheduleTrace TraceFromHistory(const std::vector<txn::HistoryOp>& history) {
  std::unordered_set<txn::TxnId> committed;
  for (const txn::HistoryOp& op : history) {
    if (op.type == txn::OpType::kCommit) committed.insert(op.txn);
  }
  ScheduleTrace trace;
  for (const txn::HistoryOp& op : history) {
    if (committed.count(op.txn) == 0) continue;
    switch (op.type) {
      case txn::OpType::kRead:
      case txn::OpType::kWrite:
        trace.statements.push_back(Statement{op.txn, 0, op.type, op.object});
        ++trace.data_statements;
        break;
      case txn::OpType::kCommit:
        trace.statements.push_back(
            Statement{op.txn, 0, txn::OpType::kCommit, 0});
        ++trace.committed_txns;
        break;
      case txn::OpType::kAbort:
        break;  // cannot happen for committed txns
    }
  }
  return trace;
}

std::string SerializeTrace(const ScheduleTrace& trace) {
  std::string out;
  out.reserve(trace.statements.size() * 16);
  for (const Statement& stmt : trace.statements) {
    switch (stmt.op) {
      case txn::OpType::kRead:
        out += StrFormat("r %lld %lld\n", static_cast<long long>(stmt.txn),
                         static_cast<long long>(stmt.object));
        break;
      case txn::OpType::kWrite:
        out += StrFormat("w %lld %lld\n", static_cast<long long>(stmt.txn),
                         static_cast<long long>(stmt.object));
        break;
      case txn::OpType::kCommit:
        out += StrFormat("c %lld\n", static_cast<long long>(stmt.txn));
        break;
      case txn::OpType::kAbort:
        out += StrFormat("a %lld\n", static_cast<long long>(stmt.txn));
        break;
    }
  }
  return out;
}

Result<ScheduleTrace> ParseTrace(std::string_view text) {
  ScheduleTrace trace;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    const std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> parts = Split(std::string(line), ' ');
    auto fail = [line_no]() {
      return Status::ParseError(StrFormat("trace line %d malformed", line_no));
    };
    if (parts.empty() || parts[0].size() != 1) return fail();
    Statement stmt;
    try {
      switch (parts[0][0]) {
        case 'r':
        case 'w':
          if (parts.size() != 3) return fail();
          stmt.op = parts[0][0] == 'r' ? txn::OpType::kRead : txn::OpType::kWrite;
          stmt.txn = std::stoll(parts[1]);
          stmt.object = std::stoll(parts[2]);
          ++trace.data_statements;
          break;
        case 'c':
        case 'a':
          if (parts.size() != 2) return fail();
          stmt.op = parts[0][0] == 'c' ? txn::OpType::kCommit : txn::OpType::kAbort;
          stmt.txn = std::stoll(parts[1]);
          if (stmt.op == txn::OpType::kCommit) ++trace.committed_txns;
          break;
        default:
          return fail();
      }
    } catch (...) {
      return fail();
    }
    trace.statements.push_back(stmt);
  }
  return trace;
}

Result<SimTime> ReplayTrace(const ScheduleTrace& trace, DatabaseServer* server) {
  // Single-user replay: the whole schedule as one lock-free batch. Commit
  // markers are skipped except one final commit — the paper processed "the
  // same statement sequence in a single transaction".
  StatementBatch batch;
  batch.reserve(trace.statements.size() + 1);
  for (const Statement& stmt : trace.statements) {
    if (stmt.op == txn::OpType::kRead || stmt.op == txn::OpType::kWrite) {
      batch.push_back(stmt);
    }
  }
  batch.push_back(Statement{0, 0, txn::OpType::kCommit, 0});
  DS_ASSIGN_OR_RETURN(DatabaseServer::BatchStats stats, server->ExecuteBatch(batch));
  return stats.busy;
}

}  // namespace declsched::server
