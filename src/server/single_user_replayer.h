// Single-user replay: the paper's lower bound for scheduling overhead.
//
// Section 4.2.1: "we acquired an exclusive lock on the table ... and
// processed the same statement sequence in a single transaction". Without
// concurrency there is no lock-manager work, no blocking and no wasted
// rollbacks: elapsed time is just the sum of statement service times.

#ifndef DECLSCHED_SERVER_SINGLE_USER_REPLAYER_H_
#define DECLSCHED_SERVER_SINGLE_USER_REPLAYER_H_

#include <cstdint>

#include "common/clock.h"
#include "server/cost_model.h"

namespace declsched::server {

struct SingleUserReplayResult {
  int64_t statements = 0;
  SimTime elapsed;
};

/// Simulated elapsed time to replay `num_statements` in one transaction:
/// one table lock + statements + one commit.
SingleUserReplayResult ReplaySingleUser(int64_t num_statements, const CostModel& cost);

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_SINGLE_USER_REPLAYER_H_
