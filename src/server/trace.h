// Schedule traces: the paper's Section 4.2.1 measurement methodology.
//
// "In a separate run, we also logged the produced schedule. We then reran
// this schedule with a single concurrent transaction" — a trace is that
// logged schedule: the committed statement sequence in execution order.
// Traces can be captured from the native simulation, saved/loaded as text,
// and replayed single-user against a DatabaseServer.

#ifndef DECLSCHED_SERVER_TRACE_H_
#define DECLSCHED_SERVER_TRACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "server/database_server.h"
#include "server/statement.h"
#include "txn/types.h"

namespace declsched::server {

/// A logged schedule.
struct ScheduleTrace {
  /// Read/write statements plus commit markers, in execution order.
  std::vector<Statement> statements;
  int64_t committed_txns = 0;
  /// Read/write statements only (excludes markers).
  int64_t data_statements = 0;
};

/// Extracts the committed projection of an executed history (operations of
/// aborted or unfinished transactions are dropped — they never appear in the
/// replayed schedule).
ScheduleTrace TraceFromHistory(const std::vector<txn::HistoryOp>& history);

/// Serializes to a line-oriented text format:
///   r <txn> <object>
///   w <txn> <object>
///   c <txn>
std::string SerializeTrace(const ScheduleTrace& trace);

/// Parses the text format back. Rejects malformed lines.
Result<ScheduleTrace> ParseTrace(std::string_view text);

/// Replays the trace single-user against `server` (one batch, locks
/// disabled, exactly the paper's lower-bound measurement) and returns the
/// simulated elapsed time.
Result<SimTime> ReplayTrace(const ScheduleTrace& trace, DatabaseServer* server);

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_TRACE_H_
