// Cost model of the simulated DBMS.
//
// The paper's testbed was a commercial DBMS on a 2.8 GHz single-core CPU with
// the working set fully in the buffer pool. We replace it with a
// deterministic cost model whose constants are calibrated once against the
// paper's two published absolute numbers (Section 4.2.2):
//   * 550 055 statements in 240 s multi-user at 300 clients, replayed
//     single-user in 194 s  =>  SU statement cost ~= 194s / 550055 = 352.7 us
//   * throughput collapse between 300 and 500 clients (lock thrashing)
// Everything else (the Figure 2 curve shape) emerges from the lock-manager
// mechanics in native_scheduler_sim.cc, not from curve fitting.

#ifndef DECLSCHED_SERVER_COST_MODEL_H_
#define DECLSCHED_SERVER_COST_MODEL_H_

#include "common/clock.h"

namespace declsched::server {

struct CostModel {
  /// CPU time to execute one single-row SELECT/UPDATE without any
  /// concurrency-control work (the single-user replay cost).
  SimTime statement_service = SimTime::FromMicros(352);

  /// CPU time of lock-manager work per statement in multi-user mode
  /// (acquire bookkeeping; release is charged at commit).
  SimTime lock_acquire = SimTime::FromMicros(20);

  /// CPU time to commit: release all locks, write the commit record.
  SimTime commit_service = SimTime::FromMicros(180);

  /// CPU time to abort (rollback) per already-executed statement: undo image
  /// application; this is pure wasted work that restarts add.
  SimTime undo_per_statement = SimTime::FromMicros(120);

  /// Transactions blocked longer than this abort and restart (the classic
  /// lock-wait timeout every commercial engine ships; a key thrashing
  /// amplifier at high client counts).
  SimTime lock_wait_timeout = SimTime::FromSeconds(60);

  /// Batch execution (declarative-scheduler path): fixed dispatch overhead
  /// per batch plus the bare statement service per statement. No per-
  /// statement lock work: the middleware already scheduled the batch.
  SimTime batch_dispatch = SimTime::FromMicros(150);

  // --- multiprogramming-level (MPL) thrashing ---
  // The paper's testbed has 2 GB of memory; each active connection costs
  // working memory (sort/lock/connection state). Beyond `mpl_capacity`
  // concurrent connections the buffer is overcommitted and every CPU job
  // slows down (page faults + context-switch storm). This is the classic
  // MPL-collapse of the paper's refs [20][21] (Schroeder et al.) and the
  // mechanism behind Figure 2's cliff between 300 and 500 clients. The
  // slowdown is quadratic in the overcommitted connection count:
  //   slowdown(K) = 1 + mpl_thrash_quadratic * max(0, K - mpl_capacity)^2
  // The *declarative* middleware path is immune: the scheduler maintains a
  // single server connection regardless of client count (Figure 1).
  int mpl_capacity = 340;
  double mpl_thrash_quadratic = 2.8e-4;

  /// Per-job slowdown at a given multiprogramming level.
  double MplSlowdown(int connections) const {
    const double over = connections > mpl_capacity
                            ? static_cast<double>(connections - mpl_capacity)
                            : 0.0;
    return 1.0 + mpl_thrash_quadratic * over * over;
  }
};

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_COST_MODEL_H_
