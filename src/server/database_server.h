// DatabaseServer: the backend the declarative scheduler dispatches to.
//
// In the paper's architecture (Figure 1) the middleware sends scheduled
// request batches to the server with the server's own scheduler disabled as
// far as possible. This server executes the batch directly against its
// storage without any lock acquisition (the middleware guarantees the batch
// is conflict-safe) and accounts the simulated CPU time it would take.
//
// Thread-safety: ExecuteBatch serializes internally, so the N shard workers
// of a ShardedScheduler may dispatch into one server concurrently (the
// sharded mode of the server stack — see examples/sharded_server.cpp,
// which drives it with --shards=N). Batches from different shards execute
// atomically with respect to each other; the middleware still guarantees
// each batch is conflict-safe on its own.

#ifndef DECLSCHED_SERVER_DATABASE_SERVER_H_
#define DECLSCHED_SERVER_DATABASE_SERVER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "server/cost_model.h"
#include "server/statement.h"
#include "storage/table.h"

namespace declsched::server {

class DatabaseServer {
 public:
  struct Config {
    /// Size of the user table (the paper: 100 000 rows).
    int64_t num_rows = 100000;
    CostModel cost;
    /// When false, data is not materialized and statements only account
    /// simulated time (fast mode for large benchmarks).
    bool materialize_rows = true;
    /// Tenants allowed to execute; empty means any tenant id. Statements
    /// from other tenants fail validation with InvalidArgument.
    std::vector<int> known_tenants;
    /// Upper bound on statements per batch; larger batches fail validation
    /// with InvalidArgument. 0 disables the check.
    int64_t max_batch_statements = 0;
  };

  explicit DatabaseServer(const Config& config);

  struct BatchStats {
    int64_t reads = 0;
    int64_t writes = 0;
    int64_t commits = 0;
    int64_t aborts = 0;
    /// Simulated CPU time consumed by this batch.
    SimTime busy;
  };

  /// Checks one statement against this server's config without executing
  /// it: row in [0, num_rows), tenant known (when known_tenants is set).
  /// InvalidArgument on violation. Thread-safe (config is immutable), so
  /// the network front door can pre-validate before admission.
  Status ValidateStatement(const Statement& stmt) const;

  /// ValidateStatement over a whole batch, plus the max_batch_statements
  /// bound. The first violation is returned.
  Status ValidateBatch(const StatementBatch& batch) const;

  /// Executes a pre-scheduled batch without internal scheduling.
  /// Validate-first: the whole batch is checked (ValidateBatch) before any
  /// statement executes, so a failed batch leaves data and accounting
  /// untouched — no partial application. Thread-safe: concurrent callers
  /// (shard dispatchers) serialize on an internal mutex. `shard`
  /// attributes the batch's busy time to that dispatcher (see
  /// shard_busy); pass 0 when unsharded.
  Result<BatchStats> ExecuteBatch(const StatementBatch& batch, int shard = 0);

  /// Current value of a row (writes increment it); 0 in non-materialized
  /// mode. For test verification. Thread-safe.
  Result<int64_t> RowValue(int64_t key) const;

  /// Simulated busy time attributed to shard dispatcher `i` so far; zero
  /// for shards that never dispatched. Thread-safe.
  SimTime shard_busy(int shard) const;

  /// Simulated busy time attributed to `tenant`'s statements so far (the
  /// server-side view of per-tenant service, to validate the scheduler's
  /// accounting against); zero for unseen tenants. Thread-safe.
  SimTime tenant_busy(int tenant) const;

  int64_t total_statements() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_statements_;
  }
  SimTime total_busy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_busy_;
  }
  const Config& config() const { return config_; }

 private:
  Config config_;
  /// Guards the table and every counter: one dispatcher executes at a time
  /// (the simulated server is a single execution resource; shards overlap
  /// scheduling work, not server work).
  mutable std::mutex mu_;
  storage::Table table_;
  int64_t total_statements_ = 0;
  SimTime total_busy_;
  std::vector<SimTime> shard_busy_;
  std::map<int, SimTime> tenant_busy_;
};

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_DATABASE_SERVER_H_
