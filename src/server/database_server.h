// DatabaseServer: the backend the declarative scheduler dispatches to.
//
// In the paper's architecture (Figure 1) the middleware sends scheduled
// request batches to the server with the server's own scheduler disabled as
// far as possible. This server executes the batch directly against its
// storage without any lock acquisition (the middleware guarantees the batch
// is conflict-safe) and accounts the simulated CPU time it would take.

#ifndef DECLSCHED_SERVER_DATABASE_SERVER_H_
#define DECLSCHED_SERVER_DATABASE_SERVER_H_

#include <cstdint>

#include "common/result.h"
#include "server/cost_model.h"
#include "server/statement.h"
#include "storage/table.h"

namespace declsched::server {

class DatabaseServer {
 public:
  struct Config {
    /// Size of the user table (the paper: 100 000 rows).
    int64_t num_rows = 100000;
    CostModel cost;
    /// When false, data is not materialized and statements only account
    /// simulated time (fast mode for large benchmarks).
    bool materialize_rows = true;
  };

  explicit DatabaseServer(const Config& config);

  struct BatchStats {
    int64_t reads = 0;
    int64_t writes = 0;
    int64_t commits = 0;
    int64_t aborts = 0;
    /// Simulated CPU time consumed by this batch.
    SimTime busy;
  };

  /// Executes a pre-scheduled batch without internal scheduling. Statements
  /// touching rows outside [0, num_rows) fail with InvalidArgument.
  Result<BatchStats> ExecuteBatch(const StatementBatch& batch);

  /// Current value of a row (writes increment it); 0 in non-materialized
  /// mode. For test verification.
  Result<int64_t> RowValue(int64_t key) const;

  int64_t total_statements() const { return total_statements_; }
  SimTime total_busy() const { return total_busy_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  storage::Table table_;
  int64_t total_statements_ = 0;
  SimTime total_busy_;
};

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_DATABASE_SERVER_H_
