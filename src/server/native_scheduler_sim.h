// Multi-user simulation of the DBMS's *native* lock-based scheduler
// (paper Section 4.2: "Native Scheduler Overhead").
//
// N closed-loop clients run OLTP transactions under strict two-phase locking
// on a single-core server. Every piece of work — lock-manager bookkeeping,
// statement execution, commit, rollback — is a job on one FIFO CPU resource;
// blocked transactions hold their locks while waiting (the thrashing
// feedback loop); deadlock victims and lock-wait-timeout victims roll back
// and restart from scratch, turning their executed statements into pure
// waste. The Figure 2 throughput collapse between 300 and 500 clients
// emerges from these mechanics.

#ifndef DECLSCHED_SERVER_NATIVE_SCHEDULER_SIM_H_
#define DECLSCHED_SERVER_NATIVE_SCHEDULER_SIM_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "server/cost_model.h"
#include "txn/types.h"
#include "workload/oltp_generator.h"

namespace declsched::server {

struct NativeSimConfig {
  int num_clients = 100;
  /// Measurement window (the paper uses 240 s).
  SimTime duration = SimTime::FromSeconds(240);
  CostModel cost;
  workload::WorkloadConfig workload;
  uint64_t seed = 1;
  /// Record the executed-operation trace (for the correctness oracles).
  bool record_history = false;
  /// Stop after this many commits (tests); -1 = run the full window.
  int64_t max_committed_txns = -1;
};

struct NativeSimResult {
  /// Statements belonging to committed transactions (the paper's metric).
  int64_t committed_statements = 0;
  int64_t committed_txns = 0;
  int64_t deadlock_aborts = 0;
  int64_t timeout_aborts = 0;
  int64_t lock_waits = 0;
  /// Statements executed by attempts that later aborted (wasted CPU).
  int64_t wasted_statements = 0;
  SimTime cpu_busy;
  SimTime elapsed;
  Histogram txn_latency_us;
  std::vector<txn::HistoryOp> history;

  double throughput_stmts_per_sec() const {
    const double secs = elapsed.ToSecondsF();
    return secs > 0 ? static_cast<double>(committed_statements) / secs : 0.0;
  }
  double cpu_utilization() const {
    const double secs = elapsed.ToSecondsF();
    return secs > 0 ? cpu_busy.ToSecondsF() / secs : 0.0;
  }
};

/// Runs the multi-user native-scheduler simulation to completion.
Result<NativeSimResult> RunNativeSimulation(const NativeSimConfig& config);

}  // namespace declsched::server

#endif  // DECLSCHED_SERVER_NATIVE_SCHEDULER_SIM_H_
