// Row representation shared by the storage engine and query executors.

#ifndef DECLSCHED_STORAGE_ROW_H_
#define DECLSCHED_STORAGE_ROW_H_

#include <cstdint>
#include <vector>

#include "storage/value.h"

namespace declsched::storage {

using Row = std::vector<Value>;

/// Stable identifier of a row within one Table (never reused after delete).
using RowId = int64_t;

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : row) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_ROW_H_
