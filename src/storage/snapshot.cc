#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crashpoint.h"
#include "common/string_util.h"
#include "storage/coding.h"
#include "storage/wal.h"

namespace declsched::storage {

namespace {

constexpr char kSnapshotMagic[8] = {'D', 'S', 'S', 'N', 'A', 'P', '1', '\0'};
constexpr size_t kMagicSize = sizeof(kSnapshotMagic);
constexpr size_t kHeaderSize = kMagicSize + 8 + 8 + 4;

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(StrFormat("%s %s: %s", what, path.c_str(),
                                    std::strerror(errno)));
}

Status WriteFully(int fd, const char* data, size_t len,
                  const std::string& path) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

void EncodeValue(std::string* dst, const Value& v) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutFixed64(dst, v.AsInt64());
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed64(dst, bits);
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(dst, v.AsString());
      break;
  }
}

bool DecodeValue(ByteReader* reader, Value* out) {
  uint8_t tag;
  if (!reader->ReadByte(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t v;
      if (!reader->ReadFixed64(&v)) return false;
      *out = Value::Int64(v);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!reader->ReadFixed64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string_view s;
      if (!reader->ReadLengthPrefixed(&s)) return false;
      *out = Value::String(std::string(s));
      return true;
    }
  }
  return false;  // unknown tag
}

std::string EncodeBody(const SnapshotData& data) {
  std::string body;
  PutFixed32(&body, static_cast<uint32_t>(data.shards.size()));
  for (const auto& shard : data.shards) {
    PutFixed32(&body, static_cast<uint32_t>(shard.size()));
    for (const auto& table : shard) {
      PutLengthPrefixed(&body, table.name);
      PutFixed64(&body, static_cast<uint64_t>(table.rows.size()));
      for (const auto& row : table.rows) {
        PutFixed32(&body, static_cast<uint32_t>(row.size()));
        for (const auto& value : row) EncodeValue(&body, value);
      }
    }
  }
  return body;
}

Result<SnapshotData> DecodeBody(uint64_t last_lsn, std::string_view body,
                                const std::string& path) {
  const auto corrupt = [&path](const char* where) {
    return Status::Internal(path + ": corrupt snapshot body (" + where + ")");
  };
  SnapshotData data;
  data.last_lsn = last_lsn;
  ByteReader reader(body);
  uint32_t nshards;
  if (!reader.ReadFixed32(&nshards)) return corrupt("shard count");
  data.shards.resize(nshards);
  for (auto& shard : data.shards) {
    uint32_t ntables;
    if (!reader.ReadFixed32(&ntables)) return corrupt("table count");
    shard.resize(ntables);
    for (auto& table : shard) {
      std::string_view name;
      if (!reader.ReadLengthPrefixed(&name)) return corrupt("table name");
      table.name.assign(name);
      uint64_t nrows;
      if (!reader.ReadFixed64(&nrows)) return corrupt("row count");
      if (nrows > reader.remaining()) return corrupt("row count");  // >= 1B/row
      table.rows.resize(nrows);
      for (auto& row : table.rows) {
        uint32_t ncols;
        if (!reader.ReadFixed32(&ncols)) return corrupt("column count");
        row.reserve(ncols);
        for (uint32_t c = 0; c < ncols; ++c) {
          Value value;
          if (!DecodeValue(&reader, &value)) return corrupt("value");
          row.push_back(std::move(value));
        }
      }
    }
  }
  if (!reader.empty()) return corrupt("trailing bytes");
  return data;
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open", dir);
  Status result;
  if (::fsync(fd) != 0) result = ErrnoStatus("fsync", dir);
  ::close(fd);
  return result;
}

}  // namespace

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}
std::string SnapshotTmpPath(const std::string& dir) {
  return dir + "/snapshot.tmp";
}

Status WriteSnapshot(const std::string& dir, const SnapshotData& data) {
  CrashPoint("snapshot:begin");
  const std::string body = EncodeBody(data);
  std::string file;
  file.reserve(kHeaderSize + body.size());
  file.append(kSnapshotMagic, kMagicSize);
  PutFixed64(&file, data.last_lsn);
  PutFixed64(&file, static_cast<uint64_t>(body.size()));
  PutFixed32(&file, Crc32(body.data(), body.size()));
  file.append(body);

  const std::string tmp = SnapshotTmpPath(dir);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  // Torn-snapshot injection: leave a half-written tmp behind, like a power
  // cut mid-write. Recovery must ignore and remove it.
  if (CrashPointWillTrigger("snapshot:mid-write") && file.size() > 8) {
    const Status torn = WriteFully(fd, file.data(), file.size() / 2, tmp);
    (void)torn;
    CrashPoint("snapshot:mid-write");  // does not return
  }
  Status result = WriteFully(fd, file.data(), file.size(), tmp);
  if (result.ok() && ::fsync(fd) != 0) result = ErrnoStatus("fsync", tmp);
  ::close(fd);
  DS_RETURN_NOT_OK(result);

  CrashPoint("snapshot:pre-rename");
  const std::string final_path = SnapshotPath(dir);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp);
  }
  return FsyncDir(dir);
}

Result<SnapshotData> ReadSnapshot(const std::string& dir) {
  const std::string path = SnapshotPath(dir);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return ErrnoStatus("open", path);
  }
  std::string data;
  {
    char buf[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status read_error = ErrnoStatus("read", path);
        ::close(fd);
        return read_error;
      }
      if (n == 0) break;
      data.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);

  if (data.size() < kHeaderSize) {
    return Status::Internal(path + ": corrupt snapshot (short header)");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, kMagicSize) != 0) {
    return Status::Internal(path + ": not a snapshot file (bad magic)");
  }
  const uint64_t last_lsn = DecodeFixed64(data.data() + kMagicSize);
  const uint64_t body_len = DecodeFixed64(data.data() + kMagicSize + 8);
  const uint32_t crc = DecodeFixed32(data.data() + kMagicSize + 16);
  if (data.size() - kHeaderSize != body_len) {
    return Status::Internal(path + ": corrupt snapshot (body length mismatch)");
  }
  const char* body = data.data() + kHeaderSize;
  if (Crc32(body, body_len) != crc) {
    return Status::Internal(path + ": corrupt snapshot (crc mismatch)");
  }
  return DecodeBody(last_lsn, std::string_view(body, body_len), path);
}

}  // namespace declsched::storage
