// Heap table: the storage engine's row container with optional hash indexes.

#ifndef DECLSCHED_STORAGE_TABLE_H_
#define DECLSCHED_STORAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace declsched::storage {

/// An in-memory heap of rows with a fixed schema. Deleted slots are tomb-
/// stoned (RowIds stay stable until the next vacuum) and reclaimed by
/// Vacuum(). To keep long-lived tables from decaying into tombstone scans,
/// an auto-vacuum policy compacts the heap once dead slots dominate; it
/// runs only at bulk-delete boundaries (end of DeleteWhere(), or an
/// explicit MaybeVacuum()), never inside Delete(), so callers that resolve
/// RowIds one at a time stay safe. Equality hash indexes can be declared
/// per column and are maintained on every mutation.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Live (non-deleted) row count.
  int64_t size() const { return live_rows_; }
  /// Total slots, live plus tombstoned — what every scan iterates.
  int64_t slot_count() const { return static_cast<int64_t>(slots_.size()); }
  /// Bumped on every content mutation (insert/delete/update/clear, however
  /// invoked — API or ad-hoc SQL DML), but not by Vacuum(), which only
  /// relocates rows. The precise staleness signal for caches derived from
  /// this table's contents.
  uint64_t version() const { return version_; }

  /// Validates arity and types (Null allowed in any column), then appends.
  Result<RowId> Insert(Row row);

  /// Tombstones the row. Fails with NotFound if absent or already deleted.
  Status Delete(RowId id);

  /// Replaces the row in place (same validation as Insert).
  Status Update(RowId id, Row row);

  /// nullptr if the id is out of range or deleted.
  const Row* Get(RowId id) const;

  /// Calls fn(id, row) for every live row, in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (RowId id = 0; id < static_cast<RowId>(slots_.size()); ++id) {
      if (slots_[id].has_value()) fn(id, *slots_[id]);
    }
  }

  /// Snapshot of all live rows (copy), in insertion order.
  std::vector<Row> Scan() const;

  /// Declares (and builds) an equality hash index over one column.
  Status CreateIndex(std::string_view column_name);
  bool HasIndex(int column_index) const;

  /// RowIds of live rows whose `column` equals `key`. Requires an index.
  Result<std::vector<RowId>> IndexLookup(int column_index, const Value& key) const;

  /// Deletes every live row matching `pred`; returns how many were removed.
  /// Runs the auto-vacuum check afterwards (RowIds may be invalidated).
  template <typename Pred>
  int64_t DeleteWhere(Pred&& pred) {
    int64_t removed = 0;
    for (RowId id = 0; id < static_cast<RowId>(slots_.size()); ++id) {
      if (slots_[id].has_value() && pred(*slots_[id])) {
        DeleteInternal(id);
        ++removed;
      }
    }
    if (removed > 0) MaybeVacuum();
    return removed;
  }

  /// Removes all rows (keeps schema and index declarations).
  void Clear();

  /// Compacts tombstones. Invalidates all previously returned RowIds.
  void Vacuum();

  /// Vacuums if the auto-vacuum policy says the heap decayed: at least
  /// `min_slots` slots and live rows under `live_ratio` of them. Call after
  /// a burst of single-row Delete()s, once no saved RowIds remain live.
  /// Returns true if it vacuumed (all previous RowIds invalidated).
  bool MaybeVacuum();

  /// Overrides the auto-vacuum policy (defaults: ratio 0.5, 256 slots).
  /// `live_ratio` <= 0 disables auto-vacuum entirely.
  void SetAutoVacuum(double live_ratio, int64_t min_slots);

 private:
  Status ValidateRow(const Row& row) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);
  void DeleteInternal(RowId id);

  std::string name_;
  Schema schema_;
  std::vector<std::optional<Row>> slots_;
  int64_t live_rows_ = 0;
  uint64_t version_ = 0;
  double auto_vacuum_ratio_ = 0.5;
  int64_t auto_vacuum_min_slots_ = 256;
  // column index -> (key value -> RowIds)
  std::unordered_map<int, std::unordered_map<Value, std::vector<RowId>, ValueHash, ValueEq>>
      indexes_;
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_TABLE_H_
