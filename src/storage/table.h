// Heap table: the storage engine's row container with optional hash indexes.

#ifndef DECLSCHED_STORAGE_TABLE_H_
#define DECLSCHED_STORAGE_TABLE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace declsched::storage {

/// An in-memory heap of rows with a fixed schema. Deleted slots are tomb-
/// stoned (RowIds stay stable) and reclaimed by Vacuum(). Equality hash
/// indexes can be declared per column and are maintained on every mutation.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Live (non-deleted) row count.
  int64_t size() const { return live_rows_; }

  /// Validates arity and types (Null allowed in any column), then appends.
  Result<RowId> Insert(Row row);

  /// Tombstones the row. Fails with NotFound if absent or already deleted.
  Status Delete(RowId id);

  /// Replaces the row in place (same validation as Insert).
  Status Update(RowId id, Row row);

  /// nullptr if the id is out of range or deleted.
  const Row* Get(RowId id) const;

  /// Calls fn(id, row) for every live row, in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (RowId id = 0; id < static_cast<RowId>(slots_.size()); ++id) {
      if (slots_[id].has_value()) fn(id, *slots_[id]);
    }
  }

  /// Snapshot of all live rows (copy), in insertion order.
  std::vector<Row> Scan() const;

  /// Declares (and builds) an equality hash index over one column.
  Status CreateIndex(std::string_view column_name);
  bool HasIndex(int column_index) const;

  /// RowIds of live rows whose `column` equals `key`. Requires an index.
  Result<std::vector<RowId>> IndexLookup(int column_index, const Value& key) const;

  /// Deletes every live row matching `pred`; returns how many were removed.
  template <typename Pred>
  int64_t DeleteWhere(Pred&& pred) {
    int64_t removed = 0;
    for (RowId id = 0; id < static_cast<RowId>(slots_.size()); ++id) {
      if (slots_[id].has_value() && pred(*slots_[id])) {
        DeleteInternal(id);
        ++removed;
      }
    }
    return removed;
  }

  /// Removes all rows (keeps schema and index declarations).
  void Clear();

  /// Compacts tombstones. Invalidates all previously returned RowIds.
  void Vacuum();

 private:
  Status ValidateRow(const Row& row) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);
  void DeleteInternal(RowId id);

  std::string name_;
  Schema schema_;
  std::vector<std::optional<Row>> slots_;
  int64_t live_rows_ = 0;
  // column index -> (key value -> RowIds)
  std::unordered_map<int, std::unordered_map<Value, std::vector<RowId>, ValueHash, ValueEq>>
      indexes_;
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_TABLE_H_
