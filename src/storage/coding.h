// Little-endian fixed-width byte coding shared by the WAL and snapshot
// formats (and the scheduler's record payloads). Header-only: the WAL
// appender encodes on the cycle threads' hot path.
//
// All integers are encoded least-significant byte first, explicitly, so the
// on-disk format is identical across hosts. Signed values round-trip
// through their two's-complement uint64 image.

#ifndef DECLSCHED_STORAGE_CODING_H_
#define DECLSCHED_STORAGE_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace declsched::storage {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline void PutFixed64(std::string* dst, int64_t v) {
  PutFixed64(dst, static_cast<uint64_t>(v));
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Raw-pointer writers for hot paths that batch many fields into one stack
/// buffer (or a pre-sized region) and append once: each returns the
/// position after the bytes written. The caller owns bounds (a varint64 is
/// at most 10 bytes, a fixed32/64 exactly 4/8).
inline char* PutFixed32Raw(char* p, uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
  return p + 4;
}

inline char* PutFixed64Raw(char* p, uint64_t v) {
  return PutFixed32Raw(PutFixed32Raw(p, static_cast<uint32_t>(v)),
                       static_cast<uint32_t>(v >> 32));
}

/// LEB128: 7 value bits per byte, high bit = "more follows". Small values
/// (the overwhelming case for ids, counts, and timestamps) take 1-2 bytes
/// instead of 8 — WAL payloads shrink ~4x, and with them the CRC and copy
/// cost on the append hot path.
inline char* PutVarint64Raw(char* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  dst->append(buf, static_cast<size_t>(PutVarint64Raw(buf, v) - buf));
}

/// Zigzag-mapped varint for signed values: -1 (e.g. Request::kNoObject, a
/// marker's client) costs one byte, not ten.
inline char* PutVarintSignedRaw(char* p, int64_t v) {
  return PutVarint64Raw(p, (static_cast<uint64_t>(v) << 1) ^
                               static_cast<uint64_t>(v >> 63));
}

inline void PutVarintSigned(std::string* dst, int64_t v) {
  char buf[10];
  dst->append(buf, static_cast<size_t>(PutVarintSignedRaw(buf, v) - buf));
}

inline uint32_t DecodeFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32;
}

/// Bounds-checked sequential reader over an encoded buffer. Every Read*
/// returns false (leaving the output untouched) instead of running off the
/// end, so decoders turn truncation into a clean error, not UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

  bool ReadFixed32(uint32_t* out) {
    if (remaining() < 4) return false;
    *out = DecodeFixed32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadFixed64(uint64_t* out) {
    if (remaining() < 8) return false;
    *out = DecodeFixed64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadFixed64(int64_t* out) {
    uint64_t u;
    if (!ReadFixed64(&u)) return false;
    *out = static_cast<int64_t>(u);
    return true;
  }

  bool ReadByte(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadVarint64(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return false;
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return true;
      }
    }
    return false;  // > 10 bytes: not a valid varint64
  }

  bool ReadVarintSigned(int64_t* out) {
    uint64_t u;
    if (!ReadVarint64(&u)) return false;
    *out = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadLengthPrefixed(std::string_view* out) {
    uint32_t len;
    if (!ReadFixed32(&len)) return false;
    if (remaining() < len) {
      pos_ -= 4;  // leave the reader where it was
      return false;
    }
    return ReadBytes(len, out);
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_CODING_H_
