#include "storage/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/string_util.h"

namespace declsched::storage {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<RecoveryResult> RunRecovery(const std::string& dir, int num_shards,
                                   const RestoreShardFn& restore_shard,
                                   const ApplyRecordFn& apply) {
  const int64_t start_us = NowMicros();
  RecoveryResult result;

  // A leftover snapshot.tmp is a snapshot that never reached its rename:
  // garbage by construction.
  if (::unlink(SnapshotTmpPath(dir).c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(StrFormat("unlink %s failed",
                                      SnapshotTmpPath(dir).c_str()));
  }

  auto snapshot = ReadSnapshot(dir);
  if (snapshot.ok()) {
    const SnapshotData& data = snapshot.ValueOrDie();
    if (static_cast<int>(data.shards.size()) != num_shards) {
      return Status::Internal(StrFormat(
          "snapshot has %d shards but the store is configured for %d; "
          "resharding a durable store is not supported",
          static_cast<int>(data.shards.size()), num_shards));
    }
    for (int s = 0; s < num_shards; ++s) {
      DS_RETURN_NOT_OK(restore_shard(s, data.shards[s]));
    }
    result.snapshot_loaded = true;
    result.snapshot_lsn = data.last_lsn;
  } else if (!snapshot.status().IsNotFound()) {
    return snapshot.status();
  }

  uint64_t max_replayed_lsn = 0;
  auto scan = ScanWal(WalPath(dir), [&](const WalRecord& record) -> Status {
    if (record.lsn <= result.snapshot_lsn) {
      // Logged before the snapshot was cut but after its last truncation
      // (crash between rename and Rotate): already in the restored rows.
      ++result.records_skipped;
      return Status::OK();
    }
    if (static_cast<int>(record.shard) >= num_shards) {
      return Status::Internal(StrFormat(
          "wal record lsn %llu targets shard %d of %d",
          static_cast<unsigned long long>(record.lsn),
          static_cast<int>(record.shard), num_shards));
    }
    DS_RETURN_NOT_OK(apply(record));
    ++result.records_replayed;
    max_replayed_lsn = record.lsn;
    return Status::OK();
  });
  DS_RETURN_NOT_OK(scan.status());
  if (scan.ValueOrDie().tail_truncated) {
    result.tail_truncated = true;
    result.tail_reason = scan.ValueOrDie().tail_reason;
    DS_RETURN_NOT_OK(TruncateWalTail(WalPath(dir), scan.ValueOrDie().valid_bytes));
  }

  result.next_lsn = std::max(result.snapshot_lsn, max_replayed_lsn) + 1;
  result.duration_us = NowMicros() - start_us;
  return result;
}

}  // namespace declsched::storage
