#include "storage/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace declsched::storage {

Status Table::ValidateRow(const Row& row) const {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("table %s: row has %zu values, schema has %d columns",
                  name_.c_str(), row.size(), schema_.num_columns()));
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (row[i].is_null()) continue;
    const ValueType expect = schema_.column(i).type;
    const ValueType got = row[i].type();
    const bool numeric_ok =
        (expect == ValueType::kInt64 || expect == ValueType::kDouble) &&
        row[i].is_numeric();
    if (got != expect && !numeric_ok) {
      return Status::TypeError(StrFormat(
          "table %s column %s: expected %s, got %s", name_.c_str(),
          schema_.column(i).name.c_str(), ValueTypeToString(expect),
          ValueTypeToString(got)));
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  DS_RETURN_NOT_OK(ValidateRow(row));
  const RowId id = static_cast<RowId>(slots_.size());
  IndexInsert(id, row);
  slots_.emplace_back(std::move(row));
  ++live_rows_;
  ++version_;
  return id;
}

Status Table::Delete(RowId id) {
  if (id < 0 || id >= static_cast<RowId>(slots_.size()) || !slots_[id].has_value()) {
    return Status::NotFound(StrFormat("table %s: row %lld not found", name_.c_str(),
                                      static_cast<long long>(id)));
  }
  DeleteInternal(id);
  return Status::OK();
}

void Table::DeleteInternal(RowId id) {
  IndexErase(id, *slots_[id]);
  slots_[id].reset();
  --live_rows_;
  ++version_;
}

Status Table::Update(RowId id, Row row) {
  if (id < 0 || id >= static_cast<RowId>(slots_.size()) || !slots_[id].has_value()) {
    return Status::NotFound(StrFormat("table %s: row %lld not found", name_.c_str(),
                                      static_cast<long long>(id)));
  }
  DS_RETURN_NOT_OK(ValidateRow(row));
  IndexErase(id, *slots_[id]);
  IndexInsert(id, row);
  slots_[id] = std::move(row);
  ++version_;
  return Status::OK();
}

const Row* Table::Get(RowId id) const {
  if (id < 0 || id >= static_cast<RowId>(slots_.size()) || !slots_[id].has_value()) {
    return nullptr;
  }
  return &*slots_[id];
}

std::vector<Row> Table::Scan() const {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(live_rows_));
  ForEach([&out](RowId, const Row& row) { out.push_back(row); });
  return out;
}

Status Table::CreateIndex(std::string_view column_name) {
  const int col = schema_.FindColumn(column_name);
  if (col < 0) {
    return Status::NotFound(StrFormat("table %s: no column named %.*s", name_.c_str(),
                                      static_cast<int>(column_name.size()),
                                      column_name.data()));
  }
  if (indexes_.count(col) > 0) {
    return Status::AlreadyExists(
        StrFormat("table %s: index on column %d exists", name_.c_str(), col));
  }
  auto& index = indexes_[col];
  ForEach([&index, col](RowId id, const Row& row) { index[row[col]].push_back(id); });
  return Status::OK();
}

bool Table::HasIndex(int column_index) const { return indexes_.count(column_index) > 0; }

Result<std::vector<RowId>> Table::IndexLookup(int column_index, const Value& key) const {
  auto it = indexes_.find(column_index);
  if (it == indexes_.end()) {
    return Status::InvalidArgument(
        StrFormat("table %s: no index on column %d", name_.c_str(), column_index));
  }
  auto hit = it->second.find(key);
  if (hit == it->second.end()) return std::vector<RowId>{};
  return hit->second;
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(id);
  }
}

void Table::IndexErase(RowId id, const Row& row) {
  for (auto& [col, index] : indexes_) {
    auto it = index.find(row[col]);
    if (it == index.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) index.erase(it);
  }
}

void Table::Clear() {
  slots_.clear();
  live_rows_ = 0;
  ++version_;
  for (auto& [col, index] : indexes_) index.clear();
}

bool Table::MaybeVacuum() {
  if (auto_vacuum_ratio_ <= 0.0) return false;
  if (slot_count() < auto_vacuum_min_slots_) return false;
  if (static_cast<double>(live_rows_) >=
      auto_vacuum_ratio_ * static_cast<double>(slot_count())) {
    return false;
  }
  Vacuum();
  return true;
}

void Table::SetAutoVacuum(double live_ratio, int64_t min_slots) {
  auto_vacuum_ratio_ = live_ratio;
  auto_vacuum_min_slots_ = min_slots;
}

void Table::Vacuum() {
  if (live_rows_ == slot_count()) return;  // nothing tombstoned
  std::vector<std::optional<Row>> compacted;
  compacted.reserve(static_cast<size_t>(live_rows_));
  for (auto& slot : slots_) {
    if (slot.has_value()) compacted.emplace_back(std::move(slot));
  }
  slots_ = std::move(compacted);
  for (auto& [col, index] : indexes_) {
    index.clear();
    for (RowId id = 0; id < static_cast<RowId>(slots_.size()); ++id) {
      index[(*slots_[id])[col]].push_back(id);
    }
  }
}

}  // namespace declsched::storage
