#include "storage/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace declsched::storage {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    if (type_ == ValueType::kInt64 && other.type_ == ValueType::kInt64) {
      return i64_ == other.i64_;
    }
    return AsDouble() == other.AsDouble();
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    return str_ == other.str_;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  // Order classes: Null < numeric < string.
  auto cls = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  const int ca = cls(*this);
  const int cb = cls(other);
  if (ca != cb) return ca < cb ? -1 : 1;
  if (ca == 0) return 0;  // both null
  if (ca == 1) {
    if (type_ == ValueType::kInt64 && other.type_ == ValueType::kInt64) {
      if (i64_ < other.i64_) return -1;
      if (i64_ > other.i64_) return 1;
      return 0;
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const int c = str_.compare(other.str_);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<int64_t>()(i64_);
    case ValueType::kDouble: {
      // Hash doubles that hold integral values identically to the int64, so
      // that numeric equality implies hash equality.
      const double d = f64_;
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(i64_);
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", f64_);
      return buf;
    }
    case ValueType::kString:
      return "'" + str_ + "'";
  }
  return "?";
}

}  // namespace declsched::storage
