#include "storage/catalog.h"

#include "common/string_util.h"

namespace declsched::storage {

std::string Catalog::Key(std::string_view name) { return ToLower(name); }

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  // Reject duplicate column names up front; every later lookup assumes
  // unambiguous columns.
  for (int i = 0; i < schema.num_columns(); ++i) {
    for (int j = i + 1; j < schema.num_columns(); ++j) {
      if (EqualsIgnoreCase(schema.column(i).name, schema.column(j).name)) {
        return Status::InvalidArgument("duplicate column name: " +
                                       schema.column(i).name);
      }
    }
  }
  const std::string key = Key(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Table* Catalog::GetTable(std::string_view name) {
  auto it = tables_.find(Key(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(Key(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(std::string_view name) {
  if (tables_.erase(Key(name)) == 0) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->name());
  return out;
}

}  // namespace declsched::storage
