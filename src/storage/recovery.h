// Crash-recovery orchestration: snapshot load + WAL tail replay.
//
// RunRecovery is deliberately ignorant of what the records *mean* — the
// caller supplies a restore function (install a shard's snapshotted tables
// into a fresh store) and an apply function (re-execute one WAL record).
// The scheduler layer binds these to RequestStore (scheduler/durability.h);
// storage-level tests bind them to plain tables. Recovery never
// deserializes derived state: after base rows are restored, the caller is
// expected to force its staleness-rebuild path to reconstruct everything
// else.

#ifndef DECLSCHED_STORAGE_RECOVERY_H_
#define DECLSCHED_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace declsched::storage {

/// What one recovery pass did — surfaced in logs and gauges.
struct RecoveryResult {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;
  int64_t records_replayed = 0;
  /// Records whose lsn <= snapshot_lsn: already folded into the snapshot
  /// (a crash between snapshot rename and WAL truncation leaves them).
  int64_t records_skipped = 0;
  bool tail_truncated = false;
  std::string tail_reason;
  /// The LSN the reopened WAL continues from.
  uint64_t next_lsn = 1;
  int64_t duration_us = 0;
};

/// Installs one shard's snapshotted tables into a fresh store.
using RestoreShardFn =
    std::function<Status(int shard, const std::vector<TableSnapshot>& tables)>;

/// Re-executes one WAL record against the store it was logged from.
using ApplyRecordFn = std::function<Status(const WalRecord& record)>;

/// Recovers a data directory: removes a stale snapshot.tmp, restores the
/// snapshot if one exists (a shard-count mismatch with `num_shards` is an
/// error — resharding a durable store is not supported), replays the WAL
/// tail, and truncates any torn tail so it cannot resurface. Works on a
/// directory with no snapshot and/or no WAL (fresh start).
Result<RecoveryResult> RunRecovery(const std::string& dir, int num_shards,
                                   const RestoreShardFn& restore_shard,
                                   const ApplyRecordFn& apply);

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_RECOVERY_H_
