// Catalog: the namespace of tables visible to the SQL engine.

#ifndef DECLSCHED_STORAGE_CATALOG_H_
#define DECLSCHED_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace declsched::storage {

/// Owns tables, keyed by case-insensitive name.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// nullptr if absent.
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(std::string_view name);
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_CATALOG_H_
