// Point-in-time snapshots of table contents, paired with the WAL.
//
// A snapshot captures the raw rows of every base relation on every shard,
// together with the last LSN whose effects the rows include. Recovery loads
// the snapshot, then replays only WAL records with lsn > last_lsn. Derived
// state (typed mirrors, lock tables, tenant accounting, compiled-IR
// operator state) is never serialized — restoring base rows and forcing the
// staleness-rebuild contract reconstructs all of it.
//
// File format (all integers little-endian; see storage/coding.h):
//
//   file   := magic "DSSNAP1\0" | u64 last_lsn | u64 body_len
//             | u32 crc32(body) | body
//   body   := u32 nshards | shard*
//   shard  := u32 ntables | table*
//   table  := lp(name) | u64 nrows | row*
//   row    := u32 ncols | value*
//   value  := u8 ValueType | payload   (i64/double: 8 bytes; string: lp)
//
// Atomicity: WriteSnapshot writes snapshot.tmp, fsyncs it, renames it over
// snapshot.bin, then fsyncs the directory. A crash at any point leaves
// either the old snapshot or the new one — never a mix. A leftover .tmp is
// removed by recovery.

#ifndef DECLSCHED_STORAGE_SNAPSHOT_H_
#define DECLSCHED_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/row.h"

namespace declsched::storage {

/// One relation's raw rows as captured from Table::Scan().
struct TableSnapshot {
  std::string name;
  std::vector<Row> rows;
};

/// Everything a snapshot file holds: per-shard table captures plus the LSN
/// up to which their contents already reflect the log.
struct SnapshotData {
  uint64_t last_lsn = 0;
  std::vector<std::vector<TableSnapshot>> shards;
};

/// Conventional file names inside a durability data directory.
std::string WalPath(const std::string& dir);
std::string SnapshotPath(const std::string& dir);
std::string SnapshotTmpPath(const std::string& dir);

/// Atomically replaces `dir`/snapshot.bin with `data` (tmp + fsync + rename
/// + directory fsync). Crash points: "snapshot:begin", "snapshot:mid-write",
/// "snapshot:pre-rename".
Status WriteSnapshot(const std::string& dir, const SnapshotData& data);

/// Loads `dir`/snapshot.bin. NotFound if no snapshot exists (fresh store);
/// any truncation or corruption is a loud Internal error — the snapshot is
/// rename-atomic, so unlike a WAL tail a bad snapshot is never expected.
Result<SnapshotData> ReadSnapshot(const std::string& dir);

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_SNAPSHOT_H_
