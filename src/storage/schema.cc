#include "storage/schema.h"

#include "common/string_util.h"

namespace declsched::storage {

int Schema::FindColumn(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return -1;
}

bool Schema::TypeCompatible(const Schema& other) const {
  if (num_columns() != other.num_columns()) return false;
  for (int i = 0; i < num_columns(); ++i) {
    const ValueType a = columns_[i].type;
    const ValueType b = other.columns_[i].type;
    const bool numeric_a = a == ValueType::kInt64 || a == ValueType::kDouble;
    const bool numeric_b = b == ValueType::kInt64 || b == ValueType::kDouble;
    if (a != b && !(numeric_a && numeric_b)) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace declsched::storage
