#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crashpoint.h"
#include "common/string_util.h"
#include "storage/coding.h"

namespace declsched::storage {

namespace {

constexpr char kWalMagic[8] = {'D', 'S', 'W', 'A', 'L', '1', '\n', '\0'};
constexpr size_t kMagicSize = sizeof(kWalMagic);
constexpr size_t kHeaderSize = 8;                  // u32 len + u32 crc
constexpr size_t kBodyPrefixSize = 8 + 1 + 1 + 2;  // lsn, type, pad, shard
constexpr uint32_t kMaxBodyLen = 64u << 20;

/// A batch this large is flushed immediately even with no durability
/// waiter — bounds buffered memory and keeps write() sizes disk-friendly.
constexpr size_t kFlushBytes = 256u << 10;
/// With records buffered but nobody waiting on durability, the flusher
/// still flushes this often — the bound on how much a crash can lose when
/// no acknowledgment was requested. Unacked work has no durability
/// contract, so this trades a few milliseconds of best-effort loss window
/// for staying off the disk (and the CPU) while demand is absent; anything
/// acked still flushes immediately via the demand conditions.
constexpr auto kIdleFlushInterval = std::chrono::milliseconds(5);
/// Preallocation chunk: the log grows by writing this many real zeros (one
/// fsync to persist size + allocation), after which every group commit
/// overwrites allocated blocks and fdatasync() never touches metadata or
/// the filesystem journal. A zero tail reads as a torn record, which the
/// recovery scan already truncates — preallocation costs nothing in crash
/// semantics.
constexpr int64_t kPreallocChunk = 1 << 20;

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(StrFormat("%s %s: %s", what, path.c_str(),
                                    std::strerror(errno)));
}

Status WriteFully(int fd, const char* data, size_t len,
                  const std::string& path) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time CRC-32C
// table; table[k][b] extends it by k more zero bytes, so eight lookups
// advance the CRC over eight input bytes at once. Produces bit-identical
// values to the one-byte loop (same Castagnoli polynomial the x86 crc32
// instruction implements).
const uint32_t (*Crc32Tables())[256] {
  static uint32_t tables[8][256];
  static const bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      tables[0][i] = c;
    }
    for (int t = 1; t < 8; ++t) {
      for (uint32_t i = 0; i < 256; ++i) {
        tables[t][i] =
            (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xffu];
      }
    }
    return true;
  }();
  (void)initialized;
  return tables;
}

uint32_t Crc32Soft(const void* data, size_t len, uint32_t c) {
  const uint32_t(*t)[256] = Crc32Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
        t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
#endif
  while (len-- > 0) {
    c = t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) || defined(__i386__)
// The SSE4.2 crc32 instruction computes exactly this reflected CRC-32C:
// one 8-byte step per cycle-ish, no tables, no cache footprint on the
// append hot path. Selected once at startup via cpuid; the software
// slicing path is the byte-identical fallback.
__attribute__((target("sse4.2"))) uint32_t Crc32Hw(const void* data,
                                                   size_t len, uint32_t c) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t c64 = c;
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c64 = __builtin_ia32_crc32di(c64, chunk);
    p += 8;
    len -= 8;
  }
  c = static_cast<uint32_t>(c64);
  while (len-- > 0) {
    c = __builtin_ia32_crc32qi(c, *p++);
  }
  return c;
}

bool HaveCrc32Hw() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#else
uint32_t Crc32Hw(const void*, size_t, uint32_t c) { return c; }
bool HaveCrc32Hw() { return false; }
#endif

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t c = seed ^ 0xffffffffu;
  const uint32_t out =
      HaveCrc32Hw() ? Crc32Hw(data, len, c) : Crc32Soft(data, len, c);
  return out ^ 0xffffffffu;
}

uint32_t Crc32ForTest(const void* data, size_t len, uint32_t seed,
                      bool hardware) {
  const uint32_t c = seed ^ 0xffffffffu;
  const uint32_t out = hardware && HaveCrc32Hw() ? Crc32Hw(data, len, c)
                                                 : Crc32Soft(data, len, c);
  return out ^ 0xffffffffu;
}

Wal::Wal(const Options& options) : options_(options) {
  if (options_.metrics != nullptr) {
    auto* m = options_.metrics;
    m_appends_ = m->GetCounter("wal_appends_total", "WAL records appended");
    m_fsyncs_ = m->GetCounter("wal_fsyncs_total", "WAL group-commit fsyncs");
    m_bytes_ = m->GetCounter("wal_bytes_total", "WAL bytes appended");
    m_batch_ = m->GetHistogram("wal_group_commit_batch",
                               "Records per group-commit fsync batch", {},
                               {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const Options& options,
                                       uint64_t next_lsn) {
  if (options.path.empty()) {
    return Status::InvalidArgument("Wal::Open needs a path");
  }
  std::unique_ptr<Wal> wal(new Wal(options));
  // Not O_APPEND: with preallocation the file extends past the logical end,
  // so the writer tracks its own position (sequential write() after one
  // initial seek).
  wal->fd_ = ::open(options.path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (wal->fd_ < 0) return ErrnoStatus("open", options.path);
  struct stat st;
  if (::fstat(wal->fd_, &st) != 0) return ErrnoStatus("fstat", options.path);
  if (st.st_size < static_cast<off_t>(kMagicSize)) {
    // Fresh file, or a creation torn before the magic landed.
    if (::ftruncate(wal->fd_, 0) != 0) {
      return ErrnoStatus("ftruncate", options.path);
    }
    DS_RETURN_NOT_OK(WriteFully(wal->fd_, kWalMagic, kMagicSize, options.path));
    if (options.fsync && ::fsync(wal->fd_) != 0) {
      return ErrnoStatus("fsync", options.path);
    }
    wal->logical_end_ = static_cast<int64_t>(kMagicSize);
  } else {
    // Recovery scans and truncates any torn (or preallocated-zero) tail
    // before reopening, and a clean Close trims exactly: the current size
    // IS the logical end.
    wal->logical_end_ = static_cast<int64_t>(st.st_size);
    if (::lseek(wal->fd_, wal->logical_end_, SEEK_SET) < 0) {
      return ErrnoStatus("lseek", options.path);
    }
  }
  wal->allocated_end_ = wal->logical_end_;
  if (next_lsn < 1) next_lsn = 1;
  wal->next_lsn_ = next_lsn;
  wal->head_lsn_.store(next_lsn - 1, std::memory_order_release);
  wal->durable_lsn_.store(next_lsn - 1, std::memory_order_release);
  wal->flusher_ = std::thread([w = wal.get()] { w->FlusherLoop(); });
  return wal;
}

Wal::~Wal() { Close(); }

uint64_t Wal::Append(uint8_t type, uint16_t shard, std::string_view payload) {
  CrashPoint("wal:pre-append");
  const size_t body_len = kBodyPrefixSize + payload.size();
  uint64_t lsn;
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lsn = next_lsn_++;
    // Encode in place with one resize and raw stores: body first, then the
    // header once the CRC over the in-buffer body is known. One copy, no
    // per-record allocation (the buffer keeps its capacity across swaps).
    const size_t header_pos = buffer_.size();
    buffer_.resize(header_pos + kHeaderSize + body_len);
    char* base = &buffer_[header_pos];
    char* b = PutFixed64Raw(base + kHeaderSize, lsn);
    *b++ = static_cast<char>(type);
    *b++ = '\0';  // reserved
    *b++ = static_cast<char>(shard & 0xff);
    *b++ = static_cast<char>((shard >> 8) & 0xff);
    std::memcpy(b, payload.data(), payload.size());
    const uint32_t crc = Crc32(base + kHeaderSize, body_len);
    PutFixed32Raw(PutFixed32Raw(base, static_cast<uint32_t>(body_len)), crc);
    ++buffered_records_;
    buffered_lsn_ = lsn;
    head_lsn_.store(lsn, std::memory_order_release);
    // Wake the parked flusher only when this append changes its mind:
    // buffer went empty -> non-empty (it may be in the indefinite wait), the
    // batch crossed the size threshold, or durability demand exists. A bare
    // append with the flusher already pacing its idle timeout rides along in
    // the next batch for free — and the signaled flag makes the wake
    // edge-triggered, so a burst of appends behind one park costs one futex
    // syscall, not one per record.
    wake = flusher_waiting_ && !flusher_signaled_ &&
           (header_pos == 0 || buffer_.size() >= kFlushBytes ||
            sync_waiters_ > 0 || !waiters_.empty());
    if (wake) flusher_signaled_ = true;
  }
  const int64_t record_bytes = static_cast<int64_t>(kHeaderSize + body_len);
  appended_bytes_.fetch_add(record_bytes, std::memory_order_relaxed);
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (m_appends_ != nullptr) {
    m_appends_->Increment();
    m_bytes_->Increment(record_bytes);
  }
  if (wake) work_cv_.notify_one();
  CrashPoint("wal:post-append");
  return lsn;
}

Status Wal::EnsureAllocated(int64_t need) {
  if (need <= allocated_end_) return Status::OK();
  int64_t target = allocated_end_ + kPreallocChunk;
  if (target < need) target = need;
  // Real zeros, not fallocate/ftruncate holes: delayed allocation would put
  // the extent bookkeeping right back into the fdatasync path.
  static const std::string zeros(1 << 16, '\0');
  int64_t off = allocated_end_;
  while (off < target) {
    const size_t n = static_cast<size_t>(std::min<int64_t>(
        target - off, static_cast<int64_t>(zeros.size())));
    const ssize_t w = ::pwrite(fd_, zeros.data(), n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", options_.path);
    }
    off += w;
  }
  // One full fsync per chunk persists the new size and allocation; every
  // group commit inside the chunk then gets by with pure-data fdatasync.
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", options_.path);
  allocated_end_ = target;
  return Status::OK();
}

Status Wal::WriteAndSync(const std::string& chunk, int64_t records) {
  if (options_.fsync) {
    DS_RETURN_NOT_OK(
        EnsureAllocated(logical_end_ + static_cast<int64_t>(chunk.size())));
  }
  // Torn-tail injection: write all but the last few bytes, then die. _exit
  // alone cannot shear a record (completed write()s survive the process),
  // so the mid-record point models a mid-write power cut instead.
  if (CrashPointWillTrigger("wal:mid-record") && chunk.size() > 5) {
    const Status torn =
        WriteFully(fd_, chunk.data(), chunk.size() - 5, options_.path);
    (void)torn;
    CrashPoint("wal:mid-record");  // does not return
  }
  DS_RETURN_NOT_OK(WriteFully(fd_, chunk.data(), chunk.size(), options_.path));
  logical_end_ += static_cast<int64_t>(chunk.size());
  CrashPoint("wal:post-write-pre-fsync");
  if (options_.fsync) {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fsync", options_.path);
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  if (m_fsyncs_ != nullptr) {
    m_fsyncs_->Increment();
    m_batch_->Record(records);
  }
  CrashPoint("wal:post-fsync");
  return Status::OK();
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  // Flush *now* (rather than letting the batch grow) when shutting down,
  // the batch is already large, or someone is blocked on durability — a
  // Sync caller or a registered WhenDurable acknowledgment.
  const auto must_flush = [this] {
    return stop_ || buffer_.size() >= kFlushBytes || sync_waiters_ > 0 ||
           !waiters_.empty();
  };
  while (true) {
    flusher_waiting_ = true;
    work_cv_.wait(lock, [&] { return stop_ || !buffer_.empty(); });
    // Re-arm the edge-triggered wake before the idle window: a demand that
    // arrives while we pace below must deliver its own notify.
    flusher_signaled_ = false;
    if (!must_flush()) {
      // Records buffered, nobody waiting: give concurrent appenders a
      // window to join the group commit, but flush at the timeout so even
      // unacknowledged work reaches disk promptly.
      work_cv_.wait_for(lock, kIdleFlushInterval, must_flush);
    }
    flusher_waiting_ = false;
    // A notify that landed during the idle window set the flag after the
    // re-arm above; whatever it signaled is being honored right now, so
    // clear it — a stale flag here would suppress every future wake.
    flusher_signaled_ = false;
    if (buffer_.empty()) {
      if (stop_) return;
      continue;
    }
    // Double buffer: take the batch, hand appenders back a buffer that
    // still has a batch's worth of capacity. clear() keeps capacity, so
    // steady state runs allocation-free on both sides.
    spare_.clear();
    spare_.swap(buffer_);
    const int64_t records = buffered_records_;
    buffered_records_ = 0;
    const uint64_t target = buffered_lsn_;
    lock.unlock();
    const Status written = WriteAndSync(spare_, records);
    std::vector<std::function<void()>> ready;
    lock.lock();
    if (!written.ok()) {
      if (io_error_.ok()) io_error_ = written;
      durable_cv_.notify_all();
      continue;  // durability stops advancing; Sync reports the error
    }
    durable_lsn_.store(target, std::memory_order_release);
    for (size_t i = 0; i < waiters_.size();) {
      if (waiters_[i].first <= target) {
        ready.push_back(std::move(waiters_[i].second));
        waiters_[i] = std::move(waiters_.back());
        waiters_.pop_back();
      } else {
        ++i;
      }
    }
    durable_cv_.notify_all();
    lock.unlock();
    for (auto& fn : ready) fn();
    lock.lock();
  }
}

Status Wal::Sync(uint64_t lsn) {
  if (lsn == 0) return Status::OK();
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  ++sync_waiters_;
  if (flusher_waiting_ && !flusher_signaled_) {
    flusher_signaled_ = true;
    work_cv_.notify_one();  // durability demand: flush without the idle delay
  }
  durable_cv_.wait(lock, [&] {
    return durable_lsn_.load(std::memory_order_relaxed) >= lsn ||
           !io_error_.ok() || (stop_ && buffer_.empty());
  });
  --sync_waiters_;
  if (durable_lsn_.load(std::memory_order_relaxed) >= lsn) return Status::OK();
  if (!io_error_.ok()) return io_error_;
  return Status::Internal("wal closed before lsn became durable");
}

void Wal::WhenDurable(uint64_t lsn, std::function<void()> fn) {
  if (lsn == 0 || durable_lsn_.load(std::memory_order_acquire) >= lsn) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: the flusher may have advanced past lsn
    // between the fast-path load and here, and would then never revisit
    // this waiter.
    if (durable_lsn_.load(std::memory_order_relaxed) < lsn) {
      waiters_.emplace_back(lsn, std::move(fn));
      // An ack is pending: flush without the idle delay. Edge-triggered
      // like Append — while the flusher is mid-flush it will re-check
      // must_flush() before parking, so no notify is needed then.
      if (flusher_waiting_ && !flusher_signaled_) {
        flusher_signaled_ = true;
        work_cv_.notify_one();
      }
      return;
    }
  }
  fn();
}

Status Wal::Rotate() {
  DS_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> lock(mu_);
  if (!io_error_.ok()) return io_error_;
  if (::ftruncate(fd_, static_cast<off_t>(kMagicSize)) != 0) {
    return ErrnoStatus("ftruncate", options_.path);
  }
  if (::lseek(fd_, static_cast<off_t>(kMagicSize), SEEK_SET) < 0) {
    return ErrnoStatus("lseek", options_.path);
  }
  logical_end_ = static_cast<int64_t>(kMagicSize);
  allocated_end_ = logical_end_;  // truncation dropped the preallocation too
  if (options_.fsync && ::fsync(fd_) != 0) {
    return ErrnoStatus("fsync", options_.path);
  }
  CrashPoint("wal:post-truncate");
  return Status::OK();
}

Status Wal::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0 && !flusher_.joinable()) return Status::OK();
    stop_ = true;
  }
  work_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  Status result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    result = io_error_;
    waiters_.clear();  // never fire acknowledgments that were not made durable
    if (fd_ >= 0) {
      if (result.ok() && allocated_end_ > logical_end_) {
        // Trim the unused preallocation so a clean close leaves an exact
        // file (Open takes the size as the logical end).
        if (::ftruncate(fd_, static_cast<off_t>(logical_end_)) != 0) {
          result = ErrnoStatus("ftruncate", options_.path);
        } else if (options_.fsync && ::fsync(fd_) != 0) {
          result = ErrnoStatus("fsync", options_.path);
        } else {
          allocated_end_ = logical_end_;
        }
      }
      ::close(fd_);
      fd_ = -1;
    }
  }
  durable_cv_.notify_all();
  return result;
}

Result<WalScanStats> ScanWal(
    const std::string& path,
    const std::function<Status(const WalRecord& record)>& fn) {
  WalScanStats stats;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log yet: zero records
    return ErrnoStatus("open", path);
  }
  std::string data;
  {
    char buf[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status read_error = ErrnoStatus("read", path);
        ::close(fd);
        return read_error;
      }
      if (n == 0) break;
      data.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);

  if (data.empty()) return stats;  // created but never initialized
  if (data.size() < kMagicSize) {
    stats.tail_truncated = true;
    stats.tail_reason = "torn file magic";
    stats.valid_bytes = 0;
    return stats;
  }
  if (std::memcmp(data.data(), kWalMagic, kMagicSize) != 0) {
    return Status::Internal(path + " is not a WAL file (bad magic)");
  }

  size_t pos = kMagicSize;
  stats.valid_bytes = pos;
  uint64_t prev_lsn = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderSize) {
      stats.tail_truncated = true;
      stats.tail_reason = "torn record header";
      return stats;
    }
    const uint32_t body_len = DecodeFixed32(data.data() + pos);
    const uint32_t crc = DecodeFixed32(data.data() + pos + 4);
    if (body_len < kBodyPrefixSize || body_len > kMaxBodyLen) {
      stats.tail_truncated = true;
      stats.tail_reason = "bad record length";
      return stats;
    }
    if (data.size() - pos - kHeaderSize < body_len) {
      stats.tail_truncated = true;
      stats.tail_reason = "torn record body";
      return stats;
    }
    const char* body = data.data() + pos + kHeaderSize;
    if (Crc32(body, body_len) != crc) {
      stats.tail_truncated = true;
      stats.tail_reason = "crc mismatch";
      return stats;
    }
    WalRecord record;
    record.lsn = DecodeFixed64(body);
    record.type = static_cast<uint8_t>(body[8]);
    record.shard = static_cast<uint16_t>(static_cast<uint8_t>(body[10])) |
                   static_cast<uint16_t>(static_cast<uint8_t>(body[11])) << 8;
    record.payload.assign(body + kBodyPrefixSize, body_len - kBodyPrefixSize);
    if (record.lsn <= prev_lsn) {
      return Status::Internal(
          StrFormat("%s: lsn %llu not increasing (prev %llu)", path.c_str(),
                    static_cast<unsigned long long>(record.lsn),
                    static_cast<unsigned long long>(prev_lsn)));
    }
    prev_lsn = record.lsn;
    DS_RETURN_NOT_OK(fn(record));
    ++stats.records;
    stats.last_lsn = record.lsn;
    pos += kHeaderSize + body_len;
    stats.valid_bytes = pos;
  }
  return stats;
}

Status TruncateWalTail(const std::string& path, uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  Status result;
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    result = ErrnoStatus("ftruncate", path);
  } else if (valid_bytes < kMagicSize) {
    // Even the magic was torn: reinitialize the header.
    if (::ftruncate(fd, 0) != 0 ||
        ::lseek(fd, 0, SEEK_SET) < 0) {
      result = ErrnoStatus("ftruncate", path);
    } else {
      result = WriteFully(fd, kWalMagic, kMagicSize, path);
    }
  }
  if (result.ok() && ::fsync(fd) != 0) result = ErrnoStatus("fsync", path);
  ::close(fd);
  return result;
}

}  // namespace declsched::storage
