// Relation schemas: ordered, typed, named columns.

#ifndef DECLSCHED_STORAGE_SCHEMA_H_
#define DECLSCHED_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"

namespace declsched::storage {

struct ColumnDef {
  std::string name;
  ValueType type;
};

/// Ordered column list. Column-name lookup is case-insensitive (SQL
/// identifiers are folded); duplicate names are rejected at table creation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with this (case-insensitive) name, or -1.
  int FindColumn(std::string_view name) const;

  /// True if both schemas have the same column count and types (names may
  /// differ) — the compatibility rule for set operations.
  bool TypeCompatible(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_SCHEMA_H_
