// Write-ahead log with group commit.
//
// Record framing (all integers little-endian; see storage/coding.h):
//
//   file     := magic "DSWAL1\n\0" record*
//   record   := u32 body_len | u32 crc32(body) | body
//   body     := u64 lsn | u8 type | u8 reserved | u16 shard | payload
//
// The CRC covers the whole body, so a torn or bit-flipped tail is detected
// and the log remains readable up to the last intact record (ScanWal stops
// cleanly and reports where; recovery truncates there).
//
// Group commit: Append() assigns the next LSN, encodes the record into an
// in-memory batch buffer, and returns — it never touches the file. A
// dedicated flusher thread swaps the buffer out, write()s it, fsync()s
// once, then publishes the batch's highest LSN as durable_lsn(). The
// flusher is demand-driven: it flushes immediately when a Sync caller or
// WhenDurable acknowledgment is waiting (or the batch is large), and
// otherwise lets appends accumulate for a ~1ms window so plain appends
// cost no wakeup at all and batches stay wide. Writers
// that need durability block on Sync(lsn) (a commit-sequence-number wait)
// or register a WhenDurable callback; many concurrent appends share one
// fsync. An I/O error is sticky: the WAL stops advancing durability and
// every Sync from then on returns the error.
//
// Thread-safety: Append/Sync/WhenDurable and the accessors are safe from
// any thread. Flush/Rotate/Close require that no Append runs concurrently
// (checkpoint and shutdown call them with the scheduler parked).

#ifndef DECLSCHED_STORAGE_WAL_H_
#define DECLSCHED_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "observability/metrics.h"

namespace declsched::storage {

/// CRC-32C (Castagnoli polynomial — what the x86 crc32 instruction
/// implements; hardware-accelerated when available, software slicing-by-8
/// otherwise, bit-identical either way). `seed` chains partial
/// computations: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Forces the software (hardware=false) or hardware (hardware=true, falls
/// back to software where unsupported) path — exists so a test can pin the
/// two implementations against each other.
uint32_t Crc32ForTest(const void* data, size_t len, uint32_t seed,
                      bool hardware);

/// One decoded WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  uint8_t type = 0;
  uint16_t shard = 0;
  std::string payload;
};

class Wal {
 public:
  struct Options {
    std::string path;
    /// fsync after each batch write. Off only for benches that isolate the
    /// in-memory cost; without it "durable" means "in the page cache".
    bool fsync = true;
    /// Optional wal_* metrics (appends, fsyncs, bytes, batch-size
    /// histogram). The registry must outlive the Wal.
    observability::MetricsRegistry* metrics = nullptr;
  };

  /// Opens (creating if absent) the log for appending and starts the
  /// flusher thread. `next_lsn` continues the sequence recovery computed
  /// (1 for a fresh log). A file shorter than the magic (torn creation) is
  /// reinitialized.
  static Result<std::unique_ptr<Wal>> Open(const Options& options,
                                           uint64_t next_lsn);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record; returns its LSN. Encodes straight into the batch
  /// buffer and wakes the flusher if it is parked — never blocks on I/O,
  /// never allocates in steady state.
  uint64_t Append(uint8_t type, uint16_t shard, std::string_view payload);

  /// Blocks until durable_lsn() >= lsn (or the sticky I/O error). lsn 0
  /// returns immediately: "nothing to wait for".
  Status Sync(uint64_t lsn);

  /// Runs `fn` once lsn is durable: inline if it already is, else from the
  /// flusher thread after the covering fsync. `fn` must be thread-safe and
  /// cheap. Callbacks are dropped (never invoked) if the WAL hits a sticky
  /// I/O error or is closed first — an acknowledgment that never becomes
  /// durable must never fire.
  void WhenDurable(uint64_t lsn, std::function<void()> fn);

  /// Sync up to everything appended so far.
  Status Flush() { return Sync(head_lsn()); }

  /// Truncates the log back to the file magic after a snapshot made its
  /// records redundant. LSNs keep counting — they are a log-lifetime
  /// sequence, not a file offset. Requires no concurrent Append.
  Status Rotate();

  /// Flushes, stops the flusher thread, closes the fd. Idempotent; the
  /// destructor calls it. Requires no concurrent Append.
  Status Close();

  uint64_t head_lsn() const { return head_lsn_.load(std::memory_order_acquire); }
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  /// Bytes appended since Open (monotone across Rotate) — the size signal
  /// checkpoint policies trigger on.
  int64_t appended_bytes() const {
    return appended_bytes_.load(std::memory_order_relaxed);
  }
  int64_t fsync_count() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }
  int64_t append_count() const {
    return appends_.load(std::memory_order_relaxed);
  }

 private:
  explicit Wal(const Options& options);

  void FlusherLoop();
  Status WriteAndSync(const std::string& chunk, int64_t records);
  /// Extends the file with real zeros (in kPreallocChunk steps, one fsync
  /// each) so group commits overwrite allocated blocks and fdatasync stays
  /// metadata-free. Flusher thread only.
  Status EnsureAllocated(int64_t need);

  Options options_;
  int fd_ = -1;
  /// End of encoded records in the file; bytes beyond it up to
  /// allocated_end_ are preallocated zeros. Flusher thread only (Open /
  /// Rotate / Close touch them with the flusher quiescent).
  int64_t logical_end_ = 0;
  int64_t allocated_end_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;     ///< wakes the flusher
  std::condition_variable durable_cv_;  ///< wakes Sync waiters
  std::string buffer_;                  ///< encoded records awaiting write
  /// The flusher's side of the double buffer: batches swap into it (both
  /// strings keep their capacity, so steady state never reallocates) and
  /// it is written out with mu_ released. Flusher thread only.
  std::string spare_;
  /// True while the flusher is parked on work_cv_ — appenders skip the
  /// notify (a futex syscall) whenever the flusher is already draining.
  bool flusher_waiting_ = false;
  /// Edge-trigger for the wake: the first notifier behind a park sets it
  /// (and pays the one futex syscall); the flusher clears it on wake. A
  /// burst of appends or acknowledgment registrations costs one notify.
  bool flusher_signaled_ = false;
  /// Sync() callers currently blocked. Nonzero means durability demand:
  /// the flusher flushes immediately instead of pacing its idle timeout.
  int sync_waiters_ = 0;
  int64_t buffered_records_ = 0;
  uint64_t buffered_lsn_ = 0;  ///< highest lsn in buffer_
  uint64_t next_lsn_ = 1;
  bool stop_ = false;
  Status io_error_;  ///< sticky; set by the first failed write/fsync
  /// Durability callbacks, unordered; drained after each fsync.
  std::vector<std::pair<uint64_t, std::function<void()>>> waiters_;

  std::atomic<uint64_t> head_lsn_{0};
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<int64_t> appended_bytes_{0};
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> fsyncs_{0};

  std::thread flusher_;

  observability::Counter* m_appends_ = nullptr;
  observability::Counter* m_fsyncs_ = nullptr;
  observability::Counter* m_bytes_ = nullptr;
  observability::HistogramMetric* m_batch_ = nullptr;
};

/// What one ScanWal pass over a log file found.
struct WalScanStats {
  uint64_t records = 0;
  uint64_t last_lsn = 0;
  /// A record with a short/oversized header, short body, or CRC mismatch
  /// ended the scan early (all earlier records were intact).
  bool tail_truncated = false;
  std::string tail_reason;
  /// File prefix (magic included) covered by intact records — what
  /// TruncateWalTail cuts back to.
  uint64_t valid_bytes = 0;
};

/// Reads every intact record in order, invoking `fn` for each; stops
/// cleanly at the first torn/corrupt one (see WalScanStats). A missing or
/// empty file scans as zero records. An error from `fn` aborts the scan
/// and is returned.
Result<WalScanStats> ScanWal(
    const std::string& path,
    const std::function<Status(const WalRecord& record)>& fn);

/// Cuts a log back to `valid_bytes` (from WalScanStats) so a torn tail is
/// gone for good, then fsyncs. Rewrites the magic if even that was torn.
Status TruncateWalTail(const std::string& path, uint64_t valid_bytes);

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_WAL_H_
