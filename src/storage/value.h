// Dynamically typed scalar value: the cell type of every relation in the
// system (user tables, the scheduler's request/history relations, SQL and
// Datalog intermediate results).

#ifndef DECLSCHED_STORAGE_VALUE_H_
#define DECLSCHED_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace declsched::storage {

enum class ValueType : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

const char* ValueTypeToString(ValueType type);

/// Immutable tagged scalar. Int64/Double compare numerically with each other;
/// Null is ordered before everything (a total order used by ORDER BY and
/// DISTINCT — SQL three-valued comparison semantics live in the expression
/// evaluator, not here).
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull), i64_(0), f64_(0) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.i64_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.f64_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.str_ = std::move(v);
    return out;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble;
  }

  int64_t AsInt64() const { return i64_; }
  double AsDouble() const { return type_ == ValueType::kInt64 ? static_cast<double>(i64_) : f64_; }
  const std::string& AsString() const { return str_; }

  /// Strict equality: same type class (numeric types are one class) and same
  /// value. Null equals Null here (used by DISTINCT / set operations).
  bool Equals(const Value& other) const;

  /// Total order: Null < numerics (by value) < strings (lexicographic).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  size_t Hash() const;

  /// SQL-literal-ish rendering ("NULL", 42, 1.5, 'text').
  std::string ToString() const;

 private:
  ValueType type_;
  int64_t i64_;
  double f64_;
  std::string str_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

}  // namespace declsched::storage

#endif  // DECLSCHED_STORAGE_VALUE_H_
