#include "net/http.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"
#include "net/json.h"

namespace declsched::net {

namespace {

/// Finds the end of the header block: returns the offset one past the blank
/// line, or npos. Tolerates bare-LF line endings.
size_t FindHeaderEnd(const std::string& buffer) {
  const size_t crlf = buffer.find("\r\n\r\n");
  const size_t lf = buffer.find("\n\n");
  if (crlf == std::string::npos) {
    return lf == std::string::npos ? std::string::npos : lf + 2;
  }
  if (lf != std::string::npos && lf + 2 < crlf + 4) return lf + 2;
  return crlf + 4;
}

std::string_view TrimView(std::string_view s) { return Trim(s); }

/// Splits a header block (without the trailing blank line) into lines.
std::vector<std::string_view> HeaderLines(std::string_view block) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < block.size()) {
    size_t end = block.find('\n', start);
    if (end == std::string_view::npos) end = block.size();
    std::string_view line = block.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
    start = end + 1;
  }
  return lines;
}

const std::string* FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, name)) return &v;
  }
  return nullptr;
}

/// Parses `Header: value` lines into `headers`; false on a malformed line.
bool ParseHeaderFields(
    const std::vector<std::string_view>& lines, size_t first,
    std::vector<std::pair<std::string, std::string>>* headers) {
  for (size_t i = first; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    headers->emplace_back(std::string(TrimView(line.substr(0, colon))),
                          std::string(TrimView(line.substr(colon + 1))));
  }
  return true;
}

/// Content-Length, or -1 when absent, or -2 when malformed/duplicated.
int64_t ContentLengthOf(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string* value = FindHeader(headers, "Content-Length");
  if (value == nullptr) return -1;
  if (value->empty() ||
      value->find_first_not_of("0123456789") != std::string::npos) {
    return -2;
  }
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(value->c_str(), &end, 10);
  if (errno != 0 || end != value->c_str() + value->size() || n < 0) return -2;
  return n;
}

bool KeepAliveOf(const std::string& version,
                 const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string* conn = FindHeader(headers, "Connection");
  if (conn != nullptr) {
    if (EqualsIgnoreCase(*conn, "close")) return false;
    if (EqualsIgnoreCase(*conn, "keep-alive")) return true;
  }
  return version != "HTTP/1.0";
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  return FindHeader(headers, name);
}

std::string HttpRequest::Path() const {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::Query(std::string_view key) const {
  const size_t q = target.find('?');
  if (q == std::string::npos) return "";
  std::string_view rest = std::string_view(target).substr(q + 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return "";
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

const std::string* HttpResponse::Header(std::string_view name) const {
  return FindHeader(headers, name);
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' +
                    (reason.empty() ? HttpReasonPhrase(status) : reason.c_str()) +
                    "\r\n";
  bool have_type = false;
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, "Content-Type")) have_type = true;
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  if (!have_type && !body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::Error(int status, std::string_view code,
                                 std::string_view message) {
  std::string body = "{\"error\":";
  body += JsonQuote(code);
  body += ",\"message\":";
  body += JsonQuote(message);
  body += '}';
  return Json(status, std::move(body));
}

HttpRequestParser::Outcome HttpRequestParser::Fail(int status,
                                                   std::string message) {
  error_status_ = status;
  error_message_ = std::move(message);
  return Outcome::kError;
}

HttpRequestParser::Outcome HttpRequestParser::Next(HttpRequest* out) {
  if (error_status_ != 0) return Outcome::kError;
  const size_t header_end = FindHeaderEnd(buffer_);
  if (header_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds limit");
    }
    return Outcome::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes) {
    return Fail(431, "header block exceeds limit");
  }

  const std::vector<std::string_view> lines =
      HeaderLines(std::string_view(buffer_).substr(0, header_end));
  if (lines.empty()) return Fail(400, "empty request");

  // Request line: METHOD SP target SP HTTP/x.y
  const std::string_view request_line = lines[0];
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  HttpRequest request;
  request.method = ToUpper(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/') {
    return Fail(400, "malformed request line");
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Fail(505, "unsupported HTTP version");
  }
  if (!ParseHeaderFields(lines, 1, &request.headers)) {
    return Fail(400, "malformed header line");
  }
  if (request.Header("Transfer-Encoding") != nullptr) {
    return Fail(501, "transfer encodings not implemented");
  }

  const int64_t content_length = ContentLengthOf(request.headers);
  if (content_length == -2) return Fail(400, "malformed Content-Length");
  const size_t body_bytes =
      content_length < 0 ? 0 : static_cast<size_t>(content_length);
  if (body_bytes > limits_.max_body_bytes) {
    return Fail(413, "body exceeds limit");
  }
  if (buffer_.size() - header_end < body_bytes) return Outcome::kNeedMore;

  request.body = buffer_.substr(header_end, body_bytes);
  request.keep_alive = KeepAliveOf(request.version, request.headers);
  buffer_.erase(0, header_end + body_bytes);
  *out = std::move(request);
  return Outcome::kRequest;
}

const std::string* HttpResponseParser::Response::Header(
    std::string_view name) const {
  return FindHeader(headers, name);
}

HttpResponseParser::Outcome HttpResponseParser::Next(Response* out) {
  const size_t header_end = FindHeaderEnd(buffer_);
  if (header_end == std::string::npos) return Outcome::kNeedMore;

  const std::vector<std::string_view> lines =
      HeaderLines(std::string_view(buffer_).substr(0, header_end));
  if (lines.empty()) {
    error_message_ = "empty response";
    return Outcome::kError;
  }
  // Status line: HTTP/x.y CODE reason...
  const std::string_view status_line = lines[0];
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || status_line.substr(0, 5) != "HTTP/") {
    error_message_ = "malformed status line";
    return Outcome::kError;
  }
  Response response;
  response.status =
      std::atoi(std::string(status_line.substr(sp1 + 1, 3)).c_str());
  if (response.status < 100 || response.status > 599) {
    error_message_ = "malformed status code";
    return Outcome::kError;
  }
  if (!ParseHeaderFields(lines, 1, &response.headers)) {
    error_message_ = "malformed header line";
    return Outcome::kError;
  }
  const int64_t content_length = ContentLengthOf(response.headers);
  if (content_length < 0) {
    error_message_ = "response without Content-Length";
    return Outcome::kError;
  }
  const size_t body_bytes = static_cast<size_t>(content_length);
  if (buffer_.size() - header_end < body_bytes) return Outcome::kNeedMore;

  response.body = buffer_.substr(header_end, body_bytes);
  const std::string version(lines[0].substr(0, sp1));
  response.keep_alive = KeepAliveOf(version, response.headers);
  buffer_.erase(0, header_end + body_bytes);
  *out = std::move(response);
  return Outcome::kResponse;
}

}  // namespace declsched::net
