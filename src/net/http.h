// HTTP/1.1 message types and incremental parsers.
//
// The request parser is the byte-level front of the reactor server: feed it
// whatever arrived on the socket (any fragmentation) and pull complete
// requests out one at a time — keep-alive pipelining falls out of the
// pull-in-a-loop usage. Limits are enforced during parsing, before any
// allocation proportional to the claimed sizes: oversized headers map to
// 431, oversized bodies to 413, Transfer-Encoding (unimplemented) to 501.
// The response parser is the client half, used by the load generator.
//
// Dialect: HTTP/1.0 and 1.1, Content-Length framing only (no chunked
// encoding), CRLF line endings with bare-LF tolerance.

#ifndef DECLSCHED_NET_HTTP_H_
#define DECLSCHED_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace declsched::net {

struct HttpRequest {
  std::string method;   // uppercase: GET, POST, ...
  std::string target;   // request-target as sent: /v1/stats?verbose=1
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection survives this exchange (HTTP/1.1 default, Connection
  /// header honored both ways).
  bool keep_alive = true;

  /// First header with this name (case-insensitive), or nullptr.
  const std::string* Header(std::string_view name) const;
  /// `target` up to the '?'.
  std::string Path() const;
  /// Value of a `?key=value` query parameter ("" if absent; no %-decoding —
  /// the API's parameters are identifiers).
  std::string Query(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason;  // filled from status if empty
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Full wire form; sets Content-Length, Connection, and a default
  /// Content-Type (application/json) unless already present.
  std::string Serialize(bool keep_alive) const;

  const std::string* Header(std::string_view name) const;

  /// JSON body response.
  static HttpResponse Json(int status, std::string body);
  /// Error with the API's JSON error shape: {"error": code, "message": m}.
  static HttpResponse Error(int status, std::string_view code,
                            std::string_view message);
};

const char* HttpReasonPhrase(int status);

/// Incremental request parser. Feed() bytes as they arrive, then call
/// Next() in a loop: each kRequest fills `out` with one complete request
/// (pipelined requests come out back to back); kNeedMore means feed more
/// bytes; kError is terminal for the connection — respond with
/// error_status() and close.
class HttpRequestParser {
 public:
  struct Limits {
    size_t max_header_bytes = 16 * 1024;
    size_t max_body_bytes = 1 << 20;
  };

  enum class Outcome { kRequest, kNeedMore, kError };

  HttpRequestParser() = default;
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  void Feed(std::string_view data) { buffer_.append(data); }
  Outcome Next(HttpRequest* out);

  /// HTTP status to answer with after kError (400/431/413/501/505).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }
  /// Bytes buffered but not yet consumed by a complete request.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  Outcome Fail(int status, std::string message);

  Limits limits_;
  std::string buffer_;
  int error_status_ = 0;
  std::string error_message_;
};

/// Incremental response parser (the load generator's receive half). Same
/// Feed()/Next() contract as the request parser.
class HttpResponseParser {
 public:
  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool keep_alive = true;

    const std::string* Header(std::string_view name) const;
  };

  enum class Outcome { kResponse, kNeedMore, kError };

  void Feed(std::string_view data) { buffer_.append(data); }
  Outcome Next(Response* out);
  const std::string& error_message() const { return error_message_; }

 private:
  std::string buffer_;
  std::string error_message_;
};

}  // namespace declsched::net

#endif  // DECLSCHED_NET_HTTP_H_
