// Load generator for the front door (library half; tools/loadgen.cc is
// the CLI and bench/bench_net_load.cc the gated bench). Speaks both
// transports: HTTP/1.1 keep-alive and the binary wire protocol
// (net/wire/).
//
// Each driver thread multiplexes its share of the connections with
// poll(): a nonblocking socket per connection with its own response
// parser, so ten thousand concurrent connections cost fds, not threads.
// Multiple driver threads (`threads`) split the connection set and the
// offered rate, and their results merge into one histogram — that is how
// the harness drives a multi-reactor server without the client becoming
// the bottleneck. Two driving modes:
//
//   closed loop (open_loop_rps == 0): every connection keeps exactly
//     `pipeline` requests outstanding — measures saturation throughput;
//   open loop (open_loop_rps > 0): requests start on a fixed wall-clock
//     schedule and are handed to connections with spare pipeline slots —
//     measures latency at a controlled offered rate. If every slot is
//     taken when one comes due, the send happens late and `late_sends`
//     counts it (the coordinated-omission signal).
//
// On the binary transport each connection pipelines its HELLO ahead of
// the first SUBMIT (no handshake round-trip) and matches responses to
// send timestamps by request id, so out-of-order completion measures
// correctly. `connect_settle_ms` opens every connection (and, on binary,
// finishes handshakes) before the measurement clock starts — at 10k
// connections the connect burst would otherwise bill into latency.
//
// The workload is the front door's submission contract: each request
// carries `txns_per_request` transactions of `ops_per_txn` writes over
// distinct ascending objects drawn from [0, num_objects).

#ifndef DECLSCHED_NET_LOADGEN_H_
#define DECLSCHED_NET_LOADGEN_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/result.h"

namespace declsched::net {

enum class LoadTransport {
  kHttp,
  kBinary,
};

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  LoadTransport transport = LoadTransport::kHttp;
  int connections = 64;
  /// Driver threads; connections and offered rate split across them.
  int threads = 1;
  /// Binary only: request frames in flight per connection (HTTP drives
  /// one request per connection — its responses are ordered, not matched).
  int pipeline = 1;
  /// Wall-clock run length (after which outstanding responses drain).
  int64_t duration_ms = 1000;
  /// 0 = closed loop; otherwise target offered rate (requests/second).
  double open_loop_rps = 0;
  /// Establish every connection (binary: and pipeline its HELLO) before
  /// the measurement clock starts; 0 skips the settle phase.
  int64_t connect_settle_ms = 0;
  /// Tenant stamped on every submission.
  int tenant = 0;
  int txns_per_request = 1;
  int ops_per_txn = 2;
  int64_t num_objects = 100000;
  uint64_t seed = 1;
  /// Drain window for outstanding responses after the run ends.
  int64_t drain_timeout_ms = 5000;
};

struct LoadgenResult {
  int64_t requests_sent = 0;
  int64_t responses_2xx = 0;
  int64_t responses_429 = 0;
  int64_t responses_other = 0;
  /// Connections that failed to establish or died mid-run.
  int64_t connection_errors = 0;
  /// Open loop only: sends that started after their scheduled slot.
  int64_t late_sends = 0;
  int64_t duration_us = 0;
  /// Completed (2xx) responses per second over the run.
  double achieved_rps = 0;
  /// End-to-end latency of 2xx responses, wall micros.
  Histogram latency_us;
  /// Latency of 429 responses (how fast backpressure answers).
  Histogram throttle_latency_us;

  /// Sums counters and merges histograms (multi-thread aggregation).
  void Merge(const LoadgenResult& other);

  /// One JSON row (the bench artifact shape).
  std::string ToJson() const;
};

/// Runs the load and blocks until done. Errors only on setup failures
/// (bad address, no connection could be established); per-request errors
/// are counted in the result.
Result<LoadgenResult> RunLoadgen(const LoadgenOptions& options);

}  // namespace declsched::net

#endif  // DECLSCHED_NET_LOADGEN_H_
