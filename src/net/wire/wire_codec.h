// Binary wire protocol: length-prefixed, CRC-framed, pipelined.
//
// The compact transport in front of the sharded scheduler — the HTTP/JSON
// front door's fast sibling. Where HTTP pays a header parse plus a
// recursive-descent JSON parse per request, a wire frame is one fixed
// 12-byte header plus varint-coded fields, checksummed with the same
// CRC-32C the WAL uses, so the hot path is a length check, a crc32, and a
// handful of varint decodes.
//
// Frame grammar (all integers little-endian; see storage/coding.h):
//
//   frame   := u32 payload_len | u32 crc32c(payload) | payload
//   payload := header body
//   header  := u8 op | u8 flags | u16 reserved | u64 request_id
//
// `request_id` is chosen by the client and echoed on the response frame,
// which is what makes pipelining safe: a client may keep many requests in
// flight on one connection and match responses by id regardless of
// completion order (the server answers SUBMITs as their batches commit,
// not in arrival order).
//
// Handshake: the first frame on a connection must be HELLO carrying the
// protocol magic and version; the server answers HELLO_OK or a typed
// ERROR frame (code 505) and closes. Every later frame is op-dispatched.
// A SUBMIT frame batches many transactions (each a batch of read/write
// ops over ascending objects — the front door's deadlock-free submission
// order), so one syscall and one CRC cover an arbitrarily large batch.
//
// Error frames carry the HTTP-equivalent status code (400/404/429/500/503
// /505) plus the Retry-After seconds for 429/503, mapping the admission
// semantics 1:1 onto the binary transport. kFlagCloseAfter on any frame
// means the sender closes the connection after it.
//
// Robustness contract (FrameParser): oversized, short (payload smaller
// than the header), zero-length, and CRC-mismatched frames are *typed*
// parse errors, never UB — the connection answers with an ERROR frame and
// closes. Unknown ops survive the parser (forward compatibility) and are
// rejected one layer up.

#ifndef DECLSCHED_NET_WIRE_WIRE_CODEC_H_
#define DECLSCHED_NET_WIRE_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace declsched::net::wire {

/// "DSWP" little-endian — first four bytes of every HELLO body.
constexpr uint32_t kWireMagic = 0x50575344u;
constexpr uint16_t kWireVersion = 1;

/// Fixed payload header: op(1) + flags(1) + reserved(2) + request_id(8).
constexpr size_t kFrameHeaderBytes = 12;
/// Wire prefix before the payload: payload_len(4) + crc32c(4).
constexpr size_t kFramePrefixBytes = 8;

enum class WireOp : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kSubmit = 3,
  kSubmitOk = 4,
  kStats = 5,
  kStatsOk = 6,
  kExplain = 7,
  kExplainOk = 8,
  kFinish = 9,
  kFinishOk = 10,
  kError = 15,
};

/// The sender closes the connection after this frame.
constexpr uint8_t kFlagCloseAfter = 0x1;

const char* WireOpName(WireOp op);
bool IsKnownWireOp(uint8_t op);

struct WireFrame {
  WireOp op = WireOp::kError;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  std::string body;
};

/// One operation of a wire transaction. `write` false = read.
struct WireOpEntry {
  bool write = true;
  int64_t object = 0;
};

struct WireTxn {
  std::vector<WireOpEntry> ops;
};

/// SUBMIT body: one tenant, many transactions per frame.
struct WireSubmit {
  int64_t tenant = 0;
  std::vector<WireTxn> txns;
};

/// SUBMIT_OK body: the commit acknowledgement counters (the same numbers
/// the HTTP submit response reports).
struct WireSubmitResult {
  int64_t txns = 0;
  int64_t statements = 0;
  int64_t dispatched = 0;
  int64_t latency_us = 0;
};

/// ERROR body: HTTP-equivalent status code + advisory Retry-After.
struct WireError {
  uint16_t code = 500;
  uint16_t retry_after_seconds = 0;
  std::string message;
};

// --- frame encoding -------------------------------------------------------

/// Appends one complete frame (prefix + header + body) to `out`.
void AppendFrame(std::string* out, WireOp op, uint8_t flags,
                 uint64_t request_id, std::string_view body);
std::string EncodeFrame(const WireFrame& frame);

// --- body encoding / decoding --------------------------------------------
// Decoders are bounds-checked: truncated or trailing-garbage bodies return
// InvalidArgument, never read past the buffer.

std::string EncodeHelloBody(uint32_t magic = kWireMagic,
                            uint16_t version = kWireVersion);
Status DecodeHelloBody(std::string_view body, uint32_t* magic,
                       uint16_t* version);
std::string EncodeHelloOkBody(uint16_t version = kWireVersion);

std::string EncodeSubmitBody(const WireSubmit& submit);
Status DecodeSubmitBody(std::string_view body, WireSubmit* out);

std::string EncodeSubmitOkBody(const WireSubmitResult& result);
Status DecodeSubmitOkBody(std::string_view body, WireSubmitResult* out);

std::string EncodeErrorBody(const WireError& error);
Status DecodeErrorBody(std::string_view body, WireError* out);

/// EXPLAIN request body: the protocol name. STATS_OK / EXPLAIN_OK bodies
/// are the raw UTF-8 text (JSON for stats, plan text for explain) with no
/// further framing — the frame length already bounds them.
std::string EncodeNameBody(std::string_view name);
Status DecodeNameBody(std::string_view body, std::string* out);

// --- incremental frame parser --------------------------------------------

/// Feed() bytes as they arrive (any fragmentation), pull complete frames
/// with Next() in a loop. kError is terminal for the connection: answer
/// with an ERROR frame built from error_code()/error_message() and close.
class FrameParser {
 public:
  struct Limits {
    /// Whole-frame cap (payload length). Oversized frames error before any
    /// allocation proportional to the claimed size.
    size_t max_frame_bytes = 1 << 20;
  };

  enum class Outcome { kFrame, kNeedMore, kError };

  /// Typed parse failures — the satellite robustness contract.
  enum class Error {
    kNone = 0,
    kOversized,     ///< payload_len > max_frame_bytes
    kShortPayload,  ///< payload_len < header size (includes zero-length)
    kBadCrc,        ///< checksum mismatch
  };

  FrameParser() = default;
  explicit FrameParser(Limits limits) : limits_(limits) {}

  void Feed(std::string_view data) { buffer_.append(data); }
  Outcome Next(WireFrame* out);

  Error error() const { return error_; }
  const std::string& error_message() const { return error_message_; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Outcome Fail(Error error, std::string message);

  Limits limits_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  Error error_ = Error::kNone;
  std::string error_message_;
};

}  // namespace declsched::net::wire

#endif  // DECLSCHED_NET_WIRE_WIRE_CODEC_H_
