// Multi-reactor binary wire-protocol server with SO_REUSEPORT accept
// sharding.
//
// N reactor threads each own an epoll loop and a disjoint set of
// connections. Accept sharding has two topologies:
//
//   REUSEPORT (default): every reactor binds its own listening socket to
//     the same port with SO_REUSEPORT, so the kernel spreads incoming
//     connections across the reactors with no shared accept lock and no
//     fd handoff — the scale-out path to 10k+ connections.
//   fallback (SO_REUSEPORT unavailable, or forced for tests): reactor 0
//     owns the single listener and hands accepted fds to the other
//     reactors round-robin via Reactor::Post; the target reactor registers
//     the fd on its own thread.
//
// Either way a connection is owned by exactly one reactor for its whole
// life: reads, frame parsing, handler dispatch, and writes all happen on
// that thread, so per-connection state needs no locks. Handlers answer
// through a Responder that is safe to complete from any thread (a shard
// worker finishing a batch); the response frame is posted back to the
// owning reactor. Responses need no ordering — the wire protocol's
// request ids let clients pipeline and match replies out of order.
//
// The server speaks the connection-level half of the protocol itself:
// HELLO handshake enforcement (magic + version, 505 on mismatch), FINISH
// draining (reply FINISH_OK once every outstanding request on the
// connection has been answered, then close), frame-parser errors (typed
// ERROR frame, then close), and the global connection cap (best-effort
// 503 ERROR frame on the fresh socket, then close). Application ops
// (SUBMIT / STATS / EXPLAIN) go to the registered handler.
//
// The connection count is exact: one shared atomic maintained at
// accept/close across all reactors, mirrored into the
// wire_connections_open gauge, so /metrics reconciles under the
// 10k-connection bench.

#ifndef DECLSCHED_NET_WIRE_BINARY_SERVER_H_
#define DECLSCHED_NET_WIRE_BINARY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/reactor.h"
#include "net/wire/wire_codec.h"
#include "observability/metrics.h"

namespace declsched::net::wire {

class BinaryServer {
 public:
  struct Options {
    /// Port to listen on; 0 picks an ephemeral port (read it back with
    /// port() after Start).
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Reactor threads; each owns its connections end to end.
    int reactor_threads = 1;
    /// Test hook: skip SO_REUSEPORT and exercise the single-acceptor
    /// round-robin fd-handoff fallback.
    bool force_fallback_accept = false;
    /// Global cap across all reactors; accepts beyond it get a
    /// best-effort 503 ERROR frame and close.
    int max_connections = 4096;
    /// Slow-client budget: buffered unsent response bytes above this close
    /// the connection.
    size_t max_write_buffer_bytes = 256 * 1024;
    /// How long Shutdown() waits for in-flight responders.
    int drain_timeout_ms = 2000;
    FrameParser::Limits parser_limits;
    /// Optional: wire_* metrics (per-reactor accept/bytes/frames counters,
    /// exact open-connections gauge, frames-per-read and txns-per-submit
    /// histograms) are registered here.
    observability::MetricsRegistry* metrics = nullptr;
  };

  /// Completion handle for one request frame. Copyable; the first Send
  /// wins. Dropping every copy without sending delivers a 500 ERROR frame
  /// so a lost handler can never wedge a client waiting on its request id.
  /// Send is thread-safe and callable from any thread, including after the
  /// connection or server has gone away (it becomes a no-op).
  class Responder {
   public:
    Responder() = default;
    /// Sends one response frame with the request's id.
    void Send(WireOp op, std::string body, uint8_t flags = 0) const;
    void SendError(const WireError& error, bool close_connection = false) const;
    bool valid() const { return core_ != nullptr; }

   private:
    friend class BinaryServer;
    struct Core;
    std::shared_ptr<Core> core_;
  };

  /// Application callback for SUBMIT / STATS / EXPLAIN frames; runs on the
  /// owning reactor thread and must not block.
  using HandlerFn = std::function<void(WireFrame, Responder)>;

  explicit BinaryServer(Options options);
  ~BinaryServer();

  BinaryServer(const BinaryServer&) = delete;
  BinaryServer& operator=(const BinaryServer&) = delete;

  /// Binds (one listener per reactor under REUSEPORT), listens, and starts
  /// every reactor thread.
  Status Start(HandlerFn handler);
  /// Graceful stop; idempotent. Safe to call without Start.
  void Shutdown();

  uint16_t port() const { return port_; }
  int reactor_threads() const { return options_.reactor_threads; }
  /// True when accept sharding runs on SO_REUSEPORT listeners (false =
  /// single-acceptor fd-handoff fallback).
  bool reuseport_active() const { return reuseport_active_; }

  /// Live connection count — exact: maintained atomically at accept/close
  /// across all reactors.
  int64_t connections() const {
    return connection_count_.load(std::memory_order_relaxed);
  }
  /// Responses not yet delivered.
  int64_t pending_responses() const {
    return pending_responses_.load(std::memory_order_relaxed);
  }
  /// Connections accepted by reactor `i` (the accept-distribution view).
  int64_t accepted_by_reactor(int i) const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameParser parser;
    bool hello_done = false;
    bool finish_requested = false;
    uint64_t finish_request_id = 0;
    bool close_after_flush = false;
    int64_t outstanding = 0;  ///< request frames not yet answered
    std::string write_buffer;
    bool want_writable = false;

    explicit Connection(FrameParser::Limits limits) : parser(limits) {}
  };

  /// Everything one reactor owns. Only its thread touches `conns`.
  struct Shard {
    std::shared_ptr<Reactor> reactor;
    int listen_fd = -1;
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    observability::Counter* accepted = nullptr;
    observability::Counter* bytes_in = nullptr;
    observability::Counter* bytes_out = nullptr;
    observability::Counter* frames_in = nullptr;
    observability::Counter* frames_out = nullptr;
    /// Accept distribution, readable off-thread (mirrors `accepted`).
    std::atomic<int64_t> accepted_count{0};
  };

  Result<int> OpenListener(bool reuseport);
  void DoAccept(int reactor_index);
  void AdoptConnection(int reactor_index, int fd);
  void OnConnectionEvent(int reactor_index, uint64_t conn_id, uint32_t events);
  void ReadFromConnection(int reactor_index, Connection* conn);
  /// Handles one frame; returns false when the connection was closed.
  bool HandleFrame(int reactor_index, Connection* conn, WireFrame frame);
  void CompleteFrame(int reactor_index, uint64_t conn_id, std::string wire,
                     bool close_after);
  void SendFrame(int reactor_index, Connection* conn, WireOp op, uint8_t flags,
                 uint64_t request_id, std::string_view body);
  void FlushConnection(int reactor_index, Connection* conn);
  void CloseConnection(int reactor_index, uint64_t conn_id);
  Responder MakeResponder(int reactor_index, uint64_t conn_id,
                          uint64_t request_id);

  Options options_;
  HandlerFn handler_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint16_t port_ = 0;
  bool started_ = false;
  bool reuseport_active_ = false;
  std::atomic<bool> shut_down_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<int64_t> connection_count_{0};
  std::atomic<int64_t> pending_responses_{0};
  std::atomic<uint64_t> round_robin_{0};  ///< fallback handoff target

  // Registered iff options_.metrics != nullptr (global, unlabeled).
  observability::Counter* rejected_total_ = nullptr;
  observability::Counter* frame_errors_total_ = nullptr;
  observability::Counter* slow_client_closes_total_ = nullptr;
  observability::Gauge* connections_gauge_ = nullptr;
  observability::HistogramMetric* frames_per_read_ = nullptr;
};

}  // namespace declsched::net::wire

#endif  // DECLSCHED_NET_WIRE_BINARY_SERVER_H_
