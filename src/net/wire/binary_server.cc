#include "net/wire/binary_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace declsched::net::wire {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl O_NONBLOCK: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

/// `le` bounds for the frames-per-read histogram (counts, not latency).
const std::vector<int64_t>& FramesPerReadBounds() {
  static const std::vector<int64_t> kBounds = {1,  2,   4,   8,   16,  32,
                                               64, 128, 256, 512, 1024};
  return kBounds;
}

}  // namespace

// Same lifetime contract as the HTTP responder core: it weakly references
// the owning reactor, and the posted completion routes through the server
// pointer only while that reactor is still accepting tasks — the server
// keeps its reactors alive until every loop has drained.
struct BinaryServer::Responder::Core {
  std::weak_ptr<Reactor> reactor;
  BinaryServer* server = nullptr;
  int reactor_index = 0;
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  std::atomic<bool> sent{false};

  void Deliver(WireOp op, uint8_t flags, std::string_view body) {
    if (sent.exchange(true, std::memory_order_acq_rel)) return;
    std::shared_ptr<Reactor> r = reactor.lock();
    if (r == nullptr) return;
    std::string wire;
    wire.reserve(kFramePrefixBytes + kFrameHeaderBytes + body.size());
    AppendFrame(&wire, op, flags, request_id, body);
    BinaryServer* s = server;
    const int idx = reactor_index;
    const uint64_t conn = conn_id;
    const bool close_after = (flags & kFlagCloseAfter) != 0;
    auto task = [s, idx, conn, close_after, w = std::move(wire)]() mutable {
      s->CompleteFrame(idx, conn, std::move(w), close_after);
    };
    if (r->InReactorThread()) {
      task();
    } else {
      r->Post(std::move(task));
    }
  }

  ~Core() {
    // Every copy dropped without an answer: fail the request id rather
    // than wedging a pipelined client waiting on it.
    Deliver(WireOp::kError, 0,
            EncodeErrorBody({500, 0, "handler dropped request"}));
  }
};

void BinaryServer::Responder::Send(WireOp op, std::string body,
                                   uint8_t flags) const {
  if (core_ != nullptr) core_->Deliver(op, flags, body);
}

void BinaryServer::Responder::SendError(const WireError& error,
                                        bool close_connection) const {
  if (core_ != nullptr) {
    core_->Deliver(WireOp::kError, close_connection ? kFlagCloseAfter : 0,
                   EncodeErrorBody(error));
  }
}

BinaryServer::BinaryServer(Options options) : options_(std::move(options)) {
  if (options_.reactor_threads < 1) options_.reactor_threads = 1;
  port_ = options_.port;
  for (int i = 0; i < options_.reactor_threads; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->reactor = std::make_shared<Reactor>();
    shards_.push_back(std::move(shard));
  }
  if (options_.metrics != nullptr) {
    auto* m = options_.metrics;
    rejected_total_ =
        m->GetCounter("wire_connections_rejected_total",
                      "Wire connections refused at the max_connections cap");
    frame_errors_total_ =
        m->GetCounter("wire_frame_errors_total",
                      "Wire connections dropped for malformed frames");
    slow_client_closes_total_ =
        m->GetCounter("wire_slow_client_closes_total",
                      "Wire connections closed for exceeding the write budget");
    connections_gauge_ =
        m->GetGauge("wire_connections_open",
                    "Currently open wire connections (exact, all reactors)");
    frames_per_read_ = m->GetHistogram(
        "wire_frames_per_read", "Complete frames decoded per read batch", {},
        FramesPerReadBounds());
    for (int i = 0; i < options_.reactor_threads; ++i) {
      const observability::MetricLabels labels = {
          {"reactor", std::to_string(i)}};
      Shard* shard = shards_[static_cast<size_t>(i)].get();
      shard->accepted =
          m->GetCounter("wire_connections_accepted_total",
                        "Wire connections adopted, by owning reactor", labels);
      shard->bytes_in = m->GetCounter(
          "wire_bytes_in_total", "Bytes read from wire clients", labels);
      shard->bytes_out = m->GetCounter(
          "wire_bytes_out_total", "Bytes written to wire clients", labels);
      shard->frames_in = m->GetCounter(
          "wire_frames_in_total", "Request frames decoded", labels);
      shard->frames_out = m->GetCounter(
          "wire_frames_out_total", "Response frames enqueued", labels);
    }
  }
}

BinaryServer::~BinaryServer() { Shutdown(); }

Status BinaryServer::Start(HandlerFn handler) {
  DS_CHECK(!started_);
  handler_ = std::move(handler);

  if (!options_.force_fallback_accept) {
    Status st = Status::OK();
    for (auto& shard : shards_) {
      Result<int> fd = OpenListener(/*reuseport=*/true);
      if (!fd.ok()) {
        st = fd.status();
        break;
      }
      shard->listen_fd = *fd;
    }
    if (st.ok()) {
      reuseport_active_ = true;
    } else {
      DS_LOG(Warn) << "SO_REUSEPORT listeners unavailable (" << st
                   << "); falling back to single-acceptor fd handoff";
      for (auto& shard : shards_) {
        if (shard->listen_fd >= 0) {
          ::close(shard->listen_fd);
          shard->listen_fd = -1;
        }
      }
      port_ = options_.port;
    }
  }
  if (!reuseport_active_) {
    Result<int> fd = OpenListener(/*reuseport=*/false);
    if (!fd.ok()) return fd.status();
    shards_[0]->listen_fd = *fd;
  }

  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    if (shard->listen_fd < 0) continue;
    const int index = static_cast<int>(i);
    DS_RETURN_NOT_OK(shard->reactor->Add(
        shard->listen_fd, Reactor::kReadable,
        [this, index](uint32_t) { DoAccept(index); }));
  }
  for (auto& shard : shards_) shard->reactor->Start();
  started_ = true;
  return Status::OK();
}

void BinaryServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  if (!started_) {
    for (auto& shard : shards_) shard->reactor->Stop();
    return;
  }
  // Phase 1: stop accepting on every reactor that owns a listener.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    shard->reactor->Post([shard] {
      if (shard->listen_fd >= 0) {
        shard->reactor->Remove(shard->listen_fd);
        ::close(shard->listen_fd);
        shard->listen_fd = -1;
      }
    });
  }
  // Phase 2: drain in-flight responders.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (pending_responses_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: tear down connections, then stop the loops. The teardown
  // task is queued after any fd-handoff adoptions posted while the
  // fallback acceptor was still live, so adopted connections are closed
  // too.
  for (size_t i = 0; i < shards_.size(); ++i) {
    const int index = static_cast<int>(i);
    shards_[i]->reactor->Post([this, index] {
      Shard* shard = shards_[static_cast<size_t>(index)].get();
      std::vector<uint64_t> ids;
      ids.reserve(shard->conns.size());
      for (const auto& [id, conn] : shard->conns) ids.push_back(id);
      for (uint64_t id : ids) CloseConnection(index, id);
    });
  }
  for (auto& shard : shards_) shard->reactor->Stop();
}

int64_t BinaryServer::accepted_by_reactor(int i) const {
  if (i < 0 || static_cast<size_t>(i) >= shards_.size()) return 0;
  return shards_[static_cast<size_t>(i)]->accepted_count.load(
      std::memory_order_relaxed);
}

Result<int> BinaryServer::OpenListener(bool reuseport) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("SO_REUSEPORT: ") +
                            std::strerror(errno));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Deep backlog: a 10k-connection loadgen opens its sockets in a burst,
  // and REUSEPORT splits this across per-reactor queues.
  if (::listen(fd, 4096) != 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  const Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status gs =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return gs;
  }
  // First listener may bind port 0; every later one binds the port the
  // kernel picked, so all REUSEPORT listeners share it.
  port_ = ntohs(bound.sin_port);
  return fd;
}

void BinaryServer::DoAccept(int reactor_index) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept4(shard->listen_fd, reinterpret_cast<sockaddr*>(&peer),
                             &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DS_LOG(Warn) << "accept: " << std::strerror(errno);
      return;
    }
    if (connection_count_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Over the global cap: a one-shot 503 ERROR frame tells well-behaved
      // clients to back off; the write is best-effort on a fresh socket.
      std::string reply;
      AppendFrame(&reply, WireOp::kError, kFlagCloseAfter, 0,
                  EncodeErrorBody({503, 1, "connection limit reached"}));
      ssize_t n = ::write(fd, reply.data(), reply.size());
      (void)n;
      ::close(fd);
      if (rejected_total_ != nullptr) rejected_total_->Increment();
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Counted at accept so the cap holds while a handed-off fd is in
    // flight to its adopting reactor; undone on close or adopt failure.
    connection_count_.fetch_add(1, std::memory_order_relaxed);
    if (connections_gauge_ != nullptr) connections_gauge_->Add(1);

    int target = reactor_index;
    if (!reuseport_active_ && shards_.size() > 1) {
      target = static_cast<int>(
          round_robin_.fetch_add(1, std::memory_order_relaxed) %
          shards_.size());
    }
    if (target == reactor_index) {
      AdoptConnection(target, fd);
    } else {
      shards_[static_cast<size_t>(target)]->reactor->Post(
          [this, target, fd] { AdoptConnection(target, fd); });
    }
  }
}

void BinaryServer::AdoptConnection(int reactor_index, int fd) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  const uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Connection>(options_.parser_limits);
  conn->id = id;
  conn->fd = fd;
  shard->conns[id] = std::move(conn);
  const Status st = shard->reactor->Add(
      fd, Reactor::kReadable, [this, reactor_index, id](uint32_t events) {
        OnConnectionEvent(reactor_index, id, events);
      });
  if (!st.ok()) {
    DS_LOG(Warn) << "register wire connection: " << st;
    shard->conns.erase(id);
    ::close(fd);
    connection_count_.fetch_sub(1, std::memory_order_relaxed);
    if (connections_gauge_ != nullptr) connections_gauge_->Add(-1);
    return;
  }
  shard->accepted_count.fetch_add(1, std::memory_order_relaxed);
  if (shard->accepted != nullptr) shard->accepted->Increment();
}

void BinaryServer::OnConnectionEvent(int reactor_index, uint64_t conn_id,
                                     uint32_t events) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  auto it = shard->conns.find(conn_id);
  if (it == shard->conns.end()) return;
  Connection* conn = it->second.get();
  if (events & Reactor::kReadable) {
    ReadFromConnection(reactor_index, conn);
    // The read may have closed the connection.
    it = shard->conns.find(conn_id);
    if (it == shard->conns.end()) return;
    conn = it->second.get();
  }
  if (events & Reactor::kWritable) FlushConnection(reactor_index, conn);
}

BinaryServer::Responder BinaryServer::MakeResponder(int reactor_index,
                                                    uint64_t conn_id,
                                                    uint64_t request_id) {
  Responder responder;
  responder.core_ = std::make_shared<Responder::Core>();
  responder.core_->reactor =
      shards_[static_cast<size_t>(reactor_index)]->reactor;
  responder.core_->server = this;
  responder.core_->reactor_index = reactor_index;
  responder.core_->conn_id = conn_id;
  responder.core_->request_id = request_id;
  return responder;
}

void BinaryServer::ReadFromConnection(int reactor_index, Connection* conn) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  char buf[16 * 1024];
  bool peer_closed = false;
  size_t total_read = 0;
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      total_read += static_cast<size_t>(n);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;  // hard error: treat as close
    break;
  }
  if (total_read > 0 && shard->bytes_in != nullptr) {
    shard->bytes_in->Increment(static_cast<int64_t>(total_read));
  }

  const uint64_t conn_id = conn->id;
  int64_t frames = 0;
  while (!conn->close_after_flush) {
    WireFrame frame;
    const FrameParser::Outcome outcome = conn->parser.Next(&frame);
    if (outcome == FrameParser::Outcome::kNeedMore) break;
    if (outcome == FrameParser::Outcome::kError) {
      if (frame_errors_total_ != nullptr) frame_errors_total_->Increment();
      const uint16_t code =
          conn->parser.error() == FrameParser::Error::kOversized ? 413 : 400;
      SendFrame(reactor_index, conn, WireOp::kError, kFlagCloseAfter, 0,
                EncodeErrorBody({code, 0, conn->parser.error_message()}));
      conn->close_after_flush = true;
      break;
    }
    ++frames;
    if (shard->frames_in != nullptr) shard->frames_in->Increment();
    // The handler may answer inline, which can flush and even close the
    // connection — take no references across this call.
    HandleFrame(reactor_index, conn, std::move(frame));
    auto it = shard->conns.find(conn_id);
    if (it == shard->conns.end()) {
      if (frames_per_read_ != nullptr && frames > 0) {
        frames_per_read_->Record(frames);
      }
      return;
    }
    conn = it->second.get();
  }
  if (frames_per_read_ != nullptr && frames > 0) {
    frames_per_read_->Record(frames);
  }

  if (peer_closed) {
    // Flush what we can synchronously, then drop the connection; requests
    // still outstanding die with it (their responders become no-ops).
    FlushConnection(reactor_index, conn);
    auto it = shard->conns.find(conn_id);
    if (it != shard->conns.end()) CloseConnection(reactor_index, conn_id);
    return;
  }
  FlushConnection(reactor_index, conn);
}

bool BinaryServer::HandleFrame(int reactor_index, Connection* conn,
                               WireFrame frame) {
  if (!conn->hello_done) {
    if (frame.op != WireOp::kHello) {
      SendFrame(reactor_index, conn, WireOp::kError, kFlagCloseAfter,
                frame.request_id,
                EncodeErrorBody({400, 0, "first frame must be HELLO"}));
      conn->close_after_flush = true;
      return false;
    }
    uint32_t magic = 0;
    uint16_t version = 0;
    const Status st = DecodeHelloBody(frame.body, &magic, &version);
    if (!st.ok() || magic != kWireMagic) {
      SendFrame(reactor_index, conn, WireOp::kError, kFlagCloseAfter,
                frame.request_id,
                EncodeErrorBody({400, 0, "bad HELLO magic"}));
      conn->close_after_flush = true;
      return false;
    }
    if (version != kWireVersion) {
      SendFrame(
          reactor_index, conn, WireOp::kError, kFlagCloseAfter,
          frame.request_id,
          EncodeErrorBody(
              {505, 0,
               StrFormat("unsupported wire version %u (server speaks %u)",
                         version, kWireVersion)}));
      conn->close_after_flush = true;
      return false;
    }
    conn->hello_done = true;
    SendFrame(reactor_index, conn, WireOp::kHelloOk, 0, frame.request_id,
              EncodeHelloOkBody());
    return true;
  }

  switch (frame.op) {
    case WireOp::kSubmit:
    case WireOp::kStats:
    case WireOp::kExplain: {
      conn->outstanding++;
      pending_responses_.fetch_add(1, std::memory_order_acq_rel);
      const uint64_t request_id = frame.request_id;
      handler_(std::move(frame),
               MakeResponder(reactor_index, conn->id, request_id));
      return true;
    }
    case WireOp::kFinish: {
      if (conn->outstanding == 0) {
        SendFrame(reactor_index, conn, WireOp::kFinishOk, kFlagCloseAfter,
                  frame.request_id, std::string_view());
        conn->close_after_flush = true;
      } else {
        // Drain: answer once the last outstanding request completes.
        conn->finish_requested = true;
        conn->finish_request_id = frame.request_id;
      }
      return true;
    }
    default: {
      const std::string what =
          IsKnownWireOp(static_cast<uint8_t>(frame.op))
              ? StrFormat("unexpected %s frame", WireOpName(frame.op))
              : StrFormat("unknown op %u",
                          static_cast<unsigned>(frame.op));
      SendFrame(reactor_index, conn, WireOp::kError, kFlagCloseAfter,
                frame.request_id, EncodeErrorBody({400, 0, what}));
      conn->close_after_flush = true;
      return false;
    }
  }
}

void BinaryServer::CompleteFrame(int reactor_index, uint64_t conn_id,
                                 std::string wire, bool close_after) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  auto it = shard->conns.find(conn_id);
  if (it == shard->conns.end()) return;  // connection died first
  Connection* conn = it->second.get();
  conn->outstanding--;
  pending_responses_.fetch_sub(1, std::memory_order_acq_rel);
  conn->write_buffer += wire;
  if (shard->frames_out != nullptr) shard->frames_out->Increment();
  if (close_after) conn->close_after_flush = true;
  if (conn->finish_requested && conn->outstanding == 0) {
    SendFrame(reactor_index, conn, WireOp::kFinishOk, kFlagCloseAfter,
              conn->finish_request_id, std::string_view());
    conn->close_after_flush = true;
  }
  FlushConnection(reactor_index, conn);
}

void BinaryServer::SendFrame(int reactor_index, Connection* conn, WireOp op,
                             uint8_t flags, uint64_t request_id,
                             std::string_view body) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  AppendFrame(&conn->write_buffer, op, flags, request_id, body);
  if (shard->frames_out != nullptr) shard->frames_out->Increment();
}

void BinaryServer::FlushConnection(int reactor_index, Connection* conn) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  if (conn->write_buffer.size() > options_.max_write_buffer_bytes) {
    if (slow_client_closes_total_ != nullptr) {
      slow_client_closes_total_->Increment();
    }
    CloseConnection(reactor_index, conn->id);
    return;
  }
  size_t written = 0;
  while (written < conn->write_buffer.size()) {
    const ssize_t n = ::write(conn->fd, conn->write_buffer.data() + written,
                              conn->write_buffer.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(reactor_index, conn->id);  // peer gone
    return;
  }
  if (written > 0 && shard->bytes_out != nullptr) {
    shard->bytes_out->Increment(static_cast<int64_t>(written));
  }
  conn->write_buffer.erase(0, written);

  const bool need_writable = !conn->write_buffer.empty();
  if (need_writable != conn->want_writable) {
    conn->want_writable = need_writable;
    const uint32_t interest =
        Reactor::kReadable | (need_writable ? Reactor::kWritable : 0);
    (void)shard->reactor->Modify(conn->fd, interest);
  }
  if (conn->close_after_flush && conn->write_buffer.empty()) {
    CloseConnection(reactor_index, conn->id);
  }
}

void BinaryServer::CloseConnection(int reactor_index, uint64_t conn_id) {
  Shard* shard = shards_[static_cast<size_t>(reactor_index)].get();
  auto it = shard->conns.find(conn_id);
  if (it == shard->conns.end()) return;
  Connection* conn = it->second.get();
  // Requests that never completed: their responders will no-op into a
  // dead conn_id; drop them from the pending count here.
  if (conn->outstanding > 0) {
    pending_responses_.fetch_sub(conn->outstanding,
                                 std::memory_order_acq_rel);
  }
  shard->reactor->Remove(conn->fd);
  ::close(conn->fd);
  shard->conns.erase(it);
  connection_count_.fetch_sub(1, std::memory_order_relaxed);
  if (connections_gauge_ != nullptr) connections_gauge_->Add(-1);
}

}  // namespace declsched::net::wire
