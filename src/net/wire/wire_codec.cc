#include "net/wire/wire_codec.h"

#include "common/string_util.h"
#include "storage/coding.h"
#include "storage/wal.h"

namespace declsched::net::wire {

using storage::ByteReader;
using storage::Crc32;
using storage::PutFixed32;
using storage::PutFixed64;
using storage::PutVarint64;
using storage::PutVarintSigned;

const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kHello:
      return "HELLO";
    case WireOp::kHelloOk:
      return "HELLO_OK";
    case WireOp::kSubmit:
      return "SUBMIT";
    case WireOp::kSubmitOk:
      return "SUBMIT_OK";
    case WireOp::kStats:
      return "STATS";
    case WireOp::kStatsOk:
      return "STATS_OK";
    case WireOp::kExplain:
      return "EXPLAIN";
    case WireOp::kExplainOk:
      return "EXPLAIN_OK";
    case WireOp::kFinish:
      return "FINISH";
    case WireOp::kFinishOk:
      return "FINISH_OK";
    case WireOp::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

bool IsKnownWireOp(uint8_t op) {
  switch (static_cast<WireOp>(op)) {
    case WireOp::kHello:
    case WireOp::kHelloOk:
    case WireOp::kSubmit:
    case WireOp::kSubmitOk:
    case WireOp::kStats:
    case WireOp::kStatsOk:
    case WireOp::kExplain:
    case WireOp::kExplainOk:
    case WireOp::kFinish:
    case WireOp::kFinishOk:
    case WireOp::kError:
      return true;
  }
  return false;
}

void AppendFrame(std::string* out, WireOp op, uint8_t flags,
                 uint64_t request_id, std::string_view body) {
  const size_t payload_len = kFrameHeaderBytes + body.size();
  const size_t prefix_at = out->size();
  PutFixed32(out, static_cast<uint32_t>(payload_len));
  PutFixed32(out, 0);  // crc patched below, once the payload is in place
  const size_t payload_at = out->size();
  out->push_back(static_cast<char>(op));
  out->push_back(static_cast<char>(flags));
  out->push_back(0);
  out->push_back(0);
  PutFixed64(out, request_id);
  out->append(body.data(), body.size());
  const uint32_t crc = Crc32(out->data() + payload_at, payload_len);
  storage::PutFixed32Raw(&(*out)[prefix_at + 4], crc);
}

std::string EncodeFrame(const WireFrame& frame) {
  std::string out;
  out.reserve(kFramePrefixBytes + kFrameHeaderBytes + frame.body.size());
  AppendFrame(&out, frame.op, frame.flags, frame.request_id, frame.body);
  return out;
}

std::string EncodeHelloBody(uint32_t magic, uint16_t version) {
  std::string body;
  PutFixed32(&body, magic);
  PutFixed32(&body, version);  // u16 version + u16 reserved, as one word
  return body;
}

Status DecodeHelloBody(std::string_view body, uint32_t* magic,
                       uint16_t* version) {
  ByteReader reader(body);
  uint32_t version_word = 0;
  if (!reader.ReadFixed32(magic) || !reader.ReadFixed32(&version_word)) {
    return Status::InvalidArgument("HELLO body truncated");
  }
  *version = static_cast<uint16_t>(version_word & 0xffffu);
  return Status::OK();
}

std::string EncodeHelloOkBody(uint16_t version) {
  std::string body;
  PutFixed32(&body, version);
  return body;
}

std::string EncodeSubmitBody(const WireSubmit& submit) {
  std::string body;
  PutVarintSigned(&body, submit.tenant);
  PutVarint64(&body, submit.txns.size());
  for (const WireTxn& txn : submit.txns) {
    PutVarint64(&body, txn.ops.size());
    for (const WireOpEntry& op : txn.ops) {
      body.push_back(op.write ? 1 : 0);
      PutVarintSigned(&body, op.object);
    }
  }
  return body;
}

Status DecodeSubmitBody(std::string_view body, WireSubmit* out) {
  ByteReader reader(body);
  out->tenant = 0;
  out->txns.clear();
  uint64_t txn_count = 0;
  if (!reader.ReadVarintSigned(&out->tenant) ||
      !reader.ReadVarint64(&txn_count)) {
    return Status::InvalidArgument("SUBMIT body truncated");
  }
  // Every txn costs at least 1 byte (its op count), every op at least 2 —
  // claimed counts beyond the remaining bytes are rejected before any
  // reserve, so a hostile header cannot drive allocation.
  if (txn_count > reader.remaining()) {
    return Status::InvalidArgument("SUBMIT txn count exceeds body");
  }
  out->txns.reserve(txn_count);
  for (uint64_t t = 0; t < txn_count; ++t) {
    uint64_t op_count = 0;
    if (!reader.ReadVarint64(&op_count)) {
      return Status::InvalidArgument("SUBMIT body truncated");
    }
    if (op_count > reader.remaining() / 2) {
      return Status::InvalidArgument("SUBMIT op count exceeds body");
    }
    WireTxn txn;
    txn.ops.reserve(op_count);
    for (uint64_t i = 0; i < op_count; ++i) {
      uint8_t kind = 0;
      WireOpEntry op;
      if (!reader.ReadByte(&kind) || !reader.ReadVarintSigned(&op.object)) {
        return Status::InvalidArgument("SUBMIT body truncated");
      }
      if (kind > 1) {
        return Status::InvalidArgument("SUBMIT op kind must be 0 or 1");
      }
      op.write = kind == 1;
      txn.ops.push_back(op);
    }
    out->txns.push_back(std::move(txn));
  }
  if (!reader.empty()) {
    return Status::InvalidArgument("SUBMIT body has trailing bytes");
  }
  return Status::OK();
}

std::string EncodeSubmitOkBody(const WireSubmitResult& result) {
  std::string body;
  PutVarint64(&body, static_cast<uint64_t>(result.txns));
  PutVarint64(&body, static_cast<uint64_t>(result.statements));
  PutVarint64(&body, static_cast<uint64_t>(result.dispatched));
  PutVarint64(&body, static_cast<uint64_t>(result.latency_us));
  return body;
}

Status DecodeSubmitOkBody(std::string_view body, WireSubmitResult* out) {
  ByteReader reader(body);
  uint64_t txns = 0, statements = 0, dispatched = 0, latency_us = 0;
  if (!reader.ReadVarint64(&txns) || !reader.ReadVarint64(&statements) ||
      !reader.ReadVarint64(&dispatched) || !reader.ReadVarint64(&latency_us)) {
    return Status::InvalidArgument("SUBMIT_OK body truncated");
  }
  if (!reader.empty()) {
    return Status::InvalidArgument("SUBMIT_OK body has trailing bytes");
  }
  out->txns = static_cast<int64_t>(txns);
  out->statements = static_cast<int64_t>(statements);
  out->dispatched = static_cast<int64_t>(dispatched);
  out->latency_us = static_cast<int64_t>(latency_us);
  return Status::OK();
}

std::string EncodeErrorBody(const WireError& error) {
  std::string body;
  PutFixed32(&body, static_cast<uint32_t>(error.code) |
                        static_cast<uint32_t>(error.retry_after_seconds) << 16);
  storage::PutLengthPrefixed(&body, error.message);
  return body;
}

Status DecodeErrorBody(std::string_view body, WireError* out) {
  ByteReader reader(body);
  uint32_t word = 0;
  std::string_view message;
  if (!reader.ReadFixed32(&word) || !reader.ReadLengthPrefixed(&message)) {
    return Status::InvalidArgument("ERROR body truncated");
  }
  out->code = static_cast<uint16_t>(word & 0xffffu);
  out->retry_after_seconds = static_cast<uint16_t>(word >> 16);
  out->message.assign(message.data(), message.size());
  if (!reader.empty()) {
    return Status::InvalidArgument("ERROR body has trailing bytes");
  }
  return Status::OK();
}

std::string EncodeNameBody(std::string_view name) {
  std::string body;
  storage::PutLengthPrefixed(&body, name);
  return body;
}

Status DecodeNameBody(std::string_view body, std::string* out) {
  ByteReader reader(body);
  std::string_view name;
  if (!reader.ReadLengthPrefixed(&name)) {
    return Status::InvalidArgument("name body truncated");
  }
  if (!reader.empty()) {
    return Status::InvalidArgument("name body has trailing bytes");
  }
  out->assign(name.data(), name.size());
  return Status::OK();
}

FrameParser::Outcome FrameParser::Fail(Error error, std::string message) {
  error_ = error;
  error_message_ = std::move(message);
  return Outcome::kError;
}

FrameParser::Outcome FrameParser::Next(WireFrame* out) {
  if (error_ != Error::kNone) return Outcome::kError;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived pipelined connection does not grow its buffer forever.
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFramePrefixBytes) return Outcome::kNeedMore;
  const char* base = buffer_.data() + consumed_;
  const uint32_t payload_len = storage::DecodeFixed32(base);
  // Limit checks run before waiting for (or allocating) the claimed bytes.
  if (payload_len > limits_.max_frame_bytes) {
    return Fail(Error::kOversized,
                StrFormat("frame payload %u exceeds limit %zu", payload_len,
                          limits_.max_frame_bytes));
  }
  if (payload_len < kFrameHeaderBytes) {
    return Fail(Error::kShortPayload,
                StrFormat("frame payload %u shorter than the %zu-byte header",
                          payload_len, kFrameHeaderBytes));
  }
  if (available < kFramePrefixBytes + payload_len) return Outcome::kNeedMore;
  const uint32_t expected_crc = storage::DecodeFixed32(base + 4);
  const char* payload = base + kFramePrefixBytes;
  const uint32_t actual_crc = Crc32(payload, payload_len);
  if (actual_crc != expected_crc) {
    return Fail(Error::kBadCrc, StrFormat("frame crc mismatch (got %08x want %08x)",
                                          actual_crc, expected_crc));
  }
  out->op = static_cast<WireOp>(static_cast<uint8_t>(payload[0]));
  out->flags = static_cast<uint8_t>(payload[1]);
  out->request_id = storage::DecodeFixed64(payload + 4);
  out->body.assign(payload + kFrameHeaderBytes,
                   payload_len - kFrameHeaderBytes);
  consumed_ += kFramePrefixBytes + payload_len;
  return Outcome::kFrame;
}

}  // namespace declsched::net::wire
