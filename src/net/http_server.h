// Async HTTP/1.1 server on the epoll reactor.
//
// One reactor thread owns the listener and every connection; application
// handlers run on that thread and answer through a Responder, which may be
// fulfilled immediately or carried off to another thread (a shard worker)
// and completed later — the response is posted back to the reactor. With
// keep-alive pipelining in play, responses are delivered strictly in the
// order their requests arrived on the connection: each request takes a
// slot in a per-connection queue and the writer only flushes completed
// slots from the front.
//
// Built-in protection (before the application sees a request):
//   - bounded connection count: accepts past the cap are answered with a
//     best-effort 503 and closed, so a connection flood cannot exhaust fds;
//   - slow-client write budget: a connection whose buffered response bytes
//     exceed the cap is closed rather than growing without bound;
//   - parser limits: oversized headers (431), oversized bodies (413), and
//     unsupported framings (501) are answered and the connection closed.
//
// Shutdown is graceful: the listener closes first, in-flight responders
// get a drain window to complete, then remaining connections are torn
// down and the reactor stops.

#ifndef DECLSCHED_NET_HTTP_SERVER_H_
#define DECLSCHED_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "net/http.h"
#include "net/reactor.h"
#include "observability/metrics.h"

namespace declsched::net {

class HttpServer {
 public:
  struct Options {
    /// Port to listen on; 0 picks an ephemeral port (read it back with
    /// port() after Start).
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Connection cap; accepts beyond it get a best-effort 503 and close.
    int max_connections = 4096;
    /// Slow-client budget: buffered unsent response bytes above this close
    /// the connection.
    size_t max_write_buffer_bytes = 256 * 1024;
    /// How long Shutdown() waits for in-flight responders.
    int drain_timeout_ms = 2000;
    HttpRequestParser::Limits parser_limits;
    /// Optional: net_* connection counters are registered here.
    observability::MetricsRegistry* metrics = nullptr;
  };

  /// Completion handle for one request's response slot. Copyable; the
  /// first Send wins. If every copy is dropped without sending, a 500 is
  /// delivered so the slot (and the connection behind it) can never hang.
  /// Send is thread-safe and callable from any thread, including after
  /// the connection or the whole server has gone away (it becomes a
  /// no-op).
  class Responder {
   public:
    Responder() = default;
    void Send(HttpResponse response) const;
    bool valid() const { return core_ != nullptr; }

   private:
    friend class HttpServer;
    struct Core;
    std::shared_ptr<Core> core_;
  };

  /// Application callback; runs on the reactor thread. Must not block.
  using HandlerFn = std::function<void(HttpRequest, Responder)>;

  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the reactor thread.
  Status Start(HandlerFn handler);
  /// Graceful stop; idempotent. Safe to call without Start.
  void Shutdown();

  /// Bound port (after Start).
  uint16_t port() const { return port_; }
  /// Live connection count — exact: one atomic maintained at accept and
  /// close, and the same number the net_connections_open gauge exports, so
  /// /metrics reconciles exactly with what the server holds open.
  int64_t connections() const {
    return connection_count_.load(std::memory_order_relaxed);
  }
  /// Responses not yet delivered to their slot.
  int64_t pending_responses() const {
    return pending_slots_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    uint64_t seq = 0;
    bool done = false;
    bool keep_alive = true;
    std::string wire;  ///< serialized response, valid when done
  };

  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    HttpRequestParser parser;
    std::deque<Slot> slots;
    uint64_t next_seq = 0;
    std::string write_buffer;
    bool want_writable = false;
    /// Stop reading and close once all slots have flushed (parser error
    /// or Connection: close).
    bool close_after_flush = false;

    explicit Connection(HttpRequestParser::Limits limits) : parser(limits) {}
  };

  void DoAccept();
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  void ReadFromConnection(Connection* conn);
  void CompleteSlot(uint64_t conn_id, uint64_t seq, HttpResponse response);
  void FlushConnection(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  Responder MakeResponder(uint64_t conn_id, uint64_t seq);

  Options options_;
  HandlerFn handler_;
  std::shared_ptr<Reactor> reactor_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> shut_down_{false};

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::atomic<int64_t> connection_count_{0};
  std::atomic<int64_t> pending_slots_{0};

  // Registered iff options_.metrics != nullptr.
  observability::Counter* accepted_total_ = nullptr;
  observability::Counter* rejected_total_ = nullptr;
  observability::Counter* parse_errors_total_ = nullptr;
  observability::Counter* slow_client_closes_total_ = nullptr;
  observability::Gauge* connections_gauge_ = nullptr;
};

}  // namespace declsched::net

#endif  // DECLSCHED_NET_HTTP_SERVER_H_
