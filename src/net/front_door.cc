#include "net/front_door.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "scheduler/ir/explain.h"
#include "storage/wal.h"

namespace declsched::net {

using scheduler::Request;
using scheduler::RequestBatch;

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* StatusClass(int status) {
  if (status < 300) return "2xx";
  if (status < 500) return "4xx";
  return "5xx";
}

}  // namespace

FrontDoor::FrontDoor(Options options)
    : options_(std::move(options)),
      registry_(scheduler::ProtocolRegistry::BuiltIns()) {
  requests_total_ = metrics_.GetCounter("frontdoor_requests_total",
                                        "HTTP requests received");
  responses_2xx_ = metrics_.GetCounter(
      "frontdoor_responses_total", "HTTP responses by class", {{"class", "2xx"}});
  responses_4xx_ = metrics_.GetCounter(
      "frontdoor_responses_total", "HTTP responses by class", {{"class", "4xx"}});
  responses_5xx_ = metrics_.GetCounter(
      "frontdoor_responses_total", "HTTP responses by class", {{"class", "5xx"}});
  throttled_tenant_ =
      metrics_.GetCounter("frontdoor_throttled_total",
                          "Submissions refused by admission control",
                          {{"reason", "tenant"}});
  throttled_global_ =
      metrics_.GetCounter("frontdoor_throttled_total",
                          "Submissions refused by admission control",
                          {{"reason", "global"}});
  statements_admitted_ = metrics_.GetCounter(
      "frontdoor_statements_admitted_total", "Client statements admitted");
  txns_committed_ = metrics_.GetCounter("frontdoor_txns_committed_total",
                                        "Transactions committed");
  inflight_gauge_ = metrics_.GetGauge("frontdoor_inflight_statements",
                                      "Admitted, unfinished statements");
  submit_latency_us_ = metrics_.GetHistogram(
      "frontdoor_submit_latency_us",
      "Submit admission to last commit, wall micros");
  dispatch_latency_us_ = metrics_.GetHistogram(
      "frontdoor_dispatch_latency_us",
      "Per-operation submit to dispatch, wall micros");
}

FrontDoor::~FrontDoor() { Shutdown(); }

Status FrontDoor::Start() {
  DS_CHECK(!started_.load());

  // Note: max_statements_per_request is a parse-time body limit, not a
  // dispatch limit — a cycle's batch aggregates many admitted requests, so
  // forwarding it to server.max_batch_statements would make a busy cycle
  // fail validation and kill that shard's worker.
  server_ = std::make_unique<server::DatabaseServer>(options_.server);

  scheduler::ShardedScheduler::Options sched_options;
  sched_options.num_shards = options_.num_shards;
  sched_options.shard = options_.shard;
  // The front door's submission order (one op in flight per transaction,
  // objects ascending) is deadlock-free by construction; victim-abort
  // markers would not flow through on_dispatch, so detection stays off.
  sched_options.shard.deadlock_detection = false;
  sched_options.shard.tenant_qos.publish_snapshots = true;
  sched_options.keep_dispatch_log = options_.keep_dispatch_log;
  sched_options.adaptive = options_.adaptive;
  sched_options.metrics = &metrics_;
  sched_options.on_dispatch = [this](int, const RequestBatch& batch) {
    OnDispatch(batch);
  };
  sched_options.durability = options_.durability;
  sched_ = std::make_unique<scheduler::ShardedScheduler>(
      std::move(sched_options), server_.get());

  // Serve before recovering: until Init() (snapshot load + WAL replay)
  // finishes, ready_ stays false and HandleRequest answers 503
  // "recovering" for everything except /metrics.
  HttpServer::Options http_options = options_.http;
  http_options.metrics = &metrics_;
  http_ = std::make_unique<HttpServer>(http_options);
  DS_RETURN_NOT_OK(http_->Start(
      [this](HttpRequest request, HttpServer::Responder responder) {
        HandleRequest(std::move(request), std::move(responder));
      }));
  if (options_.binary.has_value()) {
    wire::BinaryServer::Options binary_options = *options_.binary;
    binary_options.metrics = &metrics_;
    binary_ = std::make_unique<wire::BinaryServer>(binary_options);
    DS_RETURN_NOT_OK(binary_->Start(
        [this](wire::WireFrame frame, wire::BinaryServer::Responder responder) {
          HandleWireFrame(std::move(frame), std::move(responder));
        }));
  }
  started_.store(true);
  if (options_.recovery_barrier_for_test) options_.recovery_barrier_for_test();

  DS_RETURN_NOT_OK(sched_->Init());
  // Resume transaction ids above anything recovery restored; reusing a
  // live ta would merge a new client transaction with a restored one.
  next_ta_.store(sched_->recovered_max_ta() + 1);
  DS_RETURN_NOT_OK(sched_->Start());
  ready_.store(true, std::memory_order_release);
  return Status::OK();
}

void FrontDoor::Shutdown() {
  if (!started_.exchange(false)) {
    if (http_) http_->Shutdown();
    if (binary_) binary_->Shutdown();
    if (sched_) sched_->Stop();
    return;
  }
  draining_.store(true);
  // Servers first: their drain windows let in-flight submit responses
  // complete (the scheduler keeps dispatching while they wait).
  http_->Shutdown();
  if (binary_) binary_->Shutdown();
  sched_->Stop();
  ready_.store(false, std::memory_order_release);
  if (sched_->wal() != nullptr) {
    // Clean-shutdown checkpoint: snapshot at the current head and truncate
    // the log, so the next start replays nothing.
    const Status st = sched_->Checkpoint();
    if (st.ok()) {
      DS_LOG(Info) << "clean shutdown: checkpoint at lsn "
                   << sched_->wal()->head_lsn();
    } else {
      DS_LOG(Error) << "clean-shutdown checkpoint failed: " << st.ToString();
    }
  }
}

namespace {

int StatusToHttpCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

}  // namespace

HttpResponse FrontDoor::StatusToResponse(const Status& status) const {
  const int http_status = StatusToHttpCode(status);
  HttpResponse resp = HttpResponse::Error(
      http_status, StatusCodeToString(status.code()), status.message());
  if (http_status == 429 || http_status == 503) {
    resp.headers.emplace_back("Retry-After",
                              std::to_string(options_.retry_after_seconds));
  }
  return resp;
}

wire::WireError FrontDoor::StatusToWireError(const Status& status) const {
  wire::WireError error;
  error.code = static_cast<uint16_t>(StatusToHttpCode(status));
  if (error.code == 429 || error.code == 503) {
    error.retry_after_seconds =
        static_cast<uint16_t>(options_.retry_after_seconds);
  }
  error.message = status.message();
  return error;
}

void FrontDoor::CountResponse(int status) {
  const char* cls = StatusClass(status);
  if (cls[0] == '2') {
    responses_2xx_->Increment();
  } else if (cls[0] == '4') {
    responses_4xx_->Increment();
  } else {
    responses_5xx_->Increment();
  }
}

void FrontDoor::HandleRequest(HttpRequest request,
                              HttpServer::Responder responder) {
  requests_total_->Increment();
  const std::string path = request.Path();

  if (!ready_.load(std::memory_order_acquire) && started_.load()) {
    // Recovery (snapshot load + WAL replay) is still running. Metrics stay
    // scrapeable; everything else — including submits — answers 503 with
    // Retry-After so clients back off instead of racing the replay.
    HttpResponse resp;
    if (request.method == "GET" && path == "/metrics") {
      resp = HandleMetricsScrape();
    } else if (request.method == "GET" && path == "/healthz") {
      resp = HttpResponse::Json(503, "{\"status\":\"recovering\"}");
      resp.headers.emplace_back("Retry-After",
                                std::to_string(options_.retry_after_seconds));
    } else {
      resp = StatusToResponse(Status::Unavailable("recovering"));
    }
    CountResponse(resp.status);
    responder.Send(std::move(resp));
    return;
  }

  // Deferred route: the submit response fires from OnDispatch.
  if (request.method == "POST" && path == "/v1/submit") {
    HandleSubmit(request, std::move(responder));
    return;
  }

  HttpResponse resp;
  if (request.method == "GET" && path == "/v1/stats") {
    resp = HandleStats();
  } else if (request.method == "GET" && path == "/v1/tenants") {
    resp = HandleTenants();
  } else if (request.method == "GET" && path == "/v1/protocols") {
    resp = HandleProtocols();
  } else if (request.method == "GET" && path == "/metrics") {
    resp = HandleMetricsScrape();
  } else if (request.method == "GET" && path == "/healthz") {
    resp = draining_.load()
               ? HttpResponse::Error(503, "Unavailable", "draining")
               : HttpResponse::Json(200, "{\"status\":\"ok\"}");
  } else if (request.method == "POST" && path == "/v1/admin/protocol") {
    resp = HandleProtocolSwitch(request);
  } else if (request.method == "POST" && path == "/v1/admin/drain") {
    draining_.store(true);
    resp = HttpResponse::Json(200, "{\"draining\":true}");
  } else if (request.method == "GET" && path == "/v1/admin/explain") {
    resp = HandleExplain(request);
  } else {
    resp = HttpResponse::Error(404, "NotFound", "no route " + path);
  }

  CountResponse(resp.status);
  responder.Send(std::move(resp));
}

Status FrontDoor::ParseSubmitBody(const std::string& body, int* tenant,
                                  std::vector<TxnState>* txns,
                                  int64_t* statements) {
  DS_ASSIGN_OR_RETURN(const JsonValue doc, JsonValue::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("submit body must be a JSON object");
  }
  *tenant = 0;
  if (const JsonValue* t = doc.Get("tenant")) {
    if (!t->is_number()) return Status::InvalidArgument("tenant must be a number");
    *tenant = static_cast<int>(t->AsInt64());
    if (*tenant < 0) return Status::InvalidArgument("tenant must be >= 0");
  }
  const JsonValue* txn_list = doc.Get("txns");
  if (txn_list == nullptr || !txn_list->is_array() || txn_list->size() == 0) {
    return Status::InvalidArgument("submit body needs a non-empty txns array");
  }
  *statements = 0;
  for (const JsonValue& txn_value : txn_list->items()) {
    if (!txn_value.is_object()) {
      return Status::InvalidArgument("each txn must be an object");
    }
    const JsonValue* op_list = txn_value.Get("ops");
    if (op_list == nullptr || !op_list->is_array() || op_list->size() == 0) {
      return Status::InvalidArgument("each txn needs a non-empty ops array");
    }
    TxnState txn;
    txn.tenant = *tenant;
    for (const JsonValue& op_value : op_list->items()) {
      if (!op_value.is_object()) {
        return Status::InvalidArgument("each op must be an object");
      }
      const JsonValue* kind = op_value.Get("op");
      const JsonValue* object = op_value.Get("object");
      if (kind == nullptr || !kind->is_string() || object == nullptr ||
          !object->is_number()) {
        return Status::InvalidArgument(
            "each op needs {\"op\": \"read\"|\"write\", \"object\": n}");
      }
      txn::OpType op;
      if (kind->AsString() == "read") {
        op = txn::OpType::kRead;
      } else if (kind->AsString() == "write") {
        op = txn::OpType::kWrite;
      } else {
        return Status::InvalidArgument("op must be \"read\" or \"write\"");
      }
      DS_RETURN_NOT_OK(AppendOp(&txn, op, object->AsInt64()));
    }
    *statements += static_cast<int64_t>(txn.ops.size());
    txns->push_back(std::move(txn));
  }
  if (*statements > options_.max_statements_per_request) {
    return Status::InvalidArgument(
        StrFormat("request carries %lld statements, limit %lld",
                  static_cast<long long>(*statements),
                  static_cast<long long>(options_.max_statements_per_request)));
  }
  return Status::OK();
}

Status FrontDoor::AppendOp(TxnState* txn, txn::OpType op, int64_t object) {
  if (!txn->objects.empty() && object <= txn->objects.back()) {
    return Status::InvalidArgument(
        "ops must name strictly ascending objects (the deadlock-free "
        "submission order)");
  }
  server::Statement stmt;
  stmt.op = op;
  stmt.object = object;
  stmt.tenant = txn->tenant;
  DS_RETURN_NOT_OK(server_->ValidateStatement(stmt));
  txn->objects.push_back(object);
  txn->ops.push_back(op);
  return Status::OK();
}

Status FrontDoor::WireSubmitToTxns(const wire::WireSubmit& submit, int* tenant,
                                   std::vector<TxnState>* txns,
                                   int64_t* statements) {
  if (submit.tenant < 0 ||
      submit.tenant > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("tenant must be >= 0");
  }
  *tenant = static_cast<int>(submit.tenant);
  if (submit.txns.empty()) {
    return Status::InvalidArgument("SUBMIT needs a non-empty txns list");
  }
  *statements = 0;
  for (const wire::WireTxn& wire_txn : submit.txns) {
    if (wire_txn.ops.empty()) {
      return Status::InvalidArgument("each txn needs a non-empty ops list");
    }
    TxnState txn;
    txn.tenant = *tenant;
    for (const wire::WireOpEntry& op : wire_txn.ops) {
      DS_RETURN_NOT_OK(AppendOp(
          &txn, op.write ? txn::OpType::kWrite : txn::OpType::kRead,
          op.object));
    }
    *statements += static_cast<int64_t>(txn.ops.size());
    txns->push_back(std::move(txn));
  }
  if (*statements > options_.max_statements_per_request) {
    return Status::InvalidArgument(
        StrFormat("request carries %lld statements, limit %lld",
                  static_cast<long long>(*statements),
                  static_cast<long long>(options_.max_statements_per_request)));
  }
  return Status::OK();
}

Status FrontDoor::AdmitTenant(int tenant, int64_t statements) {
  // Callers hold mu_.
  const scheduler::TenantQosSpec* spec = nullptr;
  auto spec_it = options_.shard.tenant_qos.tenants.find(tenant);
  if (spec_it != options_.shard.tenant_qos.tenants.end()) {
    spec = &spec_it->second;
  }
  if (spec == nullptr || spec->rate <= 0) return Status::OK();

  auto [it, created] = buckets_.try_emplace(tenant);
  TenantBucket& bucket = it->second;
  const int64_t now_us = WallMicros();
  if (created) {
    bucket.rate = static_cast<double>(spec->rate);
    bucket.burst = static_cast<double>(
        spec->burst > 0 ? spec->burst : std::max<int64_t>(spec->rate, 1));
    bucket.tokens = bucket.burst;
    bucket.last_refill_us = now_us;
  }
  bucket.tokens = std::min(
      bucket.burst,
      bucket.tokens + bucket.rate *
                          static_cast<double>(now_us - bucket.last_refill_us) /
                          1e6);
  bucket.last_refill_us = now_us;
  if (bucket.tokens < static_cast<double>(statements)) {
    return Status::ResourceExhausted(
        StrFormat("tenant %d over its admission rate", tenant));
  }
  bucket.tokens -= static_cast<double>(statements);
  return Status::OK();
}

void FrontDoor::HandleSubmit(const HttpRequest& request,
                             HttpServer::Responder responder) {
  auto reply = [this, &responder](HttpResponse resp) {
    CountResponse(resp.status);
    responder.Send(std::move(resp));
  };

  if (draining_.load()) {
    reply(StatusToResponse(Status::Unavailable("draining")));
    return;
  }
  int tenant = 0;
  std::vector<TxnState> txns;
  int64_t statements = 0;
  const Status parsed =
      ParseSubmitBody(request.body, &tenant, &txns, &statements);
  if (!parsed.ok()) {
    reply(StatusToResponse(parsed));
    return;
  }

  const Status admitted = SubmitWork(
      tenant, std::move(txns), statements,
      [this, responder](const Status& status, const SubmitOutcome& outcome) {
        if (!status.ok()) {
          HttpResponse resp = StatusToResponse(status);
          CountResponse(resp.status);
          responder.Send(std::move(resp));
          return;
        }
        std::string body = StrFormat(
            "{\"txns\":%lld,\"statements\":%lld,\"dispatched\":%lld,"
            "\"latency_us\":%lld}",
            static_cast<long long>(outcome.txns),
            static_cast<long long>(outcome.statements),
            static_cast<long long>(outcome.dispatched),
            static_cast<long long>(outcome.latency_us));
        CountResponse(200);
        responder.Send(HttpResponse::Json(200, std::move(body)));
      });
  if (!admitted.ok()) reply(StatusToResponse(admitted));
}

Status FrontDoor::SubmitWork(int tenant, std::vector<TxnState> txns,
                             int64_t statements, SubmitDoneFn done) {
  if (draining_.load()) return Status::Unavailable("draining");
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_inflight_statements > 0 &&
      inflight_statements_.load(std::memory_order_relaxed) + statements >
          options_.max_inflight_statements) {
    throttled_global_->Increment();
    return Status::ResourceExhausted(
        "global in-flight statement cap reached");
  }
  const Status admitted = AdmitTenant(tenant, statements);
  if (!admitted.ok()) {
    throttled_tenant_->Increment();
    return admitted;
  }

  const uint64_t job_id = next_job_id_.fetch_add(1);
  Job job;
  job.id = job_id;
  job.done = std::move(done);
  job.txns_total = static_cast<int64_t>(txns.size());
  job.statements = statements;
  job.tenant = tenant;
  job.start_us = WallMicros();
  jobs_[job_id] = std::move(job);

  inflight_statements_.fetch_add(statements, std::memory_order_relaxed);
  inflight_gauge_->Set(inflight_statements_.load(std::memory_order_relaxed));
  statements_admitted_->Increment(statements);

  for (TxnState& txn : txns) {
    const txn::TxnId ta = next_ta_.fetch_add(1);
    txn.job_id = job_id;
    auto [it, inserted] = txns_.emplace(ta, std::move(txn));
    DS_CHECK(inserted);
    SubmitOp(it->second, ta);
  }
  return Status::OK();
}

void FrontDoor::HandleWireFrame(wire::WireFrame frame,
                                wire::BinaryServer::Responder responder) {
  requests_total_->Increment();

  if (!ready_.load(std::memory_order_acquire) && started_.load()) {
    // Recovery is still running: same 503 + Retry-After the HTTP side
    // answers, without closing the connection — clients back off and retry
    // on the same pipe.
    CountResponse(503);
    responder.SendError(StatusToWireError(Status::Unavailable("recovering")));
    return;
  }

  switch (frame.op) {
    case wire::WireOp::kSubmit:
      HandleWireSubmit(frame, std::move(responder));
      return;
    case wire::WireOp::kStats: {
      CountResponse(200);
      responder.Send(wire::WireOp::kStatsOk, StatsJson());
      return;
    }
    case wire::WireOp::kExplain: {
      std::string name;
      const Status decoded = wire::DecodeNameBody(frame.body, &name);
      if (!decoded.ok()) {
        const wire::WireError error = StatusToWireError(decoded);
        CountResponse(error.code);
        responder.SendError(error);
        return;
      }
      Result<std::string> plan = ExplainPlanJson(name);
      if (!plan.ok()) {
        const wire::WireError error = StatusToWireError(plan.status());
        CountResponse(error.code);
        responder.SendError(error);
        return;
      }
      CountResponse(200);
      responder.Send(wire::WireOp::kExplainOk, plan.MoveValue());
      return;
    }
    default: {
      // The server only forwards application ops, so this is unreachable
      // in practice; answer rather than assert.
      const wire::WireError error = StatusToWireError(Status::InvalidArgument(
          StrFormat("unhandled op %s", wire::WireOpName(frame.op))));
      CountResponse(error.code);
      responder.SendError(error);
      return;
    }
  }
}

void FrontDoor::HandleWireSubmit(const wire::WireFrame& frame,
                                 wire::BinaryServer::Responder responder) {
  auto fail = [this, &responder](const Status& status) {
    const wire::WireError error = StatusToWireError(status);
    CountResponse(error.code);
    responder.SendError(error);
  };

  if (draining_.load()) {
    fail(Status::Unavailable("draining"));
    return;
  }
  wire::WireSubmit submit;
  const Status decoded = wire::DecodeSubmitBody(frame.body, &submit);
  if (!decoded.ok()) {
    fail(decoded);
    return;
  }
  int tenant = 0;
  std::vector<TxnState> txns;
  int64_t statements = 0;
  const Status converted =
      WireSubmitToTxns(submit, &tenant, &txns, &statements);
  if (!converted.ok()) {
    fail(converted);
    return;
  }

  const Status admitted = SubmitWork(
      tenant, std::move(txns), statements,
      [this, responder](const Status& status, const SubmitOutcome& outcome) {
        if (!status.ok()) {
          const wire::WireError error = StatusToWireError(status);
          CountResponse(error.code);
          responder.SendError(error);
          return;
        }
        wire::WireSubmitResult result;
        result.txns = outcome.txns;
        result.statements = outcome.statements;
        result.dispatched = outcome.dispatched;
        result.latency_us = outcome.latency_us;
        CountResponse(200);
        responder.Send(wire::WireOp::kSubmitOk, EncodeSubmitOkBody(result));
      });
  if (!admitted.ok()) fail(admitted);
}

void FrontDoor::SubmitOp(TxnState& txn, txn::TxnId ta) {
  // Callers hold mu_.
  Request r;
  r.ta = ta;
  r.tenant = txn.tenant;
  if (txn.next < txn.ops.size()) {
    const size_t i = txn.next++;
    r.intrata = static_cast<int64_t>(i) + 1;
    r.op = txn.ops[i];
    r.object = txn.objects[i];
  } else {
    DS_CHECK(!txn.commit_sent);
    txn.commit_sent = true;
    r.intrata = static_cast<int64_t>(txn.ops.size()) + 1;
    r.op = txn::OpType::kCommit;
    r.object = Request::kNoObject;
  }
  txn.last_submit_us = WallMicros();
  sched_->Submit(std::move(r), SimTime());
}

void FrontDoor::OnDispatch(const RequestBatch& batch) {
  const int64_t now_us = WallMicros();
  struct Completion {
    SubmitDoneFn done;
    SubmitOutcome outcome;
    uint64_t durable_lsn = 0;
  };
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Request& r : batch) {
      auto it = txns_.find(r.ta);
      if (it == txns_.end()) continue;  // not a front-door transaction
      TxnState& txn = it->second;
      dispatch_latency_us_->Record(now_us - txn.last_submit_us);
      auto job_it = jobs_.find(txn.job_id);
      DS_CHECK(job_it != jobs_.end());
      Job& job = job_it->second;
      ++job.requests_dispatched;
      if (r.op != txn::OpType::kCommit) {
        SubmitOp(txn, r.ta);
        continue;
      }
      txns_.erase(it);
      txns_committed_->Increment();
      if (sched_->wal() != nullptr) {
        // head_lsn() here covers every record this commit's dispatch
        // appended (store mutations and escrow fan-outs both precede the
        // on_dispatch callback) and, monotonically, all earlier commits of
        // the job on other shards.
        job.durable_lsn = std::max(job.durable_lsn, sched_->wal()->head_lsn());
      }
      if (++job.txns_done < job.txns_total) continue;

      // Last transaction of the batch committed: finish the job.
      inflight_statements_.fetch_sub(job.statements,
                                     std::memory_order_relaxed);
      inflight_gauge_->Set(
          inflight_statements_.load(std::memory_order_relaxed));
      const int64_t latency_us = now_us - job.start_us;
      submit_latency_us_->Record(latency_us);
      SubmitOutcome outcome;
      outcome.txns = job.txns_total;
      outcome.statements = job.statements;
      outcome.dispatched = job.requests_dispatched;
      outcome.latency_us = latency_us;
      completions.push_back(
          Completion{std::move(job.done), outcome, job.durable_lsn});
      jobs_.erase(job_it);
    }
  }
  // Respond outside the lock: the done callback posts to a reactor
  // (cheap), but keep the dispatch path's critical section minimal anyway.
  // With a WAL the acknowledgement is deferred until the job's records are
  // durable — the cycle threads never wait on fsync, only the
  // acknowledgement edge does (group commit batches the waits).
  storage::Wal* wal = sched_->wal();
  for (Completion& c : completions) {
    if (wal != nullptr && c.durable_lsn > 0) {
      wal->WhenDurable(c.durable_lsn,
                       [done = std::move(c.done), outcome = c.outcome]() {
                         done(Status::OK(), outcome);
                       });
    } else {
      c.done(Status::OK(), c.outcome);
    }
  }
}

HttpResponse FrontDoor::HandleStats() {
  return HttpResponse::Json(200, StatsJson());
}

std::string FrontDoor::StatsJson() {
  const scheduler::ShardedScheduler::Totals totals = sched_->totals();
  JsonValue doc = JsonValue::Object();
  doc.Set("shards", JsonValue::Int(sched_->num_shards()));
  doc.Set("draining", JsonValue::Bool(draining_.load()));
  JsonValue t = JsonValue::Object();
  t.Set("submitted", JsonValue::Int(totals.submitted));
  t.Set("dispatched", JsonValue::Int(totals.dispatched));
  t.Set("cycles", JsonValue::Int(totals.cycles));
  t.Set("escrows", JsonValue::Int(totals.escrows));
  t.Set("mirrors_applied", JsonValue::Int(totals.mirrors_applied));
  t.Set("victims", JsonValue::Int(totals.victims));
  t.Set("adaptive_switches", JsonValue::Int(totals.adaptive_switches));
  doc.Set("totals", std::move(t));
  {
    JsonValue adaptive = JsonValue::Object();
    adaptive.Set("enabled", JsonValue::Bool(options_.adaptive.has_value()));
    if (options_.adaptive.has_value()) {
      JsonValue shards = JsonValue::Array();
      for (int i = 0; i < sched_->num_shards(); ++i) {
        const scheduler::AdaptiveConsistencyController* controller =
            sched_->adaptive_controller(i);
        JsonValue s = JsonValue::Object();
        s.Set("relaxed", JsonValue::Bool(controller->relaxed_active()));
        s.Set("active_protocol", JsonValue::Str(controller->active_protocol()));
        s.Set("switches", JsonValue::Int(controller->switches()));
        s.Set("load", JsonValue::Int(controller->last_load()));
        shards.Append(std::move(s));
      }
      adaptive.Set("shards", std::move(shards));
      adaptive.Set("strict",
                   JsonValue::Str(sched_->adaptive_controller(0)->options().strict.name));
      adaptive.Set("relaxed",
                   JsonValue::Str(sched_->adaptive_controller(0)->options().relaxed.name));
    }
    doc.Set("adaptive", std::move(adaptive));
  }
  {
    // Per-shard incoming-queue depth (mutex-safe to sample live). A depth
    // that stays nonzero while `cycles` stops advancing means that shard's
    // worker is gone or wedged — the signature that caught the dispatch-
    // batch-limit worker death.
    JsonValue depths = JsonValue::Array();
    for (int i = 0; i < sched_->num_shards(); ++i) {
      depths.Append(JsonValue::Int(sched_->shard(i)->queue()->size()));
    }
    doc.Set("shard_queue_depths", std::move(depths));
  }
  doc.Set("inflight_statements",
          JsonValue::Int(inflight_statements_.load(std::memory_order_relaxed)));
  JsonValue srv = JsonValue::Object();
  srv.Set("statements", JsonValue::Int(server_->total_statements()));
  srv.Set("busy_us", JsonValue::Int(server_->total_busy().micros()));
  doc.Set("server", std::move(srv));
  {
    std::lock_guard<std::mutex> lock(mu_);
    doc.Set("jobs_inflight", JsonValue::Int(static_cast<int64_t>(jobs_.size())));
  }
  return doc.Dump();
}

HttpResponse FrontDoor::HandleTenants() {
  const scheduler::ShardedScheduler::GlobalTenantSnapshot snap =
      sched_->TenantSnapshot();
  JsonValue doc = JsonValue::Object();
  JsonValue shards = JsonValue::Array();
  for (const auto& stamp : snap.shards) {
    JsonValue s = JsonValue::Object();
    s.Set("version", JsonValue::Int(static_cast<int64_t>(stamp.version)));
    s.Set("pending_epoch",
          JsonValue::Int(static_cast<int64_t>(stamp.pending_epoch)));
    s.Set("history_epoch",
          JsonValue::Int(static_cast<int64_t>(stamp.history_epoch)));
    shards.Append(std::move(s));
  }
  doc.Set("shards", std::move(shards));
  JsonValue tenants = JsonValue::Array();
  for (const auto& row : snap.tenants) {
    JsonValue t = JsonValue::Object();
    t.Set("tenant", JsonValue::Int(row.tenant));
    t.Set("weight", JsonValue::Int(row.weight));
    t.Set("pending", JsonValue::Int(row.pending));
    t.Set("inflight", JsonValue::Int(row.inflight));
    t.Set("admitted", JsonValue::Int(row.admitted));
    t.Set("dispatched", JsonValue::Int(row.dispatched));
    t.Set("finished_rows", JsonValue::Int(row.finished_rows));
    t.Set("service_us", JsonValue::Int(row.service_us));
    tenants.Append(std::move(t));
  }
  doc.Set("tenants", std::move(tenants));
  return HttpResponse::Json(200, doc.Dump());
}

HttpResponse FrontDoor::HandleProtocols() {
  JsonValue doc = JsonValue::Object();
  JsonValue names = JsonValue::Array();
  for (const std::string& name : registry_.Names()) {
    names.Append(JsonValue::Str(name));
  }
  doc.Set("protocols", std::move(names));
  doc.Set("active", JsonValue::Str(options_.shard.protocol.name));
  return HttpResponse::Json(200, doc.Dump());
}

HttpResponse FrontDoor::HandleMetricsScrape() {
  HttpResponse resp;
  resp.status = 200;
  resp.body = metrics_.RenderPrometheus();
  resp.headers.emplace_back("Content-Type",
                            "text/plain; version=0.0.4; charset=utf-8");
  return resp;
}

HttpResponse FrontDoor::HandleProtocolSwitch(const HttpRequest& request) {
  Result<JsonValue> doc = JsonValue::Parse(request.body);
  if (!doc.ok()) return StatusToResponse(doc.status());
  const JsonValue* name = doc.ValueOrDie().Get("protocol");
  if (name == nullptr || !name->is_string()) {
    return StatusToResponse(
        Status::InvalidArgument("body needs {\"protocol\": \"name\"}"));
  }
  Result<scheduler::ProtocolSpec> spec = registry_.Get(name->AsString());
  if (!spec.ok()) return StatusToResponse(spec.status());

  std::lock_guard<std::mutex> admin_lock(admin_mu_);
  // Park the workers, switch every shard (pending work is preserved),
  // resume. In-flight transactions continue under the new protocol.
  sched_->Stop();
  Status switched = Status::OK();
  for (int s = 0; s < sched_->num_shards(); ++s) {
    switched = sched_->shard(s)->SwitchProtocol(spec.ValueOrDie());
    if (!switched.ok()) break;
  }
  const Status restarted = sched_->Start();
  if (!switched.ok()) return StatusToResponse(switched);
  if (!restarted.ok()) return StatusToResponse(restarted);
  options_.shard.protocol = spec.ValueOrDie();
  return HttpResponse::Json(
      200, "{\"protocol\":" + JsonQuote(name->AsString()) + "}");
}

HttpResponse FrontDoor::HandleExplain(const HttpRequest& request) {
  const std::string name = request.Query("protocol");
  if (name.empty()) {
    return StatusToResponse(
        Status::InvalidArgument("missing ?protocol=<name>"));
  }
  Result<std::string> doc = ExplainPlanJson(name);
  if (!doc.ok()) return StatusToResponse(doc.status());
  return HttpResponse::Json(200, doc.MoveValue());
}

Result<std::string> FrontDoor::ExplainPlanJson(const std::string& name) {
  DS_ASSIGN_OR_RETURN(const scheduler::ProtocolSpec spec, registry_.Get(name));
  // A scratch store supplies the catalog; the live shards' stores are
  // cycle-thread-only.
  scheduler::RequestStore store;
  DS_ASSIGN_OR_RETURN(const std::string plan,
                      scheduler::ir::ExplainProtocol(spec, &store));
  JsonValue doc = JsonValue::Object();
  doc.Set("protocol", JsonValue::Str(name));
  doc.Set("plan", JsonValue::Str(plan));
  return doc.Dump();
}

}  // namespace declsched::net
