#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace declsched::net {

namespace {

uint32_t ToEpoll(uint32_t interest) {
  uint32_t events = 0;
  if (interest & Reactor::kReadable) events |= EPOLLIN;
  if (interest & Reactor::kWritable) events |= EPOLLOUT;
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t interest = 0;
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) interest |= Reactor::kReadable;
  if (events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) interest |= Reactor::kWritable;
  return interest;
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  DS_CHECK(epoll_fd_ >= 0);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DS_CHECK(wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  DS_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

Reactor::~Reactor() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Reactor::Add(int fd, uint32_t interest, EventFn fn) {
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl ADD: ") +
                            std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<EventFn>(std::move(fn));
  return Status::OK();
}

Status Reactor::Modify(int fd, uint32_t interest) {
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl MOD: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void Reactor::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void Reactor::Post(TaskFn fn) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    if (!accepting_tasks_) return;
    tasks_.push_back(std::move(fn));
  }
  // Coalesced wakeup: a completion burst (the scheduler finishing a whole
  // dispatch batch) costs one eventfd write, not one per task. The flag is
  // cleared by the loop before it drains, so a post that lands after the
  // drain swap always sees false here and re-arms the wakeup.
  if (!wake_pending_.exchange(true)) {
    const uint64_t one = 1;
    ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    (void)n;  // counter saturation is fine — the loop is already awake
  }
}

void Reactor::Start() {
  DS_CHECK(!running_.load());
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    accepting_tasks_ = true;
  }
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
}

void Reactor::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    accepting_tasks_ = false;
  }
  const uint64_t one = 1;
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;
  if (thread_.joinable()) thread_.join();
  thread_id_.store(std::thread::id());
}

void Reactor::Run() {
  thread_id_.store(std::this_thread::get_id());
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      DS_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        // Must clear before DrainTasks: a poster that enqueues after the
        // drain's swap must find the flag down so its wakeup is not lost.
        wake_pending_.store(false);
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by an earlier event
      std::shared_ptr<EventFn> handler = it->second;
      (*handler)(FromEpoll(events[i].events));
    }
    DrainTasks();
  }
  DrainTasks();  // run late completions so responders never leak
}

void Reactor::DrainTasks() {
  std::vector<TaskFn> batch;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    batch.swap(tasks_);
  }
  for (TaskFn& task : batch) task();
}

}  // namespace declsched::net
