// Single-threaded epoll event loop with cross-thread task posting.
//
// The reactor owns nothing but the loop: callers register file descriptors
// with interest masks and callbacks, and the loop dispatches readiness
// events on its own thread. Post() is the only thread-safe entry point —
// it enqueues a closure and wakes the loop via an eventfd, which is how
// shard worker threads hand completed-request responses back to the
// network thread without any locking in the connection code.

#ifndef DECLSCHED_NET_REACTOR_H_
#define DECLSCHED_NET_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace declsched::net {

class Reactor {
 public:
  /// Bitmask of readiness kinds a handler cares about.
  static constexpr uint32_t kReadable = 1;
  static constexpr uint32_t kWritable = 2;

  /// Called with the readiness mask; runs on the reactor thread.
  using EventFn = std::function<void(uint32_t events)>;
  using TaskFn = std::function<void()>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` with the given interest mask. The callback stays
  /// alive until Remove(fd). Reactor-thread or pre-Start only.
  Status Add(int fd, uint32_t interest, EventFn fn);
  /// Changes the interest mask of a registered fd.
  Status Modify(int fd, uint32_t interest);
  /// Deregisters `fd`; does not close it. Safe to call from inside the
  /// fd's own callback.
  void Remove(int fd);

  /// Enqueues `fn` to run on the reactor thread. Thread-safe; the loop
  /// is woken if sleeping. Tasks posted after Stop() are dropped.
  void Post(TaskFn fn);

  /// Runs the loop on a dedicated thread until Stop().
  void Start();
  /// Stops the loop and joins the thread. Idempotent.
  void Stop();

  bool InReactorThread() const {
    return std::this_thread::get_id() == thread_id_.load();
  }

 private:
  void Run();
  void DrainTasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::atomic<std::thread::id> thread_id_{};

  // Handlers are shared_ptr so a callback removing its own (or another)
  // fd mid-dispatch cannot free the std::function under execution.
  std::unordered_map<int, std::shared_ptr<EventFn>> handlers_;

  std::mutex task_mu_;
  std::vector<TaskFn> tasks_;
  bool accepting_tasks_ = true;
  // True while an eventfd wakeup is outstanding; lets a burst of Post()
  // calls (one per completed request in a dispatch batch) share a single
  // wakeup syscall instead of thrashing the loop thread awake per task.
  std::atomic<bool> wake_pending_{false};
};

}  // namespace declsched::net

#endif  // DECLSCHED_NET_REACTOR_H_
