#include "net/loadgen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "net/http.h"
#include "net/wire/wire_codec.h"

namespace declsched::net {

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Conn {
  int fd = -1;
  bool connecting = false;
  bool busy = false;  ///< HTTP: a request is outstanding
  HttpResponseParser parser;
  std::string out;
  size_t out_off = 0;
  int64_t send_start_us = 0;
  // Binary transport state: responses arrive out of order, so each
  // in-flight request id keeps its own send timestamp.
  wire::FrameParser wire_parser;
  bool hello_sent = false;
  int outstanding = 0;
  uint64_t next_request_id = 1;
  std::unordered_map<uint64_t, int64_t> sent_us;
  // epoll registration state for this fd.
  bool registered = false;
  uint32_t armed = 0;
};

// The driver is edge-light: every connection is registered with one epoll
// instance and all bookkeeping is O(1) per event — no per-iteration scan
// of the connection set. That matters at 10k connections, where a poll()
// array walk per wakeup would burn the CPU the server under test needs.
class Driver {
 public:
  Driver(const LoadgenOptions& options, sockaddr_in addr)
      : options_(options),
        addr_(addr),
        binary_(options.transport == LoadTransport::kBinary),
        pipeline_(binary_ ? std::max(1, options.pipeline) : 1),
        rng_(options.seed) {}

  ~Driver() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Result<LoadgenResult> Run() {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::Internal(std::string("epoll_create1: ") +
                              std::strerror(errno));
    }
    conns_.resize(static_cast<size_t>(options_.connections));
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (!Open(i)) ++result_.connection_errors;
    }
    bool any = false;
    for (const Conn& conn : conns_) any = any || conn.fd >= 0;
    if (!any) {
      return Status::Unavailable(
          StrFormat("no connection to %s:%d could be opened",
                    options_.host.c_str(), options_.port));
    }

    // Settle: complete the connect burst (and flush pipelined HELLOs)
    // before the measurement clock starts, so connection establishment at
    // 10k sockets is not billed into request latency. The full-set scan
    // runs on a coarse timer, not per event.
    if (options_.connect_settle_ms > 0) {
      const int64_t settle_end_us =
          WallMicros() + options_.connect_settle_ms * 1000;
      int64_t next_check_us = 0;
      while (WallMicros() < settle_end_us) {
        const int64_t now_us = WallMicros();
        if (now_us >= next_check_us) {
          bool pending = false;
          for (const Conn& conn : conns_) {
            pending = pending ||
                      (conn.fd >= 0 &&
                       (conn.connecting || conn.out_off < conn.out.size()));
          }
          if (!pending) break;
          next_check_us = now_us + 20000;
        }
        EpollOnce(10);
      }
    }

    const int64_t start_us = WallMicros();
    const int64_t end_us = start_us + options_.duration_ms * 1000;
    const int64_t drain_end_us = end_us + options_.drain_timeout_ms * 1000;
    const bool open_loop = options_.open_loop_rps > 0;
    const double interval_us = open_loop ? 1e6 / options_.open_loop_rps : 0;
    double next_due_us = static_cast<double>(start_us);
    int64_t due_backlog = 0;

    sending_ = true;
    if (!open_loop) {
      // Initial fill; afterwards the read path refills each connection the
      // moment a response completes.
      for (size_t i = 0; i < conns_.size(); ++i) Refill(i);
    }

    while (true) {
      const int64_t now_us = WallMicros();
      sending_ = now_us < end_us;
      if (!sending_ && (inflight_ == 0 || now_us >= drain_end_us)) break;

      if (sending_ && open_loop) {
        while (next_due_us <= static_cast<double>(now_us)) {
          ++due_backlog;
          next_due_us += interval_us;
        }
        while (due_backlog > 0) {
          const size_t idx = PopIdle();
          if (idx == SIZE_MAX) break;
          // Late = the slot this send services was due more than one
          // interval ago (the backlog built up behind busy connections).
          if (due_backlog > 1) ++result_.late_sends;
          --due_backlog;
          StartRequest(idx);
          if (FlushOut(idx)) {
            UpdateInterest(idx);
            PushIdleIfIdle(idx);
          }
        }
      }

      int timeout_ms = 10;
      if (sending_ && open_loop) {
        const int64_t until_due =
            (static_cast<int64_t>(next_due_us) - now_us) / 1000;
        timeout_ms = static_cast<int>(std::clamp<int64_t>(until_due, 0, 10));
      }
      EpollOnce(timeout_ms);
    }

    const int64_t elapsed_us = std::max<int64_t>(WallMicros() - start_us, 1);
    result_.duration_us = elapsed_us;
    // Rate over the send window: responses that straggled into the drain
    // window still completed work issued within it.
    const int64_t window_us = std::max<int64_t>(
        std::min(elapsed_us, options_.duration_ms * 1000), 1);
    result_.achieved_rps = static_cast<double>(result_.responses_2xx) * 1e6 /
                           static_cast<double>(window_us);
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    return std::move(result_);
  }

 private:
  bool Open(size_t idx) {
    Conn& conn = conns_[idx];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) return false;
    const int one = 1;
    setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int rc =
        ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr_), sizeof(addr_));
    if (rc == 0) {
      conn.connecting = false;
      OnConnected(idx);
      UpdateInterest(idx);
      return true;
    }
    if (errno == EINPROGRESS) {
      conn.connecting = true;
      UpdateInterest(idx);
      return true;
    }
    ::close(conn.fd);
    conn.fd = -1;
    return false;
  }

  /// The binary handshake pipelines ahead of the first request: HELLO is
  /// queued the moment the socket connects, no round-trip waited on.
  void OnConnected(size_t idx) {
    Conn& conn = conns_[idx];
    if (binary_ && !conn.hello_sent) {
      wire::AppendFrame(&conn.out, wire::WireOp::kHello, 0, 0,
                        wire::EncodeHelloBody());
      conn.hello_sent = true;
    }
    if (sending_) {
      if (options_.open_loop_rps > 0) {
        PushIdleIfIdle(idx);
      } else {
        Refill(idx);
      }
    }
  }

  void Drop(size_t idx, bool count_error) {
    Conn& conn = conns_[idx];
    inflight_ -= (conn.busy ? 1 : 0) + conn.outstanding;
    if (conn.fd >= 0) ::close(conn.fd);  // close deregisters from epoll
    conn = Conn();
    if (count_error) ++result_.connection_errors;
    // Reconnect so the connection count holds for the rest of the run.
    if (!Open(idx)) ++result_.connection_errors;
  }

  bool IsIdle(const Conn& conn) const {
    if (conn.fd < 0 || conn.connecting) return false;
    return binary_ ? conn.outstanding < pipeline_ : !conn.busy;
  }

  /// Idle tracking for the open loop: a lazily-validated stack. Pushes may
  /// duplicate; PopIdle discards entries that stopped being idle.
  void PushIdleIfIdle(size_t idx) {
    if (options_.open_loop_rps > 0 && IsIdle(conns_[idx])) {
      idle_.push_back(idx);
    }
  }

  size_t PopIdle() {
    while (!idle_.empty()) {
      const size_t idx = idle_.back();
      idle_.pop_back();
      if (IsIdle(conns_[idx])) return idx;
    }
    return SIZE_MAX;
  }

  /// Closed loop: top the connection back up to its pipeline depth and
  /// flush once for however many requests that appended.
  void Refill(size_t idx) {
    Conn& conn = conns_[idx];
    if (!sending_ || conn.fd < 0 || conn.connecting) return;
    if (binary_) {
      while (conn.outstanding < pipeline_) StartRequest(idx);
    } else if (!conn.busy) {
      StartRequest(idx);
    }
    if (FlushOut(idx)) UpdateInterest(idx);
  }

  /// `ops_per_txn` distinct ascending objects — the front door's
  /// deadlock-free submission order.
  void FillObjects(std::set<int64_t>* objects) {
    while (static_cast<int>(objects->size()) < options_.ops_per_txn) {
      objects->insert(rng_.UniformInt(0, options_.num_objects - 1));
    }
  }

  std::string MakeHttpBody() {
    std::string body =
        "{\"tenant\":" + std::to_string(options_.tenant) + ",\"txns\":[";
    for (int t = 0; t < options_.txns_per_request; ++t) {
      if (t > 0) body += ',';
      std::set<int64_t> objects;
      FillObjects(&objects);
      body += "{\"ops\":[";
      bool first = true;
      for (int64_t object : objects) {
        if (!first) body += ',';
        first = false;
        body += "{\"op\":\"write\",\"object\":" + std::to_string(object) + '}';
      }
      body += "]}";
    }
    body += "]}";
    return body;
  }

  std::string MakeWireBody() {
    wire::WireSubmit submit;
    submit.tenant = options_.tenant;
    submit.txns.resize(static_cast<size_t>(options_.txns_per_request));
    for (wire::WireTxn& txn : submit.txns) {
      std::set<int64_t> objects;
      FillObjects(&objects);
      txn.ops.reserve(objects.size());
      for (int64_t object : objects) {
        txn.ops.push_back(wire::WireOpEntry{true, object});
      }
    }
    return wire::EncodeSubmitBody(submit);
  }

  void StartRequest(size_t idx) {
    Conn& conn = conns_[idx];
    ++inflight_;
    if (binary_) {
      const uint64_t request_id = conn.next_request_id++;
      wire::AppendFrame(&conn.out, wire::WireOp::kSubmit, 0, request_id,
                        MakeWireBody());
      conn.sent_us[request_id] = WallMicros();
      ++conn.outstanding;
      ++result_.requests_sent;
      return;
    }
    const std::string body = MakeHttpBody();
    conn.out = "POST /v1/submit HTTP/1.1\r\nHost: " + options_.host +
               "\r\nContent-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
    conn.out_off = 0;
    conn.busy = true;
    conn.send_start_us = WallMicros();
    ++result_.requests_sent;
  }

  /// Writes whatever is buffered. False if the connection was dropped.
  bool FlushOut(size_t idx) {
    Conn& conn = conns_[idx];
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_off,
                                conn.out.size() - conn.out_off);
      if (n > 0) {
        conn.out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      Drop(idx, conn.busy || conn.outstanding > 0);
      return false;
    }
    conn.out.clear();
    conn.out_off = 0;
    return true;
  }

  /// Registers the fd's current interest set with epoll (ADD on first use,
  /// MOD only when the mask changed).
  void UpdateInterest(size_t idx) {
    Conn& conn = conns_[idx];
    if (conn.fd < 0) return;
    uint32_t want = 0;
    if (conn.connecting || conn.out_off < conn.out.size()) want |= EPOLLOUT;
    if (conn.busy || conn.outstanding > 0) want |= EPOLLIN;
    if (conn.registered && want == conn.armed) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = static_cast<uint64_t>(idx);
    const int op = conn.registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (epoll_ctl(epoll_fd_, op, conn.fd, &ev) == 0) {
      conn.registered = true;
      conn.armed = want;
    }
  }

  void EpollOnce(int timeout_ms) {
    epoll_event events[256];
    const int n = epoll_wait(epoll_fd_, events, 256, timeout_ms);
    if (n <= 0) return;
    for (int i = 0; i < n; ++i) {
      const size_t idx = static_cast<size_t>(events[i].data.u64);
      const uint32_t ev = events[i].events;
      Conn& conn = conns_[idx];
      if (conn.fd < 0) continue;
      if (conn.connecting) {
        if (ev & (EPOLLERR | EPOLLHUP)) {
          Drop(idx, true);
          continue;
        }
        if (ev & EPOLLOUT) {
          int err = 0;
          socklen_t len = sizeof(err);
          getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            Drop(idx, true);
            continue;
          }
          conn.connecting = false;
          OnConnected(idx);
        }
      }
      if (conn.fd < 0 || conn.connecting) continue;
      if ((ev & EPOLLOUT) && !FlushOut(idx)) continue;
      if (ev & EPOLLIN) {
        if (binary_) {
          ReadWireReplies(idx);
        } else {
          ReadReplies(idx);
        }
        if (conn.fd < 0) continue;
      } else if (ev & (EPOLLERR | EPOLLHUP)) {
        // Error with nothing readable: the read path cannot observe it.
        Drop(idx, conn.busy || conn.outstanding > 0);
        continue;
      }
      UpdateInterest(idx);
    }
  }

  bool FillParser(size_t idx) {
    Conn& conn = conns_[idx];
    char buf[16 * 1024];
    while (true) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        const std::string_view data(buf, static_cast<size_t>(n));
        if (binary_) {
          conn.wire_parser.Feed(data);
        } else {
          conn.parser.Feed(data);
        }
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      Drop(idx, conn.busy || conn.outstanding > 0);  // peer closed / error
      return false;
    }
    return true;
  }

  void ReadReplies(size_t idx) {
    if (!FillParser(idx)) return;
    Conn& conn = conns_[idx];
    HttpResponseParser::Response response;
    while (true) {
      const HttpResponseParser::Outcome outcome = conn.parser.Next(&response);
      if (outcome == HttpResponseParser::Outcome::kNeedMore) break;
      if (outcome == HttpResponseParser::Outcome::kError) {
        Drop(idx, true);
        return;
      }
      const int64_t latency = WallMicros() - conn.send_start_us;
      if (response.status >= 200 && response.status < 300) {
        ++result_.responses_2xx;
        result_.latency_us.Record(latency);
      } else if (response.status == 429) {
        ++result_.responses_429;
        result_.throttle_latency_us.Record(latency);
      } else {
        ++result_.responses_other;
      }
      conn.busy = false;
      --inflight_;
      if (!response.keep_alive) {
        Drop(idx, false);
        return;
      }
    }
    if (options_.open_loop_rps > 0) {
      PushIdleIfIdle(idx);
    } else {
      Refill(idx);
    }
  }

  void ReadWireReplies(size_t idx) {
    if (!FillParser(idx)) return;
    Conn& conn = conns_[idx];
    wire::WireFrame frame;
    while (true) {
      const wire::FrameParser::Outcome outcome =
          conn.wire_parser.Next(&frame);
      if (outcome == wire::FrameParser::Outcome::kNeedMore) break;
      if (outcome == wire::FrameParser::Outcome::kError) {
        Drop(idx, true);
        return;
      }
      if (frame.op == wire::WireOp::kHelloOk) continue;
      int64_t latency = 0;
      auto it = conn.sent_us.find(frame.request_id);
      if (it != conn.sent_us.end()) {
        latency = WallMicros() - it->second;
        conn.sent_us.erase(it);
        if (conn.outstanding > 0) {
          --conn.outstanding;
          --inflight_;
        }
      }
      if (frame.op == wire::WireOp::kSubmitOk) {
        ++result_.responses_2xx;
        result_.latency_us.Record(latency);
      } else if (frame.op == wire::WireOp::kError) {
        wire::WireError error;
        if (wire::DecodeErrorBody(frame.body, &error).ok() &&
            error.code == 429) {
          ++result_.responses_429;
          result_.throttle_latency_us.Record(latency);
        } else {
          ++result_.responses_other;
        }
      } else {
        ++result_.responses_other;
      }
      if (frame.flags & wire::kFlagCloseAfter) {
        Drop(idx, false);
        return;
      }
    }
    if (options_.open_loop_rps > 0) {
      PushIdleIfIdle(idx);
    } else {
      Refill(idx);
    }
  }

  const LoadgenOptions& options_;
  sockaddr_in addr_;
  const bool binary_;
  const int pipeline_;
  Rng rng_;
  int epoll_fd_ = -1;
  bool sending_ = false;
  /// Requests in flight across all connections (busy + outstanding).
  int64_t inflight_ = 0;
  std::vector<Conn> conns_;
  std::vector<size_t> idle_;
  LoadgenResult result_;
};

}  // namespace

void LoadgenResult::Merge(const LoadgenResult& other) {
  requests_sent += other.requests_sent;
  responses_2xx += other.responses_2xx;
  responses_429 += other.responses_429;
  responses_other += other.responses_other;
  connection_errors += other.connection_errors;
  late_sends += other.late_sends;
  duration_us = std::max(duration_us, other.duration_us);
  achieved_rps += other.achieved_rps;
  latency_us.Merge(other.latency_us);
  throttle_latency_us.Merge(other.throttle_latency_us);
}

std::string LoadgenResult::ToJson() const {
  return StrFormat(
      "{\"requests_sent\":%lld,\"responses_2xx\":%lld,\"responses_429\":%lld,"
      "\"responses_other\":%lld,\"connection_errors\":%lld,"
      "\"late_sends\":%lld,\"duration_us\":%lld,\"achieved_rps\":%.1f,"
      "\"latency_p50_us\":%lld,\"latency_p99_us\":%lld,"
      "\"latency_max_us\":%lld,\"throttle_p99_us\":%lld}",
      static_cast<long long>(requests_sent),
      static_cast<long long>(responses_2xx),
      static_cast<long long>(responses_429),
      static_cast<long long>(responses_other),
      static_cast<long long>(connection_errors),
      static_cast<long long>(late_sends), static_cast<long long>(duration_us),
      achieved_rps, static_cast<long long>(latency_us.Percentile(50)),
      static_cast<long long>(latency_us.Percentile(99)),
      static_cast<long long>(latency_us.max()),
      static_cast<long long>(throttle_latency_us.Percentile(99)));
}

Result<LoadgenResult> RunLoadgen(const LoadgenOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + options.host);
  }
  if (options.connections <= 0) {
    return Status::InvalidArgument("connections must be positive");
  }
  const int threads = std::max(1, options.threads);
  if (threads == 1 || options.connections < threads) {
    return Driver(options, addr).Run();
  }

  // Split the connection set and the offered rate across driver threads;
  // per-thread seeds decorrelate the object draws.
  std::vector<LoadgenOptions> parts(static_cast<size_t>(threads), options);
  const int base = options.connections / threads;
  int remainder = options.connections % threads;
  for (int i = 0; i < threads; ++i) {
    LoadgenOptions& part = parts[static_cast<size_t>(i)];
    part.connections = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    part.threads = 1;
    part.open_loop_rps = options.open_loop_rps / threads;
    part.seed = options.seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(i);
  }

  std::vector<Result<LoadgenResult>> results(
      static_cast<size_t>(threads), Result<LoadgenResult>(LoadgenResult{}));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&parts, &results, &addr, i] {
      results[static_cast<size_t>(i)] =
          Driver(parts[static_cast<size_t>(i)], addr).Run();
    });
  }
  for (std::thread& worker : workers) worker.join();

  LoadgenResult merged;
  bool any_ok = false;
  for (Result<LoadgenResult>& result : results) {
    if (!result.ok()) continue;
    merged.Merge(result.ValueOrDie());
    any_ok = true;
  }
  if (!any_ok) return results[0].status();
  return merged;
}

}  // namespace declsched::net
