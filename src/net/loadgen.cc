#include "net/loadgen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "net/http.h"

namespace declsched::net {

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Conn {
  int fd = -1;
  bool connecting = false;
  bool busy = false;  ///< a request is outstanding
  HttpResponseParser parser;
  std::string out;
  size_t out_off = 0;
  int64_t send_start_us = 0;
};

class Driver {
 public:
  Driver(const LoadgenOptions& options, sockaddr_in addr)
      : options_(options), addr_(addr), rng_(options.seed) {}

  Result<LoadgenResult> Run() {
    conns_.resize(static_cast<size_t>(options_.connections));
    for (Conn& conn : conns_) {
      if (!Open(conn)) ++result_.connection_errors;
    }
    bool any = false;
    for (const Conn& conn : conns_) any = any || conn.fd >= 0;
    if (!any) {
      return Status::Unavailable(
          StrFormat("no connection to %s:%d could be opened",
                    options_.host.c_str(), options_.port));
    }

    const int64_t start_us = WallMicros();
    const int64_t end_us = start_us + options_.duration_ms * 1000;
    const int64_t drain_end_us = end_us + options_.drain_timeout_ms * 1000;
    const bool open_loop = options_.open_loop_rps > 0;
    const double interval_us = open_loop ? 1e6 / options_.open_loop_rps : 0;
    double next_due_us = static_cast<double>(start_us);
    int64_t due_backlog = 0;

    while (true) {
      const int64_t now_us = WallMicros();
      const bool sending = now_us < end_us;
      if (!sending) {
        bool outstanding = false;
        for (const Conn& conn : conns_) outstanding = outstanding || conn.busy;
        if (!outstanding || now_us >= drain_end_us) break;
      }

      if (sending) {
        if (open_loop) {
          while (next_due_us <= static_cast<double>(now_us)) {
            ++due_backlog;
            next_due_us += interval_us;
          }
          while (due_backlog > 0) {
            Conn* idle = FindIdle();
            if (idle == nullptr) break;
            // Late = the slot this send services was due more than one
            // interval ago (the backlog built up behind busy connections).
            if (due_backlog > 1) ++result_.late_sends;
            --due_backlog;
            StartRequest(*idle);
          }
        } else {
          for (Conn& conn : conns_) {
            if (conn.fd >= 0 && !conn.connecting && !conn.busy) {
              StartRequest(conn);
            }
          }
        }
      }

      PollOnce(sending, now_us, open_loop ? next_due_us : 0);
    }

    const int64_t elapsed_us = std::max<int64_t>(WallMicros() - start_us, 1);
    result_.duration_us = elapsed_us;
    // Rate over the send window: responses that straggled into the drain
    // window still completed work issued within it.
    const int64_t window_us = std::max<int64_t>(
        std::min(elapsed_us, options_.duration_ms * 1000), 1);
    result_.achieved_rps = static_cast<double>(result_.responses_2xx) * 1e6 /
                           static_cast<double>(window_us);
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    return std::move(result_);
  }

 private:
  bool Open(Conn& conn) {
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) return false;
    const int one = 1;
    setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int rc =
        ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr_), sizeof(addr_));
    if (rc == 0) {
      conn.connecting = false;
      return true;
    }
    if (errno == EINPROGRESS) {
      conn.connecting = true;
      return true;
    }
    ::close(conn.fd);
    conn.fd = -1;
    return false;
  }

  void Drop(Conn& conn, bool count_error) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn = Conn();
    if (count_error) ++result_.connection_errors;
    // Reconnect so the connection count holds for the rest of the run.
    if (!Open(conn)) ++result_.connection_errors;
  }

  Conn* FindIdle() {
    for (Conn& conn : conns_) {
      if (conn.fd >= 0 && !conn.connecting && !conn.busy) return &conn;
    }
    return nullptr;
  }

  std::string MakeBody() {
    std::string body =
        "{\"tenant\":" + std::to_string(options_.tenant) + ",\"txns\":[";
    for (int t = 0; t < options_.txns_per_request; ++t) {
      if (t > 0) body += ',';
      // Distinct ascending objects — the front door's deadlock-free
      // submission order.
      std::set<int64_t> objects;
      while (static_cast<int>(objects.size()) < options_.ops_per_txn) {
        objects.insert(rng_.UniformInt(0, options_.num_objects - 1));
      }
      body += "{\"ops\":[";
      bool first = true;
      for (int64_t object : objects) {
        if (!first) body += ',';
        first = false;
        body += "{\"op\":\"write\",\"object\":" + std::to_string(object) + '}';
      }
      body += "]}";
    }
    body += "]}";
    return body;
  }

  void StartRequest(Conn& conn) {
    const std::string body = MakeBody();
    conn.out = "POST /v1/submit HTTP/1.1\r\nHost: " + options_.host +
               "\r\nContent-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
    conn.out_off = 0;
    conn.busy = true;
    conn.send_start_us = WallMicros();
    ++result_.requests_sent;
  }

  void PollOnce(bool sending, int64_t now_us, double next_due_us) {
    pollfds_.clear();
    poll_conns_.clear();
    for (Conn& conn : conns_) {
      if (conn.fd < 0) continue;
      short events = 0;
      if (conn.connecting || conn.out_off < conn.out.size()) events |= POLLOUT;
      if (conn.busy) events |= POLLIN;
      if (events == 0) continue;
      pollfds_.push_back(pollfd{conn.fd, events, 0});
      poll_conns_.push_back(&conn);
    }
    int timeout_ms = 10;
    if (sending && next_due_us > 0) {
      const int64_t until_due =
          (static_cast<int64_t>(next_due_us) - now_us) / 1000;
      timeout_ms = static_cast<int>(std::clamp<int64_t>(until_due, 0, 10));
    }
    if (pollfds_.empty()) {
      if (timeout_ms > 0) ::poll(nullptr, 0, timeout_ms);
      return;
    }
    const int ready = ::poll(pollfds_.data(),
                             static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (ready <= 0) return;
    for (size_t i = 0; i < pollfds_.size(); ++i) {
      const short revents = pollfds_[i].revents;
      if (revents == 0) continue;
      Conn& conn = *poll_conns_[i];
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        Drop(conn, conn.busy);
        continue;
      }
      if (conn.connecting && (revents & POLLOUT)) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          Drop(conn, true);
          continue;
        }
        conn.connecting = false;
      }
      if ((revents & POLLOUT) && conn.out_off < conn.out.size()) {
        const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_off,
                                  conn.out.size() - conn.out_off);
        if (n > 0) {
          conn.out_off += static_cast<size_t>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          Drop(conn, conn.busy);
          continue;
        }
      }
      if (revents & POLLIN) ReadReplies(conn);
    }
  }

  void ReadReplies(Conn& conn) {
    char buf[16 * 1024];
    while (true) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      Drop(conn, conn.busy);  // peer closed or hard error
      return;
    }
    HttpResponseParser::Response response;
    while (true) {
      const HttpResponseParser::Outcome outcome = conn.parser.Next(&response);
      if (outcome == HttpResponseParser::Outcome::kNeedMore) break;
      if (outcome == HttpResponseParser::Outcome::kError) {
        Drop(conn, true);
        return;
      }
      const int64_t latency = WallMicros() - conn.send_start_us;
      if (response.status >= 200 && response.status < 300) {
        ++result_.responses_2xx;
        result_.latency_us.Record(latency);
      } else if (response.status == 429) {
        ++result_.responses_429;
        result_.throttle_latency_us.Record(latency);
      } else {
        ++result_.responses_other;
      }
      conn.busy = false;
      if (!response.keep_alive) {
        Drop(conn, false);
        return;
      }
    }
  }

  const LoadgenOptions& options_;
  sockaddr_in addr_;
  Rng rng_;
  std::vector<Conn> conns_;
  std::vector<pollfd> pollfds_;
  std::vector<Conn*> poll_conns_;
  LoadgenResult result_;
};

}  // namespace

std::string LoadgenResult::ToJson() const {
  return StrFormat(
      "{\"requests_sent\":%lld,\"responses_2xx\":%lld,\"responses_429\":%lld,"
      "\"responses_other\":%lld,\"connection_errors\":%lld,"
      "\"late_sends\":%lld,\"duration_us\":%lld,\"achieved_rps\":%.1f,"
      "\"latency_p50_us\":%lld,\"latency_p99_us\":%lld,"
      "\"latency_max_us\":%lld,\"throttle_p99_us\":%lld}",
      static_cast<long long>(requests_sent),
      static_cast<long long>(responses_2xx),
      static_cast<long long>(responses_429),
      static_cast<long long>(responses_other),
      static_cast<long long>(connection_errors),
      static_cast<long long>(late_sends), static_cast<long long>(duration_us),
      achieved_rps, static_cast<long long>(latency_us.Percentile(50)),
      static_cast<long long>(latency_us.Percentile(99)),
      static_cast<long long>(latency_us.max()),
      static_cast<long long>(throttle_latency_us.Percentile(99)));
}

Result<LoadgenResult> RunLoadgen(const LoadgenOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + options.host);
  }
  if (options.connections <= 0) {
    return Status::InvalidArgument("connections must be positive");
  }
  return Driver(options, addr).Run();
}

}  // namespace declsched::net
