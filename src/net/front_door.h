// FrontDoor: the network face of the declarative scheduling middleware.
//
// Wires the async HTTP server — and, when Options::binary is set, the
// multi-reactor binary wire server (net/wire/) — to one ShardedScheduler +
// DatabaseServer stack. Both transports feed the same submission core
// (SubmitWork): same admission order, same tenant buckets, same in-flight
// cap, same response counters, so a batch admits and dispatches
// identically whether it arrived as JSON or as a wire SUBMIT frame. The
// HTTP side speaks a small JSON API:
//
//   POST /v1/submit          submit a batch of transactions; the response
//                            is deferred until every transaction commits
//   GET  /v1/stats           scheduler totals, shard count, server counters
//   GET  /v1/tenants         merged per-tenant accounting snapshot
//   GET  /v1/protocols       names the protocol registry knows
//   GET  /metrics            Prometheus text exposition of the registry
//   GET  /healthz            liveness (200 "ok", 503 when draining)
//   POST /v1/admin/protocol  switch the active protocol on every shard
//   POST /v1/admin/drain     start refusing new submissions (503)
//   GET  /v1/admin/explain   compiled plan of a named protocol
//
// Submission protocol: the front door drives each transaction closed-loop
// against the scheduler's contract — operation k+1 is submitted only after
// operation k has been observed dispatched, and the commit only after the
// last operation. That drive happens inside the scheduler's on_dispatch
// callback (shard worker threads), so no extra threads exist per request;
// the HTTP response is completed from the same callback through the
// server's thread-safe Responder when the batch's last transaction
// commits. Operations are required to arrive in ascending object order
// (enforced at admission, 400 otherwise): with one operation in flight per
// transaction that makes lock acquisition follow a canonical resource
// order, so the workload is deadlock-free by construction and per-shard
// deadlock detection stays off.
//
// Admission control, checked in order, before anything is submitted:
//   1. draining          -> 503 (Unavailable)
//   2. malformed body    -> 400 (InvalidArgument/ParseError)
//   3. validation        -> 400 (row range, tenant, batch size — the
//                           DatabaseServer's validate-first checks)
//   4. global cap        -> 429 + Retry-After (in-flight statements)
//   5. tenant bucket     -> 429 + Retry-After (wall-clock token bucket
//                           from the tenant's TenantQosSpec rate/burst)
// An admitted batch is never lost and never double-answered: every
// statement dispatches exactly once and the response fires exactly once.

#ifndef DECLSCHED_NET_FRONT_DOOR_H_
#define DECLSCHED_NET_FRONT_DOOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/wire/binary_server.h"
#include "observability/metrics.h"
#include "scheduler/protocol_library.h"
#include "scheduler/sharded_scheduler.h"
#include "server/database_server.h"

namespace declsched::net {

class FrontDoor {
 public:
  struct Options {
    HttpServer::Options http;
    /// Optional binary wire front door (see net/wire/): when set, a
    /// BinaryServer starts next to the HTTP server, sharing the same
    /// scheduler, admission caps, and tenant buckets — the two transports
    /// are interchangeable faces of one submission pipeline.
    std::optional<wire::BinaryServer::Options> binary;
    int num_shards = 2;
    /// Per-shard scheduler template (protocol, trigger, tenant QoS).
    /// deadlock_detection is forced off — see the submission-order
    /// contract above.
    scheduler::DeclarativeScheduler::Options shard;
    /// Per-shard adaptive consistency, passed through to the sharded
    /// scheduler: each shard gets its own controller switching between
    /// the strict/relaxed pair on live load signals. /v1/stats reports
    /// the per-shard state under "adaptive".
    std::optional<scheduler::AdaptiveConsistencyController::Options> adaptive;
    server::DatabaseServer::Config server;
    /// Global admission cap: statements admitted but not yet finished.
    /// <= 0 means unlimited.
    int64_t max_inflight_statements = 4096;
    /// Advisory Retry-After for 429/503 responses.
    int retry_after_seconds = 1;
    /// Per-tenant admission buckets are taken from
    /// shard.tenant_qos.tenants: `rate` = statements per wall-clock
    /// second, `burst` = bucket capacity (0 = unlimited). This reuses the
    /// declarative QoS spec at the network edge, ahead of the scheduler's
    /// own simulated-time enforcement.
    /// Maximum statements in one submit body, enforced at parse time on
    /// both transports. Deliberately NOT forwarded to the server's
    /// max_batch_statements: that limit applies to a dispatch cycle's
    /// batch, which aggregates many requests and legitimately grows past
    /// any single body's size under load.
    int64_t max_statements_per_request = 1024;
    /// Keep the scheduler's dispatch log (TakeDispatched) — integration
    /// tests compare the dispatched set against an in-process run.
    bool keep_dispatch_log = false;
    /// WAL + snapshot durability, passed through to the sharded scheduler.
    /// When enabled the front door starts serving *before* recovery runs:
    /// /healthz answers 503 "recovering" (and submits 503 Unavailable)
    /// until replay finishes, then flips to ready. A 200 submit response
    /// is only sent once the batch's WAL records are durable
    /// (storage::Wal::WhenDurable), and Shutdown writes a clean-shutdown
    /// checkpoint so the next start replays nothing.
    scheduler::ShardedScheduler::DurabilityOptions durability;
    /// Test hook: runs after the HTTP server is up but before recovery —
    /// the window where /healthz must report "recovering".
    std::function<void()> recovery_barrier_for_test;
  };

  explicit FrontDoor(Options options);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Builds the stack (server, sharded scheduler, HTTP server) and starts
  /// serving.
  Status Start();
  /// Graceful stop: drain, stop HTTP, stop shards. Idempotent.
  void Shutdown();

  uint16_t port() const { return http_ ? http_->port() : 0; }
  /// Bound binary wire port (0 when Options::binary is unset).
  uint16_t binary_port() const { return binary_ ? binary_->port() : 0; }
  wire::BinaryServer* binary_server() { return binary_.get(); }
  observability::MetricsRegistry& metrics() { return metrics_; }
  scheduler::ShardedScheduler* sched() { return sched_.get(); }
  server::DatabaseServer* server() { return server_.get(); }

  /// Statements admitted and not yet finished (the global-cap gauge).
  int64_t inflight_statements() const {
    return inflight_statements_.load(std::memory_order_relaxed);
  }

  /// Transport-agnostic submit acknowledgement: the counters both the HTTP
  /// 200 body and the wire SUBMIT_OK frame report.
  struct SubmitOutcome {
    int64_t txns = 0;
    int64_t statements = 0;
    int64_t dispatched = 0;
    int64_t latency_us = 0;
  };
  /// Called exactly once when an admitted batch finishes (after its WAL
  /// records are durable, when a WAL is configured). Runs on a shard
  /// worker or the WAL group-commit thread — must not block.
  using SubmitDoneFn = std::function<void(const Status&, const SubmitOutcome&)>;

 private:
  /// One transaction's closed-loop drive state.
  struct TxnState {
    uint64_t job_id = 0;
    int tenant = 0;
    std::vector<txn::ObjectId> objects;  ///< ascending
    std::vector<txn::OpType> ops;        ///< parallel to objects
    size_t next = 0;       ///< next op index; == ops.size() -> commit next
    bool commit_sent = false;
    int64_t last_submit_us = 0;  ///< wall clock of the in-flight op
  };

  /// One submitted batch (POST /v1/submit or wire SUBMIT) being answered.
  struct Job {
    uint64_t id = 0;
    SubmitDoneFn done;
    int64_t txns_total = 0;
    int64_t txns_done = 0;
    int64_t statements = 0;  ///< client statements (excluding commits)
    int64_t requests_dispatched = 0;
    int tenant = 0;
    int64_t start_us = 0;  ///< wall clock at admission
    /// Highest WAL lsn the job's acknowledgement must wait for (0 = no
    /// WAL). Read from Wal::head_lsn() at each commit dispatch, which also
    /// covers the escrow fan-out records the scheduler appends outside the
    /// store (they precede the on_dispatch callback).
    uint64_t durable_lsn = 0;
  };

  struct TenantBucket {
    double tokens = 0;
    double rate = 0;   ///< statements per second
    double burst = 0;  ///< capacity
    int64_t last_refill_us = 0;
  };

  void HandleRequest(HttpRequest request, HttpServer::Responder responder);
  void HandleSubmit(const HttpRequest& request,
                    HttpServer::Responder responder);
  HttpResponse HandleStats();
  HttpResponse HandleTenants();
  HttpResponse HandleProtocols();
  HttpResponse HandleMetricsScrape();
  HttpResponse HandleProtocolSwitch(const HttpRequest& request);
  HttpResponse HandleExplain(const HttpRequest& request);

  /// Binary wire front door: op-dispatches one request frame (runs on a
  /// BinaryServer reactor thread).
  void HandleWireFrame(wire::WireFrame frame,
                       wire::BinaryServer::Responder responder);
  void HandleWireSubmit(const wire::WireFrame& frame,
                        wire::BinaryServer::Responder responder);

  /// Parses + validates a submit body into txn states (no side effects).
  /// On success fills `txns` with ops/objects; tenant written through.
  Status ParseSubmitBody(const std::string& body, int* tenant,
                         std::vector<TxnState>* txns, int64_t* statements);
  /// Same validation for a decoded wire SUBMIT (shared ascending-object /
  /// server-validate / budget rules — the two transports admit identically).
  Status WireSubmitToTxns(const wire::WireSubmit& submit, int* tenant,
                          std::vector<TxnState>* txns, int64_t* statements);
  /// Validates one op against the submission contract and appends it.
  Status AppendOp(TxnState* txn, txn::OpType op, int64_t object);

  /// The transport-agnostic submission core: admission (draining, global
  /// cap, tenant bucket) and scheduler hand-off. On a non-OK return
  /// nothing was admitted and `done` will never be called; on OK, `done`
  /// fires exactly once when the batch's last transaction commits (and is
  /// durable). Counts throttle metrics; response-class counting stays with
  /// the transport that renders the response.
  Status SubmitWork(int tenant, std::vector<TxnState> txns,
                    int64_t statements, SubmitDoneFn done);

  /// Wall-clock token-bucket check for `tenant`; consumes on success.
  Status AdmitTenant(int tenant, int64_t statements);

  /// The scheduler's dispatch callback (shard worker threads): advances
  /// txn cursors, submits next ops/commits, completes finished jobs.
  void OnDispatch(const scheduler::RequestBatch& batch);
  void SubmitOp(TxnState& txn, txn::TxnId ta);

  /// The /v1/stats document (also the wire STATS_OK body).
  std::string StatsJson();
  /// The explain document for a named protocol (also the wire EXPLAIN_OK
  /// body).
  Result<std::string> ExplainPlanJson(const std::string& name);

  HttpResponse StatusToResponse(const Status& status) const;
  wire::WireError StatusToWireError(const Status& status) const;
  /// Bumps frontdoor_responses_total{class} — every response on either
  /// transport goes through here exactly once.
  void CountResponse(int status);

  Options options_;
  observability::MetricsRegistry metrics_;
  std::unique_ptr<server::DatabaseServer> server_;
  std::unique_ptr<scheduler::ShardedScheduler> sched_;
  std::unique_ptr<HttpServer> http_;
  std::unique_ptr<wire::BinaryServer> binary_;
  scheduler::ProtocolRegistry registry_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  /// False while the HTTP server is up but recovery has not finished:
  /// everything except /metrics answers 503 "recovering".
  std::atomic<bool> ready_{false};
  std::atomic<int64_t> inflight_statements_{0};
  std::atomic<int64_t> next_ta_{1};
  std::atomic<uint64_t> next_job_id_{1};

  /// Guards jobs_, txns_, buckets_ — touched at admission (reactor
  /// thread) and from on_dispatch (shard threads). Hot-path cost is one
  /// uncontended lock per dispatched request.
  std::mutex mu_;
  std::unordered_map<uint64_t, Job> jobs_;
  std::unordered_map<txn::TxnId, TxnState> txns_;
  std::map<int, TenantBucket> buckets_;
  /// Serializes admin protocol switches against each other.
  std::mutex admin_mu_;

  // --- cached metric pointers ---
  observability::Counter* requests_total_ = nullptr;
  observability::Counter* responses_2xx_ = nullptr;
  observability::Counter* responses_4xx_ = nullptr;
  observability::Counter* responses_5xx_ = nullptr;
  observability::Counter* throttled_tenant_ = nullptr;
  observability::Counter* throttled_global_ = nullptr;
  observability::Counter* statements_admitted_ = nullptr;
  observability::Counter* txns_committed_ = nullptr;
  observability::Gauge* inflight_gauge_ = nullptr;
  observability::HistogramMetric* submit_latency_us_ = nullptr;
  observability::HistogramMetric* dispatch_latency_us_ = nullptr;
};

}  // namespace declsched::net

#endif  // DECLSCHED_NET_FRONT_DOOR_H_
