// Minimal JSON value, parser, and writer for the HTTP/JSON surface.
//
// Scope: exactly what the front door and load generator need — parse a
// request body into a tree, navigate it with typed accessors, and build
// response bodies. UTF-8 passes through untouched; \uXXXX escapes decode to
// UTF-8; numbers are int64 when they round-trip exactly, double otherwise.
// Depth is bounded so hostile bodies cannot recurse the stack out.

#ifndef DECLSCHED_NET_JSON_H_
#define DECLSCHED_NET_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace declsched::net {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). ParseError on malformed input.
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const { return string_; }

  // --- arrays ---
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const { return array_[i]; }
  std::vector<JsonValue>& items() { return array_; }
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  // --- objects ---
  /// Member lookup; null if absent or not an object.
  const JsonValue* Get(std::string_view key) const;
  void Set(std::string key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Compact serialization (no whitespace).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  bool number_is_int_ = true;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Serializes a string with JSON escaping, including the quotes.
std::string JsonQuote(std::string_view s);

}  // namespace declsched::net

#endif  // DECLSCHED_NET_JSON_H_
