#include "net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace declsched::net {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    DS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Status::ParseError("JSON nested too deeply");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end of JSON");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        DS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        DS_RETURN_NOT_OK(Expect("true"));
        return JsonValue::Bool(true);
      case 'f':
        DS_RETURN_NOT_OK(Expect("false"));
        return JsonValue::Bool(false);
      case 'n':
        DS_RETURN_NOT_OK(Expect("null"));
        return JsonValue();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Status::ParseError(StrFormat("unexpected character '%c'", c));
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // consume '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Status::ParseError("expected object key");
      DS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') return Status::ParseError("expected ':' after key");
      ++pos_;
      DS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      return Status::ParseError("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // consume '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      DS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      return Status::ParseError("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::ParseError("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          DS_ASSIGN_OR_RETURN(const int64_t code, ParseHex4());
          AppendUtf8(out, static_cast<uint32_t>(code));
          break;
        }
        default:
          return Status::ParseError("invalid escape in string");
      }
    }
    return Status::ParseError("unterminated string");
  }

  Result<int64_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Status::ParseError("truncated \\u escape");
    int64_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += c - '0';
      } else if (c >= 'a' && c <= 'f') {
        code += c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        code += c - 'A' + 10;
      } else {
        return Status::ParseError("invalid \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool is_int = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Status::ParseError("bad number");
    errno = 0;
    char* end = nullptr;
    if (is_int) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::Int(v);
      }
      // int64 overflow falls through to double.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size() || !std::isfinite(d)) {
      return Status::ParseError(StrFormat("bad number '%s'", token.c_str()));
    }
    return JsonValue::Double(d);
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Status::ParseError("invalid JSON literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_is_int_ = true;
  v.int_ = i;
  v.double_ = static_cast<double>(i);
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_is_int_ = false;
  v.int_ = static_cast<int64_t>(d);
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

int64_t JsonValue::AsInt64() const {
  return number_is_int_ ? int_ : static_cast<int64_t>(double_);
}

double JsonValue::AsDouble() const {
  return number_is_int_ ? static_cast<double>(int_) : double_;
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  object_.emplace_back(std::move(key), std::move(v));
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonValue::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      if (number_is_int_) return std::to_string(int_);
      return StrFormat("%.17g", double_);
    case Kind::kString:
      return JsonQuote(string_);
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].Dump();
      }
      out += ']';
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += JsonQuote(object_[i].first);
        out += ':';
        out += object_[i].second.Dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

}  // namespace declsched::net
