#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace declsched::net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl O_NONBLOCK: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

// The responder's core outlives both the connection and (safely no-ops
// after) the server: it weakly references the reactor, and the posted
// completion routes through the server pointer only while the reactor is
// still accepting tasks — the server keeps the reactor alive until after
// the loop has drained.
struct HttpServer::Responder::Core {
  std::weak_ptr<Reactor> reactor;
  HttpServer* server = nullptr;
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  std::atomic<bool> sent{false};

  void Deliver(HttpResponse response) {
    if (sent.exchange(true, std::memory_order_acq_rel)) return;
    std::shared_ptr<Reactor> r = reactor.lock();
    if (r == nullptr) return;
    HttpServer* s = server;
    const uint64_t conn = conn_id;
    const uint64_t slot = seq;
    auto task = [s, conn, slot, resp = std::move(response)]() mutable {
      s->CompleteSlot(conn, slot, std::move(resp));
    };
    if (r->InReactorThread()) {
      task();
    } else {
      r->Post(std::move(task));
    }
  }

  ~Core() {
    // Every copy dropped without an answer: fail the slot rather than
    // wedging the connection's pipeline.
    Deliver(HttpResponse::Error(500, "internal", "handler dropped request"));
  }
};

void HttpServer::Responder::Send(HttpResponse response) const {
  if (core_ != nullptr) core_->Deliver(std::move(response));
}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {
  reactor_ = std::make_shared<Reactor>();
  if (options_.metrics != nullptr) {
    auto* m = options_.metrics;
    accepted_total_ = m->GetCounter("net_connections_accepted_total",
                                    "Connections accepted by the listener");
    rejected_total_ =
        m->GetCounter("net_connections_rejected_total",
                      "Connections refused at the max_connections cap");
    parse_errors_total_ = m->GetCounter(
        "net_http_parse_errors_total", "Requests rejected by the HTTP parser");
    slow_client_closes_total_ =
        m->GetCounter("net_slow_client_closes_total",
                      "Connections closed for exceeding the write budget");
    connections_gauge_ =
        m->GetGauge("net_connections_open", "Currently open connections");
  }
}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start(HandlerFn handler) {
  DS_CHECK(!started_);
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 1024) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  DS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  DS_RETURN_NOT_OK(
      reactor_->Add(listen_fd_, Reactor::kReadable, [this](uint32_t) {
        DoAccept();
      }));
  reactor_->Start();
  started_ = true;
  return Status::OK();
}

void HttpServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  if (!started_) {
    reactor_->Stop();
    return;
  }
  // Phase 1: stop accepting.
  reactor_->Post([this] {
    if (listen_fd_ >= 0) {
      reactor_->Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
  // Phase 2: drain in-flight responders.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (pending_slots_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: tear down connections, then stop the loop.
  reactor_->Post([this] {
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (uint64_t id : ids) CloseConnection(id);
  });
  reactor_->Stop();
}

void HttpServer::DoAccept() {
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DS_LOG(Warn) << "accept: " << std::strerror(errno);
      return;
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Over the cap: a one-shot 503 tells well-behaved clients to back
      // off; the write is best-effort on a fresh socket.
      const std::string reply =
          HttpResponse::Error(503, "overloaded", "connection limit reached")
              .Serialize(/*keep_alive=*/false);
      ssize_t n = ::write(fd, reply.data(), reply.size());
      (void)n;
      ::close(fd);
      if (rejected_total_ != nullptr) rejected_total_->Increment();
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.parser_limits);
    conn->id = id;
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_[id] = std::move(conn);
    const Status st = reactor_->Add(
        fd, Reactor::kReadable,
        [this, id](uint32_t events) { OnConnectionEvent(id, events); });
    if (!st.ok()) {
      DS_LOG(Warn) << "register connection: " << st;
      connections_.erase(id);
      ::close(fd);
      continue;
    }
    (void)raw;
    connection_count_.fetch_add(1, std::memory_order_relaxed);
    if (accepted_total_ != nullptr) accepted_total_->Increment();
    // Gauge tracks the accept/close atomic (not the map size) so the
    // exported count is exact from any thread's point of view.
    if (connections_gauge_ != nullptr) connections_gauge_->Add(1);
  }
}

void HttpServer::OnConnectionEvent(uint64_t conn_id, uint32_t events) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (events & Reactor::kReadable) {
    ReadFromConnection(conn);
    // The read may have closed the connection.
    it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    conn = it->second.get();
  }
  if (events & Reactor::kWritable) FlushConnection(conn);
}

HttpServer::Responder HttpServer::MakeResponder(uint64_t conn_id,
                                                uint64_t seq) {
  Responder responder;
  responder.core_ = std::make_shared<Responder::Core>();
  responder.core_->reactor = reactor_;
  responder.core_->server = this;
  responder.core_->conn_id = conn_id;
  responder.core_->seq = seq;
  return responder;
}

void HttpServer::ReadFromConnection(Connection* conn) {
  char buf[16 * 1024];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;  // hard error: treat as close
    break;
  }

  const uint64_t conn_id = conn->id;
  while (!conn->close_after_flush) {
    HttpRequest request;
    const HttpRequestParser::Outcome outcome = conn->parser.Next(&request);
    if (outcome == HttpRequestParser::Outcome::kNeedMore) break;
    if (outcome == HttpRequestParser::Outcome::kError) {
      if (parse_errors_total_ != nullptr) parse_errors_total_->Increment();
      Slot slot;
      slot.seq = conn->next_seq++;
      slot.done = true;
      slot.keep_alive = false;
      slot.wire = HttpResponse::Error(conn->parser.error_status(), "bad_request",
                                      conn->parser.error_message())
                      .Serialize(/*keep_alive=*/false);
      conn->slots.push_back(std::move(slot));
      conn->close_after_flush = true;
      break;
    }
    Slot slot;
    slot.seq = conn->next_seq++;
    slot.keep_alive = request.keep_alive;
    if (!request.keep_alive) conn->close_after_flush = true;
    const uint64_t seq = slot.seq;
    conn->slots.push_back(std::move(slot));
    pending_slots_.fetch_add(1, std::memory_order_acq_rel);
    // The handler may answer inline, which mutates conn->slots — take no
    // references across this call.
    handler_(std::move(request), MakeResponder(conn_id, seq));
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;  // handler path closed us
    conn = it->second.get();
  }

  if (peer_closed) {
    // Flush what we can synchronously, then drop the connection; slots
    // still pending die with it (their responders become no-ops).
    FlushConnection(conn);
    auto it = connections_.find(conn_id);
    if (it != connections_.end()) CloseConnection(conn_id);
    return;
  }
  FlushConnection(conn);
}

void HttpServer::CompleteSlot(uint64_t conn_id, uint64_t seq,
                              HttpResponse response) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // connection died first
  Connection* conn = it->second.get();
  for (Slot& slot : conn->slots) {
    if (slot.seq != seq) continue;
    if (slot.done) return;
    slot.done = true;
    slot.wire = response.Serialize(slot.keep_alive);
    pending_slots_.fetch_sub(1, std::memory_order_acq_rel);
    FlushConnection(conn);
    return;
  }
}

void HttpServer::FlushConnection(Connection* conn) {
  // Move completed slots, in order, into the write buffer.
  while (!conn->slots.empty() && conn->slots.front().done) {
    conn->write_buffer += conn->slots.front().wire;
    conn->slots.pop_front();
  }
  if (conn->write_buffer.size() > options_.max_write_buffer_bytes) {
    if (slow_client_closes_total_ != nullptr) {
      slow_client_closes_total_->Increment();
    }
    CloseConnection(conn->id);
    return;
  }
  size_t written = 0;
  while (written < conn->write_buffer.size()) {
    const ssize_t n = ::write(conn->fd, conn->write_buffer.data() + written,
                              conn->write_buffer.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);  // peer gone
    return;
  }
  conn->write_buffer.erase(0, written);

  const bool need_writable = !conn->write_buffer.empty();
  if (need_writable != conn->want_writable) {
    conn->want_writable = need_writable;
    const uint32_t interest =
        Reactor::kReadable | (need_writable ? Reactor::kWritable : 0);
    (void)reactor_->Modify(conn->fd, interest);
  }
  if (conn->close_after_flush && conn->slots.empty() &&
      conn->write_buffer.empty()) {
    CloseConnection(conn->id);
  }
}

void HttpServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  // Slots that never completed: their responders will no-op into a dead
  // conn_id; drop them from the pending count here.
  for (const Slot& slot : conn->slots) {
    if (!slot.done) pending_slots_.fetch_sub(1, std::memory_order_acq_rel);
  }
  reactor_->Remove(conn->fd);
  ::close(conn->fd);
  connections_.erase(it);
  connection_count_.fetch_sub(1, std::memory_order_relaxed);
  if (connections_gauge_ != nullptr) connections_gauge_->Add(-1);
}

}  // namespace declsched::net
