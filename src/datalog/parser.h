// Datalog parser: text -> Program.

#ifndef DECLSCHED_DATALOG_PARSER_H_
#define DECLSCHED_DATALOG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "datalog/ast.h"

namespace declsched::datalog {

/// Parses a Datalog program. Clauses end with '.'; `%` starts a line comment.
///
///   finished(Ta) :- hist(_, Ta, _, "c", _).
///   blocked(Ta, In) :- req(_, Ta, In, _, Obj), wlock(Obj, T2), Ta != T2.
Result<Program> ParseProgram(std::string_view text);

}  // namespace declsched::datalog

#endif  // DECLSCHED_DATALOG_PARSER_H_
