// Datalog abstract syntax.
//
// Dialect: positive atoms, stratified negation (`!atom` or `not atom`),
// comparison literals (=, !=, <, <=, >, >=), integer/string/symbol constants,
// variables start with an upper-case letter, `_` is an anonymous variable.

#ifndef DECLSCHED_DATALOG_AST_H_
#define DECLSCHED_DATALOG_AST_H_

#include <string>
#include <vector>

#include "storage/value.h"

namespace declsched::datalog {

struct Term {
  enum class Kind { kVariable, kConstant, kWildcard };
  Kind kind = Kind::kWildcard;
  std::string var;         // kVariable
  storage::Value value;    // kConstant

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Const(storage::Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.value = std::move(v);
    return t;
  }
  static Term Wildcard() { return Term{}; }

  std::string ToString() const;
};

struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct BodyLiteral {
  enum class Kind { kAtom, kNegatedAtom, kComparison };
  Kind kind = Kind::kAtom;
  Atom atom;            // kAtom / kNegatedAtom
  CompareOp op = CompareOp::kEq;  // kComparison
  Term lhs, rhs;        // kComparison

  std::string ToString() const;
};

struct Rule {
  Atom head;
  std::vector<BodyLiteral> body;  // empty body = fact (must be ground)

  bool IsFact() const { return body.empty(); }
  std::string ToString() const;
};

struct Program {
  std::vector<Rule> rules;
};

}  // namespace declsched::datalog

#endif  // DECLSCHED_DATALOG_AST_H_
