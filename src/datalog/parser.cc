#include "datalog/parser.h"

#include "common/string_util.h"

namespace declsched::datalog {

namespace {

struct Cursor {
  std::string_view text;
  size_t pos = 0;
  int line = 1;

  bool AtEnd() {
    SkipWhitespace();
    return pos >= text.size();
  }

  void SkipWhitespace() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos;
      } else if (c == '%') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  char Peek() {
    SkipWhitespace();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipWhitespace();
    if (text.substr(pos, word.size()) != word) return false;
    const size_t after = pos + word.size();
    if (after < text.size()) {
      const char c = text[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') return false;
    }
    pos = after;
    return true;
  }

  Status Err(const std::string& message) const {
    return Status::ParseError(StrFormat("datalog: %s (line %d)", message.c_str(), line));
  }
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Result<std::string> ParseIdent(Cursor& cur) {
  cur.SkipWhitespace();
  if (cur.pos >= cur.text.size() || !IsIdentStart(cur.text[cur.pos])) {
    return cur.Err("expected identifier");
  }
  const size_t start = cur.pos;
  while (cur.pos < cur.text.size() && IsIdentCont(cur.text[cur.pos])) ++cur.pos;
  return std::string(cur.text.substr(start, cur.pos - start));
}

Result<Term> ParseTerm(Cursor& cur) {
  const char c = cur.Peek();
  if (c == '"') {
    ++cur.pos;
    std::string body;
    while (cur.pos < cur.text.size() && cur.text[cur.pos] != '"') {
      body += cur.text[cur.pos];
      ++cur.pos;
    }
    if (cur.pos >= cur.text.size()) return cur.Err("unterminated string");
    ++cur.pos;
    return Term::Const(storage::Value::String(std::move(body)));
  }
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
    const size_t start = cur.pos;
    if (c == '-') ++cur.pos;
    bool is_double = false;
    while (cur.pos < cur.text.size()) {
      const char d = cur.text[cur.pos];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++cur.pos;
        continue;
      }
      // A '.' is a decimal point only when a digit follows; otherwise it is
      // the clause terminator ("x(42)." must not lex 42 as 42.0).
      if (d == '.' && !is_double && cur.pos + 1 < cur.text.size() &&
          std::isdigit(static_cast<unsigned char>(cur.text[cur.pos + 1]))) {
        is_double = true;
        ++cur.pos;
        continue;
      }
      break;
    }
    const std::string num(cur.text.substr(start, cur.pos - start));
    if (num == "-") return cur.Err("lonely '-'");
    if (is_double) return Term::Const(storage::Value::Double(std::stod(num)));
    return Term::Const(storage::Value::Int64(std::stoll(num)));
  }
  if (IsIdentStart(c)) {
    DS_ASSIGN_OR_RETURN(std::string name, ParseIdent(cur));
    if (name == "_") return Term::Wildcard();
    if (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_') {
      return Term::Var(std::move(name));
    }
    // Lower-case bare identifier: a symbol constant.
    return Term::Const(storage::Value::String(std::move(name)));
  }
  return cur.Err("expected term");
}

Result<Atom> ParseAtom(Cursor& cur) {
  Atom atom;
  DS_ASSIGN_OR_RETURN(atom.predicate, ParseIdent(cur));
  if (std::isupper(static_cast<unsigned char>(atom.predicate[0]))) {
    return cur.Err("predicate names must start lower-case: " + atom.predicate);
  }
  if (!cur.Consume('(')) return cur.Err("expected '(' after predicate");
  if (cur.Peek() != ')') {
    while (true) {
      DS_ASSIGN_OR_RETURN(Term t, ParseTerm(cur));
      atom.args.push_back(std::move(t));
      if (cur.Consume(',')) continue;
      break;
    }
  }
  if (!cur.Consume(')')) return cur.Err("expected ')'");
  return atom;
}

Result<CompareOp> ParseCompareOp(Cursor& cur) {
  cur.SkipWhitespace();
  const std::string_view rest = cur.text.substr(cur.pos);
  struct OpSpec {
    std::string_view text;
    CompareOp op;
  };
  static constexpr OpSpec kOps[] = {
      {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
      {"=", CompareOp::kEq},  {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const OpSpec& spec : kOps) {
    if (rest.substr(0, spec.text.size()) == spec.text) {
      cur.pos += spec.text.size();
      return spec.op;
    }
  }
  return cur.Err("expected comparison operator");
}

Result<BodyLiteral> ParseBodyLiteral(Cursor& cur) {
  BodyLiteral lit;
  if (cur.Consume('!') || cur.ConsumeWord("not")) {
    lit.kind = BodyLiteral::Kind::kNegatedAtom;
    DS_ASSIGN_OR_RETURN(lit.atom, ParseAtom(cur));
    return lit;
  }
  // Lookahead: an atom starts with ident '('; a comparison starts with a term.
  const size_t saved_pos = cur.pos;
  const int saved_line = cur.line;
  cur.SkipWhitespace();
  if (IsIdentStart(cur.Peek())) {
    auto ident = ParseIdent(cur);
    if (ident.ok() && cur.Peek() == '(' &&
        !std::isupper(static_cast<unsigned char>((*ident)[0]))) {
      cur.pos = saved_pos;
      cur.line = saved_line;
      lit.kind = BodyLiteral::Kind::kAtom;
      DS_ASSIGN_OR_RETURN(lit.atom, ParseAtom(cur));
      return lit;
    }
    cur.pos = saved_pos;
    cur.line = saved_line;
  }
  lit.kind = BodyLiteral::Kind::kComparison;
  DS_ASSIGN_OR_RETURN(lit.lhs, ParseTerm(cur));
  DS_ASSIGN_OR_RETURN(lit.op, ParseCompareOp(cur));
  DS_ASSIGN_OR_RETURN(lit.rhs, ParseTerm(cur));
  return lit;
}

}  // namespace

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      return var;
    case Kind::kConstant:
      return value.type() == storage::ValueType::kString ? "\"" + value.AsString() + "\""
                                                         : value.ToString();
    case Kind::kWildcard:
      return "_";
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

std::string BodyLiteral::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString();
    case Kind::kNegatedAtom:
      return "!" + atom.ToString();
    case Kind::kComparison: {
      static const char* kOpNames[] = {"=", "!=", "<", "<=", ">", ">="};
      return lhs.ToString() + " " + kOpNames[static_cast<int>(op)] + " " +
             rhs.ToString();
    }
  }
  return "?";
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  return out + ".";
}

Result<Program> ParseProgram(std::string_view text) {
  Cursor cur{text};
  Program program;
  while (!cur.AtEnd()) {
    Rule rule;
    DS_ASSIGN_OR_RETURN(rule.head, ParseAtom(cur));
    if (cur.Consume(':')) {
      if (!cur.Consume('-')) return cur.Err("expected ':-'");
      while (true) {
        DS_ASSIGN_OR_RETURN(BodyLiteral lit, ParseBodyLiteral(cur));
        rule.body.push_back(std::move(lit));
        if (cur.Consume(',')) continue;
        break;
      }
    }
    if (!cur.Consume('.')) return cur.Err("expected '.' at end of clause");
    program.rules.push_back(std::move(rule));
  }
  return program;
}

}  // namespace declsched::datalog
