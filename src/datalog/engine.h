// Datalog evaluation engine: stratified negation, semi-naive fixpoint,
// hash-indexed atom matching.
//
// This is the "specialized declarative scheduler language" runtime the
// paper's Section 5 calls for: scheduling protocols written as Datalog rules
// over the request/history relations (cf. Soufflé / DCM in the follow-on
// literature). See scheduler/protocol_library.cc for SS2PL in ~10 rules
// versus ~40 lines of SQL.

#ifndef DECLSCHED_DATALOG_ENGINE_H_
#define DECLSCHED_DATALOG_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"
#include "storage/row.h"

namespace declsched::datalog {

/// A relation instance: a list of same-arity tuples.
using Relation = std::vector<storage::Row>;
/// Named relation instances (input EDB or output IDB).
using Database = std::map<std::string, Relation>;

/// A validated, stratified, compiled Datalog program. Create once, evaluate
/// many times against changing extensional data (the scheduler's hot path).
class DatalogProgram {
 public:
  /// Parses, validates (arity consistency, safety, head groundability,
  /// stratifiability) and compiles `text`.
  static Result<DatalogProgram> Create(std::string_view text);

  /// Evaluates against `edb` and returns all derived IDB relations.
  /// Every EDB predicate used by the program must be present in `edb`
  /// (possibly empty) with matching arity.
  Result<Database> Evaluate(const Database& edb) const;

  /// Predicates the program expects as input (never derived).
  const std::vector<std::string>& edb_predicates() const { return edb_preds_; }
  /// Predicates the program derives.
  const std::vector<std::string>& idb_predicates() const { return idb_preds_; }
  /// Number of strata (1 for negation-free programs).
  int num_strata() const { return num_strata_; }
  /// Number of rules (including facts).
  size_t num_rules() const { return program_.rules.size(); }

  /// The validated program, pretty-printed.
  std::string ToString() const;

 private:
  struct CompiledTerm {
    // var_slot >= 0: variable; -1: constant; -2: wildcard.
    int var_slot = -2;
    storage::Value constant;
  };
  struct CompiledAtom {
    std::string predicate;
    int arity = 0;
    std::vector<CompiledTerm> args;
  };
  struct CompiledLiteral {
    BodyLiteral::Kind kind;
    CompiledAtom atom;         // kAtom / kNegatedAtom
    CompareOp op = CompareOp::kEq;
    CompiledTerm lhs, rhs;     // kComparison
  };
  struct CompiledRule {
    CompiledAtom head;
    std::vector<CompiledLiteral> body;
    int num_vars = 0;
    int stratum = 0;
  };

  friend class Evaluator;

  Program program_;
  std::vector<CompiledRule> compiled_;
  std::vector<std::string> edb_preds_;
  std::vector<std::string> idb_preds_;
  std::map<std::string, int> arity_;
  std::map<std::string, int> stratum_;
  int num_strata_ = 1;
};

}  // namespace declsched::datalog

#endif  // DECLSCHED_DATALOG_ENGINE_H_
