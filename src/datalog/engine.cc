#include "datalog/engine.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "datalog/parser.h"

namespace declsched::datalog {

namespace {

using storage::Row;
using storage::RowEq;
using storage::RowHash;
using storage::Value;
using storage::ValueEq;
using storage::ValueHash;

bool CompareValues(CompareOp op, const Value& l, const Value& r) {
  switch (op) {
    case CompareOp::kEq:
      return l.Equals(r);
    case CompareOp::kNe:
      return !l.Equals(r);
    case CompareOp::kLt:
      return l.Compare(r) < 0;
    case CompareOp::kLe:
      return l.Compare(r) <= 0;
    case CompareOp::kGt:
      return l.Compare(r) > 0;
    case CompareOp::kGe:
      return l.Compare(r) >= 0;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Validation + compilation
// ---------------------------------------------------------------------------

Result<DatalogProgram> DatalogProgram::Create(std::string_view text) {
  DS_ASSIGN_OR_RETURN(Program program, ParseProgram(text));
  DatalogProgram out;
  out.program_ = std::move(program);

  // Arity consistency; head predicates are IDB.
  std::set<std::string> idb;
  std::set<std::string> all_preds;
  auto check_arity = [&](const Atom& atom) -> Status {
    auto [it, inserted] =
        out.arity_.emplace(atom.predicate, static_cast<int>(atom.args.size()));
    if (!inserted && it->second != static_cast<int>(atom.args.size())) {
      return Status::BindError(StrFormat("predicate %s used with arity %zu and %d",
                                         atom.predicate.c_str(), atom.args.size(),
                                         it->second));
    }
    all_preds.insert(atom.predicate);
    return Status::OK();
  };
  for (const Rule& rule : out.program_.rules) {
    DS_RETURN_NOT_OK(check_arity(rule.head));
    idb.insert(rule.head.predicate);
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kComparison) {
        DS_RETURN_NOT_OK(check_arity(lit.atom));
      }
    }
  }
  for (const std::string& p : all_preds) {
    if (idb.count(p) > 0) {
      out.idb_preds_.push_back(p);
    } else {
      out.edb_preds_.push_back(p);
    }
  }

  // Safety: head vars, negated-atom vars and comparison vars must be bound by
  // positive body atoms; facts must be ground; no wildcards in heads.
  for (const Rule& rule : out.program_.rules) {
    std::set<std::string> bound;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      for (const Term& t : lit.atom.args) {
        if (t.kind == Term::Kind::kVariable) bound.insert(t.var);
      }
    }
    auto require_bound = [&](const Term& t, const char* where) -> Status {
      if (t.kind == Term::Kind::kVariable && bound.count(t.var) == 0) {
        return Status::BindError(StrFormat(
            "unsafe rule '%s': variable %s in %s is not bound by a positive atom",
            rule.ToString().c_str(), t.var.c_str(), where));
      }
      return Status::OK();
    };
    for (const Term& t : rule.head.args) {
      if (t.kind == Term::Kind::kWildcard) {
        return Status::BindError("wildcard not allowed in rule head: " +
                                 rule.ToString());
      }
      DS_RETURN_NOT_OK(require_bound(t, "the head"));
    }
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kNegatedAtom) {
        for (const Term& t : lit.atom.args) {
          DS_RETURN_NOT_OK(require_bound(t, "a negated atom"));
        }
      } else if (lit.kind == BodyLiteral::Kind::kComparison) {
        DS_RETURN_NOT_OK(require_bound(lit.lhs, "a comparison"));
        DS_RETURN_NOT_OK(require_bound(lit.rhs, "a comparison"));
      }
    }
  }

  // Stratification: stratum[head] >= stratum[positive dep];
  //                 stratum[head] >= stratum[negated dep] + 1.
  for (const std::string& p : all_preds) out.stratum_[p] = 0;
  const int max_stratum = static_cast<int>(all_preds.size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : out.program_.rules) {
      int& head_stratum = out.stratum_[rule.head.predicate];
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind == BodyLiteral::Kind::kComparison) continue;
        const int dep = out.stratum_[lit.atom.predicate];
        const int need = lit.kind == BodyLiteral::Kind::kNegatedAtom ? dep + 1 : dep;
        if (head_stratum < need) {
          head_stratum = need;
          changed = true;
          if (head_stratum > max_stratum) {
            return Status::BindError(
                "program is not stratifiable (recursion through negation "
                "involving " +
                rule.head.predicate + ")");
          }
        }
      }
    }
  }
  int max_seen = 0;
  for (const auto& [pred, s] : out.stratum_) max_seen = std::max(max_seen, s);
  out.num_strata_ = max_seen + 1;

  // Compile: intern variables per rule.
  for (const Rule& rule : out.program_.rules) {
    CompiledRule cr;
    std::map<std::string, int> slots;
    auto compile_term = [&slots](const Term& t) {
      CompiledTerm ct;
      switch (t.kind) {
        case Term::Kind::kVariable: {
          auto [it, inserted] =
              slots.emplace(t.var, static_cast<int>(slots.size()));
          ct.var_slot = it->second;
          break;
        }
        case Term::Kind::kConstant:
          ct.var_slot = -1;
          ct.constant = t.value;
          break;
        case Term::Kind::kWildcard:
          ct.var_slot = -2;
          break;
      }
      return ct;
    };
    auto compile_atom = [&](const Atom& atom) {
      CompiledAtom ca;
      ca.predicate = atom.predicate;
      ca.arity = static_cast<int>(atom.args.size());
      for (const Term& t : atom.args) ca.args.push_back(compile_term(t));
      return ca;
    };
    // Compile the body first so that positional binding order matches
    // evaluation order; head slots then reuse the same interning.
    for (const BodyLiteral& lit : rule.body) {
      CompiledLiteral cl;
      cl.kind = lit.kind;
      if (lit.kind == BodyLiteral::Kind::kComparison) {
        cl.op = lit.op;
        cl.lhs = compile_term(lit.lhs);
        cl.rhs = compile_term(lit.rhs);
      } else {
        cl.atom = compile_atom(lit.atom);
      }
      cr.body.push_back(std::move(cl));
    }
    cr.head = compile_atom(rule.head);
    cr.num_vars = static_cast<int>(slots.size());
    cr.stratum = out.stratum_[rule.head.predicate];
    out.compiled_.push_back(std::move(cr));
  }
  return out;
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const Rule& rule : program_.rules) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {
constexpr int kNoDelta = -1;
}  // namespace

/// Mutable evaluation state: relation contents plus lazily maintained
/// per-(predicate, position) hash indexes.
class Evaluator {
 public:
  explicit Evaluator(const DatalogProgram& program) : program_(program) {}

  Status Run(const Database& edb, Database* out) {
    // Load EDB.
    for (const std::string& pred : program_.edb_preds_) {
      auto it = edb.find(pred);
      if (it == edb.end()) {
        return Status::InvalidArgument("missing EDB relation: " + pred);
      }
      const int arity = program_.arity_.at(pred);
      RelationState& state = relations_[pred];
      for (const Row& row : it->second) {
        if (static_cast<int>(row.size()) != arity) {
          return Status::InvalidArgument(
              StrFormat("EDB relation %s: tuple arity %zu, expected %d",
                        pred.c_str(), row.size(), arity));
        }
        state.Insert(row);
      }
    }
    for (const std::string& pred : program_.idb_preds_) {
      relations_.try_emplace(pred);  // ensure presence even if empty
    }

    // Evaluate stratum by stratum.
    for (int stratum = 0; stratum < program_.num_strata_; ++stratum) {
      DS_RETURN_NOT_OK(EvalStratum(stratum));
    }

    for (const std::string& pred : program_.idb_preds_) {
      (*out)[pred] = relations_[pred].rows;
    }
    return Status::OK();
  }

 private:
  using CompiledRule = DatalogProgram::CompiledRule;
  using CompiledAtom = DatalogProgram::CompiledAtom;
  using CompiledTerm = DatalogProgram::CompiledTerm;
  using CompiledLiteral = DatalogProgram::CompiledLiteral;

  struct RelationState {
    std::vector<Row> rows;
    std::unordered_set<Row, RowHash, RowEq> index;
    // (position) -> value -> row ordinals; extended lazily.
    std::unordered_map<int, std::unordered_map<Value, std::vector<int>, ValueHash,
                                               ValueEq>>
        pos_index;
    std::unordered_map<int, size_t> pos_index_built_upto;

    bool Insert(const Row& row) {
      if (!index.insert(row).second) return false;
      rows.push_back(row);
      return true;
    }
    bool Contains(const Row& row) const { return index.count(row) > 0; }

    const std::vector<int>& Lookup(int pos, const Value& key) {
      auto& idx = pos_index[pos];
      size_t& upto = pos_index_built_upto[pos];
      while (upto < rows.size()) {
        idx[rows[upto][pos]].push_back(static_cast<int>(upto));
        ++upto;
      }
      static const std::vector<int> kEmpty;
      auto it = idx.find(key);
      return it == idx.end() ? kEmpty : it->second;
    }
  };

  Status EvalStratum(int stratum) {
    std::vector<const CompiledRule*> rules;
    for (const CompiledRule& rule : program_.compiled_) {
      if (rule.stratum == stratum) rules.push_back(&rule);
    }
    if (rules.empty()) return Status::OK();

    // Which predicates are IDB of this stratum (recursion can only go
    // through them)?
    std::set<std::string> stratum_idb;
    for (const CompiledRule* rule : rules) stratum_idb.insert(rule->head.predicate);

    // Round 0: all rules against full relations.
    std::map<std::string, std::vector<Row>> delta;
    for (const CompiledRule* rule : rules) {
      DS_RETURN_NOT_OK(EvalRule(*rule, kNoDelta, nullptr, &delta));
    }

    // Semi-naive iterations.
    while (!delta.empty()) {
      std::map<std::string, std::vector<Row>> next_delta;
      for (const CompiledRule* rule : rules) {
        for (int i = 0; i < static_cast<int>(rule->body.size()); ++i) {
          const CompiledLiteral& lit = rule->body[i];
          if (lit.kind != BodyLiteral::Kind::kAtom) continue;
          if (stratum_idb.count(lit.atom.predicate) == 0) continue;
          auto dit = delta.find(lit.atom.predicate);
          if (dit == delta.end() || dit->second.empty()) continue;
          DS_RETURN_NOT_OK(EvalRule(*rule, i, &dit->second, &next_delta));
        }
      }
      delta = std::move(next_delta);
    }
    return Status::OK();
  }

  /// Evaluates one rule. If delta_atom >= 0, that body atom ranges over
  /// `delta_rows` instead of the full relation. Newly derived tuples go to
  /// the head relation and `new_delta`.
  Status EvalRule(const CompiledRule& rule, int delta_atom,
                  const std::vector<Row>* delta_rows,
                  std::map<std::string, std::vector<Row>>* new_delta) {
    std::vector<Value> env(static_cast<size_t>(rule.num_vars));
    std::vector<bool> bound(static_cast<size_t>(rule.num_vars), false);
    return Solve(rule, 0, delta_atom, delta_rows, &env, &bound, new_delta);
  }

  Result<Value> TermValue(const CompiledTerm& term, const std::vector<Value>& env,
                          const std::vector<bool>& bound) const {
    if (term.var_slot == -1) return term.constant;
    DS_CHECK(term.var_slot >= 0);
    DS_CHECK(bound[term.var_slot]);
    return env[term.var_slot];
  }

  Status Solve(const CompiledRule& rule, size_t literal_index, int delta_atom,
               const std::vector<Row>* delta_rows, std::vector<Value>* env,
               std::vector<bool>* bound,
               std::map<std::string, std::vector<Row>>* new_delta) {
    if (literal_index == rule.body.size()) {
      // Instantiate the head.
      Row head_row;
      head_row.reserve(rule.head.args.size());
      for (const CompiledTerm& t : rule.head.args) {
        DS_ASSIGN_OR_RETURN(Value v, TermValue(t, *env, *bound));
        head_row.push_back(std::move(v));
      }
      RelationState& head_rel = relations_[rule.head.predicate];
      if (head_rel.Insert(head_row)) {
        (*new_delta)[rule.head.predicate].push_back(std::move(head_row));
      }
      return Status::OK();
    }

    const CompiledLiteral& lit = rule.body[literal_index];
    switch (lit.kind) {
      case BodyLiteral::Kind::kComparison: {
        DS_ASSIGN_OR_RETURN(Value l, TermValue(lit.lhs, *env, *bound));
        DS_ASSIGN_OR_RETURN(Value r, TermValue(lit.rhs, *env, *bound));
        if (!CompareValues(lit.op, l, r)) return Status::OK();
        return Solve(rule, literal_index + 1, delta_atom, delta_rows, env, bound,
                     new_delta);
      }
      case BodyLiteral::Kind::kNegatedAtom: {
        // All terms are ground (safety); wildcards mean existential check.
        bool has_wildcard = false;
        Row probe;
        probe.reserve(lit.atom.args.size());
        for (const CompiledTerm& t : lit.atom.args) {
          if (t.var_slot == -2) {
            has_wildcard = true;
            probe.push_back(Value::Null());
          } else {
            DS_ASSIGN_OR_RETURN(Value v, TermValue(t, *env, *bound));
            probe.push_back(std::move(v));
          }
        }
        RelationState& rel = relations_[lit.atom.predicate];
        bool exists;
        if (!has_wildcard) {
          exists = rel.Contains(probe);
        } else {
          exists = false;
          for (const Row& row : rel.rows) {
            bool match = true;
            for (size_t i = 0; i < probe.size(); ++i) {
              if (lit.atom.args[i].var_slot == -2) continue;
              if (!row[i].Equals(probe[i])) {
                match = false;
                break;
              }
            }
            if (match) {
              exists = true;
              break;
            }
          }
        }
        if (exists) return Status::OK();
        return Solve(rule, literal_index + 1, delta_atom, delta_rows, env, bound,
                     new_delta);
      }
      case BodyLiteral::Kind::kAtom: {
        RelationState& rel = relations_[lit.atom.predicate];
        const bool use_delta = static_cast<int>(literal_index) == delta_atom;

        // Candidate rows: delta, an index bucket, or the full relation.
        // The bucket is copied: recursive rules may extend this relation's
        // rows and indexes while we iterate, which would invalidate any
        // reference into the index map.
        const std::vector<Row>* seq = nullptr;
        std::vector<int> bucket;
        bool use_bucket = false;
        if (use_delta) {
          seq = delta_rows;
        } else {
          // Pick the first bound/constant position for an index lookup.
          int pos = -1;
          Value key;
          for (int i = 0; i < lit.atom.arity; ++i) {
            const CompiledTerm& t = lit.atom.args[i];
            if (t.var_slot == -1) {
              pos = i;
              key = t.constant;
              break;
            }
            if (t.var_slot >= 0 && (*bound)[t.var_slot]) {
              pos = i;
              key = (*env)[t.var_slot];
              break;
            }
          }
          if (pos >= 0) {
            bucket = rel.Lookup(pos, key);
            use_bucket = true;
          } else {
            seq = &rel.rows;
          }
        }

        const size_t n = use_bucket ? bucket.size()
                                    : (seq != nullptr ? seq->size() : 0);
        for (size_t k = 0; k < n; ++k) {
          const Row& row = use_bucket ? rel.rows[bucket[k]] : (*seq)[k];
          // Unify.
          std::vector<int> trail;
          bool ok = true;
          for (int i = 0; i < lit.atom.arity; ++i) {
            const CompiledTerm& t = lit.atom.args[i];
            if (t.var_slot == -2) continue;
            if (t.var_slot == -1) {
              if (!row[i].Equals(t.constant)) {
                ok = false;
                break;
              }
              continue;
            }
            if ((*bound)[t.var_slot]) {
              if (!row[i].Equals((*env)[t.var_slot])) {
                ok = false;
                break;
              }
            } else {
              (*env)[t.var_slot] = row[i];
              (*bound)[t.var_slot] = true;
              trail.push_back(t.var_slot);
            }
          }
          if (ok) {
            DS_RETURN_NOT_OK(Solve(rule, literal_index + 1, delta_atom, delta_rows,
                                   env, bound, new_delta));
          }
          for (int slot : trail) (*bound)[slot] = false;
        }
        return Status::OK();
      }
    }
    return Status::Internal("unhandled literal kind");
  }

  const DatalogProgram& program_;
  std::map<std::string, RelationState> relations_;
};

Result<Database> DatalogProgram::Evaluate(const Database& edb) const {
  Evaluator evaluator(*this);
  Database out;
  DS_RETURN_NOT_OK(evaluator.Run(edb, &out));
  return out;
}

}  // namespace declsched::datalog
