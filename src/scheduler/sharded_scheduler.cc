#include "scheduler/sharded_scheduler.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/crashpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "scheduler/durability.h"

namespace declsched::scheduler {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// For busy/coordination accounting: CPU consumed by the calling thread.
// Unlike wall time, this does not charge a shard for the WAL flusher (or a
// neighboring shard, on a machine with fewer cores than threads) preempting
// it mid-cycle — those cycles belong to the preempting thread. Keeps the
// speedup/cost projections meaningful on small CI machines.
int64_t ThreadCpuMicros() {
  timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return ts.tv_sec * 1000000 + ts.tv_nsec / 1000;
}

bool IsFinisher(txn::OpType op) {
  return op == txn::OpType::kCommit || op == txn::OpType::kAbort;
}

}  // namespace

ShardedScheduler::ShardedScheduler(Options options,
                                   server::DatabaseServer* server)
    : options_(std::move(options)),
      server_(server),
      router_(options_.num_shards) {
  DS_CHECK(options_.num_shards >= 1 &&
           options_.num_shards <= ShardRouter::kMaxShards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.metrics != nullptr) {
    auto* m = options_.metrics;
    m_submitted_ =
        m->GetCounter("sched_submitted_total", "Requests admitted (routed)");
    m_dispatched_ =
        m->GetCounter("sched_dispatched_total", "Requests dispatched");
    m_cycles_ = m->GetCounter("sched_cycles_total", "Scheduler cycles run");
    m_escrows_ = m->GetCounter("sched_escrows_total",
                               "Cross-shard finishers through escrow");
    m_mirrors_ = m->GetCounter("sched_mirrors_applied_total",
                               "Escrow mirror markers applied");
    m_victims_ =
        m->GetCounter("sched_victims_total", "Deadlock victims aborted");
    m_gc_removed_ = m->GetCounter("sched_gc_removed_total",
                                  "History rows retired by GC");
    m_cycle_us_.reserve(static_cast<size_t>(options_.num_shards));
    for (int i = 0; i < options_.num_shards; ++i) {
      m_cycle_us_.push_back(
          m->GetHistogram("sched_cycle_us", "Cycle wall time per shard",
                          {{"shard", std::to_string(i)}}));
    }
    if (options_.durability.enabled) {
      m_snapshot_lsn_ = m->GetGauge("snapshot_last_lsn",
                                    "LSN covered by the last snapshot");
      m_recovery_replayed_ =
          m->GetGauge("recovery_replayed_records",
                      "WAL records replayed by the last recovery");
    }
    if (options_.adaptive.has_value()) {
      m_adaptive_switches_ = m->GetCounter(
          "adaptive_switches_total",
          "Protocol switches made by per-shard adaptive controllers");
      m_adaptive_relaxed_.reserve(static_cast<size_t>(options_.num_shards));
      m_adaptive_load_.reserve(static_cast<size_t>(options_.num_shards));
      for (int i = 0; i < options_.num_shards; ++i) {
        m_adaptive_relaxed_.push_back(
            m->GetGauge("adaptive_relaxed",
                        "1 while the shard runs its relaxed protocol",
                        {{"shard", std::to_string(i)}}));
        m_adaptive_load_.push_back(
            m->GetGauge("adaptive_load_score",
                        "Last adaptive load score observed by the shard",
                        {{"shard", std::to_string(i)}}));
      }
    }
  }
}

ShardedScheduler::~ShardedScheduler() { Stop(); }

Status ShardedScheduler::Init() {
  DS_CHECK(!initialized_);
  for (int i = 0; i < options_.num_shards; ++i) {
    DeclarativeScheduler::Options opt = options_.shard;
    opt.shard = i;
    opt.num_shards = options_.num_shards;
    // Shard accountants publish cycle-boundary snapshots so
    // TenantSnapshot() can merge them from any thread.
    opt.tenant_qos.publish_snapshots = true;
    // A disjoint high range per shard: internally assigned ids (deadlock
    // abort markers) can never collide with this class's global ids.
    opt.first_request_id =
        (int64_t{1} << 40) + (static_cast<int64_t>(i) << 32);
    shards_[i]->sched =
        std::make_unique<DeclarativeScheduler>(std::move(opt), server_);
    DS_RETURN_NOT_OK(shards_[i]->sched->Init());
    shards_[i]->sched->queue()->set_notify([this, i] { MarkDirty(i); });
    if (options_.adaptive.has_value()) {
      shards_[i]->adaptive = std::make_unique<AdaptiveConsistencyController>(
          *options_.adaptive, shards_[i]->sched.get());
      DS_RETURN_NOT_OK(shards_[i]->adaptive->Validate());
      // The controller assumes it knows which protocol is active; pin the
      // shard to the strict spec so state and reality start aligned.
      DS_RETURN_NOT_OK(shards_[i]->sched->SwitchProtocol(
          shards_[i]->adaptive->options().strict));
    }
  }
  if (options_.durability.enabled) DS_RETURN_NOT_OK(RecoverAndAttach());
  initialized_ = true;
  return Status::OK();
}

Status ShardedScheduler::RecoverAndAttach() {
  const DurabilityOptions& d = options_.durability;
  if (d.dir.empty()) return Status::InvalidArgument("durability.dir must be set");
  if (::mkdir(d.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(
        StrFormat("mkdir %s: %s", d.dir.c_str(), std::strerror(errno)));
  }
  std::vector<EscrowFanout> fanouts;
  DS_ASSIGN_OR_RETURN(
      recovery_result_,
      storage::RunRecovery(
          d.dir, options_.num_shards,
          [this](int s, const std::vector<storage::TableSnapshot>& tables) {
            return RestoreShardStore(shards_[s]->sched->store(), tables);
          },
          [this, &fanouts](const storage::WalRecord& rec) -> Status {
            if (static_cast<WalRecordType>(rec.type) ==
                WalRecordType::kEscrowFanout) {
              DS_ASSIGN_OR_RETURN(EscrowFanout fanout,
                                  DecodeEscrowFanout(rec.payload));
              fanouts.push_back(std::move(fanout));
              return Status::OK();
            }
            return ApplyWalRecord(shards_[rec.shard]->sched->store(), rec);
          }));
  DS_RETURN_NOT_OK(ReestablishCrossShardState(fanouts));

  storage::Wal::Options wal_opt;
  wal_opt.path = storage::WalPath(d.dir);
  wal_opt.fsync = d.fsync;
  wal_opt.metrics = options_.metrics;
  DS_ASSIGN_OR_RETURN(wal_,
                      storage::Wal::Open(wal_opt, recovery_result_.next_lsn));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_[s]->sched->store()->AttachWal(wal_.get(),
                                          static_cast<uint16_t>(s));
  }
  ckpt_bytes_mark_.store(wal_->appended_bytes(), std::memory_order_relaxed);

  if (recovery_result_.records_replayed > 0 || recovery_result_.tail_truncated) {
    // Fold the replayed tail (and any republished mirrors) into a fresh
    // snapshot: the next recovery starts from it, and a truncated torn
    // tail can never resurface.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    DS_RETURN_NOT_OK(WriteCheckpointNow());
  } else if (m_snapshot_lsn_ != nullptr) {
    m_snapshot_lsn_->Set(static_cast<int64_t>(recovery_result_.snapshot_lsn));
  }
  if (m_recovery_replayed_ != nullptr) {
    m_recovery_replayed_->Set(recovery_result_.records_replayed);
  }
  DS_LOG(Info) << "recovery: replayed " << recovery_result_.records_replayed
               << " wal records (" << recovery_result_.records_skipped
               << " pre-snapshot skipped) on top of snapshot lsn "
               << recovery_result_.snapshot_lsn
               << (recovery_result_.tail_truncated
                       ? " — torn tail truncated (" +
                             recovery_result_.tail_reason + ")"
                       : "")
               << " in " << recovery_result_.duration_us << " us";
  return Status::OK();
}

Status ShardedScheduler::ReestablishCrossShardState(
    const std::vector<EscrowFanout>& fanouts) {
  struct TxnState {
    uint32_t rows_mask = 0;    ///< shards with non-marker rows of the txn
    uint32_t marker_mask = 0;  ///< shards with a termination marker in history
    int pending_finisher_shard = -1;
    Request pending_finisher;
  };
  std::unordered_map<txn::TxnId, TxnState> txns;
  // Id counters died with the process; the restored rows carry the high
  // water marks. Ids at or above 1<<40 are the shards' internal ranges
  // (victim markers) and must not drag the global counter into them.
  int64_t max_id = 0;
  txn::TxnId max_ta = 0;
  const auto observe_ids = [&](const Request& r) {
    if (r.id < (int64_t{1} << 40)) max_id = std::max(max_id, r.id);
    max_ta = std::max(max_ta, r.ta);
  };
  for (int s = 0; s < options_.num_shards; ++s) {
    RequestStore* store = shards_[s]->sched->store();
    for (const auto& [id, r] : store->pending_by_id()) {
      observe_ids(r);
      TxnState& t = txns[r.ta];
      if (IsFinisher(r.op)) {
        t.pending_finisher_shard = s;
        t.pending_finisher = r;
      } else {
        t.rows_mask |= 1u << s;
      }
    }
    store->catalog()
        ->GetTable("history")
        ->ForEach([&](storage::RowId, const storage::Row& row) {
          const Request r = RequestStore::RowToRequestFull(row);
          observe_ids(r);
          TxnState& t = txns[r.ta];
          if (IsFinisher(r.op)) {
            t.marker_mask |= 1u << s;
          } else {
            t.rows_mask |= 1u << s;
          }
        });
  }
  next_id_.store(max_id + 1, std::memory_order_relaxed);
  recovered_max_ta_ = max_ta;

  for (auto& [ta, t] : txns) {
    if (t.marker_mask != 0) continue;  // finished; mirrors below handle stragglers
    // Unfinished: the router's footprint died with the process, but the
    // restored rows say exactly which shards hold this transaction's
    // locks — without this, a resubmitted finisher would hash-fall-back
    // to one arbitrary shard and leak locks everywhere else.
    uint32_t mask = t.rows_mask;
    for (int s = 0; mask != 0; ++s, mask >>= 1) {
      if (mask & 1u) router_.RecordFootprint(ta, s);
    }
    if (t.pending_finisher_shard < 0) continue;
    // A restored-but-undispatched finisher: if its transaction spans
    // shards, re-register the escrow entries its original Submit created,
    // or its dispatch would never fan the lock releases out.
    const int home = t.pending_finisher_shard;
    const uint32_t full = t.rows_mask | (1u << home);
    std::vector<int> involved;
    for (int s = 0; s < options_.num_shards; ++s) {
      if (full >> s & 1u) involved.push_back(s);
    }
    if (involved.size() <= 1) continue;
    for (int s : involved) {
      Shard& sh = *shards_[s];
      EscrowEntry entry;
      entry.marker = t.pending_finisher;
      entry.mirror_mask = s == home ? full : 0;
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      if (sh.escrow_entries.emplace(ta, std::move(entry)).second) {
        sh.escrow_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Re-publish mirrors whose application never reached the receiving
  // shard's log: the fanout record proves the finisher dispatched; a shard
  // still holding non-marker rows with no marker of its own never applied
  // (or never re-logged) the release.
  for (const EscrowFanout& fanout : fanouts) {
    auto it = txns.find(fanout.marker.ta);
    if (it == txns.end()) continue;  // fully retired everywhere
    const TxnState& t = it->second;
    uint32_t mask = fanout.mask;
    for (int s = 0; mask != 0; ++s, mask >>= 1) {
      if (!(mask & 1u)) continue;
      if ((t.rows_mask >> s & 1u) && !(t.marker_mask >> s & 1u)) {
        PublishMirror(s, fanout.marker);
      }
    }
  }
  return Status::OK();
}

void ShardedScheduler::MarkDirty(int s) {
  Shard& sh = *shards_[s];
  {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    sh.dirty = true;
  }
  sh.wake_cv.notify_all();
}

int64_t ShardedScheduler::Submit(Request request, SimTime now) {
  DS_CHECK(initialized_);
  const int64_t t0 = ThreadCpuMicros();
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.arrival = now;
  // Advance the shared cycle clock (max, monotone).
  int64_t observed = now_us_.load(std::memory_order_relaxed);
  while (now.micros() > observed &&
         !now_us_.compare_exchange_weak(observed, now.micros(),
                                        std::memory_order_relaxed)) {
  }

  const ShardRouter::Route route = router_.RouteRequest(request);
  if (route.involved.size() <= 1) {
    shards_[route.shard]->sched->SubmitRouted(request);
  } else {
    // Escrow path: tickets in canonical (ascending) shard order.
    for (int s : route.involved) shards_[s]->ticket_mu.lock();
    uint32_t mask = 0;
    for (int s : route.involved) mask |= 1u << s;
    const int home = route.involved.front();
    for (int s : route.involved) {
      Shard& sh = *shards_[s];
      EscrowEntry entry;
      entry.marker = request;
      entry.mirror_mask = s == home ? mask : 0;
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      if (sh.escrow_entries.emplace(request.ta, std::move(entry)).second) {
        sh.escrow_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Every involved shard has granted (ticket held, escrow registered):
    // publish the finisher for dispatch by the home shard's protocol.
    shards_[home]->sched->SubmitRouted(request);
    for (auto it = route.involved.rbegin(); it != route.involved.rend(); ++it) {
      shards_[*it]->ticket_mu.unlock();
    }
    escrows_.fetch_add(1, std::memory_order_relaxed);
    if (m_escrows_ != nullptr) m_escrows_->Increment();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (m_submitted_ != nullptr) m_submitted_->Increment();
  coordination_us_.fetch_add(ThreadCpuMicros() - t0, std::memory_order_relaxed);
  return request.id;
}

Status ShardedScheduler::AbortTransaction(txn::TxnId ta, SimTime now) {
  DS_CHECK(initialized_);
  const std::vector<int> footprint = router_.Footprint(ta);
  if (footprint.empty()) {
    return Status::NotFound(
        StrFormat("no footprint recorded for transaction %lld",
                  static_cast<long long>(ta)));
  }
  router_.Forget(ta);
  for (int s : footprint) {
    Request marker;
    marker.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    marker.ta = ta;
    marker.intrata = 1 << 30;
    marker.op = txn::OpType::kAbort;
    marker.object = Request::kNoObject;
    marker.arrival = now;
    marker.client = -1;
    PublishMirror(s, marker);
  }
  external_aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ShardedScheduler::PublishMirror(int to_shard, const Request& marker) {
  Shard& sh = *shards_[to_shard];
  {
    std::lock_guard<std::mutex> lock(sh.mirror_mu);
    sh.mirror_inbox.push_back(marker);
  }
  MarkDirty(to_shard);
}

int ShardedScheduler::ApplyMirrors(int s) {
  Shard& sh = *shards_[s];
  std::vector<Request> inbox;
  {
    std::lock_guard<std::mutex> lock(sh.mirror_mu);
    inbox.swap(sh.mirror_inbox);
  }
  for (const Request& marker : inbox) {
    DS_CHECK_OK(sh.sched->ApplyEscrowedFinisher(marker));
    {
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      if (sh.escrow_entries.erase(marker.ta) > 0) {
        sh.escrow_count.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    mirrors_applied_.fetch_add(1, std::memory_order_relaxed);
    if (m_mirrors_ != nullptr) m_mirrors_->Increment();
  }
  return static_cast<int>(inbox.size());
}

Status ShardedScheduler::ProcessDispatched(int s, const RequestBatch& batch) {
  if (batch.empty()) return Status::OK();
  Shard& sh = *shards_[s];
  // Escrow fan-out: a dispatched cross-shard finisher publishes its mirror
  // markers to the other involved shards — locks release there only now,
  // never before the dispatch.
  for (const Request& r : batch) {
    if (!IsFinisher(r.op)) continue;
    uint32_t mask = 0;
    {
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      auto it = sh.escrow_entries.find(r.ta);
      if (it != sh.escrow_entries.end()) {
        mask = it->second.mirror_mask;
        sh.escrow_entries.erase(it);
        sh.escrow_count.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    // Make the fan-out durable before publishing: the inboxes are memory,
    // and the home shard's own GC retires the marker in this same cycle —
    // without this record a crash here would leak the other shards' locks
    // forever (recovery re-publishes from it; see
    // ReestablishCrossShardState).
    if (mask != 0 && wal_ != nullptr) {
      wal_->Append(static_cast<uint8_t>(WalRecordType::kEscrowFanout),
                   static_cast<uint16_t>(s), EncodeEscrowFanout(mask, r));
    }
    for (int t = 0; mask != 0; ++t, mask >>= 1) {
      if ((mask & 1u) && t != s) PublishMirror(t, r);
    }
  }
  dispatched_.fetch_add(static_cast<int64_t>(batch.size()),
                        std::memory_order_relaxed);
  if (m_dispatched_ != nullptr) {
    m_dispatched_->Increment(static_cast<int64_t>(batch.size()));
  }
  if (options_.keep_dispatch_log) {
    std::lock_guard<std::mutex> lock(dispatch_log_mu_);
    dispatch_log_.insert(dispatch_log_.end(), batch.begin(), batch.end());
  }
  if (options_.on_dispatch) options_.on_dispatch(s, batch);
  return Status::OK();
}

Result<bool> ShardedScheduler::RunShardOnce(int s, SimTime now) {
  Shard& sh = *shards_[s];
  const int64_t t0 = ThreadCpuMicros();

  // Order matters: consume the wake flag BEFORE draining the mirror inbox.
  // A mirror published after the consume leaves the flag set for the next
  // pass; a mirror published before it is drained below and forces a cycle
  // via `applied`. Draining first would allow a mirror to slip in between
  // drain and consume — the cycle would then run without the marker in the
  // store, dispatch nothing, and eat the only wakeup (a permanent stall).
  bool runnable;
  {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    runnable = sh.dirty;
    sh.dirty = false;
  }
  const int applied = ApplyMirrors(s);
  runnable = runnable || applied > 0;

  // Refresh the advisory escrow view for this shard's protocol. In the
  // common zero-escrow case skip the lock entirely; the view is advisory,
  // so a registration racing this relaxed read is simply visible one
  // cycle later.
  if (sh.escrow_count.load(std::memory_order_relaxed) == 0) {
    sh.escrow_view.txns.clear();
    sh.sched->set_escrowed_locks(nullptr);
  } else {
    std::lock_guard<std::mutex> lock(sh.escrow_mu);
    sh.escrow_view.txns.clear();
    for (const auto& [ta, entry] : sh.escrow_entries) {
      sh.escrow_view.txns.push_back(ta);
    }
    sh.sched->set_escrowed_locks(sh.escrow_view.txns.empty() ? nullptr
                                                             : &sh.escrow_view);
  }

  if (!runnable ||
      (sh.sched->queue_size() == 0 && sh.sched->store()->pending_count() == 0)) {
    sh.busy_us.fetch_add(ThreadCpuMicros() - t0, std::memory_order_relaxed);
    return false;
  }

  DS_ASSIGN_OR_RETURN(const CycleStats stats, sh.sched->RunCycle(now));
  cycles_.fetch_add(1, std::memory_order_relaxed);
  if (m_cycles_ != nullptr) {
    m_cycles_->Increment();
    m_cycle_us_[static_cast<size_t>(s)]->Record(stats.total_us);
    if (stats.gc_removed > 0) m_gc_removed_->Increment(stats.gc_removed);
  }
  DS_RETURN_NOT_OK(ProcessDispatched(s, sh.sched->last_dispatched()));

  // Cross-shard victim mirroring: the resolver aborted these transactions
  // here; release their locks (and drop their pending) on every other shard
  // in their footprint.
  for (txn::TxnId victim : sh.sched->last_victims()) {
    victims_.fetch_add(1, std::memory_order_relaxed);
    if (m_victims_ != nullptr) m_victims_->Increment();
    const std::vector<int> footprint = router_.Footprint(victim);
    router_.Forget(victim);
    for (int t : footprint) {
      if (t == s) continue;
      Request marker;
      marker.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      marker.ta = victim;
      marker.intrata = 1 << 30;
      marker.op = txn::OpType::kAbort;
      marker.object = Request::kNoObject;
      marker.arrival = now;
      marker.client = -1;
      PublishMirror(t, marker);
    }
  }

  // Per-shard adaptive consistency: fold this cycle's live signals into
  // the controller. Sampled after dispatch/victim processing so queue and
  // pending depths describe what the *next* cycle will face.
  if (sh.adaptive != nullptr) {
    // Starvation window for the accountant scan: a tenant whose oldest
    // pending request has waited this long (simulated) counts as starved —
    // load the hysteresis cannot ignore.
    constexpr int64_t kStarvationWaitUs = 100000;
    AdaptiveSignals sig;
    sig.queue_depth = sh.sched->queue_size();
    sig.wait_depth = sh.sched->store()->pending_count();
    sig.conflict_depth =
        stats.pending_before + stats.drained - stats.qualified;
    if (TenantAccountant* acct = sh.sched->tenant_accountant()) {
      for (const TenantAccountant::TenantTotals& t : acct->Totals()) {
        sig.inflight += t.inflight;
      }
      sig.starved_tenants = static_cast<int64_t>(
          acct->StarvedTenants(now, kStarvationWaitUs).size());
    }
    DS_ASSIGN_OR_RETURN(const bool switched, sh.adaptive->OnCycle(sig));
    if (switched) {
      adaptive_switches_.fetch_add(1, std::memory_order_relaxed);
      if (m_adaptive_switches_ != nullptr) m_adaptive_switches_->Increment();
    }
    if (m_adaptive_switches_ != nullptr) {
      m_adaptive_relaxed_[static_cast<size_t>(s)]->Set(
          sh.adaptive->relaxed_active() ? 1 : 0);
      m_adaptive_load_[static_cast<size_t>(s)]->Set(sig.LoadScore());
    }
  }

  // Dispatches and aborts change lock state — pending requests that were
  // blocked may now qualify, so look again. A cycle that moved nothing
  // leaves the shard quiescent until new input arrives.
  if (stats.dispatched > 0 || stats.victims > 0) MarkDirty(s);

  sh.busy_us.fetch_add(ThreadCpuMicros() - t0, std::memory_order_relaxed);
  return true;
}

void ShardedScheduler::WorkerLoop(int s) {
  Shard& sh = *shards_[s];
  while (!stop_.load(std::memory_order_acquire)) {
    const Result<bool> ran = RunShardOnce(s, Now());
    if (!ran.ok()) {
      DS_LOG(Error) << "shard " << s
                    << " cycle failed: " << ran.status().ToString();
      break;
    }
    std::unique_lock<std::mutex> lock(sh.wake_mu);
    if (sh.dirty || stop_.load(std::memory_order_acquire)) continue;
    sh.parked = true;
    idle_cv_.notify_all();
    sh.wake_cv.wait(lock, [&] {
      return sh.dirty || stop_.load(std::memory_order_acquire);
    });
    sh.parked = false;
  }
  {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    sh.parked = true;
  }
  idle_cv_.notify_all();
}

Status ShardedScheduler::StartLocked() {
  DS_CHECK(initialized_);
  if (started_) return Status::OK();
  stop_.store(false, std::memory_order_release);
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_[i]->parked = false;
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  started_ = true;
  return Status::OK();
}

void ShardedScheduler::StopLocked() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->wake_mu);
    sh->wake_cv.notify_all();
  }
  for (auto& sh : shards_) {
    if (sh->worker.joinable()) sh->worker.join();
  }
  started_ = false;
}

Status ShardedScheduler::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    DS_RETURN_NOT_OK(StartLocked());
  }
  if (wal_ != nullptr && options_.durability.checkpoint_interval_ms > 0 &&
      !ckpt_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ckpt_mu_);
      ckpt_stop_ = false;
    }
    ckpt_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return Status::OK();
}

void ShardedScheduler::Stop() {
  // Join the checkpoint thread before taking lifecycle_mu_: it calls
  // Checkpoint(), which takes that mutex.
  StopCheckpointThread();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  StopLocked();
}

Status ShardedScheduler::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("checkpoint without durability enabled");
  }
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  const bool was_started = started_;
  if (was_started) StopLocked();
  const Status st = WriteCheckpointNow();
  if (was_started) DS_RETURN_NOT_OK(StartLocked());
  return st;
}

Status ShardedScheduler::WriteCheckpointNow() {
  // Workers are parked/joined; drain every mirror inbox before snapshotting.
  // Rotate() below truncates the kEscrowFanout records, so any fan-out still
  // sitting in memory must land in the snapshotted relations first.
  for (int s = 0; s < options_.num_shards; ++s) {
    (void)ApplyMirrors(s);
  }
  DS_RETURN_NOT_OK(wal_->Flush());
  storage::SnapshotData data;
  data.last_lsn = wal_->head_lsn();
  data.shards.reserve(shards_.size());
  for (auto& sh : shards_) {
    data.shards.push_back(SnapshotShardStore(*sh->sched->store()));
  }
  DS_RETURN_NOT_OK(storage::WriteSnapshot(options_.durability.dir, data));
  CrashPoint("snapshot:post-rename-pre-truncate");
  DS_RETURN_NOT_OK(wal_->Rotate());
  ckpt_bytes_mark_.store(wal_->appended_bytes(), std::memory_order_relaxed);
  if (m_snapshot_lsn_ != nullptr) {
    m_snapshot_lsn_->Set(static_cast<int64_t>(data.last_lsn));
  }
  return Status::OK();
}

void ShardedScheduler::CheckpointLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.durability.checkpoint_interval_ms);
  std::unique_lock<std::mutex> lock(ckpt_mu_);
  while (!ckpt_stop_) {
    ckpt_cv_.wait_for(lock, interval, [this] { return ckpt_stop_; });
    if (ckpt_stop_) return;
    lock.unlock();
    const int64_t every = options_.durability.checkpoint_every_bytes;
    const bool due =
        every <= 0 ||
        wal_->appended_bytes() -
                ckpt_bytes_mark_.load(std::memory_order_relaxed) >=
            every;
    if (due) {
      const Status st = Checkpoint();
      if (!st.ok()) {
        DS_LOG(Error) << "periodic checkpoint failed: " << st.ToString();
      }
    }
    lock.lock();
  }
}

void ShardedScheduler::StopCheckpointThread() {
  if (!ckpt_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.notify_all();
  ckpt_thread_.join();
}

bool ShardedScheduler::WaitIdle(int64_t timeout_us) {
  const int64_t deadline = NowMicros() + timeout_us;
  std::unique_lock<std::mutex> idle_lock(idle_mu_);
  while (true) {
    bool idle = true;
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->wake_mu);
      if (!sh->parked || sh->dirty) {
        idle = false;
        break;
      }
    }
    if (idle) {
      for (auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mirror_mu);
        if (!sh->mirror_inbox.empty()) idle = false;
      }
      for (auto& sh : shards_) {
        if (sh->sched->queue_size() != 0) idle = false;
      }
    }
    if (idle) return true;
    if (NowMicros() >= deadline) return false;
    idle_cv_.wait_for(idle_lock, std::chrono::milliseconds(1));
  }
}

Result<int> ShardedScheduler::StepOnce(SimTime now) {
  DS_CHECK(initialized_ && !started_);
  int ran = 0;
  for (int s = 0; s < options_.num_shards; ++s) {
    DS_ASSIGN_OR_RETURN(const bool cycled, RunShardOnce(s, now));
    ran += cycled ? 1 : 0;
  }
  return ran;
}

Status ShardedScheduler::RunUntilIdle(SimTime now, int max_steps) {
  for (int step = 0; step < max_steps; ++step) {
    const int64_t mirrors_before =
        mirrors_applied_.load(std::memory_order_relaxed);
    DS_ASSIGN_OR_RETURN(const int ran, StepOnce(now));
    if (ran == 0 &&
        mirrors_applied_.load(std::memory_order_relaxed) == mirrors_before) {
      return Status::OK();
    }
  }
  return Status::Internal("sharded scheduler not quiescent after max_steps");
}

ShardedScheduler::Totals ShardedScheduler::totals() const {
  Totals t;
  t.submitted = submitted_.load(std::memory_order_relaxed);
  t.dispatched = dispatched_.load(std::memory_order_relaxed);
  t.cycles = cycles_.load(std::memory_order_relaxed);
  t.escrows = escrows_.load(std::memory_order_relaxed);
  t.mirrors_applied = mirrors_applied_.load(std::memory_order_relaxed);
  t.victims = victims_.load(std::memory_order_relaxed);
  t.adaptive_switches = adaptive_switches_.load(std::memory_order_relaxed);
  t.external_aborts = external_aborts_.load(std::memory_order_relaxed);
  return t;
}

ShardedScheduler::GlobalTenantSnapshot ShardedScheduler::TenantSnapshot() const {
  GlobalTenantSnapshot global;
  global.shards.reserve(shards_.size());
  std::map<int64_t, TenantAccountant::TenantTotals> merged;
  for (const auto& sh : shards_) {
    TenantAccountant* acct = sh->sched->tenant_accountant();
    GlobalTenantSnapshot::ShardStamp stamp;
    if (acct != nullptr) {
      const TenantAccountant::Snapshot snap = acct->PublishedSnapshot();
      stamp.version = snap.version;
      stamp.pending_epoch = snap.pending_epoch;
      stamp.history_epoch = snap.history_epoch;
      for (const TenantAccountant::TenantTotals& t : snap.tenants) {
        TenantAccountant::TenantTotals& m = merged[t.tenant];
        m.tenant = t.tenant;
        m.weight = t.weight;
        m.pending += t.pending;
        m.inflight += t.inflight;
        m.admitted += t.admitted;
        m.dispatched += t.dispatched;
        m.finished_rows += t.finished_rows;
        m.service_us += t.service_us;
        // vtime/round/tokens are per-shard-relative; left 0 in the merge.
      }
    }
    global.shards.push_back(stamp);
  }
  global.tenants.reserve(merged.size());
  for (auto& [tenant, totals] : merged) global.tenants.push_back(totals);
  return global;
}

RequestBatch ShardedScheduler::TakeDispatched() {
  std::lock_guard<std::mutex> lock(dispatch_log_mu_);
  RequestBatch out;
  out.swap(dispatch_log_);
  return out;
}

int64_t ShardedScheduler::shard_busy_us(int i) const {
  return shards_[i]->busy_us.load(std::memory_order_relaxed);
}

}  // namespace declsched::scheduler
