#include "scheduler/sharded_scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace declsched::scheduler {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsFinisher(txn::OpType op) {
  return op == txn::OpType::kCommit || op == txn::OpType::kAbort;
}

}  // namespace

ShardedScheduler::ShardedScheduler(Options options,
                                   server::DatabaseServer* server)
    : options_(std::move(options)),
      server_(server),
      router_(options_.num_shards) {
  DS_CHECK(options_.num_shards >= 1 &&
           options_.num_shards <= ShardRouter::kMaxShards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.metrics != nullptr) {
    auto* m = options_.metrics;
    m_submitted_ =
        m->GetCounter("sched_submitted_total", "Requests admitted (routed)");
    m_dispatched_ =
        m->GetCounter("sched_dispatched_total", "Requests dispatched");
    m_cycles_ = m->GetCounter("sched_cycles_total", "Scheduler cycles run");
    m_escrows_ = m->GetCounter("sched_escrows_total",
                               "Cross-shard finishers through escrow");
    m_mirrors_ = m->GetCounter("sched_mirrors_applied_total",
                               "Escrow mirror markers applied");
    m_victims_ =
        m->GetCounter("sched_victims_total", "Deadlock victims aborted");
    m_gc_removed_ = m->GetCounter("sched_gc_removed_total",
                                  "History rows retired by GC");
    m_cycle_us_.reserve(static_cast<size_t>(options_.num_shards));
    for (int i = 0; i < options_.num_shards; ++i) {
      m_cycle_us_.push_back(
          m->GetHistogram("sched_cycle_us", "Cycle wall time per shard",
                          {{"shard", std::to_string(i)}}));
    }
  }
}

ShardedScheduler::~ShardedScheduler() { Stop(); }

Status ShardedScheduler::Init() {
  DS_CHECK(!initialized_);
  for (int i = 0; i < options_.num_shards; ++i) {
    DeclarativeScheduler::Options opt = options_.shard;
    opt.shard = i;
    opt.num_shards = options_.num_shards;
    // Shard accountants publish cycle-boundary snapshots so
    // TenantSnapshot() can merge them from any thread.
    opt.tenant_qos.publish_snapshots = true;
    // A disjoint high range per shard: internally assigned ids (deadlock
    // abort markers) can never collide with this class's global ids.
    opt.first_request_id =
        (int64_t{1} << 40) + (static_cast<int64_t>(i) << 32);
    shards_[i]->sched =
        std::make_unique<DeclarativeScheduler>(std::move(opt), server_);
    DS_RETURN_NOT_OK(shards_[i]->sched->Init());
    shards_[i]->sched->queue()->set_notify([this, i] { MarkDirty(i); });
  }
  initialized_ = true;
  return Status::OK();
}

void ShardedScheduler::MarkDirty(int s) {
  Shard& sh = *shards_[s];
  {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    sh.dirty = true;
  }
  sh.wake_cv.notify_all();
}

int64_t ShardedScheduler::Submit(Request request, SimTime now) {
  DS_CHECK(initialized_);
  const int64_t t0 = NowMicros();
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.arrival = now;
  // Advance the shared cycle clock (max, monotone).
  int64_t observed = now_us_.load(std::memory_order_relaxed);
  while (now.micros() > observed &&
         !now_us_.compare_exchange_weak(observed, now.micros(),
                                        std::memory_order_relaxed)) {
  }

  const ShardRouter::Route route = router_.RouteRequest(request);
  if (route.involved.size() <= 1) {
    shards_[route.shard]->sched->SubmitRouted(request);
  } else {
    // Escrow path: tickets in canonical (ascending) shard order.
    for (int s : route.involved) shards_[s]->ticket_mu.lock();
    uint32_t mask = 0;
    for (int s : route.involved) mask |= 1u << s;
    const int home = route.involved.front();
    for (int s : route.involved) {
      Shard& sh = *shards_[s];
      EscrowEntry entry;
      entry.marker = request;
      entry.mirror_mask = s == home ? mask : 0;
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      if (sh.escrow_entries.emplace(request.ta, std::move(entry)).second) {
        sh.escrow_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Every involved shard has granted (ticket held, escrow registered):
    // publish the finisher for dispatch by the home shard's protocol.
    shards_[home]->sched->SubmitRouted(request);
    for (auto it = route.involved.rbegin(); it != route.involved.rend(); ++it) {
      shards_[*it]->ticket_mu.unlock();
    }
    escrows_.fetch_add(1, std::memory_order_relaxed);
    if (m_escrows_ != nullptr) m_escrows_->Increment();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (m_submitted_ != nullptr) m_submitted_->Increment();
  coordination_us_.fetch_add(NowMicros() - t0, std::memory_order_relaxed);
  return request.id;
}

void ShardedScheduler::PublishMirror(int to_shard, const Request& marker) {
  Shard& sh = *shards_[to_shard];
  {
    std::lock_guard<std::mutex> lock(sh.mirror_mu);
    sh.mirror_inbox.push_back(marker);
  }
  MarkDirty(to_shard);
}

int ShardedScheduler::ApplyMirrors(int s) {
  Shard& sh = *shards_[s];
  std::vector<Request> inbox;
  {
    std::lock_guard<std::mutex> lock(sh.mirror_mu);
    inbox.swap(sh.mirror_inbox);
  }
  for (const Request& marker : inbox) {
    DS_CHECK_OK(sh.sched->ApplyEscrowedFinisher(marker));
    {
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      if (sh.escrow_entries.erase(marker.ta) > 0) {
        sh.escrow_count.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    mirrors_applied_.fetch_add(1, std::memory_order_relaxed);
    if (m_mirrors_ != nullptr) m_mirrors_->Increment();
  }
  return static_cast<int>(inbox.size());
}

Status ShardedScheduler::ProcessDispatched(int s, const RequestBatch& batch) {
  if (batch.empty()) return Status::OK();
  Shard& sh = *shards_[s];
  // Escrow fan-out: a dispatched cross-shard finisher publishes its mirror
  // markers to the other involved shards — locks release there only now,
  // never before the dispatch.
  for (const Request& r : batch) {
    if (!IsFinisher(r.op)) continue;
    uint32_t mask = 0;
    {
      std::lock_guard<std::mutex> lock(sh.escrow_mu);
      auto it = sh.escrow_entries.find(r.ta);
      if (it != sh.escrow_entries.end()) {
        mask = it->second.mirror_mask;
        sh.escrow_entries.erase(it);
        sh.escrow_count.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    for (int t = 0; mask != 0; ++t, mask >>= 1) {
      if ((mask & 1u) && t != s) PublishMirror(t, r);
    }
  }
  dispatched_.fetch_add(static_cast<int64_t>(batch.size()),
                        std::memory_order_relaxed);
  if (m_dispatched_ != nullptr) {
    m_dispatched_->Increment(static_cast<int64_t>(batch.size()));
  }
  if (options_.keep_dispatch_log) {
    std::lock_guard<std::mutex> lock(dispatch_log_mu_);
    dispatch_log_.insert(dispatch_log_.end(), batch.begin(), batch.end());
  }
  if (options_.on_dispatch) options_.on_dispatch(s, batch);
  return Status::OK();
}

Result<bool> ShardedScheduler::RunShardOnce(int s, SimTime now) {
  Shard& sh = *shards_[s];
  const int64_t t0 = NowMicros();

  // Order matters: consume the wake flag BEFORE draining the mirror inbox.
  // A mirror published after the consume leaves the flag set for the next
  // pass; a mirror published before it is drained below and forces a cycle
  // via `applied`. Draining first would allow a mirror to slip in between
  // drain and consume — the cycle would then run without the marker in the
  // store, dispatch nothing, and eat the only wakeup (a permanent stall).
  bool runnable;
  {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    runnable = sh.dirty;
    sh.dirty = false;
  }
  const int applied = ApplyMirrors(s);
  runnable = runnable || applied > 0;

  // Refresh the advisory escrow view for this shard's protocol. In the
  // common zero-escrow case skip the lock entirely; the view is advisory,
  // so a registration racing this relaxed read is simply visible one
  // cycle later.
  if (sh.escrow_count.load(std::memory_order_relaxed) == 0) {
    sh.escrow_view.txns.clear();
    sh.sched->set_escrowed_locks(nullptr);
  } else {
    std::lock_guard<std::mutex> lock(sh.escrow_mu);
    sh.escrow_view.txns.clear();
    for (const auto& [ta, entry] : sh.escrow_entries) {
      sh.escrow_view.txns.push_back(ta);
    }
    sh.sched->set_escrowed_locks(sh.escrow_view.txns.empty() ? nullptr
                                                             : &sh.escrow_view);
  }

  if (!runnable ||
      (sh.sched->queue_size() == 0 && sh.sched->store()->pending_count() == 0)) {
    sh.busy_us.fetch_add(NowMicros() - t0, std::memory_order_relaxed);
    return false;
  }

  DS_ASSIGN_OR_RETURN(const CycleStats stats, sh.sched->RunCycle(now));
  cycles_.fetch_add(1, std::memory_order_relaxed);
  if (m_cycles_ != nullptr) {
    m_cycles_->Increment();
    m_cycle_us_[static_cast<size_t>(s)]->Record(stats.total_us);
    if (stats.gc_removed > 0) m_gc_removed_->Increment(stats.gc_removed);
  }
  DS_RETURN_NOT_OK(ProcessDispatched(s, sh.sched->last_dispatched()));

  // Cross-shard victim mirroring: the resolver aborted these transactions
  // here; release their locks (and drop their pending) on every other shard
  // in their footprint.
  for (txn::TxnId victim : sh.sched->last_victims()) {
    victims_.fetch_add(1, std::memory_order_relaxed);
    if (m_victims_ != nullptr) m_victims_->Increment();
    const std::vector<int> footprint = router_.Footprint(victim);
    router_.Forget(victim);
    for (int t : footprint) {
      if (t == s) continue;
      Request marker;
      marker.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      marker.ta = victim;
      marker.intrata = 1 << 30;
      marker.op = txn::OpType::kAbort;
      marker.object = Request::kNoObject;
      marker.arrival = now;
      marker.client = -1;
      PublishMirror(t, marker);
    }
  }

  // Dispatches and aborts change lock state — pending requests that were
  // blocked may now qualify, so look again. A cycle that moved nothing
  // leaves the shard quiescent until new input arrives.
  if (stats.dispatched > 0 || stats.victims > 0) MarkDirty(s);

  sh.busy_us.fetch_add(NowMicros() - t0, std::memory_order_relaxed);
  return true;
}

void ShardedScheduler::WorkerLoop(int s) {
  Shard& sh = *shards_[s];
  while (!stop_.load(std::memory_order_acquire)) {
    const Result<bool> ran = RunShardOnce(s, Now());
    if (!ran.ok()) {
      DS_LOG(Error) << "shard " << s
                    << " cycle failed: " << ran.status().ToString();
      break;
    }
    std::unique_lock<std::mutex> lock(sh.wake_mu);
    if (sh.dirty || stop_.load(std::memory_order_acquire)) continue;
    sh.parked = true;
    idle_cv_.notify_all();
    sh.wake_cv.wait(lock, [&] {
      return sh.dirty || stop_.load(std::memory_order_acquire);
    });
    sh.parked = false;
  }
  {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    sh.parked = true;
  }
  idle_cv_.notify_all();
}

Status ShardedScheduler::Start() {
  DS_CHECK(initialized_);
  if (started_) return Status::OK();
  stop_.store(false, std::memory_order_release);
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_[i]->parked = false;
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  started_ = true;
  return Status::OK();
}

void ShardedScheduler::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->wake_mu);
    sh->wake_cv.notify_all();
  }
  for (auto& sh : shards_) {
    if (sh->worker.joinable()) sh->worker.join();
  }
  started_ = false;
}

bool ShardedScheduler::WaitIdle(int64_t timeout_us) {
  const int64_t deadline = NowMicros() + timeout_us;
  std::unique_lock<std::mutex> idle_lock(idle_mu_);
  while (true) {
    bool idle = true;
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->wake_mu);
      if (!sh->parked || sh->dirty) {
        idle = false;
        break;
      }
    }
    if (idle) {
      for (auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mirror_mu);
        if (!sh->mirror_inbox.empty()) idle = false;
      }
      for (auto& sh : shards_) {
        if (sh->sched->queue_size() != 0) idle = false;
      }
    }
    if (idle) return true;
    if (NowMicros() >= deadline) return false;
    idle_cv_.wait_for(idle_lock, std::chrono::milliseconds(1));
  }
}

Result<int> ShardedScheduler::StepOnce(SimTime now) {
  DS_CHECK(initialized_ && !started_);
  int ran = 0;
  for (int s = 0; s < options_.num_shards; ++s) {
    DS_ASSIGN_OR_RETURN(const bool cycled, RunShardOnce(s, now));
    ran += cycled ? 1 : 0;
  }
  return ran;
}

Status ShardedScheduler::RunUntilIdle(SimTime now, int max_steps) {
  for (int step = 0; step < max_steps; ++step) {
    const int64_t mirrors_before =
        mirrors_applied_.load(std::memory_order_relaxed);
    DS_ASSIGN_OR_RETURN(const int ran, StepOnce(now));
    if (ran == 0 &&
        mirrors_applied_.load(std::memory_order_relaxed) == mirrors_before) {
      return Status::OK();
    }
  }
  return Status::Internal("sharded scheduler not quiescent after max_steps");
}

ShardedScheduler::Totals ShardedScheduler::totals() const {
  Totals t;
  t.submitted = submitted_.load(std::memory_order_relaxed);
  t.dispatched = dispatched_.load(std::memory_order_relaxed);
  t.cycles = cycles_.load(std::memory_order_relaxed);
  t.escrows = escrows_.load(std::memory_order_relaxed);
  t.mirrors_applied = mirrors_applied_.load(std::memory_order_relaxed);
  t.victims = victims_.load(std::memory_order_relaxed);
  return t;
}

ShardedScheduler::GlobalTenantSnapshot ShardedScheduler::TenantSnapshot() const {
  GlobalTenantSnapshot global;
  global.shards.reserve(shards_.size());
  std::map<int64_t, TenantAccountant::TenantTotals> merged;
  for (const auto& sh : shards_) {
    TenantAccountant* acct = sh->sched->tenant_accountant();
    GlobalTenantSnapshot::ShardStamp stamp;
    if (acct != nullptr) {
      const TenantAccountant::Snapshot snap = acct->PublishedSnapshot();
      stamp.version = snap.version;
      stamp.pending_epoch = snap.pending_epoch;
      stamp.history_epoch = snap.history_epoch;
      for (const TenantAccountant::TenantTotals& t : snap.tenants) {
        TenantAccountant::TenantTotals& m = merged[t.tenant];
        m.tenant = t.tenant;
        m.weight = t.weight;
        m.pending += t.pending;
        m.inflight += t.inflight;
        m.admitted += t.admitted;
        m.dispatched += t.dispatched;
        m.finished_rows += t.finished_rows;
        m.service_us += t.service_us;
        // vtime/round/tokens are per-shard-relative; left 0 in the merge.
      }
    }
    global.shards.push_back(stamp);
  }
  global.tenants.reserve(merged.size());
  for (auto& [tenant, totals] : merged) global.tenants.push_back(totals);
  return global;
}

RequestBatch ShardedScheduler::TakeDispatched() {
  std::lock_guard<std::mutex> lock(dispatch_log_mu_);
  RequestBatch out;
  out.swap(dispatch_log_);
  return out;
}

int64_t ShardedScheduler::shard_busy_us(int i) const {
  return shards_[i]->busy_us.load(std::memory_order_relaxed);
}

}  // namespace declsched::scheduler
