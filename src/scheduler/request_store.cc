#include "scheduler/request_store.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "scheduler/durability.h"
#include "storage/wal.h"

namespace declsched::scheduler {

using storage::Row;
using storage::RowId;
using storage::Value;
using storage::ValueType;

namespace {

storage::Schema RequestSchema() {
  return storage::Schema({
      {"id", ValueType::kInt64},
      {"ta", ValueType::kInt64},
      {"intrata", ValueType::kInt64},
      {"operation", ValueType::kString},
      {"object", ValueType::kInt64},
      {"priority", ValueType::kInt64},
      {"deadline", ValueType::kInt64},
      {"arrival", ValueType::kInt64},
      {"client", ValueType::kInt64},
      {"tenant", ValueType::kInt64},
  });
}

storage::Schema TenantSchema() {
  return storage::Schema({
      {"tenant", ValueType::kInt64},
      {"weight", ValueType::kInt64},
      {"vtime", ValueType::kInt64},
      {"round", ValueType::kInt64},
      {"tokens", ValueType::kInt64},
      {"rate", ValueType::kInt64},
      {"burst", ValueType::kInt64},
      {"cap", ValueType::kInt64},
      {"inflight", ValueType::kInt64},
  });
}

bool IsTerminationMarker(txn::OpType op) {
  return op == txn::OpType::kCommit || op == txn::OpType::kAbort;
}

}  // namespace

void RequestStore::AttachWal(storage::Wal* wal, uint16_t shard) {
  wal_ = wal;
  wal_shard_ = shard;
  last_wal_lsn_ = 0;
}

void RequestStore::DetachWal() {
  wal_ = nullptr;
  last_wal_lsn_ = 0;
}

void RequestStore::LogWal(uint8_t type, std::string_view payload) {
  if (wal_ == nullptr) return;
  last_wal_lsn_ = wal_->Append(type, wal_shard_, payload);
}

txn::OpType RequestStore::ParseOperation(const std::string& op) {
  if (op == "r") return txn::OpType::kRead;
  if (op == "w") return txn::OpType::kWrite;
  if (op == "a") return txn::OpType::kAbort;
  return txn::OpType::kCommit;
}

RequestStore::RequestStore() : engine_(&catalog_) {
  requests_ = catalog_.CreateTable("requests", RequestSchema()).ValueOrDie();
  history_ = catalog_.CreateTable("history", RequestSchema()).ValueOrDie();
  tenants_ = catalog_.CreateTable("tenants", TenantSchema()).ValueOrDie();
  // Point lookups by id (MarkScheduled), GC by ta, and tenant upserts
  // benefit from indexes.
  DS_CHECK_OK(requests_->CreateIndex("id"));
  DS_CHECK_OK(history_->CreateIndex("ta"));
  DS_CHECK_OK(tenants_->CreateIndex("tenant"));
}

storage::Row RequestStore::ToRow(const Request& request) {
  return Row{
      Value::Int64(request.id),
      Value::Int64(request.ta),
      Value::Int64(request.intrata),
      Value::String(std::string(1, txn::OpTypeToChar(request.op))),
      Value::Int64(request.object),
      Value::Int64(request.priority),
      Value::Int64(request.deadline.micros()),
      Value::Int64(request.arrival.micros()),
      Value::Int64(request.client),
      Value::Int64(request.tenant),
  };
}

Request RequestStore::RowToRequestFull(const storage::Row& row) {
  Request r;
  r.id = row[kColId].AsInt64();
  r.ta = row[kColTa].AsInt64();
  r.intrata = row[kColIntrata].AsInt64();
  r.op = ParseOperation(row[kColOperation].AsString());
  r.object = row[kColObject].AsInt64();
  r.priority = static_cast<int>(row[kColPriority].AsInt64());
  r.deadline = SimTime::FromMicros(row[kColDeadline].AsInt64());
  r.arrival = SimTime::FromMicros(row[kColArrival].AsInt64());
  r.client = static_cast<int>(row[kColClient].AsInt64());
  r.tenant = static_cast<int>(row[kColTenant].AsInt64());
  return r;
}

storage::Row RequestStore::TenantToRow(const TenantAcct& acct) {
  return Row{
      Value::Int64(acct.tenant),  Value::Int64(acct.weight),
      Value::Int64(acct.vtime),   Value::Int64(acct.round),
      Value::Int64(acct.tokens),  Value::Int64(acct.rate),
      Value::Int64(acct.burst),   Value::Int64(acct.cap),
      Value::Int64(acct.inflight),
  };
}

TenantAcct RequestStore::RowToTenant(const storage::Row& row) {
  TenantAcct a;
  a.tenant = row[0].AsInt64();
  a.weight = row[1].AsInt64();
  a.vtime = row[2].AsInt64();
  a.round = row[3].AsInt64();
  a.tokens = row[4].AsInt64();
  a.rate = row[5].AsInt64();
  a.burst = row[6].AsInt64();
  a.cap = row[7].AsInt64();
  a.inflight = row[8].AsInt64();
  return a;
}

void RequestStore::EnsureMirror() const {
  // Version equality is exact: every content mutation of the table bumps
  // it, so both out-of-band edits (ad-hoc SQL DML, count-preserving
  // UPDATEs included) and this store's own error paths that bailed before
  // recording the version land here and heal.
  if (mirror_version_ == requests_->version()) return;
  pending_by_id_.clear();
  requests_->ForEach([&](RowId, const Row& row) {
    Request r = RowToRequestFull(row);
    pending_by_id_.emplace(r.id, std::move(r));
  });
  mirror_version_ = requests_->version();
  ++pending_epoch_;
}

Status RequestStore::InsertPending(const RequestBatch& batch) {
  if (batch.empty()) return Status::OK();
  EnsureMirror();
  EnsureTenantMirror();
  // Auto-create a default tenants row for tenants first seen on a pending
  // request, so fairness protocols can always inner-join requests with
  // tenants. `last` short-circuits the common one-tenant batch (a flag,
  // not a sentinel value: every int is a legal tenant id).
  bool have_last = false;
  int64_t last = 0;
  for (const Request& request : batch) {
    DS_RETURN_NOT_OK(requests_->Insert(ToRow(request)).status());
    pending_by_id_[request.id] = request;
    if ((!have_last || request.tenant != last) &&
        tenants_by_id_.find(request.tenant) == tenants_by_id_.end()) {
      TenantAcct acct;
      acct.tenant = request.tenant;
      DS_RETURN_NOT_OK(tenants_->Insert(TenantToRow(acct)).status());
      tenants_by_id_.emplace(acct.tenant, acct);
      tenant_mirror_version_ = tenants_->version();
    }
    have_last = true;
    last = request.tenant;
  }
  mirror_version_ = requests_->version();
  ++pending_epoch_;
  if (wal_ != nullptr) {
    wal_scratch_.clear();
    EncodeRequestsTo(&wal_scratch_, batch);
    LogWal(static_cast<uint8_t>(WalRecordType::kInsertPending), wal_scratch_);
  }
  return Status::OK();
}

Status RequestStore::UpsertTenant(const TenantAcct& acct) {
  EnsureTenantMirror();
  DS_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                      tenants_->IndexLookup(0, Value::Int64(acct.tenant)));
  if (ids.empty()) {
    DS_RETURN_NOT_OK(tenants_->Insert(TenantToRow(acct)).status());
  } else if (ids.size() == 1) {
    DS_RETURN_NOT_OK(tenants_->Update(ids[0], TenantToRow(acct)));
  } else {
    return Status::Internal(StrFormat("tenant %lld matched %zu rows",
                                      static_cast<long long>(acct.tenant),
                                      ids.size()));
  }
  tenants_by_id_[acct.tenant] = acct;
  tenant_mirror_version_ = tenants_->version();
  if (wal_ != nullptr) {
    wal_scratch_.clear();
    EncodeTenantTo(&wal_scratch_, acct);
    LogWal(static_cast<uint8_t>(WalRecordType::kUpsertTenant), wal_scratch_);
  }
  return Status::OK();
}

void RequestStore::EnsureTenantMirror() const {
  if (tenant_mirror_version_ == tenants_->version()) return;
  tenants_by_id_.clear();
  tenants_->ForEach([&](RowId, const Row& row) {
    TenantAcct a = RowToTenant(row);
    tenants_by_id_.emplace(a.tenant, a);
  });
  tenant_mirror_version_ = tenants_->version();
}

const std::map<int64_t, TenantAcct>& RequestStore::tenants_by_id() const {
  EnsureTenantMirror();
  return tenants_by_id_;
}

TenantAcct RequestStore::TenantOrDefault(int64_t tenant) const {
  EnsureTenantMirror();
  auto it = tenants_by_id_.find(tenant);
  if (it != tenants_by_id_.end()) return it->second;
  TenantAcct acct;
  acct.tenant = tenant;
  return acct;
}

int64_t RequestStore::tenant_count() const { return tenants_->size(); }

Status RequestStore::AppendHistoryRow(const Request& request) {
  DS_RETURN_NOT_OK(history_->Insert(ToRow(request)).status());
  if (IsTerminationMarker(request.op)) unretired_finished_.insert(request.ta);
  return Status::OK();
}

Status RequestStore::MarkScheduled(const RequestBatch& batch) {
  if (batch.empty()) return Status::OK();
  EnsureMirror();
  // Bump before moving rows: a failure partway through is still a mutation,
  // and epoch-keyed consumers must resync rather than serve stale state.
  ++pending_epoch_;
  ++history_epoch_;
  for (const Request& request : batch) {
    DS_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                        requests_->IndexLookup(kColId, Value::Int64(request.id)));
    if (ids.size() != 1) {
      return Status::Internal(StrFormat("request #%lld matched %zu pending rows",
                                        static_cast<long long>(request.id),
                                        ids.size()));
    }
    // Move the full stored row (the scheduled batch may carry only the
    // protocol's projection of it).
    Row row = *requests_->Get(ids[0]);
    DS_RETURN_NOT_OK(requests_->Delete(ids[0]));
    pending_by_id_.erase(request.id);
    if (IsTerminationMarker(ParseOperation(row[kColOperation].AsString()))) {
      unretired_finished_.insert(row[kColTa].AsInt64());
    }
    DS_RETURN_NOT_OK(history_->Insert(std::move(row)).status());
  }
  requests_->MaybeVacuum();
  mirror_version_ = requests_->version();
  history_version_expected_ = history_->version();
  if (wal_ != nullptr) {
    wal_scratch_.clear();
    EncodeRequestIdsTo(&wal_scratch_, batch);
    LogWal(static_cast<uint8_t>(WalRecordType::kMarkScheduled), wal_scratch_);
  }
  return Status::OK();
}

Status RequestStore::InsertHistory(const Request& request) {
  DS_RETURN_NOT_OK(AppendHistoryRow(request));
  history_version_expected_ = history_->version();
  ++history_epoch_;
  if (wal_ != nullptr) {
    wal_scratch_.clear();
    EncodeRequestsTo(&wal_scratch_, {request});
    LogWal(static_cast<uint8_t>(WalRecordType::kInsertHistory), wal_scratch_);
  }
  return Status::OK();
}

int64_t RequestStore::DropPendingOfTransaction(
    txn::TxnId ta, std::map<int64_t, int64_t>* dropped_by_tenant) {
  EnsureMirror();
  const int64_t removed = requests_->DeleteWhere([ta](const Row& row) {
    return row[kColTa].AsInt64() == ta;
  });
  if (removed > 0) {
    for (auto it = pending_by_id_.begin(); it != pending_by_id_.end();) {
      if (it->second.ta == ta) {
        if (dropped_by_tenant != nullptr) {
          ++(*dropped_by_tenant)[it->second.tenant];
        }
        it = pending_by_id_.erase(it);
      } else {
        ++it;
      }
    }
    mirror_version_ = requests_->version();
    ++pending_epoch_;
    // Zero-row drops are not logged: they mutate nothing, and replay would
    // observe the same zero rows anyway.
    if (wal_ != nullptr) {
      wal_scratch_.clear();
      EncodeTxnIdTo(&wal_scratch_, ta);
      LogWal(static_cast<uint8_t>(WalRecordType::kDropPending), wal_scratch_);
    }
  }
  return removed;
}

Result<RequestStore::GcResult> RequestStore::GarbageCollectFinished() {
  GcResult gc;
  // Out-of-band history edits invalidate the running marker count; rescan
  // like the pre-incremental implementation did every call. (Markers only
  // ever leave history through this function, which clears the set, so a
  // full rebuild here is exact — including markers deleted out-of-band.)
  if (history_version_expected_ != history_->version()) {
    unretired_finished_.clear();
    history_->ForEach([&](RowId, const Row& row) {
      if (IsTerminationMarker(ParseOperation(row[kColOperation].AsString()))) {
        unretired_finished_.insert(row[kColTa].AsInt64());
      }
    });
    history_version_expected_ = history_->version();
  }
  // Fast path: markers were counted as they entered history, so "nothing to
  // retire" costs no scan at all.
  if (unretired_finished_.empty()) return gc;
  gc.txns.assign(unretired_finished_.begin(), unretired_finished_.end());
  std::sort(gc.txns.begin(), gc.txns.end());
  unretired_finished_.clear();
  // Bump before retiring: if a delete below fails partway, epoch-keyed
  // consumers still see a mutation and resync instead of serving stale.
  ++history_epoch_;
  // Retire each finished transaction's rows (markers included) through the
  // ta index: O(rows retired), independent of resident history size.
  for (txn::TxnId ta : gc.txns) {
    DS_ASSIGN_OR_RETURN(std::vector<RowId> rows,
                        history_->IndexLookup(kColTa, Value::Int64(ta)));
    for (RowId id : rows) {
      ++gc.rows_by_tenant[(*history_->Get(id))[kColTenant].AsInt64()];
      DS_RETURN_NOT_OK(history_->Delete(id));
    }
    gc.rows_retired += static_cast<int64_t>(rows.size());
  }
  history_->MaybeVacuum();
  history_version_expected_ = history_->version();
  // The record carries no payload: GC is a deterministic function of the
  // history relation, which replay has already reproduced at this point.
  LogWal(static_cast<uint8_t>(WalRecordType::kGc), {});
  return gc;
}

Result<RequestBatch> RequestStore::AllPending() const {
  EnsureMirror();
  RequestBatch out;
  out.reserve(pending_by_id_.size());
  for (const auto& [id, request] : pending_by_id_) out.push_back(request);
  return out;
}

const std::map<int64_t, Request>& RequestStore::pending_by_id() const {
  EnsureMirror();
  return pending_by_id_;
}

int64_t RequestStore::pending_count() const { return requests_->size(); }
int64_t RequestStore::history_count() const { return history_->size(); }
uint64_t RequestStore::history_version() const { return history_->version(); }
uint64_t RequestStore::pending_version() const { return requests_->version(); }
uint64_t RequestStore::tenants_version() const { return tenants_->version(); }

const datalog::Database& RequestStore::BuildDatalogEdb() const {
  EnsureMirror();
  if (edb_pending_epoch_ != pending_epoch_) {
    datalog::Relation& req = edb_cache_["req"];
    datalog::Relation& reqmeta = edb_cache_["reqmeta"];
    datalog::Relation& reqtenant = edb_cache_["reqtenant"];
    req.clear();
    reqmeta.clear();
    reqtenant.clear();
    req.reserve(pending_by_id_.size());
    reqmeta.reserve(pending_by_id_.size());
    reqtenant.reserve(pending_by_id_.size());
    for (const auto& [id, r] : pending_by_id_) {
      req.push_back({Value::Int64(r.id), Value::Int64(r.ta),
                     Value::Int64(r.intrata),
                     Value::String(std::string(1, txn::OpTypeToChar(r.op))),
                     Value::Int64(r.object)});
      reqmeta.push_back({Value::Int64(r.id), Value::Int64(r.priority),
                         Value::Int64(r.deadline.micros()),
                         Value::Int64(r.arrival.micros())});
      reqtenant.push_back({Value::Int64(r.id), Value::Int64(r.tenant)});
    }
    edb_pending_epoch_ = pending_epoch_;
  }
  if (edb_tenant_version_ != tenants_->version()) {
    EnsureTenantMirror();
    datalog::Relation& acct = edb_cache_["tenantacct"];
    acct.clear();
    acct.reserve(tenants_by_id_.size());
    for (const auto& [tenant, a] : tenants_by_id_) {
      acct.push_back({Value::Int64(a.tenant), Value::Int64(a.weight),
                      Value::Int64(a.vtime), Value::Int64(a.round),
                      Value::Int64(a.tokens), Value::Int64(a.rate),
                      Value::Int64(a.cap), Value::Int64(a.inflight)});
    }
    edb_tenant_version_ = tenants_->version();
  }
  if (edb_history_epoch_ != history_epoch_ ||
      edb_history_version_ != history_->version()) {
    datalog::Relation& hist = edb_cache_["hist"];
    hist.clear();
    hist.reserve(static_cast<size_t>(history_->size()));
    history_->ForEach([&](RowId, const Row& row) {
      hist.push_back({row[kColId], row[kColTa], row[kColIntrata],
                      row[kColOperation], row[kColObject]});
    });
    edb_history_epoch_ = history_epoch_;
    edb_history_version_ = history_->version();
  }
  return edb_cache_;
}

Result<RequestBatch> RequestStore::RowsToRequests(
    const std::vector<storage::Row>& rows, const std::vector<int>& cols) const {
  if (cols.size() != 5) {
    return Status::InvalidArgument(
        "RowsToRequests needs the five Table 2 column positions");
  }
  EnsureMirror();
  RequestBatch batch;
  batch.reserve(rows.size());
  for (const storage::Row& row : rows) {
    for (int col : cols) {
      if (col < 0 || static_cast<size_t>(col) >= row.size()) {
        return Status::InvalidArgument(
            "protocol result row lacks the Table 2 columns");
      }
    }
    Request request;
    request.id = row[static_cast<size_t>(cols[0])].AsInt64();
    request.ta = row[static_cast<size_t>(cols[1])].AsInt64();
    request.intrata = row[static_cast<size_t>(cols[2])].AsInt64();
    request.op = ParseOperation(row[static_cast<size_t>(cols[3])].AsString());
    request.object = row[static_cast<size_t>(cols[4])].AsInt64();
    // Rejoin the metadata columns from the pending mirror (protocols only
    // guarantee the Table 2 columns in their result); rows carrying the
    // full canonical layout fall back to their own columns.
    auto it = pending_by_id_.find(request.id);
    if (it != pending_by_id_.end()) {
      request.priority = it->second.priority;
      request.deadline = it->second.deadline;
      request.arrival = it->second.arrival;
      request.client = it->second.client;
      request.tenant = it->second.tenant;
    } else if (row.size() >= 10 && cols[0] == kColId && cols[1] == kColTa &&
               cols[2] == kColIntrata && cols[3] == kColOperation &&
               cols[4] == kColObject) {
      // Only a fully canonical layout guarantees columns 5..9 really are
      // the SLA metadata; a permuted schema must not decode garbage.
      request.priority = static_cast<int>(row[kColPriority].AsInt64());
      request.deadline = SimTime::FromMicros(row[kColDeadline].AsInt64());
      request.arrival = SimTime::FromMicros(row[kColArrival].AsInt64());
      request.client = static_cast<int>(row[kColClient].AsInt64());
      request.tenant = static_cast<int>(row[kColTenant].AsInt64());
    }
    batch.push_back(request);
  }
  return batch;
}

Result<RequestBatch> RequestStore::RowsToRequests(
    const std::vector<storage::Row>& rows) const {
  static const std::vector<int> kCanonical = {kColId, kColTa, kColIntrata,
                                              kColOperation, kColObject};
  return RowsToRequests(rows, kCanonical);
}

}  // namespace declsched::scheduler
