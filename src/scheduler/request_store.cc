#include "scheduler/request_store.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace declsched::scheduler {

using storage::Row;
using storage::RowId;
using storage::Value;
using storage::ValueType;

namespace {

storage::Schema RequestSchema() {
  return storage::Schema({
      {"id", ValueType::kInt64},
      {"ta", ValueType::kInt64},
      {"intrata", ValueType::kInt64},
      {"operation", ValueType::kString},
      {"object", ValueType::kInt64},
      {"priority", ValueType::kInt64},
      {"deadline", ValueType::kInt64},
      {"arrival", ValueType::kInt64},
      {"client", ValueType::kInt64},
  });
}

}  // namespace

txn::OpType RequestStore::ParseOperation(const std::string& op) {
  if (op == "r") return txn::OpType::kRead;
  if (op == "w") return txn::OpType::kWrite;
  if (op == "a") return txn::OpType::kAbort;
  return txn::OpType::kCommit;
}

RequestStore::RequestStore() : engine_(&catalog_) {
  requests_ = catalog_.CreateTable("requests", RequestSchema()).ValueOrDie();
  history_ = catalog_.CreateTable("history", RequestSchema()).ValueOrDie();
  // Point lookups by id (MarkScheduled) and GC by ta benefit from indexes.
  DS_CHECK_OK(requests_->CreateIndex("id"));
  DS_CHECK_OK(history_->CreateIndex("ta"));
}

storage::Row RequestStore::ToRow(const Request& request) {
  return Row{
      Value::Int64(request.id),
      Value::Int64(request.ta),
      Value::Int64(request.intrata),
      Value::String(std::string(1, txn::OpTypeToChar(request.op))),
      Value::Int64(request.object),
      Value::Int64(request.priority),
      Value::Int64(request.deadline.micros()),
      Value::Int64(request.arrival.micros()),
      Value::Int64(request.client),
  };
}

Status RequestStore::InsertPending(const RequestBatch& batch) {
  for (const Request& request : batch) {
    DS_RETURN_NOT_OK(requests_->Insert(ToRow(request)).status());
  }
  return Status::OK();
}

Status RequestStore::MarkScheduled(const RequestBatch& batch) {
  for (const Request& request : batch) {
    DS_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                        requests_->IndexLookup(kColId, Value::Int64(request.id)));
    if (ids.size() != 1) {
      return Status::Internal(StrFormat("request #%lld matched %zu pending rows",
                                        static_cast<long long>(request.id),
                                        ids.size()));
    }
    const Row row = *requests_->Get(ids[0]);
    DS_RETURN_NOT_OK(requests_->Delete(ids[0]));
    DS_RETURN_NOT_OK(history_->Insert(row).status());
  }
  return Status::OK();
}

Result<int64_t> RequestStore::GarbageCollectFinished() {
  // Pass 1: transactions with a termination marker in history.
  std::unordered_set<int64_t> finished;
  history_->ForEach([&](RowId, const Row& row) {
    const std::string& op = row[kColOperation].AsString();
    if (op == "c" || op == "a") finished.insert(row[kColTa].AsInt64());
  });
  if (finished.empty()) return 0;
  // Pass 2: retire all their rows (markers included).
  const int64_t removed = history_->DeleteWhere([&](const Row& row) {
    return finished.count(row[kColTa].AsInt64()) > 0;
  });
  return removed;
}

Result<RequestBatch> RequestStore::AllPending() const {
  RequestBatch out;
  out.reserve(static_cast<size_t>(requests_->size()));
  Status status;
  requests_->ForEach([&](RowId, const Row& row) {
    if (!status.ok()) return;
    auto request = RowToRequest(row);
    if (!request.ok()) {
      status = request.status();
      return;
    }
    out.push_back(request.MoveValue());
  });
  DS_RETURN_NOT_OK(status);
  std::sort(out.begin(), out.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
  return out;
}

int64_t RequestStore::pending_count() const { return requests_->size(); }
int64_t RequestStore::history_count() const { return history_->size(); }

datalog::Database RequestStore::BuildDatalogEdb() const {
  datalog::Database edb;
  datalog::Relation& req = edb["req"];
  datalog::Relation& reqmeta = edb["reqmeta"];
  datalog::Relation& hist = edb["hist"];
  requests_->ForEach([&](RowId, const Row& row) {
    req.push_back({row[kColId], row[kColTa], row[kColIntrata], row[kColOperation],
                   row[kColObject]});
    reqmeta.push_back(
        {row[kColId], row[kColPriority], row[kColDeadline], row[kColArrival]});
  });
  history_->ForEach([&](RowId, const Row& row) {
    hist.push_back({row[kColId], row[kColTa], row[kColIntrata], row[kColOperation],
                    row[kColObject]});
  });
  return edb;
}

Result<Request> RequestStore::RowToRequest(const storage::Row& row) const {
  if (row.size() < 5) {
    return Status::InvalidArgument("protocol result row needs >= 5 columns");
  }
  Request request;
  request.id = row[kColId].AsInt64();
  request.ta = row[kColTa].AsInt64();
  request.intrata = row[kColIntrata].AsInt64();
  request.op = ParseOperation(row[kColOperation].AsString());
  request.object = row[kColObject].AsInt64();
  // Rejoin the metadata columns from the pending table (protocols only
  // guarantee the Table 2 columns in their result).
  auto ids = requests_->IndexLookup(kColId, row[kColId]);
  if (ids.ok() && ids->size() == 1) {
    const Row& full = *requests_->Get((*ids)[0]);
    request.priority = static_cast<int>(full[kColPriority].AsInt64());
    request.deadline = SimTime::FromMicros(full[kColDeadline].AsInt64());
    request.arrival = SimTime::FromMicros(full[kColArrival].AsInt64());
    request.client = static_cast<int>(full[kColClient].AsInt64());
  } else if (row.size() >= 9) {
    request.priority = static_cast<int>(row[kColPriority].AsInt64());
    request.deadline = SimTime::FromMicros(row[kColDeadline].AsInt64());
    request.arrival = SimTime::FromMicros(row[kColArrival].AsInt64());
    request.client = static_cast<int>(row[kColClient].AsInt64());
  }
  return request;
}

}  // namespace declsched::scheduler
