// RequestStore: the pending-request and history databases of Figure 1.
//
// Both are ordinary relations in a storage::Catalog so that scheduling
// protocols — SQL queries or Datalog programs — can treat requests as data.
// Schema: the paper's Table 2 columns plus the SLA extension columns.

#ifndef DECLSCHED_SCHEDULER_REQUEST_STORE_H_
#define DECLSCHED_SCHEDULER_REQUEST_STORE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "datalog/engine.h"
#include "scheduler/request.h"
#include "sql/engine.h"
#include "storage/catalog.h"

namespace declsched::scheduler {

class RequestStore {
 public:
  /// Column layout of both the `requests` and `history` tables.
  /// The first five columns are the paper's Table 2.
  static constexpr int kColId = 0;
  static constexpr int kColTa = 1;
  static constexpr int kColIntrata = 2;
  static constexpr int kColOperation = 3;
  static constexpr int kColObject = 4;
  static constexpr int kColPriority = 5;
  static constexpr int kColDeadline = 6;
  static constexpr int kColArrival = 7;
  static constexpr int kColClient = 8;

  RequestStore();

  storage::Catalog* catalog() { return &catalog_; }
  sql::SqlEngine* sql_engine() { return &engine_; }

  /// Appends a batch to the pending `requests` relation.
  Status InsertPending(const RequestBatch& batch);

  /// Moves scheduled requests: delete from `requests`, insert into `history`.
  /// (Paper Section 3.3, step three.)
  Status MarkScheduled(const RequestBatch& batch);

  /// Deletes every history row of transactions that have a commit/abort
  /// marker. Under SS2PL those rows no longer represent locks; retiring them
  /// keeps the history table at the active working set ("all *relevant*
  /// prior executed requests"). Returns the number of rows retired.
  Result<int64_t> GarbageCollectFinished();

  /// All pending requests, by ascending id.
  Result<RequestBatch> AllPending() const;

  int64_t pending_count() const;
  int64_t history_count() const;

  /// EDB for Datalog protocols:
  ///   req(Id, Ta, Intrata, Op, Obj), hist(Id, Ta, Intrata, Op, Obj),
  ///   reqmeta(Id, Priority, Deadline, Arrival).
  datalog::Database BuildDatalogEdb() const;

  /// Converts a result row (id, ta, intrata, operation, object [, ...]) back
  /// into a Request, rejoining the SLA columns from the pending table.
  Result<Request> RowToRequest(const storage::Row& row) const;

  /// Decodes the `operation` column ("r"/"w"/"a", anything else = commit) —
  /// the one mapping every consumer of these tables must share.
  static txn::OpType ParseOperation(const std::string& op);

 private:
  static storage::Row ToRow(const Request& request);

  storage::Catalog catalog_;
  sql::SqlEngine engine_;
  storage::Table* requests_ = nullptr;
  storage::Table* history_ = nullptr;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_REQUEST_STORE_H_
