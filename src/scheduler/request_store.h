// RequestStore: the pending-request and history databases of Figure 1.
//
// Both are ordinary relations in a storage::Catalog so that scheduling
// protocols — SQL queries or Datalog programs — can treat requests as data.
// Schema: the paper's Table 2 columns plus the SLA extension columns.
//
// The store is the single writer of those relations and keeps three pieces
// of derived state so per-cycle work is proportional to what changed, not
// what is resident:
//   - a typed mirror of pending (id -> Request, iterated in id order) that
//     spares every consumer the boxed-Value decode and per-row index
//     re-join;
//   - monotone pending/history epochs, bumped exactly once per mutating
//     call, that incremental consumers (the Datalog EDB cache below, the
//     backends' LockTableState) key their caches on;
//   - a running set of transactions whose commit/abort markers entered
//     history since the last GC, so GarbageCollectFinished() skips both
//     full scans when there is nothing to retire.
// Mutate the relations through this API only; out-of-band table edits are
// tolerated (derived state self-heals via the tables' content-version
// counters) but defeat the incremental machinery.
//
// Thread ownership: a RequestStore belongs to the one thread that runs its
// scheduler's cycles — nothing here locks. In the sharded scheduler each
// shard owns a private store (and therefore private epochs); cross-shard
// effects arrive only as that shard's own cycle-thread mutations (escrow
// mirror markers applied between cycles). Epoch invariant consumers rely
// on: each mutating call that touches a relation bumps that relation's
// epoch exactly once — never zero times, never twice — and the epoch
// value is meaningful only for equality comparison against a value read
// from this same store instance.

#ifndef DECLSCHED_SCHEDULER_REQUEST_STORE_H_
#define DECLSCHED_SCHEDULER_REQUEST_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "datalog/engine.h"
#include "scheduler/request.h"
#include "sql/engine.h"
#include "storage/catalog.h"

namespace declsched::storage {
class Wal;
}  // namespace declsched::storage

namespace declsched::scheduler {

/// One row of the `tenants` accounting relation: the per-tenant QoS state
/// the fairness protocols (wfq, drr, tenant-cap) read, in every backend.
/// `weight`/`rate`/`burst`/`cap` are configuration; `vtime`/`round`/
/// `tokens`/`inflight` are accounting, maintained O(delta) by the
/// TenantAccountant (or set directly via UpsertTenant in tests/benches).
struct TenantAcct {
  int64_t tenant = 0;
  /// Fair-share weight (>= 1). A weight-2 tenant accrues virtual time at
  /// half the rate, so wfq grants it twice the service.
  int64_t weight = 1;
  /// Virtual time: cumulative service micros x kWfqScale / weight. The wfq
  /// rank key (ascending).
  int64_t vtime = 0;
  /// Service rounds consumed: cumulative service / (quantum x weight). The
  /// drr rank key (ascending; coarser than vtime).
  int64_t round = 0;
  /// Token bucket fill; consumed one per dispatched request when rate > 0.
  int64_t tokens = 0;
  /// Token refill rate per simulated second (0 = no rate limit).
  int64_t rate = 0;
  /// Token bucket capacity (refill never exceeds it).
  int64_t burst = 0;
  /// In-flight cap: max resident (dispatched, unfinished) requests
  /// (0 = unlimited).
  int64_t cap = 0;
  /// Resident history rows of this tenant (dispatched, not yet retired).
  int64_t inflight = 0;

  /// The tenant-cap throttle predicate, shared by every formulation: the
  /// native/composed C++ evaluates exactly what the SQL/Datalog texts say.
  bool Throttled() const {
    return (cap > 0 && inflight >= cap) || (rate > 0 && tokens <= 0);
  }
};

class RequestStore {
 public:
  /// Column layout of both the `requests` and `history` tables.
  /// The first five columns are the paper's Table 2.
  static constexpr int kColId = 0;
  static constexpr int kColTa = 1;
  static constexpr int kColIntrata = 2;
  static constexpr int kColOperation = 3;
  static constexpr int kColObject = 4;
  static constexpr int kColPriority = 5;
  static constexpr int kColDeadline = 6;
  static constexpr int kColArrival = 7;
  static constexpr int kColClient = 8;
  static constexpr int kColTenant = 9;

  /// What one GarbageCollectFinished() call retired.
  struct GcResult {
    int64_t rows_retired = 0;
    /// The terminated transactions whose rows were retired, ascending.
    std::vector<txn::TxnId> txns;
    /// Retired history rows per tenant — read off each row as it is
    /// retired (still O(rows retired)), so the TenantAccountant can
    /// decrement per-tenant inflight without keeping its own ta map.
    std::map<int64_t, int64_t> rows_by_tenant;
  };

  RequestStore();

  storage::Catalog* catalog() { return &catalog_; }
  const storage::Catalog* catalog() const { return &catalog_; }
  sql::SqlEngine* sql_engine() { return &engine_; }

  /// Appends a batch to the pending `requests` relation.
  Status InsertPending(const RequestBatch& batch);

  /// Moves scheduled requests: delete from `requests`, insert into `history`.
  /// (Paper Section 3.3, step three.)
  Status MarkScheduled(const RequestBatch& batch);

  /// Appends one row straight to history — how the scheduler injects the
  /// abort marker of a deadlock victim.
  Status InsertHistory(const Request& request);

  /// Drops every pending request of `ta`; returns how many were dropped.
  /// When `dropped_by_tenant` is non-null, accumulates the drop counts per
  /// tenant into it (the TenantAccountant's O(delta) pending bookkeeping).
  int64_t DropPendingOfTransaction(
      txn::TxnId ta, std::map<int64_t, int64_t>* dropped_by_tenant = nullptr);

  /// Deletes every history row of transactions that have a commit/abort
  /// marker. Under SS2PL those rows no longer represent locks; retiring them
  /// keeps the history table at the active working set ("all *relevant*
  /// prior executed requests"). O(1) when no marker arrived since the last
  /// call; otherwise O(rows of the finished transactions) via the ta index.
  Result<GcResult> GarbageCollectFinished();

  /// All pending requests, by ascending id (a copy of the mirror).
  Result<RequestBatch> AllPending() const;

  /// The typed mirror of pending, keyed — and therefore iterated — by id.
  /// The zero-copy way to walk pending; valid until the next mutation.
  const std::map<int64_t, Request>& pending_by_id() const;

  int64_t pending_count() const;
  int64_t history_count() const;

  /// Epochs bump exactly once per mutating call that touched the relation.
  /// Consumers cache derived state keyed on them (equality compare only).
  uint64_t pending_epoch() const { return pending_epoch_; }
  uint64_t history_epoch() const { return history_epoch_; }

  /// The history table's content-mutation counter (storage::Table::
  /// version()). Unlike the epoch, it also moves on out-of-band edits —
  /// ad-hoc SQL DML, partial failures — so incremental consumers pair it
  /// with the epoch to detect every way history can change under them.
  uint64_t history_version() const;

  /// The requests table's content-mutation counter — pairs with
  /// pending_epoch() exactly as history_version() pairs with the history
  /// epoch. What the vectorized executor's columnar mirror keys its
  /// delta-accept handshake on.
  uint64_t pending_version() const;

  /// The tenants table's content-mutation counter. The tenants relation has
  /// no narrated delta hook (the accountant upserts between hooks), so
  /// columnar consumers rebuild whenever this moves.
  uint64_t tenants_version() const;

  // --- the `tenants` accounting relation -------------------------------
  // Visible to SQL protocols as the `tenants` table and to Datalog as the
  // `tenantacct` EDB relation; the typed mirror below is the zero-decode
  // path the native backend and composed stages read. InsertPending
  // auto-creates a default row for any tenant first seen on a pending
  // request, so fairness protocols can always inner-join requests with
  // tenants. Unlike requests/history, mutate this relation through
  // UpsertTenant only — out-of-band SQL DML against `tenants` is detected
  // (content version) and answered by a mirror rebuild from the table.

  /// Inserts or overwrites the row of `acct.tenant` (table + mirror).
  Status UpsertTenant(const TenantAcct& acct);

  /// The typed mirror of the `tenants` relation, keyed by tenant id;
  /// valid until the next mutation. Missing tenant = default TenantAcct.
  const std::map<int64_t, TenantAcct>& tenants_by_id() const;

  /// The acct of one tenant (default row if the tenant has no row yet).
  TenantAcct TenantOrDefault(int64_t tenant) const;

  int64_t tenant_count() const;

  /// EDB for Datalog protocols:
  ///   req(Id, Ta, Intrata, Op, Obj), hist(Id, Ta, Intrata, Op, Obj),
  ///   reqmeta(Id, Priority, Deadline, Arrival),
  ///   reqtenant(Id, Tenant),
  ///   tenantacct(Tenant, Weight, Vtime, Round, Tokens, Rate, Cap,
  ///              Inflight).
  /// Cached with per-relation epoch invalidation: req/reqmeta/reqtenant
  /// rebuild only when pending changed, hist only when history changed,
  /// tenantacct only when the tenants table changed, so repeat consumers
  /// in one cycle (protocol, deadlock resolver) share one build. The
  /// reference is valid until the next mutation.
  const datalog::Database& BuildDatalogEdb() const;

  /// The one row -> Request decode/join path shared by every interpreted
  /// backend: converts result rows carrying the Table 2 columns
  /// (id, ta, intrata, operation, object) into Requests, rejoining the SLA
  /// columns from the typed pending mirror in the same pass. `cols` gives
  /// the position of each Table 2 column in the result schema (the SQL
  /// backend's by-name binding); the default overload is for results in
  /// canonical column order (Datalog relations, raw table projections).
  Result<RequestBatch> RowsToRequests(const std::vector<storage::Row>& rows,
                                      const std::vector<int>& cols) const;
  Result<RequestBatch> RowsToRequests(const std::vector<storage::Row>& rows) const;

  /// Decodes the `operation` column ("r"/"w"/"a", anything else = commit) —
  /// the one mapping every consumer of these tables must share.
  static txn::OpType ParseOperation(const std::string& op);

  /// Decodes a full 9-column `requests`/`history` row. The one place the
  /// column layout is interpreted; consumers scanning raw table rows (the
  /// scratch native path, the mirror rebuild) must share it.
  static Request RowToRequestFull(const storage::Row& row);

  /// Row codecs of the `tenants` relation, shared with the snapshot/restore
  /// path (scheduler/durability.h).
  static storage::Row TenantToRow(const TenantAcct& acct);
  static TenantAcct RowToTenant(const storage::Row& row);

  // --- durability --------------------------------------------------------
  // When a WAL is attached, every successful mutating call appends exactly
  // one logical record (tagged with this store's shard id) describing it,
  // so replaying records 1..N through ApplyWalRecord reproduces the store's
  // relations exactly. Recovery replays with the WAL detached — the same
  // mutators run, but must not re-log.

  void AttachWal(storage::Wal* wal, uint16_t shard);
  void DetachWal();
  storage::Wal* wal() const { return wal_; }
  /// LSN of this store's most recent WAL record (0 = none since attach).
  /// A dispatch is durably acknowledged once wal()->durable_lsn() passes
  /// the value read right after the dispatching cycle.
  uint64_t last_wal_lsn() const { return last_wal_lsn_; }

 private:
  static storage::Row ToRow(const Request& request);

  /// Appends one record for a mutation that just succeeded (no-op when no
  /// WAL is attached).
  void LogWal(uint8_t type, std::string_view payload);

  /// Rebuilds the mirror from the table if an out-of-band edit changed the
  /// row count underneath it.
  void EnsureMirror() const;
  /// As EnsureMirror, for the tenants relation.
  void EnsureTenantMirror() const;
  /// Tracks a row entering history (marker bookkeeping; no epoch bump).
  Status AppendHistoryRow(const Request& request);

  storage::Catalog catalog_;
  sql::SqlEngine engine_;
  storage::Table* requests_ = nullptr;
  storage::Table* history_ = nullptr;
  storage::Table* tenants_ = nullptr;

  /// Typed mirror of the `requests` relation. Mutable: EnsureMirror() may
  /// lazily self-heal from a const accessor. `mirror_version_` is the table
  /// version the mirror reflects; any mismatch — out-of-band DML, an error
  /// path that bailed early — triggers a rebuild.
  mutable std::map<int64_t, Request> pending_by_id_;
  mutable uint64_t mirror_version_ = 0;
  /// Transactions with a termination marker in history not yet retired.
  /// Valid only while the history table's version equals
  /// `history_version_expected_` (the version after this store's own last
  /// mutation); an out-of-band edit forces the next GC to rescan markers.
  std::unordered_set<txn::TxnId> unretired_finished_;
  uint64_t history_version_expected_ = 0;
  /// Epochs start at 1 so 0 can serve consumers as a "never synced" value.
  mutable uint64_t pending_epoch_ = 1;
  uint64_t history_epoch_ = 1;

  /// Typed mirror of the `tenants` relation; self-heals from the table on
  /// version mismatch, like the pending mirror.
  mutable std::map<int64_t, TenantAcct> tenants_by_id_;
  mutable uint64_t tenant_mirror_version_ = 0;

  // Datalog EDB cache (see BuildDatalogEdb). A cached epoch of 0 is stale.
  mutable datalog::Database edb_cache_;
  mutable uint64_t edb_pending_epoch_ = 0;
  mutable uint64_t edb_history_epoch_ = 0;
  mutable uint64_t edb_history_version_ = 0;
  /// Sentinel-initialized so the first build materializes the (possibly
  /// empty) tenantacct relation (table versions start at 0).
  mutable uint64_t edb_tenant_version_ = ~uint64_t{0};

  /// Durability hooks (see AttachWal). Not owned.
  storage::Wal* wal_ = nullptr;
  uint16_t wal_shard_ = 0;
  uint64_t last_wal_lsn_ = 0;
  /// Reused by every LogWal call site so record encoding never allocates in
  /// steady state (the capacity sticks across mutations).
  std::string wal_scratch_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_REQUEST_STORE_H_
