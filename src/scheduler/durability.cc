#include "scheduler/durability.h"

#include <string>
#include <utility>

#include "common/string_util.h"
#include "storage/coding.h"

namespace declsched::scheduler {

namespace {

using storage::ByteReader;
using storage::PutVarint64;
using storage::PutVarintSigned;
using storage::PutVarintSignedRaw;

Status Truncated(const char* what) {
  return Status::Internal(
      StrFormat("truncated wal payload while decoding %s", what));
}

void EncodeOneRequest(std::string* dst, const Request& r) {
  // Nine varints (<= 10 bytes each) + the op char: one stack buffer, one
  // append — not ten small appends each paying a capacity check.
  char buf[91];
  char* p = buf;
  p = PutVarintSignedRaw(p, r.id);
  p = PutVarintSignedRaw(p, r.ta);
  p = PutVarintSignedRaw(p, r.intrata);
  *p++ = txn::OpTypeToChar(r.op);
  p = PutVarintSignedRaw(p, r.object);
  p = PutVarintSignedRaw(p, static_cast<int64_t>(r.priority));
  p = PutVarintSignedRaw(p, r.deadline.micros());
  p = PutVarintSignedRaw(p, r.arrival.micros());
  p = PutVarintSignedRaw(p, static_cast<int64_t>(r.client));
  p = PutVarintSignedRaw(p, static_cast<int64_t>(r.tenant));
  dst->append(buf, static_cast<size_t>(p - buf));
}

bool DecodeOneRequest(ByteReader* reader, Request* r) {
  int64_t priority, deadline_us, arrival_us, client, tenant;
  uint8_t op;
  if (!reader->ReadVarintSigned(&r->id) || !reader->ReadVarintSigned(&r->ta) ||
      !reader->ReadVarintSigned(&r->intrata) || !reader->ReadByte(&op) ||
      !reader->ReadVarintSigned(&r->object) ||
      !reader->ReadVarintSigned(&priority) ||
      !reader->ReadVarintSigned(&deadline_us) ||
      !reader->ReadVarintSigned(&arrival_us) ||
      !reader->ReadVarintSigned(&client) ||
      !reader->ReadVarintSigned(&tenant)) {
    return false;
  }
  r->op = RequestStore::ParseOperation(
      std::string(1, static_cast<char>(op)));
  r->priority = static_cast<int>(priority);
  r->deadline = SimTime::FromMicros(deadline_us);
  r->arrival = SimTime::FromMicros(arrival_us);
  r->client = static_cast<int>(client);
  r->tenant = static_cast<int>(tenant);
  return true;
}

}  // namespace

void EncodeRequestsTo(std::string* dst, const RequestBatch& batch) {
  dst->reserve(dst->size() + 1 + batch.size() * 24);
  PutVarint64(dst, batch.size());
  for (const Request& r : batch) EncodeOneRequest(dst, r);
}

std::string EncodeRequests(const RequestBatch& batch) {
  std::string out;
  EncodeRequestsTo(&out, batch);
  return out;
}

Result<RequestBatch> DecodeRequests(std::string_view payload) {
  ByteReader reader(payload);
  uint64_t count;
  if (!reader.ReadVarint64(&count) || count > payload.size()) {
    return Truncated("request count");
  }
  RequestBatch batch;
  batch.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Request r;
    if (!DecodeOneRequest(&reader, &r)) return Truncated("request");
    batch.push_back(r);
  }
  if (!reader.empty()) return Truncated("request batch (trailing bytes)");
  return batch;
}

void EncodeRequestIdsTo(std::string* dst, const RequestBatch& batch) {
  dst->reserve(dst->size() + 1 + batch.size() * 3);
  PutVarint64(dst, batch.size());
  char buf[512];
  char* p = buf;
  for (const Request& r : batch) {
    p = PutVarintSignedRaw(p, r.id);
    if (p > buf + sizeof(buf) - 10) {
      dst->append(buf, static_cast<size_t>(p - buf));
      p = buf;
    }
  }
  dst->append(buf, static_cast<size_t>(p - buf));
}

std::string EncodeRequestIds(const RequestBatch& batch) {
  std::string out;
  EncodeRequestIdsTo(&out, batch);
  return out;
}

Result<std::vector<int64_t>> DecodeRequestIds(std::string_view payload) {
  ByteReader reader(payload);
  uint64_t count;
  if (!reader.ReadVarint64(&count) || count > payload.size()) {
    return Truncated("id count");
  }
  std::vector<int64_t> ids;
  ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t id;
    if (!reader.ReadVarintSigned(&id)) return Truncated("request id");
    ids.push_back(id);
  }
  if (!reader.empty()) return Truncated("id batch (trailing bytes)");
  return ids;
}

void EncodeTenantTo(std::string* dst, const TenantAcct& acct) {
  dst->reserve(dst->size() + 24);
  PutVarintSigned(dst, acct.tenant);
  PutVarintSigned(dst, acct.weight);
  PutVarintSigned(dst, acct.vtime);
  PutVarintSigned(dst, acct.round);
  PutVarintSigned(dst, acct.tokens);
  PutVarintSigned(dst, acct.rate);
  PutVarintSigned(dst, acct.burst);
  PutVarintSigned(dst, acct.cap);
  PutVarintSigned(dst, acct.inflight);
}

std::string EncodeTenant(const TenantAcct& acct) {
  std::string out;
  EncodeTenantTo(&out, acct);
  return out;
}

Result<TenantAcct> DecodeTenant(std::string_view payload) {
  ByteReader reader(payload);
  TenantAcct acct;
  if (!reader.ReadVarintSigned(&acct.tenant) ||
      !reader.ReadVarintSigned(&acct.weight) ||
      !reader.ReadVarintSigned(&acct.vtime) ||
      !reader.ReadVarintSigned(&acct.round) ||
      !reader.ReadVarintSigned(&acct.tokens) ||
      !reader.ReadVarintSigned(&acct.rate) ||
      !reader.ReadVarintSigned(&acct.burst) ||
      !reader.ReadVarintSigned(&acct.cap) ||
      !reader.ReadVarintSigned(&acct.inflight) || !reader.empty()) {
    return Truncated("tenant acct");
  }
  return acct;
}

void EncodeTxnIdTo(std::string* dst, txn::TxnId ta) {
  PutVarintSigned(dst, ta);
}

std::string EncodeTxnId(txn::TxnId ta) {
  std::string out;
  EncodeTxnIdTo(&out, ta);
  return out;
}

Result<txn::TxnId> DecodeTxnId(std::string_view payload) {
  ByteReader reader(payload);
  int64_t ta;
  if (!reader.ReadVarintSigned(&ta) || !reader.empty()) {
    return Truncated("txn id");
  }
  return ta;
}

std::string EncodeEscrowFanout(uint32_t mask, const Request& marker) {
  std::string out;
  PutVarint64(&out, mask);
  EncodeOneRequest(&out, marker);
  return out;
}

Result<EscrowFanout> DecodeEscrowFanout(std::string_view payload) {
  ByteReader reader(payload);
  EscrowFanout fanout;
  uint64_t mask;
  if (!reader.ReadVarint64(&mask) ||
      !DecodeOneRequest(&reader, &fanout.marker) || !reader.empty()) {
    return Truncated("escrow fanout");
  }
  fanout.mask = static_cast<uint32_t>(mask);
  return fanout;
}

Status ApplyWalRecord(RequestStore* store, const storage::WalRecord& record) {
  if (store->wal() != nullptr) {
    return Status::Internal("replay against a store with a WAL attached");
  }
  switch (static_cast<WalRecordType>(record.type)) {
    case WalRecordType::kInsertPending: {
      DS_ASSIGN_OR_RETURN(RequestBatch batch, DecodeRequests(record.payload));
      return store->InsertPending(batch);
    }
    case WalRecordType::kMarkScheduled: {
      DS_ASSIGN_OR_RETURN(std::vector<int64_t> ids,
                          DecodeRequestIds(record.payload));
      RequestBatch batch;
      batch.reserve(ids.size());
      for (int64_t id : ids) {
        Request r;
        r.id = id;
        batch.push_back(r);
      }
      return store->MarkScheduled(batch);
    }
    case WalRecordType::kInsertHistory: {
      DS_ASSIGN_OR_RETURN(RequestBatch batch, DecodeRequests(record.payload));
      if (batch.size() != 1) {
        return Status::Internal("kInsertHistory record without exactly one row");
      }
      return store->InsertHistory(batch[0]);
    }
    case WalRecordType::kDropPending: {
      DS_ASSIGN_OR_RETURN(txn::TxnId ta, DecodeTxnId(record.payload));
      store->DropPendingOfTransaction(ta);
      return Status::OK();
    }
    case WalRecordType::kGc:
      return store->GarbageCollectFinished().status();
    case WalRecordType::kUpsertTenant: {
      DS_ASSIGN_OR_RETURN(TenantAcct acct, DecodeTenant(record.payload));
      return store->UpsertTenant(acct);
    }
    case WalRecordType::kEscrowFanout:
      return Status::Internal(
          "kEscrowFanout is not a store mutation; the sharded scheduler's "
          "recovery handles it");
  }
  return Status::Internal(StrFormat("unknown wal record type %d at lsn %llu",
                                    static_cast<int>(record.type),
                                    static_cast<unsigned long long>(record.lsn)));
}

std::vector<storage::TableSnapshot> SnapshotShardStore(
    const RequestStore& store) {
  std::vector<storage::TableSnapshot> tables;
  tables.reserve(3);
  for (const char* name : {"requests", "tenants", "history"}) {
    storage::TableSnapshot snap;
    snap.name = name;
    snap.rows = store.catalog()->GetTable(name)->Scan();
    tables.push_back(std::move(snap));
  }
  return tables;
}

Status RestoreShardStore(RequestStore* store,
                         const std::vector<storage::TableSnapshot>& tables) {
  if (store->wal() != nullptr) {
    return Status::Internal("restore into a store with a WAL attached");
  }
  const storage::TableSnapshot* requests = nullptr;
  const storage::TableSnapshot* tenants = nullptr;
  const storage::TableSnapshot* history = nullptr;
  for (const auto& table : tables) {
    if (table.name == "requests") {
      requests = &table;
    } else if (table.name == "tenants") {
      tenants = &table;
    } else if (table.name == "history") {
      history = &table;
    } else {
      return Status::Internal("snapshot has unknown table " + table.name);
    }
  }
  if (requests != nullptr) {
    RequestBatch batch;
    batch.reserve(requests->rows.size());
    for (const storage::Row& row : requests->rows) {
      batch.push_back(RequestStore::RowToRequestFull(row));
    }
    DS_RETURN_NOT_OK(store->InsertPending(batch));
  }
  // After requests: InsertPending auto-created default tenant rows; the
  // snapshot's exact accounting overwrites them.
  if (tenants != nullptr) {
    for (const storage::Row& row : tenants->rows) {
      DS_RETURN_NOT_OK(store->UpsertTenant(RequestStore::RowToTenant(row)));
    }
  }
  if (history != nullptr) {
    for (const storage::Row& row : history->rows) {
      DS_RETURN_NOT_OK(
          store->InsertHistory(RequestStore::RowToRequestFull(row)));
    }
  }
  return Status::OK();
}

}  // namespace declsched::scheduler
