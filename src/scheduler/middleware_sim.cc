#include "scheduler/middleware_sim.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace declsched::scheduler {

namespace {

using txn::OpType;
using txn::TxnId;

struct Client {
  int index = 0;
  std::unique_ptr<workload::OltpWorkloadGenerator> generator;
  workload::TxnSpec spec;
  size_t next_op = 0;       // next operation to submit
  TxnId ta = 0;
  SimTime txn_start;
  SimTime deadline;
  bool outstanding = false;  // a request is queued/pending/dispatching
  bool commit_submitted = false;
  SimTime resume_at;         // earliest time the next submission may happen
  int consecutive_aborts = 0;  // drives exponential restart backoff
};

class Harness {
 public:
  explicit Harness(const MiddlewareSimConfig& config)
      : config_(config), server_(config.server) {}

  Result<MiddlewareSimResult> Run() {
    if (config_.num_clients <= 0) {
      return Status::InvalidArgument("num_clients must be positive");
    }
    scheduler_ = std::make_unique<DeclarativeScheduler>(config_.scheduler, &server_);
    DS_RETURN_NOT_OK(scheduler_->Init());
    if (config_.adaptive.has_value()) {
      adaptive_ = std::make_unique<AdaptiveConsistencyController>(*config_.adaptive,
                                                                  scheduler_.get());
    }

    int num_classes = std::max(1, config_.workload.num_sla_classes);
    result_.latency_by_class.resize(static_cast<size_t>(num_classes));

    clients_.reserve(static_cast<size_t>(config_.num_clients));
    for (int i = 0; i < config_.num_clients; ++i) {
      clients_.push_back(Client{});
      Client& c = clients_.back();
      c.index = i;
      c.generator = std::make_unique<workload::OltpWorkloadGenerator>(
          config_.workload, config_.seed + static_cast<uint64_t>(i) * 6151);
      BeginTransaction(c);
    }

    SimTime now;
    int64_t consecutive_stalls = 0;
    while (now < config_.duration) {
      if (config_.max_committed_txns >= 0 &&
          result_.committed_txns >= config_.max_committed_txns) {
        break;
      }

      // Submission phase: clients whose previous request completed.
      for (Client& c : clients_) {
        if (!c.outstanding && c.resume_at <= now) SubmitNext(c, now);
      }

      if (scheduler_->queue_size() == 0 && scheduler_->store()->pending_count() == 0) {
        // Everyone is waiting on a future resume time: jump there.
        SimTime next = SimTime::Max();
        for (const Client& c : clients_) {
          if (!c.outstanding && c.resume_at < next) next = c.resume_at;
        }
        if (next == SimTime::Max()) {
          return Status::Internal("middleware sim: no runnable client");
        }
        now = next > now ? next : now + SimTime::FromMicros(1);
        continue;
      }

      // Trigger phase.
      const SimTime eligible = scheduler_->NextEligible(now);
      if (eligible > now) {
        now = eligible;
        continue;
      }

      DS_ASSIGN_OR_RETURN(CycleStats stats, scheduler_->RunCycle(now));
      ++result_.cycles;

      // Completion phase: requests finish as the batch executes.
      SimTime t = now + server_.config().cost.batch_dispatch;
      for (const Request& request : scheduler_->last_dispatched()) {
        const bool terminal =
            request.op == OpType::kCommit || request.op == OpType::kAbort;
        t += terminal ? server_.config().cost.commit_service
                      : server_.config().cost.statement_service;
        if (request.op == OpType::kWrite) ++result_.dispatched_writes;
        DS_RETURN_NOT_OK(OnDispatched(request, t));
      }

      // Victim phase: deadlock resolution aborted these transactions.
      for (TxnId victim : scheduler_->last_victims()) {
        DS_RETURN_NOT_OK(OnVictim(victim, now));
      }

      if (adaptive_ != nullptr) {
        DS_ASSIGN_OR_RETURN(
            bool switched,
            adaptive_->OnCycle(scheduler_->queue_size() +
                               scheduler_->store()->pending_count()));
        if (switched) ++result_.protocol_switches;
      }

      if (stats.dispatched == 0 && stats.victims == 0) {
        ++consecutive_stalls;
        if (consecutive_stalls > 10000) {
          return Status::Internal(StrFormat(
              "middleware sim stalled: %lld pending, %lld queued, 0 progress",
              static_cast<long long>(scheduler_->store()->pending_count()),
              static_cast<long long>(scheduler_->queue_size())));
        }
        // Blocked work can only progress once some client submits again
        // (e.g. the lock holder's commit): jump straight to that time.
        SimTime next = SimTime::Max();
        for (const Client& c : clients_) {
          if (!c.outstanding && c.resume_at < next) next = c.resume_at;
        }
        if (next == SimTime::Max()) {
          // Everyone is blocked in pending; the resolver will break a cycle
          // on an upcoming cycle — tick forward minimally.
          now += SimTime::FromMicros(100);
        } else {
          now = next > now ? next : now + SimTime::FromMicros(100);
        }
      } else {
        consecutive_stalls = 0;
        now += stats.server_busy;
        if (stats.server_busy == SimTime()) now += SimTime::FromMicros(1);
      }
    }

    result_.elapsed = now < config_.duration ? now : config_.duration;
    result_.totals = scheduler_->totals();
    if (scheduler_->tenant_accountant() != nullptr) {
      result_.tenant_totals = scheduler_->tenant_accountant()->Totals();
    }
    if (config_.server.materialize_rows) {
      for (int64_t k = 0; k < config_.server.num_rows; ++k) {
        DS_ASSIGN_OR_RETURN(int64_t value, server_.RowValue(k));
        result_.server_write_checksum += value;
      }
    }
    return std::move(result_);
  }

 private:
  void BeginTransaction(Client& c) {
    c.spec = c.generator->NextTransaction();
    StartAttempt(c, /*now=*/c.resume_at);
  }

  void StartAttempt(Client& c, SimTime now) {
    c.ta = next_ta_++;
    ta_owner_[c.ta] = c.index;
    c.next_op = 0;
    c.commit_submitted = false;
    c.txn_start = now;
    c.deadline = now + config_.deadline_slack * (c.spec.sla_class + 1);
    c.outstanding = false;
  }

  void SubmitNext(Client& c, SimTime now) {
    Request request;
    request.ta = c.ta;
    request.priority = c.spec.sla_class;
    request.deadline = c.deadline;
    request.client = c.index;
    request.tenant = c.spec.tenant;
    if (c.next_op < c.spec.ops.size()) {
      const workload::OpSpec& op = c.spec.ops[c.next_op];
      request.intrata = static_cast<int64_t>(c.next_op) + 1;
      request.op = op.is_write ? OpType::kWrite : OpType::kRead;
      request.object = op.object;
    } else {
      DS_CHECK(!c.commit_submitted);
      request.intrata = static_cast<int64_t>(c.spec.ops.size()) + 1;
      request.op = OpType::kCommit;
      request.object = Request::kNoObject;
      c.commit_submitted = true;
    }
    scheduler_->Submit(std::move(request), now);
    c.outstanding = true;
  }

  Status OnDispatched(const Request& request, SimTime finish) {
    if (request.client < 0 ||
        request.client >= static_cast<int>(clients_.size())) {
      return Status::Internal("dispatched request has no client");
    }
    Client& c = clients_[request.client];
    if (request.ta != c.ta) return Status::OK();  // stale (aborted attempt)
    c.outstanding = false;
    c.resume_at = finish;

    if (config_.record_history &&
        (request.op == OpType::kRead || request.op == OpType::kWrite)) {
      result_.history.push_back(txn::HistoryOp{
          request.ta, request.op, request.object});
    }

    if (request.op == OpType::kCommit) {
      if (config_.record_history) {
        result_.history.push_back(txn::HistoryOp{request.ta, OpType::kCommit, 0});
      }
      ++result_.committed_txns;
      result_.committed_statements += static_cast<int64_t>(c.spec.ops.size());
      const int cls =
          std::min<int>(c.spec.sla_class,
                        static_cast<int>(result_.latency_by_class.size()) - 1);
      result_.latency_by_class[static_cast<size_t>(cls)].Record(
          (finish - c.txn_start).micros());
      if (finish <= c.deadline) {
        ++result_.deadline_met;
      } else {
        ++result_.deadline_missed;
      }
      ta_owner_.erase(request.ta);
      c.resume_at = finish;
      c.consecutive_aborts = 0;
      BeginTransactionAt(c, finish);
    } else {
      ++c.next_op;
    }
    return Status::OK();
  }

  void BeginTransactionAt(Client& c, SimTime now) {
    c.resume_at = now;
    c.spec = c.generator->NextTransaction();
    StartAttempt(c, now);
  }

  Status OnVictim(TxnId ta, SimTime now) {
    auto it = ta_owner_.find(ta);
    if (it == ta_owner_.end()) return Status::OK();
    Client& c = clients_[it->second];
    if (c.ta != ta) return Status::OK();
    ta_owner_.erase(it);
    ++result_.aborted_txns;
    if (config_.record_history) {
      result_.history.push_back(txn::HistoryOp{ta, OpType::kAbort, 0});
    }
    // Retry the same transaction spec under a fresh id. A restarted
    // transaction is younger than everyone else, so it loses every age-based
    // tie-break; exponential backoff keeps repeated victims from re-forming
    // the same deadlock in lockstep (retry storm).
    c.outstanding = false;
    const int shift = std::min(c.consecutive_aborts, 10);
    ++c.consecutive_aborts;
    c.resume_at = now + config_.restart_backoff * (int64_t{1} << shift);
    const workload::TxnSpec spec = c.spec;
    StartAttempt(c, c.resume_at);
    c.spec = spec;
    return Status::OK();
  }

  MiddlewareSimConfig config_;
  server::DatabaseServer server_;
  std::unique_ptr<DeclarativeScheduler> scheduler_;
  std::unique_ptr<AdaptiveConsistencyController> adaptive_;
  std::vector<Client> clients_;
  std::unordered_map<TxnId, int> ta_owner_;
  TxnId next_ta_ = 1;
  MiddlewareSimResult result_;
};

}  // namespace

Result<MiddlewareSimResult> RunMiddlewareSimulation(
    const MiddlewareSimConfig& config) {
  Harness harness(config);
  return harness.Run();
}

}  // namespace declsched::scheduler
