#include "scheduler/protocol_library.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace declsched::scheduler {

namespace {

/// Paper Listing 1. The CTE block is shared by the SS2PL-based protocols;
/// only the final SELECT differs (plain, priority-ordered, deadline-ordered).
constexpr const char* kSs2plCtes = R"sql(
WITH RLockedObjects AS
  (SELECT a.object, a.ta, a.Operation
   FROM history a
   WHERE NOT EXISTS
     (SELECT * FROM history b
      WHERE (a.ta = b.ta AND a.object = b.object AND b.operation = 'w')
         OR (a.ta = b.ta AND (b.operation = 'a' OR b.operation = 'c')))),
WLockedObjects AS
  (SELECT DISTINCT a.object, a.ta, a.operation
   FROM history a LEFT JOIN
     (SELECT ta FROM history
      WHERE operation = 'a' OR operation = 'c') AS finishedTAs
     ON a.ta = finishedTAs.ta
   WHERE a.operation = 'w' AND finishedTAs.ta IS Null),
OperationsOnWLockedObjects AS
  (SELECT r.ta, r.intrata
   FROM requests r, WLockedObjects wlo
   WHERE r.object = wlo.object AND r.ta <> wlo.ta),
OperationsOnRLockedObjects AS
  (SELECT wOpsOnRLObj.ta, wOpsOnRLObj.intrata
   FROM requests wOpsOnRLObj, RLockedObjects rl
   WHERE wOpsOnRLObj.object = rl.object
     AND wOpsOnRLObj.operation = 'w'
     AND wOpsOnRLObj.ta <> rl.ta),
OpsOnSameObjAsPriorSelectOps AS
  (SELECT r2.ta, r2.intrata
   FROM requests r2, requests r1
   WHERE r2.object = r1.object AND r2.ta > r1.ta
     AND ((r1.operation = 'w') OR (r2.operation = 'w'))),
QualifiedSS2PLOps AS
  ((SELECT ta, intrata FROM requests)
   EXCEPT (
     (SELECT * FROM OperationsOnWLockedObjects)
     UNION ALL
     (SELECT * FROM OpsOnSameObjAsPriorSelectOps)
     UNION ALL
     (SELECT * FROM OperationsOnRLockedObjects)))
)sql";

constexpr const char* kSs2plFinal = R"sql(
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta = ss2PL.ta AND r2.intrata = ss2PL.intrata
)sql";

constexpr const char* kSlaFinal = R"sql(
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta = ss2PL.ta AND r2.intrata = ss2PL.intrata
ORDER BY r2.priority, r2.id
)sql";

constexpr const char* kEdfFinal = R"sql(
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta = ss2PL.ta AND r2.intrata = ss2PL.intrata
ORDER BY CASE WHEN r2.deadline = 0 THEN 1 ELSE 0 END, r2.deadline, r2.id
)sql";

constexpr const char* kReadCommittedSql = R"sql(
WITH WLockedObjects AS
  (SELECT DISTINCT a.object, a.ta
   FROM history a LEFT JOIN
     (SELECT ta FROM history
      WHERE operation = 'a' OR operation = 'c') AS finishedTAs
     ON a.ta = finishedTAs.ta
   WHERE a.operation = 'w' AND finishedTAs.ta IS Null),
BlockedOps AS
  ((SELECT r.ta, r.intrata
    FROM requests r, WLockedObjects wlo
    WHERE r.operation = 'w' AND r.object = wlo.object AND r.ta <> wlo.ta)
   UNION ALL
   (SELECT r2.ta, r2.intrata
    FROM requests r2, requests r1
    WHERE r2.object = r1.object AND r2.ta > r1.ta
      AND r1.operation = 'w' AND r2.operation = 'w')),
QualifiedOps AS
  ((SELECT ta, intrata FROM requests)
   EXCEPT (SELECT * FROM BlockedOps))
SELECT r2.*
FROM requests r2, QualifiedOps q
WHERE r2.ta = q.ta AND r2.intrata = q.intrata
)sql";

/// The SS2PL locking rules, shared by the plain Datalog protocol and the
/// tenant-fairness protocols (which differ only in the head they derive) —
/// the Datalog analogue of the shared kSs2plCtes block above.
constexpr const char* kSs2plDatalogRules = R"(
% Strong two-phase locking over the request/history relations.
finished(Ta) :- hist(_, Ta, _, "c", _).
finished(Ta) :- hist(_, Ta, _, "a", _).
wrotepair(Obj, Ta) :- hist(_, Ta, _, "w", Obj).
wlock(Obj, Ta) :- hist(_, Ta, _, "w", Obj), !finished(Ta).
rlock(Obj, Ta) :- hist(_, Ta, _, "r", Obj), !finished(Ta), !wrotepair(Obj, Ta).
blocked(Ta, In) :- req(_, Ta, In, _, Obj), wlock(Obj, T2), Ta != T2.
blocked(Ta, In) :- req(_, Ta, In, "w", Obj), rlock(Obj, T2), Ta != T2.
blocked(T2, In2) :- req(_, T2, In2, "w", Obj), req(_, T1, _, _, Obj), T2 > T1.
blocked(T2, In2) :- req(_, T2, In2, _, Obj), req(_, T1, _, "w", Obj), T2 > T1.
)";

constexpr const char* kSs2plQualifiedHead =
    "qualified(Id, Ta, In, Op, Obj) :- req(Id, Ta, In, Op, Obj), "
    "!blocked(Ta, In).\n";

/// The same qualification derived as ss2plok, for the tenant rules that
/// build `qualified` on top of it.
constexpr const char* kSs2plOkHead =
    "ss2plok(Id, Ta, In, Op, Obj) :- req(Id, Ta, In, Op, Obj), "
    "!blocked(Ta, In).\n";

constexpr const char* kReadCommittedDatalog = R"(
% Relaxed consistency: readers never block, writers respect write locks.
finished(Ta) :- hist(_, Ta, _, "c", _).
finished(Ta) :- hist(_, Ta, _, "a", _).
wlock(Obj, Ta) :- hist(_, Ta, _, "w", Obj), !finished(Ta).
blocked(Ta, In) :- req(_, Ta, In, "w", Obj), wlock(Obj, T2), Ta != T2.
blocked(T2, In2) :- req(_, T2, In2, "w", Obj), req(_, T1, _, "w", Obj), T2 > T1.
qualified(Id, Ta, In, Op, Obj) :- req(Id, Ta, In, Op, Obj), !blocked(Ta, In).
)";

// --- multi-tenant fairness (the `tenants` relation / `tenantacct` EDB) ---

constexpr const char* kWfqFinal = R"sql(
SELECT r2.*, t.vtime
FROM requests r2, QualifiedSS2PLOps ss2PL, tenants t
WHERE r2.ta = ss2PL.ta AND r2.intrata = ss2PL.intrata
  AND r2.tenant = t.tenant
ORDER BY t.vtime, r2.id
)sql";

constexpr const char* kDrrFinal = R"sql(
SELECT r2.*, t.round
FROM requests r2, QualifiedSS2PLOps ss2PL, tenants t
WHERE r2.ta = ss2PL.ta AND r2.intrata = ss2PL.intrata
  AND r2.tenant = t.tenant
ORDER BY t.round, r2.tenant, r2.id
)sql";

constexpr const char* kTenantCapFinal = R"sql(
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta = ss2PL.ta AND r2.intrata = ss2PL.intrata
  AND r2.tenant NOT IN
    (SELECT tenant FROM tenants
     WHERE (cap > 0 AND inflight >= cap) OR (rate > 0 AND tokens <= 0))
)sql";

constexpr const char* kWfqDatalogTail = R"(
% wfq: every SS2PL-safe request qualifies; dispatch order is the rank
% relation — the submitting tenant's virtual time (then id).
qualified(Id, Ta, In, Op, Obj) :- ss2plok(Id, Ta, In, Op, Obj).
rankkey(Id, V) :- qualified(Id, _, _, _, _), reqtenant(Id, T),
                  tenantacct(T, _, V, _, _, _, _, _).
)";

constexpr const char* kDrrDatalogTail = R"(
% drr: rank by the tenant's consumed service rounds, round-robin by
% tenant within a round (then id).
qualified(Id, Ta, In, Op, Obj) :- ss2plok(Id, Ta, In, Op, Obj).
rankkey(Id, R, T) :- qualified(Id, _, _, _, _), reqtenant(Id, T),
                     tenantacct(T, _, _, R, _, _, _, _).
)";

constexpr const char* kTenantCapDatalogTail = R"(
% tenant-cap: drop SS2PL-safe requests of throttled tenants.
throttled(T) :- tenantacct(T, _, _, _, _, _, Cap, Inflight),
                Cap > 0, Inflight >= Cap.
throttled(T) :- tenantacct(T, _, _, _, Tokens, Rate, _, _),
                Rate > 0, Tokens <= 0.
qualified(Id, Ta, In, Op, Obj) :- ss2plok(Id, Ta, In, Op, Obj),
                                  reqtenant(Id, T), !throttled(T).
)";

}  // namespace

ProtocolSpec Ss2plSql() {
  ProtocolSpec spec;
  spec.name = "ss2pl-sql";
  spec.description = "Strong 2PL as SQL (paper Listing 1); serializable";
  spec.backend = "sql";
  spec.text = std::string(kSs2plCtes) + kSs2plFinal;
  return spec;
}

ProtocolSpec Ss2plDatalog() {
  ProtocolSpec spec;
  spec.name = "ss2pl-datalog";
  spec.description = "Strong 2PL as Datalog rules; serializable";
  spec.backend = "datalog";
  spec.text = std::string(kSs2plDatalogRules) + kSs2plQualifiedHead;
  return spec;
}

ProtocolSpec FcfsSql() {
  ProtocolSpec spec;
  spec.name = "fcfs-sql";
  spec.description = "FCFS, no consistency control (every request qualifies)";
  spec.backend = "sql";
  spec.text = "SELECT * FROM requests ORDER BY id";
  spec.ordered = true;
  return spec;
}

ProtocolSpec SlaPrioritySql() {
  ProtocolSpec spec;
  spec.name = "sla-priority-sql";
  spec.description = "SS2PL-safe, premium-tier requests dispatched first";
  spec.backend = "sql";
  spec.text = std::string(kSs2plCtes) + kSlaFinal;
  spec.ordered = true;
  return spec;
}

ProtocolSpec EdfSql() {
  ProtocolSpec spec;
  spec.name = "edf-sql";
  spec.description = "SS2PL-safe, earliest-deadline-first dispatch";
  spec.backend = "sql";
  spec.text = std::string(kSs2plCtes) + kEdfFinal;
  spec.ordered = true;
  return spec;
}

ProtocolSpec ReadCommittedSql() {
  ProtocolSpec spec;
  spec.name = "read-committed-sql";
  spec.description = "Relaxed: readers never block; write locks only";
  spec.backend = "sql";
  spec.text = kReadCommittedSql;
  return spec;
}

ProtocolSpec ReadCommittedDatalog() {
  ProtocolSpec spec;
  spec.name = "read-committed-datalog";
  spec.description = "Relaxed read-committed as Datalog rules";
  spec.backend = "datalog";
  spec.text = kReadCommittedDatalog;
  return spec;
}

ProtocolSpec Passthrough() {
  ProtocolSpec spec;
  spec.name = "passthrough";
  spec.description = "Non-scheduling mode: forward everything immediately";
  spec.backend = "passthrough";
  return spec;
}

namespace {

ProtocolSpec NativeSpec(const char* name, const char* variant,
                        const char* description, bool ordered) {
  ProtocolSpec spec;
  spec.name = name;
  spec.description = description;
  spec.backend = "native";
  spec.text = variant;
  spec.ordered = ordered;
  return spec;
}

}  // namespace

ProtocolSpec Ss2plNative() {
  return NativeSpec("ss2pl-native", "ss2pl",
                    "Strong 2PL hand-coded in C++ (Figure 2's scheduler)",
                    /*ordered=*/false);
}

ProtocolSpec FcfsNative() {
  return NativeSpec("fcfs-native", "fcfs",
                    "FCFS hand-coded in C++, no consistency control",
                    /*ordered=*/true);
}

ProtocolSpec SlaPriorityNative() {
  return NativeSpec("sla-priority-native", "sla-priority",
                    "SS2PL-safe, premium-first dispatch, hand-coded in C++",
                    /*ordered=*/true);
}

ProtocolSpec EdfNative() {
  return NativeSpec("edf-native", "edf",
                    "SS2PL-safe, earliest-deadline-first, hand-coded in C++",
                    /*ordered=*/true);
}

ProtocolSpec ReadCommittedNative() {
  return NativeSpec("read-committed-native", "read-committed",
                    "Relaxed read-committed hand-coded in C++",
                    /*ordered=*/false);
}

ProtocolSpec WfqNative() {
  return NativeSpec("wfq-native", "wfq",
                    "Weighted-fair tenant dispatch, hand-coded in C++",
                    /*ordered=*/true);
}

ProtocolSpec DrrNative() {
  return NativeSpec("drr-native", "drr",
                    "Deficit-round fair tenant dispatch, hand-coded in C++",
                    /*ordered=*/true);
}

ProtocolSpec TenantCapNative() {
  return NativeSpec("tenant-cap-native", "tenant-cap",
                    "Tenant throttling (cap/tokens), hand-coded in C++",
                    /*ordered=*/false);
}

ProtocolSpec ComposedWfq() {
  ProtocolSpec spec;
  spec.name = "composed-wfq";
  spec.description = "Composed: SS2PL filter, weighted-fair tenant ranking";
  spec.backend = "composed";
  spec.text = "filter:ss2pl | fair_rank:vtime";
  return spec;
}

ProtocolSpec ComposedDrr() {
  ProtocolSpec spec;
  spec.name = "composed-drr";
  spec.description = "Composed: SS2PL filter, deficit-round tenant ranking";
  spec.backend = "composed";
  spec.text = "filter:ss2pl | fair_rank:round";
  return spec;
}

ProtocolSpec ComposedTenantCap() {
  ProtocolSpec spec;
  spec.name = "composed-tenant-cap";
  spec.description = "Composed: SS2PL filter, throttled-tenant drop";
  spec.backend = "composed";
  spec.text = "filter:ss2pl | tenant_cap";
  return spec;
}

ProtocolSpec WfqSql() {
  ProtocolSpec spec;
  spec.name = "wfq-sql";
  spec.description = "SS2PL-safe, weighted-fair dispatch by tenant vtime";
  spec.backend = "sql";
  spec.text = std::string(kSs2plCtes) + kWfqFinal;
  spec.ordered = true;
  return spec;
}

ProtocolSpec DrrSql() {
  ProtocolSpec spec;
  spec.name = "drr-sql";
  spec.description = "SS2PL-safe, deficit-round fair dispatch by tenant";
  spec.backend = "sql";
  spec.text = std::string(kSs2plCtes) + kDrrFinal;
  spec.ordered = true;
  return spec;
}

ProtocolSpec TenantCapSql() {
  ProtocolSpec spec;
  spec.name = "tenant-cap-sql";
  spec.description = "SS2PL-safe minus throttled tenants (cap/tokens)";
  spec.backend = "sql";
  spec.text = std::string(kSs2plCtes) + kTenantCapFinal;
  return spec;
}

ProtocolSpec WfqDatalog() {
  ProtocolSpec spec;
  spec.name = "wfq-datalog";
  spec.description = "wfq as Datalog rules + a rank relation";
  spec.backend = "datalog";
  spec.text = std::string(kSs2plDatalogRules) + kSs2plOkHead + kWfqDatalogTail;
  spec.datalog_rank = "rankkey";
  spec.ordered = true;
  return spec;
}

ProtocolSpec DrrDatalog() {
  ProtocolSpec spec;
  spec.name = "drr-datalog";
  spec.description = "drr as Datalog rules + a rank relation";
  spec.backend = "datalog";
  spec.text = std::string(kSs2plDatalogRules) + kSs2plOkHead + kDrrDatalogTail;
  spec.datalog_rank = "rankkey";
  spec.ordered = true;
  return spec;
}

ProtocolSpec TenantCapDatalog() {
  ProtocolSpec spec;
  spec.name = "tenant-cap-datalog";
  spec.description = "tenant throttling as Datalog rules";
  spec.backend = "datalog";
  spec.text = std::string(kSs2plDatalogRules) + kSs2plOkHead + kTenantCapDatalogTail;
  return spec;
}

ProtocolSpec ComposedReadCommittedEdf(int64_t cap) {
  ProtocolSpec spec;
  spec.name = cap > 0 ? StrFormat("composed-rc-edf-cap%lld",
                                  static_cast<long long>(cap))
                      : "composed-rc-edf";
  spec.description =
      "Composed: read-committed filter, EDF ranking, admission cap";
  spec.backend = "composed";
  spec.text = "filter:read-committed | rank:edf";
  if (cap > 0) {
    spec.text += StrFormat(" | cap:%lld", static_cast<long long>(cap));
  }
  return spec;
}

ProtocolSpec ComposedSs2plPriority(int64_t cap) {
  ProtocolSpec spec;
  spec.name = cap > 0 ? StrFormat("composed-ss2pl-priority-cap%lld",
                                  static_cast<long long>(cap))
                      : "composed-ss2pl-priority";
  spec.description =
      "Composed: SS2PL filter, priority ranking, admission cap";
  spec.backend = "composed";
  spec.text = "filter:ss2pl | rank:priority";
  if (cap > 0) {
    spec.text += StrFormat(" | cap:%lld", static_cast<long long>(cap));
  }
  return spec;
}

ProtocolSpec InterpretedVariant(ProtocolSpec spec) {
  if (spec.backend != "sql" && spec.backend != "datalog") return spec;
  if (spec.text.rfind("interp:", 0) == 0) return spec;  // already forced
  spec.name = "interp:" + spec.name;
  spec.text = "interp:" + spec.text;
  spec.description += " (interpreted oracle)";
  return spec;
}

ProtocolSpec ScalarExecVariant(ProtocolSpec spec) {
  if (spec.backend != "sql" && spec.backend != "datalog") return spec;
  if (spec.text.rfind("interp:", 0) == 0) return spec;  // never lowers
  if (spec.ir_executor == "scalar") return spec;        // already forced
  spec.name = "scalar:" + spec.name;
  spec.ir_executor = "scalar";
  spec.description += " (scalar IR executor)";
  return spec;
}

ProtocolRegistry ProtocolRegistry::BuiltIns() {
  ProtocolRegistry registry;
  for (const ProtocolSpec& spec :
       {Ss2plSql(), Ss2plDatalog(), Ss2plNative(), FcfsSql(), FcfsNative(),
        SlaPrioritySql(), SlaPriorityNative(), EdfSql(), EdfNative(),
        ReadCommittedSql(), ReadCommittedDatalog(), ReadCommittedNative(),
        Passthrough(), ComposedReadCommittedEdf(), ComposedSs2plPriority(),
        WfqSql(), WfqDatalog(), WfqNative(), ComposedWfq(), DrrSql(),
        DrrDatalog(), DrrNative(), ComposedDrr(), TenantCapSql(),
        TenantCapDatalog(), TenantCapNative(), ComposedTenantCap()}) {
    DS_CHECK_OK(registry.Register(spec));
  }
  return registry;
}

Status ProtocolRegistry::Register(ProtocolSpec spec) {
  const std::string name = spec.name;
  if (!specs_.emplace(name, std::move(spec)).second) {
    return Status::AlreadyExists("protocol already registered: " + name);
  }
  return Status::OK();
}

Result<ProtocolSpec> ProtocolRegistry::Get(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) return Status::NotFound("no protocol named " + name);
  return it->second;
}

std::vector<std::string> ProtocolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) names.push_back(name);
  return names;
}

}  // namespace declsched::scheduler
