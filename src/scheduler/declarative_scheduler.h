// DeclarativeScheduler: the middleware of Figure 1.
//
// Clients submit requests into the incoming queue; when the trigger fires
// the scheduler (1) drains the queue into the pending-request relation,
// (2) runs the active protocol — a SQL query, Datalog program, or native
// backend — over pending ∪ history, (3) moves the qualified requests into
// history and garbage-collects finished transactions, (4) resolves
// declaratively detected deadlocks, and (5) dispatches the qualified batch
// to the server. The scheduler is the single writer of the request store
// and narrates every mutation to the active protocol through its delta
// hooks (OnAdmitted/OnScheduled/OnFinished), so incremental backends pay
// O(delta) per cycle instead of re-deriving state from what is resident.
// Every phase of every cycle is timed with a real (wall) clock, since the
// scheduler's own cost is exactly what Section 4.3 measures.
//
// Thread ownership: one thread — the cycle thread — owns RunCycle,
// SwitchProtocol, ApplyEscrowedFinisher, store() mutation, and every
// accessor not documented otherwise. Admission (Submit/SubmitRouted) is
// the one concurrent entry point: it touches only the thread-safe incoming
// queue (plus, for Submit, the id counter — so preassign ids via
// SubmitRouted when submitting from multiple threads). This is the
// contract the sharded scheduler builds on (one DeclarativeScheduler per
// shard, one worker thread each); see docs/ARCHITECTURE.md. Epoch
// invariant: every store mutation RunCycle makes bumps the store's
// pending/history epoch exactly once and is narrated through exactly one
// protocol hook immediately after — the handshake incremental backends
// (LockTableState, the Datalog EDB cache) key their O(delta) fast path on.

#ifndef DECLSCHED_SCHEDULER_DECLARATIVE_SCHEDULER_H_
#define DECLSCHED_SCHEDULER_DECLARATIVE_SCHEDULER_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "scheduler/deadlock_resolver.h"
#include "scheduler/incoming_queue.h"
#include "scheduler/protocol.h"
#include "scheduler/protocol_library.h"
#include "scheduler/request_store.h"
#include "scheduler/tenant_accountant.h"
#include "scheduler/trigger_policy.h"
#include "server/database_server.h"

namespace declsched::scheduler {

/// Timings (microseconds of real wall time) and counts of one cycle.
struct CycleStats {
  int64_t drained = 0;
  int64_t pending_before = 0;
  int64_t history_before = 0;
  int64_t qualified = 0;
  int64_t dispatched = 0;
  int64_t gc_removed = 0;
  int64_t victims = 0;

  int64_t insert_us = 0;   // queue drain + pending insert
  int64_t query_us = 0;    // protocol evaluation
  int64_t move_us = 0;     // delete from pending + insert into history + GC
  int64_t total_us = 0;    // full cycle wall time
  SimTime server_busy;     // simulated server time of the dispatched batch
};

/// Monotone aggregates over all cycles.
struct SchedulerTotals {
  int64_t cycles = 0;
  int64_t admitted = 0;
  int64_t dispatched = 0;
  int64_t victims = 0;
  int64_t total_query_us = 0;
  int64_t total_cycle_us = 0;
  Histogram cycle_us;
  Histogram qualified_per_cycle;
};

class DeclarativeScheduler {
 public:
  struct Options {
    ProtocolSpec protocol;  // default set in the constructor: ss2pl-sql
    TriggerConfig trigger = TriggerConfig::Eager();
    /// Retire history rows of finished transactions every cycle.
    bool history_gc = true;
    /// Run the Datalog deadlock resolver when a cycle stalls.
    bool deadlock_detection = true;
    /// Cap on dispatched requests per cycle (server admission control);
    /// <= 0 means unlimited. With an ordered protocol the cap keeps the
    /// highest-ranked requests (SLA admission).
    int64_t max_dispatch_per_cycle = 0;
    /// Factory that resolves protocol backends; null means the process-wide
    /// ProtocolFactory::Global(). Supply one to drive the scheduler with
    /// backends that are not registered globally.
    const ProtocolFactory* factory = nullptr;
    /// Identity reported to protocols via ScheduleContext (which shard this
    /// instance runs as). The defaults describe an unsharded scheduler.
    int shard = 0;
    int num_shards = 1;
    /// Base for internally assigned ids (Submit, deadlock-victim abort
    /// markers). The sharded scheduler gives each shard a disjoint high
    /// range so internal ids never collide with its global request ids.
    int64_t first_request_id = 1;
    /// Run a TenantAccountant alongside the protocol: per-tenant QoS
    /// counters (pending/in-flight/service, wfq virtual time, drr rounds,
    /// token buckets) maintained O(delta) from the same narration and
    /// flushed into the store's `tenants` relation every cycle — what the
    /// fairness protocols read. Off = zero accounting cost (and the
    /// tenants relation stays whatever it was).
    bool tenant_accounting = true;
    TenantQosConfig tenant_qos;
    /// When the store has a WAL attached: block each cycle until the WAL
    /// records of its dispatch mutations are durable before executing the
    /// batch against the server. Off by default — the sharded front door
    /// instead acks asynchronously via Wal::WhenDurable, which keeps fsync
    /// off every cycle's critical path (the group-commit design). Turn on
    /// for strict execute-after-durable ordering in single-shard embeds.
    bool sync_dispatch_wal = false;

    Options() : protocol(Ss2plSql()) {}
  };

  /// `server` may be null: the scheduler then plans but does not execute
  /// (used by benches that time pure scheduling).
  DeclarativeScheduler(Options options, server::DatabaseServer* server);

  /// Compiles the protocol and the deadlock program. Must be called once
  /// before use.
  Status Init();

  /// Admits a request: assigns id and arrival, appends to the queue.
  /// Returns the assigned id. Call from one submitting thread at a time
  /// (the id counter is unsynchronized); concurrent submitters should
  /// preassign ids and use SubmitRouted.
  int64_t Submit(Request request, SimTime now);

  /// Admits a request that already carries its (globally unique) id —
  /// sharded mode, where the ShardedScheduler numbers requests. Touches
  /// only the thread-safe incoming queue: safe from any thread, any number
  /// concurrently.
  void SubmitRouted(Request request);

  /// Applies a finisher (commit/abort) marker published by another shard's
  /// dispatch: drops the transaction's pending requests if it aborted, then
  /// inserts the marker into history and narrates OnScheduled — exactly the
  /// store/protocol transition a locally dispatched finisher makes, so
  /// incremental backends absorb the cross-shard delta at O(delta). Cycle
  /// thread only.
  Status ApplyEscrowedFinisher(const Request& marker);

  /// Points the per-cycle ScheduleContext at an externally maintained
  /// escrow view (null = none). The pointee must outlive the scheduler or
  /// be reset; cycle thread only.
  void set_escrowed_locks(const EscrowedLocks* escrowed) { escrowed_ = escrowed; }

  /// Aborts `ta` without dispatching anything: injects an abort marker
  /// into history and drops the transaction's pending requests, exactly as
  /// deadlock resolution does. External drivers use it as a lock-wait
  /// timeout backstop (the scenario runner's stuck-transaction escape
  /// hatch). The transaction's requests must already have drained into
  /// pending — aborting while requests still sit in the incoming queue
  /// leaves them to dispatch after the transaction is gone. Cycle thread
  /// only.
  Status AbortTransaction(txn::TxnId ta, SimTime now);

  /// True if the trigger would fire now.
  bool ShouldFire(SimTime now) const;

  /// Earliest time a timer-based trigger could fire (now for others).
  SimTime NextEligible(SimTime now) const { return trigger_.NextEligible(now); }

  /// Runs one full scheduling cycle.
  Result<CycleStats> RunCycle(SimTime now);

  /// Swaps the active protocol at runtime (recompiles through the factory;
  /// pending requests are preserved). This is the paper's flexibility claim
  /// made concrete — and it works across backends: SQL to Datalog to native
  /// to composed.
  Status SwitchProtocol(const ProtocolSpec& spec);

  const ProtocolSpec& protocol() const;
  /// The compiled protocol instance (null before Init()).
  const Protocol* active_protocol() const { return protocol_.get(); }
  /// Requests dispatched by the most recent cycle, in dispatch order.
  const RequestBatch& last_dispatched() const { return last_dispatched_; }
  /// Transactions aborted by the most recent cycle's deadlock resolution.
  const std::vector<txn::TxnId>& last_victims() const { return last_victims_; }

  RequestStore* store() { return &store_; }
  /// The per-tenant QoS accountant (null before Init(), or when
  /// Options::tenant_accounting is off). Cycle thread only, except the
  /// accountant's own PublishedSnapshot().
  TenantAccountant* tenant_accountant() { return accountant_.get(); }
  const SchedulerTotals& totals() const { return totals_; }
  /// Thread-safe (the queue carries its own lock).
  int64_t queue_size() const { return queue_.size(); }
  /// The incoming queue (e.g. to set its push-notify hook). The queue's own
  /// API is thread-safe; set_notify before producers start.
  IncomingQueue* queue() { return &queue_; }

 private:
  /// The factory protocols compile through (Options override or Global()).
  const ProtocolFactory& factory() const;

  /// Shared tail of AbortTransaction and ApplyEscrowedFinisher: drop
  /// pending on abort, append the marker to history, narrate OnScheduled.
  Status InjectFinisherMarker(const Request& marker);

  Options options_;
  server::DatabaseServer* server_;
  IncomingQueue queue_;
  RequestStore store_;
  TriggerPolicy trigger_;
  std::unique_ptr<Protocol> protocol_;
  std::unique_ptr<TenantAccountant> accountant_;
  std::optional<DeadlockResolver> resolver_;
  RequestBatch last_dispatched_;
  std::vector<txn::TxnId> last_victims_;
  SchedulerTotals totals_;
  const EscrowedLocks* escrowed_ = nullptr;
  int64_t next_request_id_ = 1;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_DECLARATIVE_SCHEDULER_H_
