// Scheduling protocols as data behind a pluggable backend API.
//
// A ProtocolSpec is the declarative description of a scheduling protocol
// (its text plus which backend evaluates it); a Protocol is that spec
// compiled against one RequestStore. Backends are registered by name in a
// ProtocolFactory, so new evaluation strategies — another query language, a
// hand-coded native scheduler, a stage pipeline — plug in without touching
// the scheduler. Swapping protocols is still a runtime operation — the
// flexibility the paper contrasts against hand-coded schedulers — but the
// hand-coded scheduler is now itself a backend behind the same interface
// (the paper's Figure 2 comparison point, benchmarkable through one API).

#ifndef DECLSCHED_SCHEDULER_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_PROTOCOL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "scheduler/request_store.h"

namespace declsched::scheduler {

struct LockTable;
class TenantAccountant;

/// Cross-shard escrow state visible to a shard's protocol: transactions
/// whose finisher has been admitted under escrow somewhere in the sharded
/// scheduler and whose locks on this shard will be released when the escrow
/// home shard publishes the dispatch. Purely advisory — the built-in
/// protocols schedule correctly without consulting it — but a policy may
/// use it (e.g. to deprioritize requests that are about to unblock anyway).
struct EscrowedLocks {
  /// Transactions in escrow involving this shard, in admission order.
  std::vector<txn::TxnId> txns;
};

/// Everything a backend may consult when evaluating one scheduling cycle.
/// New fields extend every backend at once without signature churn.
struct ScheduleContext {
  RequestStore* store = nullptr;
  SimTime now;
  /// Set by protocols that maintain incremental lock state (the composed
  /// backend fills it before running its stages); null means derive locks
  /// from the store when needed.
  const LockTable* locks = nullptr;
  /// The cycle's complete pending set, filled once by the composed backend
  /// so later stages can judge pending-pending conflicts without re-copying
  /// the store's mirror; null means fetch from the store when needed.
  const RequestBatch* pending_universe = nullptr;
  /// Which scheduler shard is evaluating (0-based) and how many shards the
  /// scheduler runs. A single-shard DeclarativeScheduler reports 0 of 1.
  int shard = 0;
  int num_shards = 1;
  /// In-flight cross-shard escrows touching this shard; null when the
  /// scheduler runs unsharded (or no escrow is in flight).
  const EscrowedLocks* escrowed = nullptr;
  /// Live per-tenant QoS accounting (starvation guard, cumulative
  /// counters), when the owning scheduler runs a TenantAccountant.
  /// Advisory: the built-in fairness policies read the store's `tenants`
  /// relation instead — which the accountant keeps current — so they
  /// answer identically on a bare store with hand-written tenants rows.
  const TenantAccountant* tenants = nullptr;
};

/// The declarative description of a scheduling protocol. `backend` names the
/// evaluation strategy in the ProtocolFactory; `text` is backend-specific:
/// a SQL SELECT, a Datalog program, a native variant name ("ss2pl", "edf",
/// ...), or a composed stage pipeline ("filter:ss2pl | rank:edf | cap:16").
struct ProtocolSpec {
  std::string name;
  std::string description;
  std::string backend = "passthrough";
  std::string text;
  /// Datalog: the derived relation holding qualified requests
  /// (id, ta, intrata, operation, object).
  std::string datalog_output = "qualified";
  /// Datalog: optional derived relation (Id, Key...) assigning each
  /// qualified request a sort key; when set, dispatch order is ascending
  /// by the key columns then id (requests missing from the relation sort
  /// last), and the protocol is `ordered`. How ranking policies (wfq,
  /// drr) are expressed in a language without ORDER BY.
  std::string datalog_rank;
  /// If true, the protocol's result order is the dispatch order (SLA/EDF
  /// protocols rank by priority/deadline); otherwise dispatch is by id.
  bool ordered = false;
  /// Which executor a compiled (IR-lowered) protocol runs its plan on:
  /// "" / "vec" = the vectorized columnar executor (the default), "scalar"
  /// = the row-at-a-time executor, kept as the differential oracle.
  /// Ignored by specs that never lower (interpreted, native, composed).
  std::string ir_executor;

  /// Size metric for the paper's Section 3.4 productivity comparison:
  /// non-empty, non-comment lines (SQL), rules (Datalog), stages (composed).
  /// Zero for backends without declarative text (passthrough, native).
  int CodeSize() const;
};

/// A protocol compiled against one RequestStore. Compile once via the
/// factory, Schedule() every cycle, always with a context naming the store
/// it was compiled against (backends may bind compile-time state, e.g. a
/// prepared SQL plan, to that store).
///
/// Thread ownership: a Protocol instance belongs to the one thread that
/// runs its scheduler's cycles. Schedule() and every delta hook are called
/// from that thread only, so backends need no internal locking even when
/// they keep mutable incremental state. In the sharded scheduler each shard
/// compiles its own instance against its own store; instances never share
/// state across shards.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Evaluates the protocol over the store's current pending/history
  /// contents; returns the qualified requests in dispatch order.
  virtual Result<RequestBatch> Schedule(const ScheduleContext& context) const = 0;

  // --- delta hooks (optional) -------------------------------------------
  // The scheduler narrates every mutation it makes to the store it compiled
  // this protocol against, immediately after making it and in mutation
  // order. Backends that keep incremental state apply the delta instead of
  // recomputing from the store next cycle; the defaults no-op, which keeps
  // from-scratch backends correct with zero changes. Hooks are advisory:
  // a backend must stay correct if the store was also mutated out-of-band
  // (incremental backends epoch-check against the store and fall back to a
  // from-scratch rebuild — see LockTableState).

  /// `batch` was drained from the incoming queue into pending.
  virtual void OnAdmitted(const RequestBatch& batch) { (void)batch; }
  /// `batch` just entered history: dispatched requests moved out of
  /// pending, or an abort marker injected for a deadlock victim.
  virtual void OnScheduled(const RequestBatch& batch) { (void)batch; }
  /// GC just retired every history row of `txns` (all terminated).
  virtual void OnFinished(const std::vector<txn::TxnId>& txns) { (void)txns; }

  const ProtocolSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  bool ordered() const { return spec_.ordered; }

 protected:
  explicit Protocol(ProtocolSpec spec) : spec_(std::move(spec)) {}

  ProtocolSpec spec_;
};

/// Registry of protocol backends, keyed by backend name. `Global()` comes
/// pre-loaded with the built-ins (sql, datalog, passthrough, native,
/// composed); custom backends register a compile function:
///
///   factory.RegisterBackend("mydsl",
///       [](const ProtocolSpec& spec, RequestStore* store)
///           -> Result<std::unique_ptr<Protocol>> { ... });
class ProtocolFactory {
 public:
  using CompileFn = std::function<Result<std::unique_ptr<Protocol>>(
      const ProtocolSpec& spec, RequestStore* store)>;

  /// The process-wide factory with every built-in backend registered.
  static ProtocolFactory& Global();

  /// An empty factory (no backends); useful for tests and sandboxing.
  ProtocolFactory() = default;

  Status RegisterBackend(const std::string& backend, CompileFn compile);
  bool HasBackend(const std::string& backend) const;
  std::vector<std::string> Backends() const;

  /// Compiles `spec` with the backend it names against `store`.
  Result<std::unique_ptr<Protocol>> Compile(const ProtocolSpec& spec,
                                            RequestStore* store) const;

 private:
  std::map<std::string, CompileFn> backends_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_PROTOCOL_H_
