// Scheduling protocols as data: a protocol is declarative text (SQL or
// Datalog) evaluated over the pending/history relations. Swapping protocols
// is a runtime operation — the flexibility the paper contrasts against
// hand-coded schedulers.

#ifndef DECLSCHED_SCHEDULER_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_PROTOCOL_H_

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "datalog/engine.h"
#include "scheduler/request_store.h"
#include "sql/engine.h"

namespace declsched::scheduler {

struct ProtocolSpec {
  enum class Language { kSql, kDatalog, kPassthrough };

  std::string name;
  std::string description;
  Language language = Language::kPassthrough;
  /// SQL SELECT or Datalog program text; unused for passthrough.
  std::string text;
  /// Datalog: the derived relation holding qualified requests
  /// (id, ta, intrata, operation, object).
  std::string datalog_output = "qualified";
  /// If true, the protocol's result order is the dispatch order (SLA/EDF
  /// protocols ORDER BY priority/deadline); otherwise dispatch is by id.
  bool ordered = false;

  /// Size metric for the paper's Section 3.4 productivity comparison:
  /// non-empty, non-comment lines (SQL) or rules (Datalog).
  int CodeSize() const;
};

/// A protocol compiled against one RequestStore (prepared SQL plan or
/// stratified Datalog program). Compile once, Schedule() every cycle.
class CompiledProtocol {
 public:
  static Result<CompiledProtocol> Compile(ProtocolSpec spec, RequestStore* store);

  /// Evaluates the protocol over the store's current pending/history
  /// contents; returns the qualified requests in dispatch order.
  Result<RequestBatch> Schedule() const;

  const ProtocolSpec& spec() const { return spec_; }

 private:
  CompiledProtocol(ProtocolSpec spec, RequestStore* store)
      : spec_(std::move(spec)), store_(store) {}

  ProtocolSpec spec_;
  RequestStore* store_;
  std::optional<sql::PreparedQuery> sql_;
  // Column positions of (id, ta, intrata, operation, object) in the SQL
  // result schema.
  std::vector<int> sql_cols_;
  std::shared_ptr<const datalog::DatalogProgram> datalog_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_PROTOCOL_H_
