// ShardRouter: maps requests to scheduler shards and tracks each
// transaction's shard footprint.
//
// The sharded scheduler partitions requests by their primary lock target:
// a read/write locks exactly one object, so it routes to the shard that
// owns that object and schedules there with zero cross-shard coordination
// (SS2PL qualification is per-object — locks and pending-pending conflicts
// on an object all live in the owning shard's history/pending state). A
// commit/abort releases every lock its transaction holds, so its "lock
// set" is the union of the shards its earlier requests touched; the router
// records that footprint at admission time and hands it to the escrow
// coordinator when the finisher arrives.
//
// Thread-safety: all methods are safe to call from concurrent submitters
// (one mutex; the hot path is a hash + a small bitmask update).

#ifndef DECLSCHED_SCHEDULER_SHARD_ROUTER_H_
#define DECLSCHED_SCHEDULER_SHARD_ROUTER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "scheduler/request.h"
#include "txn/types.h"

namespace declsched::scheduler {

class ShardRouter {
 public:
  /// At most 32 shards (footprints are a 32-bit shard bitmask).
  static constexpr int kMaxShards = 32;

  explicit ShardRouter(int num_shards);

  int num_shards() const { return num_shards_; }

  /// The shard owning an object's locks. Canonical across the whole run —
  /// every consumer (admission, escrow, benches) must agree on it.
  int ShardOfObject(txn::ObjectId object) const;

  /// Fallback shard for a request with no lock target and no recorded
  /// footprint (e.g. a commit-only transaction): hash of the transaction id.
  int ShardOfTransaction(txn::TxnId ta) const;

  /// Where one request goes, and whether it needs the escrow path.
  struct Route {
    /// Admission shard: the object's owner for read/write; the lowest
    /// footprint shard (the escrow "home") for a finisher.
    int shard = 0;
    /// Every shard holding locks the request touches, ascending (canonical
    /// escrow-ticket order). Size > 1 only for cross-shard finishers.
    std::vector<int> involved;
  };

  /// Routes `request`. Read/write: records the object's shard in the
  /// transaction's footprint and returns it. Commit/abort: consumes the
  /// footprint (the entry is erased — the transaction is finishing) and
  /// returns all involved shards.
  Route RouteRequest(const Request& request);

  /// The recorded footprint of `ta`, ascending; empty if unknown. Does not
  /// consume the entry (RouteRequest on the finisher does). Used for
  /// deadlock-victim abort mirroring.
  std::vector<int> Footprint(txn::TxnId ta) const;

  /// Drops `ta`'s footprint (after a victim's abort has been mirrored).
  void Forget(txn::TxnId ta);

  /// Merges `shard` into `ta`'s footprint without routing a request —
  /// crash recovery rebuilds footprints from restored rows (RouteRequest
  /// learned them pre-crash; that memory died with the process).
  void RecordFootprint(txn::TxnId ta, int shard);

  /// Transactions with a live footprint (admitted, not yet finished).
  int64_t tracked_transactions() const;

 private:
  static std::vector<int> MaskToShards(uint32_t mask);

  const int num_shards_;
  mutable std::mutex mu_;
  /// ta -> bitmask of shards its read/write requests were routed to.
  std::unordered_map<txn::TxnId, uint32_t> footprint_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_SHARD_ROUTER_H_
