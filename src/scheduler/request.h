// Request: the unit the declarative scheduler treats as data.
//
// Core attributes follow the paper's Table 2 (ID, TA, INTRATA, Operation,
// Object). The SLA attributes (priority, deadline, arrival) are the natural
// extension the paper's Section 1 motivates ("premium vs. free customers");
// they live in extra columns of the same relation so that SLA protocols can
// reference them declaratively.

#ifndef DECLSCHED_SCHEDULER_REQUEST_H_
#define DECLSCHED_SCHEDULER_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "server/statement.h"
#include "txn/types.h"

namespace declsched::scheduler {

struct Request {
  /// Consecutive request number (assigned by the scheduler at admission).
  int64_t id = 0;
  /// Transaction number.
  txn::TxnId ta = 0;
  /// Request number within the transaction.
  int64_t intrata = 0;
  /// read / write / abort / commit.
  txn::OpType op = txn::OpType::kRead;
  /// Object (row) number; kNoObject for commit/abort.
  txn::ObjectId object = kNoObject;

  // --- SLA extension ---
  /// 0 = highest priority (premium).
  int priority = 0;
  /// Absolute deadline on the simulated timeline (0 = none).
  SimTime deadline;
  /// Admission time (set by the scheduler).
  SimTime arrival;
  /// Submitting client (middleware bookkeeping, not visible to protocols).
  int client = -1;
  /// Submitting tenant — the multi-tenant QoS dimension. Unlike `client`,
  /// the tenant IS visible to protocols (a `tenant` column of the request
  /// relations plus the `tenants` accounting relation), so fairness
  /// policies (wfq, drr, tenant-cap) can rank and throttle by who
  /// submitted. 0 = the default tenant of single-tenant workloads.
  int tenant = 0;

  static constexpr txn::ObjectId kNoObject = -1;

  server::Statement ToStatement() const {
    return server::Statement{ta, intrata, op, object, tenant};
  }

  std::string ToString() const {
    std::string out = "#" + std::to_string(id) + " ";
    out += txn::OpTypeToChar(op);
    out += std::to_string(ta) + "." + std::to_string(intrata);
    if (op == txn::OpType::kRead || op == txn::OpType::kWrite) {
      out += "[" + std::to_string(object) + "]";
    }
    return out;
  }
};

using RequestBatch = std::vector<Request>;

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_REQUEST_H_
