#include "scheduler/trigger_policy.h"

#include "common/string_util.h"

namespace declsched::scheduler {

std::string TriggerConfig::ToString() const {
  switch (kind) {
    case Kind::kTimer:
      return StrFormat("timer(%lldus)", static_cast<long long>(interval.micros()));
    case Kind::kFillLevel:
      return StrFormat("fill(%lld)", static_cast<long long>(fill_level));
    case Kind::kHybrid:
      return StrFormat("hybrid(%lldus,%lld)",
                       static_cast<long long>(interval.micros()),
                       static_cast<long long>(fill_level));
    case Kind::kEager:
      return "eager";
  }
  return "?";
}

bool TriggerPolicy::ShouldFire(SimTime now, int64_t queue_size) const {
  if (queue_size <= 0) return false;
  switch (config_.kind) {
    case TriggerConfig::Kind::kEager:
      return true;
    case TriggerConfig::Kind::kTimer:
      return now - last_fired_ >= config_.interval;
    case TriggerConfig::Kind::kFillLevel:
      return queue_size >= config_.fill_level;
    case TriggerConfig::Kind::kHybrid:
      return now - last_fired_ >= config_.interval ||
             queue_size >= config_.fill_level;
  }
  return false;
}

SimTime TriggerPolicy::NextEligible(SimTime now) const {
  if (config_.kind == TriggerConfig::Kind::kTimer ||
      config_.kind == TriggerConfig::Kind::kHybrid) {
    const SimTime due = last_fired_ + config_.interval;
    return due > now ? due : now;
  }
  return now;
}

}  // namespace declsched::scheduler
