#include "scheduler/shard_router.h"

#include <algorithm>

#include "common/logging.h"

namespace declsched::scheduler {

namespace {

/// Mixes the key before the modulo so adjacent object ids (the common
/// workload layout) spread across shards instead of striding into one.
uint64_t Mix(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  return key;
}

}  // namespace

ShardRouter::ShardRouter(int num_shards) : num_shards_(num_shards) {
  DS_CHECK(num_shards >= 1 && num_shards <= kMaxShards);
}

int ShardRouter::ShardOfObject(txn::ObjectId object) const {
  return static_cast<int>(Mix(static_cast<uint64_t>(object)) %
                          static_cast<uint64_t>(num_shards_));
}

int ShardRouter::ShardOfTransaction(txn::TxnId ta) const {
  return static_cast<int>(Mix(static_cast<uint64_t>(ta)) %
                          static_cast<uint64_t>(num_shards_));
}

std::vector<int> ShardRouter::MaskToShards(uint32_t mask) {
  std::vector<int> shards;
  for (int s = 0; mask != 0; ++s, mask >>= 1) {
    if (mask & 1u) shards.push_back(s);
  }
  return shards;  // ascending by construction — the canonical ticket order
}

ShardRouter::Route ShardRouter::RouteRequest(const Request& request) {
  Route route;
  if (request.op == txn::OpType::kRead || request.op == txn::OpType::kWrite) {
    route.shard = ShardOfObject(request.object);
    route.involved = {route.shard};
    std::lock_guard<std::mutex> lock(mu_);
    footprint_[request.ta] |= 1u << route.shard;
    return route;
  }
  // Finisher: its lock set is everything the transaction touched.
  uint32_t mask = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = footprint_.find(request.ta);
    if (it != footprint_.end()) {
      mask = it->second;
      footprint_.erase(it);
    }
  }
  if (mask == 0) {
    // Never saw a read/write of this transaction (commit-only, or its
    // footprint was already consumed): nothing to release anywhere else.
    route.shard = ShardOfTransaction(request.ta);
    route.involved = {route.shard};
    return route;
  }
  route.involved = MaskToShards(mask);
  route.shard = route.involved.front();  // lowest shard = escrow home
  return route;
}

std::vector<int> ShardRouter::Footprint(txn::TxnId ta) const {
  uint32_t mask = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = footprint_.find(ta);
    if (it != footprint_.end()) mask = it->second;
  }
  return MaskToShards(mask);
}

void ShardRouter::Forget(txn::TxnId ta) {
  std::lock_guard<std::mutex> lock(mu_);
  footprint_.erase(ta);
}

void ShardRouter::RecordFootprint(txn::TxnId ta, int shard) {
  DS_CHECK(shard >= 0 && shard < num_shards_);
  std::lock_guard<std::mutex> lock(mu_);
  footprint_[ta] |= 1u << shard;
}

int64_t ShardRouter::tracked_transactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(footprint_.size());
}

}  // namespace declsched::scheduler
