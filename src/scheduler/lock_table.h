// Lock analysis over the history relation — the shared core of the native
// and composed backends.
//
// A LockTable is the set of locks implied by history under SS2PL: a write
// row of an unfinished transaction write-locks its object; a read row
// read-locks it unless the same transaction also wrote it. BuildLockTable()
// derives it from scratch by scanning history; LockTableState maintains the
// same table *incrementally* from the scheduler's delta hooks (requests
// entering history, transactions retired by GC), so a cycle costs O(delta)
// instead of O(history). The state is epoch-synced against the store: any
// history mutation it was not told about is detected on the next Refresh()
// and answered with a from-scratch rebuild, so out-of-band store edits
// degrade performance, never correctness.
//
// Thread ownership: a LockTableState is owned by a Protocol instance and
// inherits its threading contract — hooks and Refresh() run on the one
// cycle thread of the scheduler (shard) that owns the store; nothing here
// locks. Epoch invariant it relies on: the store bumps its history epoch
// exactly once per mutating call, the scheduler narrates that mutation
// through exactly one hook immediately after making it, and the paired
// content-version counter moves on every table edit however invoked —
// which is what lets ApplyHistoryAppend/ApplyFinished accept a delta iff
// the store is exactly one narrated step ahead, and Refresh() catch
// everything else (including a cross-shard escrow mirror applied without
// narration) with a rebuild.

#ifndef DECLSCHED_SCHEDULER_LOCK_TABLE_H_
#define DECLSCHED_SCHEDULER_LOCK_TABLE_H_

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scheduler/request.h"
#include "scheduler/request_store.h"
#include "txn/types.h"

namespace declsched::scheduler {

/// Locks implied by the history relation. Holder lists are tiny (almost
/// always one transaction), so flat vectors beat per-object hash sets by a
/// wide margin.
struct LockTable {
  std::unordered_set<txn::TxnId> finished;
  std::unordered_map<txn::ObjectId, std::vector<txn::TxnId>> wlocks;
  std::unordered_map<txn::ObjectId, std::vector<txn::TxnId>> rlocks;
};

/// From-scratch derivation: one full scan of the store's history table.
/// The reference implementation the incremental state is tested against.
LockTable BuildLockTable(RequestStore* store);

/// As BuildLockTable, but lock sets are only materialized for objects in
/// `relevant` (lock rows on objects no pending request touches can never
/// block). Answers identically to the unrestricted table for every object
/// in `relevant`. Null means all objects.
LockTable BuildLockTableRestricted(
    RequestStore* store, const std::unordered_set<txn::ObjectId>* relevant);

/// Incrementally maintained LockTable. Owned by a protocol instance; fed by
/// the scheduler's delta hooks; consulted once per cycle via Refresh().
///
/// Sync contract: each RequestStore history mutation bumps the store's
/// history epoch exactly once, and the scheduler narrates it through
/// exactly one hook, immediately. ApplyHistoryAppend/ApplyFinished accept a
/// delta only when the store is exactly one epoch ahead of the last synced
/// state; anything else (missed mutation, a fresh instance after
/// SwitchProtocol) marks the state unsynced and the next Refresh() rebuilds
/// from scratch. The epoch is paired with the history table's content
/// version (which moves on *every* edit, epoch-bumping or not), so
/// out-of-band writes — ad-hoc SQL DML, a store error path that bailed
/// early — are also caught at the next Refresh().
class LockTableState {
 public:
  /// The lock table answering for the store's current history. O(1) when
  /// synced; full history scan (counted in full_rebuilds()) when not.
  const LockTable& Refresh(const RequestStore& store);

  /// Delta: `batch` rows just entered history (scheduled requests, or an
  /// abort marker injected for a deadlock victim).
  void ApplyHistoryAppend(const RequestBatch& batch, const RequestStore& store);

  /// Delta: GC just retired every history row of `txns` (all terminated).
  void ApplyFinished(const std::vector<txn::TxnId>& txns,
                     const RequestStore& store);

  /// True if the next Refresh() can answer without a rebuild.
  bool synced_with(const RequestStore& store) const {
    return synced_epoch_ != kUnsynced &&
           synced_epoch_ == store.history_epoch() &&
           synced_version_ == store.history_version();
  }

  int64_t full_rebuilds() const { return full_rebuilds_; }
  int64_t deltas_applied() const { return deltas_applied_; }

 private:
  /// Sentinel: below any real store epoch (stores start at 1).
  static constexpr uint64_t kUnsynced = 0;
  /// Passed to AcceptDelta when the caller cannot predict the post-mutation
  /// table version (GC does not narrate its row count).
  static constexpr uint64_t kAnyVersion = ~uint64_t{0};

  struct TxnLocks {
    std::vector<txn::ObjectId> wlocked;
    std::vector<txn::ObjectId> rlocked;
  };

  /// True if the store is exactly one narrated mutation ahead (and, when
  /// predictable, the table version moved by exactly that mutation);
  /// otherwise drops to unsynced.
  bool AcceptDelta(const RequestStore& store, uint64_t expected_version);
  void ApplyRow(txn::OpType op, txn::TxnId ta, txn::ObjectId object);
  void ReleaseTransaction(txn::TxnId ta);
  void Rebuild(const RequestStore& store);

  LockTable table_;
  /// Objects each unfinished transaction holds locks on — what makes
  /// releasing a finished transaction O(its own locks).
  std::unordered_map<txn::TxnId, TxnLocks> txn_locks_;
  uint64_t synced_epoch_ = kUnsynced;
  /// History table content version at the last sync point.
  uint64_t synced_version_ = 0;
  int64_t full_rebuilds_ = 0;
  int64_t deltas_applied_ = 0;
};

/// Per-object oldest pending transaction (any op / writes only) — the
/// native form of the declarative pending-pending conflict rules: a request
/// is blocked by any strictly older pending request on its object when
/// either side is a write. Built once per qualification pass from the full
/// pending set; shared by the native filter functions and the IR executor.
struct PendingConflicts {
  std::unordered_map<txn::ObjectId, txn::TxnId> oldest_any;
  std::unordered_map<txn::ObjectId, txn::TxnId> oldest_write;

  explicit PendingConflicts(const RequestBatch& pending);
  /// Same derivation straight off the store's typed pending mirror.
  explicit PendingConflicts(const std::map<int64_t, Request>& pending_by_id);

  bool OlderWriteExists(const Request& r) const {
    auto it = oldest_write.find(r.object);
    return it != oldest_write.end() && it->second < r.ta;
  }
  bool OlderRequestExists(const Request& r) const {
    auto it = oldest_any.find(r.object);
    return it != oldest_any.end() && it->second < r.ta;
  }

 private:
  void Add(const Request& r);
};

/// True if any transaction other than `self` appears in the lock set.
bool LockedByOther(
    const std::unordered_map<txn::ObjectId, std::vector<txn::TxnId>>& locks,
    txn::ObjectId object, txn::TxnId self);

/// SS2PL qualification: drops requests blocked by a lock of another
/// transaction or by an older conflicting pending request. Pending-pending
/// conflicts are judged against `conflict_universe` when given (normally
/// the store's complete pending set), else against `pending` itself — so a
/// composed filter stage stays SS2PL-exact even after an earlier stage
/// shrank the batch.
RequestBatch FilterSs2pl(const LockTable& locks, const RequestBatch& pending,
                         const RequestBatch* conflict_universe = nullptr);

/// Read-committed qualification: only writes block (on write locks and on
/// older pending writes); readers always qualify. `conflict_universe` as in
/// FilterSs2pl.
RequestBatch FilterReadCommitted(const LockTable& locks,
                                 const RequestBatch& pending,
                                 const RequestBatch* conflict_universe = nullptr);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_LOCK_TABLE_H_
