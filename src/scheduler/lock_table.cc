#include "scheduler/lock_table.h"

#include <algorithm>

#include "storage/table.h"

namespace declsched::scheduler {

namespace {

using txn::ObjectId;
using txn::TxnId;

void InsertHolder(std::unordered_map<ObjectId, std::vector<TxnId>>* locks,
                  ObjectId object, TxnId ta) {
  std::vector<TxnId>& holders = (*locks)[object];
  if (std::find(holders.begin(), holders.end(), ta) == holders.end()) {
    holders.push_back(ta);
  }
}

void EraseHolder(std::unordered_map<ObjectId, std::vector<TxnId>>* locks,
                 ObjectId object, TxnId ta) {
  auto it = locks->find(object);
  if (it == locks->end()) return;
  auto& holders = it->second;
  holders.erase(std::remove(holders.begin(), holders.end(), ta), holders.end());
  if (holders.empty()) locks->erase(it);
}

void InsertObject(std::vector<ObjectId>* objects, ObjectId object) {
  if (std::find(objects->begin(), objects->end(), object) == objects->end()) {
    objects->push_back(object);
  }
}

bool ContainsObject(const std::vector<ObjectId>& objects, ObjectId object) {
  return std::find(objects.begin(), objects.end(), object) != objects.end();
}

}  // namespace

bool LockedByOther(
    const std::unordered_map<ObjectId, std::vector<TxnId>>& locks,
    ObjectId object, TxnId self) {
  auto it = locks.find(object);
  if (it == locks.end()) return false;
  for (TxnId holder : it->second) {
    if (holder != self) return true;
  }
  return false;
}

void PendingConflicts::Add(const Request& r) {
  auto [it, inserted] = oldest_any.emplace(r.object, r.ta);
  if (!inserted && r.ta < it->second) it->second = r.ta;
  if (r.op == txn::OpType::kWrite) {
    auto [wit, winserted] = oldest_write.emplace(r.object, r.ta);
    if (!winserted && r.ta < wit->second) wit->second = r.ta;
  }
}

PendingConflicts::PendingConflicts(const RequestBatch& pending) {
  for (const Request& r : pending) Add(r);
}

PendingConflicts::PendingConflicts(
    const std::map<int64_t, Request>& pending_by_id) {
  for (const auto& [id, r] : pending_by_id) Add(r);
}

LockTable BuildLockTableRestricted(
    RequestStore* store, const std::unordered_set<ObjectId>* relevant) {
  LockTable locks;
  const storage::Table* history = store->catalog()->GetTable("history");

  // Single table scan into a compact op list; the lock sets need a second
  // pass because finished/wrote facts may arrive after the rows they gate.
  struct HistOp {
    txn::OpType op;
    TxnId ta;
    ObjectId object;
  };
  std::vector<HistOp> ops;
  std::unordered_map<ObjectId, std::vector<TxnId>> wrote;
  history->ForEach([&](storage::RowId, const storage::Row& row) {
    const txn::OpType op =
        RequestStore::ParseOperation(row[RequestStore::kColOperation].AsString());
    const TxnId ta = row[RequestStore::kColTa].AsInt64();
    if (op == txn::OpType::kCommit || op == txn::OpType::kAbort) {
      locks.finished.insert(ta);
      return;
    }
    const ObjectId object = row[RequestStore::kColObject].AsInt64();
    if (relevant != nullptr && relevant->count(object) == 0) return;
    if (op == txn::OpType::kWrite) InsertHolder(&wrote, object, ta);
    ops.push_back(HistOp{op, ta, object});
  });

  for (const HistOp& h : ops) {
    if (locks.finished.count(h.ta) > 0) continue;
    if (h.op == txn::OpType::kWrite) {
      InsertHolder(&locks.wlocks, h.object, h.ta);
    } else if (h.op == txn::OpType::kRead) {
      auto it = wrote.find(h.object);
      if (it == wrote.end() ||
          std::find(it->second.begin(), it->second.end(), h.ta) ==
              it->second.end()) {
        InsertHolder(&locks.rlocks, h.object, h.ta);
      }
    }
  }
  return locks;
}

LockTable BuildLockTable(RequestStore* store) {
  return BuildLockTableRestricted(store, /*relevant=*/nullptr);
}

const LockTable& LockTableState::Refresh(const RequestStore& store) {
  if (!synced_with(store)) Rebuild(store);
  return table_;
}

bool LockTableState::AcceptDelta(const RequestStore& store,
                                 uint64_t expected_version) {
  if (synced_epoch_ != kUnsynced &&
      store.history_epoch() == synced_epoch_ + 1 &&
      (expected_version == kAnyVersion ||
       store.history_version() == expected_version)) {
    return true;
  }
  // Missed at least one mutation (or never synced): stay stale until the
  // next Refresh() rebuilds.
  synced_epoch_ = kUnsynced;
  return false;
}

void LockTableState::ApplyHistoryAppend(const RequestBatch& batch,
                                        const RequestStore& store) {
  // The narrated mutation appended exactly batch.size() history rows; any
  // other version movement means something else also wrote the table.
  if (!AcceptDelta(store, synced_version_ + batch.size())) return;
  for (const Request& r : batch) ApplyRow(r.op, r.ta, r.object);
  synced_epoch_ = store.history_epoch();
  synced_version_ = store.history_version();
  ++deltas_applied_;
}

void LockTableState::ApplyFinished(const std::vector<TxnId>& txns,
                                   const RequestStore& store) {
  // GC's row count is not in the hook, so only the epoch handshake gates
  // here; a concurrent out-of-band edit is caught by the next Refresh()'s
  // version check at the latest.
  if (!AcceptDelta(store, kAnyVersion)) return;
  for (TxnId ta : txns) {
    // The transaction's locks were already released when its termination
    // marker entered history; GC retiring its rows only shrinks `finished`
    // (matching what a from-scratch scan of the post-GC history would see).
    table_.finished.erase(ta);
    ReleaseTransaction(ta);
  }
  synced_epoch_ = store.history_epoch();
  synced_version_ = store.history_version();
  ++deltas_applied_;
}

void LockTableState::ApplyRow(txn::OpType op, TxnId ta, ObjectId object) {
  if (op == txn::OpType::kCommit || op == txn::OpType::kAbort) {
    table_.finished.insert(ta);
    ReleaseTransaction(ta);
    return;
  }
  if (table_.finished.count(ta) > 0) return;  // late row of a finished txn
  TxnLocks& held = txn_locks_[ta];
  if (op == txn::OpType::kWrite) {
    InsertHolder(&table_.wlocks, object, ta);
    InsertObject(&held.wlocked, object);
    // A write upgrades this transaction's own read lock: under the
    // wrote-suppression rule its reads of the object no longer r-lock it.
    if (ContainsObject(held.rlocked, object)) {
      EraseHolder(&table_.rlocks, object, ta);
      held.rlocked.erase(
          std::remove(held.rlocked.begin(), held.rlocked.end(), object),
          held.rlocked.end());
    }
  } else if (op == txn::OpType::kRead) {
    if (ContainsObject(held.wlocked, object)) return;  // own write shadows it
    InsertHolder(&table_.rlocks, object, ta);
    InsertObject(&held.rlocked, object);
  }
}

void LockTableState::ReleaseTransaction(TxnId ta) {
  auto it = txn_locks_.find(ta);
  if (it == txn_locks_.end()) return;
  for (ObjectId object : it->second.wlocked) {
    EraseHolder(&table_.wlocks, object, ta);
  }
  for (ObjectId object : it->second.rlocked) {
    EraseHolder(&table_.rlocks, object, ta);
  }
  txn_locks_.erase(it);
}

void LockTableState::Rebuild(const RequestStore& store) {
  table_ = LockTable{};
  txn_locks_.clear();
  const storage::Table* history = store.catalog()->GetTable("history");
  // Same two-pass derivation as BuildLockTable, routed through ApplyRow so
  // the per-transaction lock sets are populated for later releases. Rows
  // are replayed termination-markers-first, then writes, then reads —
  // order-insensitive equivalents of the from-scratch passes.
  struct HistOp {
    txn::OpType op;
    TxnId ta;
    ObjectId object;
  };
  std::vector<HistOp> reads;
  std::vector<HistOp> writes;
  history->ForEach([&](storage::RowId, const storage::Row& row) {
    const txn::OpType op =
        RequestStore::ParseOperation(row[RequestStore::kColOperation].AsString());
    const TxnId ta = row[RequestStore::kColTa].AsInt64();
    const ObjectId object = row[RequestStore::kColObject].AsInt64();
    if (op == txn::OpType::kCommit || op == txn::OpType::kAbort) {
      ApplyRow(op, ta, object);
    } else if (op == txn::OpType::kWrite) {
      writes.push_back(HistOp{op, ta, object});
    } else {
      reads.push_back(HistOp{op, ta, object});
    }
  });
  for (const HistOp& h : writes) ApplyRow(h.op, h.ta, h.object);
  for (const HistOp& h : reads) ApplyRow(h.op, h.ta, h.object);
  synced_epoch_ = store.history_epoch();
  synced_version_ = store.history_version();
  ++full_rebuilds_;
}

RequestBatch FilterSs2pl(const LockTable& locks, const RequestBatch& pending,
                         const RequestBatch* conflict_universe) {
  const PendingConflicts conflicts(
      conflict_universe != nullptr ? *conflict_universe : pending);
  RequestBatch qualified;
  qualified.reserve(pending.size());
  for (const Request& r : pending) {
    if (LockedByOther(locks.wlocks, r.object, r.ta)) continue;
    const bool is_write = r.op == txn::OpType::kWrite;
    if (is_write && LockedByOther(locks.rlocks, r.object, r.ta)) continue;
    if (conflicts.OlderWriteExists(r)) continue;
    if (is_write && conflicts.OlderRequestExists(r)) continue;
    qualified.push_back(r);
  }
  return qualified;
}

RequestBatch FilterReadCommitted(const LockTable& locks,
                                 const RequestBatch& pending,
                                 const RequestBatch* conflict_universe) {
  const PendingConflicts conflicts(
      conflict_universe != nullptr ? *conflict_universe : pending);
  RequestBatch qualified;
  qualified.reserve(pending.size());
  for (const Request& r : pending) {
    if (r.op == txn::OpType::kWrite &&
        (LockedByOther(locks.wlocks, r.object, r.ta) ||
         conflicts.OlderWriteExists(r))) {
      continue;
    }
    qualified.push_back(r);
  }
  return qualified;
}

}  // namespace declsched::scheduler
