#include "scheduler/deadlock_resolver.h"

#include <algorithm>

namespace declsched::scheduler {

namespace {

constexpr const char* kDeadlockProgram = R"(
% Waits-for graph over pending requests and history locks, its transitive
% closure, and youngest-victim selection.
finished(Ta) :- hist(_, Ta, _, "c", _).
finished(Ta) :- hist(_, Ta, _, "a", _).
wrotepair(Obj, Ta) :- hist(_, Ta, _, "w", Obj).
wlock(Obj, Ta) :- hist(_, Ta, _, "w", Obj), !finished(Ta).
rlock(Obj, Ta) :- hist(_, Ta, _, "r", Obj), !finished(Ta), !wrotepair(Obj, Ta).

% Edges from blocked pending requests to their blockers.
waits(T1, T2) :- req(_, T1, _, _, Obj), wlock(Obj, T2), T1 != T2.
waits(T1, T2) :- req(_, T1, _, "w", Obj), rlock(Obj, T2), T1 != T2.
% Pending-pending conflicts block the younger transaction.
waits(T2, T1) :- req(_, T2, _, "w", Obj), req(_, T1, _, _, Obj), T2 > T1.
waits(T2, T1) :- req(_, T2, _, _, Obj), req(_, T1, _, "w", Obj), T2 > T1.

reach(T1, T2) :- waits(T1, T2).
reach(T1, T3) :- reach(T1, T2), waits(T2, T3).
indeadlock(T) :- reach(T, T).
% Two transactions share a cycle iff they reach each other; the youngest of
% each cycle is sacrificed.
samecycle(T, T2) :- reach(T, T2), reach(T2, T).
notyoungest(T) :- samecycle(T, T2), T2 > T.
victim(T) :- indeadlock(T), !notyoungest(T).
)";

}  // namespace

const char* DeadlockResolver::ProgramText() { return kDeadlockProgram; }

DeadlockResolver::DeadlockResolver(datalog::DatalogProgram program)
    : program_(std::make_shared<const datalog::DatalogProgram>(std::move(program))) {}

Result<DeadlockResolver> DeadlockResolver::Create() {
  DS_ASSIGN_OR_RETURN(datalog::DatalogProgram program,
                      datalog::DatalogProgram::Create(kDeadlockProgram));
  return DeadlockResolver(std::move(program));
}

Result<std::vector<txn::TxnId>> DeadlockResolver::FindVictims(
    const RequestStore& store) const {
  // Evaluate straight off the store's cached EDB (on a stalled cycle the
  // datalog protocol, if active, already built it); the evaluator only
  // loads the relations the program names, so the extra reqmeta is free.
  DS_ASSIGN_OR_RETURN(datalog::Database result,
                      program_->Evaluate(store.BuildDatalogEdb()));
  std::vector<txn::TxnId> victims;
  for (const storage::Row& row : result.at("victim")) {
    victims.push_back(row[0].AsInt64());
  }
  std::sort(victims.begin(), victims.end());
  return victims;
}

}  // namespace declsched::scheduler
