// The incoming queue of Figure 1: client workers append, the scheduler
// drains in batch when the trigger fires.
//
// Thread-safety: multi-producer, single-consumer. Any number of submitter
// threads may Push() concurrently; DrainAll() is meant for the one thread
// that owns the scheduler's cycles (it is mutex-safe against concurrent
// pushes, so a push racing a drain lands in the next batch, never lost).
// The deterministic simulation harness calls everything single-threaded.

#ifndef DECLSCHED_SCHEDULER_INCOMING_QUEUE_H_
#define DECLSCHED_SCHEDULER_INCOMING_QUEUE_H_

#include <deque>
#include <functional>
#include <mutex>

#include "scheduler/request.h"

namespace declsched::scheduler {

class IncomingQueue {
 public:
  /// Appends and returns the queue size after the append. Runs the notify
  /// hook (if set) after releasing the lock.
  int64_t Push(Request request);

  /// Removes and returns everything, in arrival order.
  RequestBatch DrainAll();

  int64_t size() const;
  bool empty() const { return size() == 0; }

  /// Total requests ever pushed.
  int64_t total_pushed() const;

  /// Hook run after every Push, outside the queue lock — how a sharded
  /// scheduler's worker thread gets woken for new admissions. Set it before
  /// producers start (it is read without synchronization on the push path).
  void set_notify(std::function<void()> notify) { notify_ = std::move(notify); }

 private:
  mutable std::mutex mu_;
  std::deque<Request> queue_;
  int64_t total_pushed_ = 0;
  std::function<void()> notify_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_INCOMING_QUEUE_H_
