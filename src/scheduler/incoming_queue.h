// The incoming queue of Figure 1: client workers append, the scheduler
// drains in batch when the trigger fires.

#ifndef DECLSCHED_SCHEDULER_INCOMING_QUEUE_H_
#define DECLSCHED_SCHEDULER_INCOMING_QUEUE_H_

#include <deque>
#include <mutex>

#include "scheduler/request.h"

namespace declsched::scheduler {

/// FIFO, thread-safe (client workers may run on their own threads; the
/// deterministic simulation harness calls it single-threaded).
class IncomingQueue {
 public:
  /// Appends and returns the queue size after the append.
  int64_t Push(Request request);

  /// Removes and returns everything, in arrival order.
  RequestBatch DrainAll();

  int64_t size() const;
  bool empty() const { return size() == 0; }

  /// Total requests ever pushed.
  int64_t total_pushed() const;

 private:
  mutable std::mutex mu_;
  std::deque<Request> queue_;
  int64_t total_pushed_ = 0;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_INCOMING_QUEUE_H_
