// End-to-end middleware simulation: N closed-loop clients connect to the
// DeclarativeScheduler (instead of the server — paper Figure 1), which
// batches, schedules declaratively, and dispatches to the simulated DBMS.
//
// Two time domains, kept deliberately separate (see EXPERIMENTS.md):
//  * the simulated timeline (client latencies, server busy time), and
//  * real wall time of the scheduler's own query evaluation, recorded as
//    metrics — the quantity Section 4.3 measures.

#ifndef DECLSCHED_SCHEDULER_MIDDLEWARE_SIM_H_
#define DECLSCHED_SCHEDULER_MIDDLEWARE_SIM_H_

#include <optional>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "scheduler/adaptive_controller.h"
#include "scheduler/declarative_scheduler.h"
#include "server/database_server.h"
#include "txn/types.h"
#include "workload/oltp_generator.h"

namespace declsched::scheduler {

struct MiddlewareSimConfig {
  int num_clients = 50;
  SimTime duration = SimTime::FromSeconds(10);
  workload::WorkloadConfig workload;
  DeclarativeScheduler::Options scheduler;
  server::DatabaseServer::Config server;
  uint64_t seed = 1;
  /// Collect the executed-operation trace for the correctness oracles.
  bool record_history = false;
  /// Stop after this many commits; -1 = run the full window.
  int64_t max_committed_txns = -1;
  /// Transaction deadline = start + slack * (priority + 1).
  SimTime deadline_slack = SimTime::FromMillis(500);
  /// Delay before a deadlock victim retries.
  SimTime restart_backoff = SimTime::FromMillis(1);
  /// Optional adaptive-consistency controller.
  std::optional<AdaptiveConsistencyController::Options> adaptive;
};

struct MiddlewareSimResult {
  int64_t committed_txns = 0;
  int64_t committed_statements = 0;
  int64_t aborted_txns = 0;
  int64_t cycles = 0;
  SimTime elapsed;
  /// Simulated transaction latency (us), one histogram per SLA class.
  std::vector<Histogram> latency_by_class;
  int64_t deadline_met = 0;
  int64_t deadline_missed = 0;
  int64_t protocol_switches = 0;
  /// Scheduler aggregates (real wall-time query costs live here).
  SchedulerTotals totals;
  /// Per-tenant accounting at end of run (empty when the scheduler ran
  /// without tenant accounting). Ascending tenant id.
  std::vector<TenantAccountant::TenantTotals> tenant_totals;
  /// Executed-operation trace in dispatch order (if recorded).
  std::vector<txn::HistoryOp> history;
  /// Write statements dispatched to the server (including those of
  /// transactions that later aborted — dispatched work is done work).
  int64_t dispatched_writes = 0;
  /// Sum of all row values after the run (each write increments its row by
  /// one): in a correct pipeline this equals dispatched_writes. 0 when the
  /// server runs in non-materialized mode.
  int64_t server_write_checksum = 0;

  double throughput_txns_per_sec() const {
    const double secs = elapsed.ToSecondsF();
    return secs > 0 ? static_cast<double>(committed_txns) / secs : 0;
  }
};

Result<MiddlewareSimResult> RunMiddlewareSimulation(const MiddlewareSimConfig& config);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_MIDDLEWARE_SIM_H_
