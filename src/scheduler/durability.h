// Scheduler-level durability: WAL record codecs, the replay applier, and
// the snapshot/restore bridge between RequestStore and the storage layer.
//
// The WAL logs *logical* mutations — one record per successful RequestStore
// mutating call, encoding its arguments — not physical row images. Replay
// (ApplyWalRecord) re-invokes the same public mutators with the WAL
// detached, so a store that replays records 1..N ends with exactly the
// relations of the store that logged them: the mutators are deterministic
// functions of (current relations, arguments). Derived state — typed
// mirrors, marker bookkeeping, epochs, lock tables, tenant accounting,
// compiled-IR operator caches — is deliberately never encoded; recovery
// restores base rows and forces the normal staleness-rebuild contract to
// reconstruct all of it (recovery IS a forced full rebuild).
//
// Record payloads use the little-endian fixed-width coding of
// storage/coding.h; see each Encode* for the exact layout.

#ifndef DECLSCHED_SCHEDULER_DURABILITY_H_
#define DECLSCHED_SCHEDULER_DURABILITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "scheduler/request_store.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace declsched::scheduler {

/// One value per RequestStore mutating call. Values are part of the on-disk
/// format — never renumber.
enum class WalRecordType : uint8_t {
  kInsertPending = 1,   ///< InsertPending(batch); payload = requests
  kMarkScheduled = 2,   ///< MarkScheduled(batch); payload = request ids
  kInsertHistory = 3,   ///< InsertHistory(request); payload = one request
  kDropPending = 4,     ///< DropPendingOfTransaction(ta); payload = ta
  kGc = 5,              ///< GarbageCollectFinished(); empty payload
  kUpsertTenant = 6,    ///< UpsertTenant(acct); payload = the acct
  /// Not a store mutation: the home shard dispatched a cross-shard
  /// finisher and fanned release mirrors out to `mask`. The in-memory
  /// mirror inboxes die with the process; replaying these lets recovery
  /// re-publish any mirror whose application never reached the receiving
  /// shard's log — otherwise that shard's locks leak forever (its own GC
  /// erases the home shard's marker in the same cycle that dispatched it).
  kEscrowFanout = 7,
};

/// Varint count, then per request: zigzag-varint id, ta, intrata; u8 op
/// char; zigzag-varint object, priority, deadline_us, arrival_us, client,
/// tenant. Zigzag keeps the negative sentinels (kNoObject, marker client
/// -1) at one byte; a typical request encodes in ~15 bytes, not 73.
///
/// Each format has two encoders: the `*To` form appends onto `dst`
/// (without clearing it) so per-mutation logging can reuse one scratch
/// buffer and stay allocation-free; the by-value form is the convenient
/// one for tests and cold paths.
void EncodeRequestsTo(std::string* dst, const RequestBatch& batch);
std::string EncodeRequests(const RequestBatch& batch);
Result<RequestBatch> DecodeRequests(std::string_view payload);

/// Varint count + zigzag-varint id each. MarkScheduled moves the *stored*
/// row and reads only `id` from its argument, so ids are the whole logical
/// mutation.
void EncodeRequestIdsTo(std::string* dst, const RequestBatch& batch);
std::string EncodeRequestIds(const RequestBatch& batch);
Result<std::vector<int64_t>> DecodeRequestIds(std::string_view payload);

/// The nine TenantAcct fields as zigzag varints, in declaration order.
void EncodeTenantTo(std::string* dst, const TenantAcct& acct);
std::string EncodeTenant(const TenantAcct& acct);
Result<TenantAcct> DecodeTenant(std::string_view payload);

/// One zigzag varint.
void EncodeTxnIdTo(std::string* dst, txn::TxnId ta);
std::string EncodeTxnId(txn::TxnId ta);
Result<txn::TxnId> DecodeTxnId(std::string_view payload);

/// A kEscrowFanout record: the involved-shard mask plus the finisher
/// marker the mirrors carry.
struct EscrowFanout {
  uint32_t mask = 0;
  Request marker;
};
std::string EncodeEscrowFanout(uint32_t mask, const Request& marker);
Result<EscrowFanout> DecodeEscrowFanout(std::string_view payload);

/// Re-executes one WAL record against the store it was logged from. The
/// store must have no WAL attached (replay must not re-log).
Status ApplyWalRecord(RequestStore* store, const storage::WalRecord& record);

/// Captures one shard's base relations (requests, tenants, history — raw
/// Table::Scan rows) for a snapshot.
std::vector<storage::TableSnapshot> SnapshotShardStore(
    const RequestStore& store);

/// Installs a SnapshotShardStore capture into a *fresh* store, through the
/// public mutators (so mirrors, marker bookkeeping, and epochs come out
/// consistent). Tenants are restored after requests: InsertPending
/// auto-creates default tenant rows, and the snapshot's exact accounting
/// must overwrite them. The store must have no WAL attached.
Status RestoreShardStore(RequestStore* store,
                         const std::vector<storage::TableSnapshot>& tables);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_DURABILITY_H_
