// Datalog backend: the protocol text is a stratified Datalog program over
// the req/hist EDB relations; the spec's datalog_output names the derived
// relation of qualified requests (paper Section 5's "more succinct
// language").

#ifndef DECLSCHED_SCHEDULER_BACKENDS_DATALOG_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_DATALOG_PROTOCOL_H_

#include <memory>

#include "scheduler/protocol.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompileDatalogProtocol(
    const ProtocolSpec& spec, RequestStore* store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_DATALOG_PROTOCOL_H_
