// Datalog backend: the protocol text is a stratified Datalog program over
// the req/hist EDB relations; the spec's datalog_output names the derived
// relation of qualified requests (paper Section 5's "more succinct
// language").
//
// Compile-first: the rule AST is lowered into the protocol IR
// (scheduler/ir/) and executed over the store's typed mirrors with
// incremental lock state. Programs outside the IR dialect fall back
// transparently to the semi-naive interpreted engine; prefixing the spec
// text with "interp:" forces the interpreter, the differential-oracle
// variant the equivalence tests and benches compare against.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_DATALOG_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_DATALOG_PROTOCOL_H_

#include <memory>

#include "scheduler/protocol.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompileDatalogProtocol(
    const ProtocolSpec& spec, RequestStore* store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_DATALOG_PROTOCOL_H_
