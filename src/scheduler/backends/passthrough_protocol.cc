#include "scheduler/backends/passthrough_protocol.h"

namespace declsched::scheduler {

namespace {

class PassthroughProtocol : public Protocol {
 public:
  explicit PassthroughProtocol(ProtocolSpec spec) : Protocol(std::move(spec)) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    return context.store->AllPending();
  }
};

}  // namespace

Result<std::unique_ptr<Protocol>> CompilePassthroughProtocol(
    const ProtocolSpec& spec, RequestStore* /*store*/) {
  return std::unique_ptr<Protocol>(new PassthroughProtocol(spec));
}

}  // namespace declsched::scheduler
