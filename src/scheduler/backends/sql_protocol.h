// SQL backend: the protocol text is a SELECT over the requests/history
// relations (paper Listing 1 style), prepared once at compile time and
// re-run every cycle against the store's current contents.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_SQL_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_SQL_PROTOCOL_H_

#include <memory>

#include "scheduler/protocol.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompileSqlProtocol(const ProtocolSpec& spec,
                                                     RequestStore* store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_SQL_PROTOCOL_H_
