// SQL backend: the protocol text is a SELECT over the requests/history
// relations (paper Listing 1 style).
//
// Compile-first: the planned SELECT is lowered into the protocol IR
// (scheduler/ir/) and executed over the store's typed mirrors with
// incremental lock state — per-cycle cost like the hand-coded native
// backend. Queries outside the IR dialect fall back transparently to the
// interpreted engine (prepared once, re-run every cycle); prefixing the
// spec text with "interp:" forces the interpreter, the differential-oracle
// variant the equivalence tests and benches compare against.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_SQL_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_SQL_PROTOCOL_H_

#include <memory>

#include "scheduler/protocol.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompileSqlProtocol(const ProtocolSpec& spec,
                                                     RequestStore* store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_SQL_PROTOCOL_H_
