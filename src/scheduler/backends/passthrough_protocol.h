// Passthrough backend: the paper's non-scheduling mode (Section 3.3, last
// paragraph). Every pending request qualifies, in id order.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_PASSTHROUGH_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_PASSTHROUGH_PROTOCOL_H_

#include <memory>

#include "scheduler/protocol.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompilePassthroughProtocol(
    const ProtocolSpec& spec, RequestStore* store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_PASSTHROUGH_PROTOCOL_H_
