// Native backend: hand-coded C++ scheduling — the paper's Figure 2
// comparison point, now a first-class backend behind the same Protocol API
// so its per-cycle cost is benchmarkable against the declarative backends.
//
// The spec's `text` selects a variant:
//   ss2pl          strong 2PL qualification, dispatch by id
//   fcfs           no consistency control, dispatch by id
//   sla-priority   SS2PL qualification, premium tier dispatched first
//   edf            SS2PL qualification, earliest deadline first (0 = none)
//   read-committed readers never block; writers respect write locks
//
// The lock analysis matches the SQL (Listing 1) and Datalog formulations
// operation for operation, so the native and declarative backends qualify
// identical request sets — the equivalence the protocol tests pin down.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_NATIVE_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_NATIVE_PROTOCOL_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "scheduler/protocol.h"
#include "txn/types.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompileNativeProtocol(const ProtocolSpec& spec,
                                                        RequestStore* store);

// --- building blocks, shared with the composed backend's stages ---

/// Locks implied by the history relation: a write row of an unfinished
/// transaction write-locks its object; a read row read-locks it unless the
/// same transaction also wrote it. Holder lists are tiny (almost always one
/// transaction), so flat vectors beat per-object hash sets by a wide margin.
struct LockTable {
  std::unordered_set<txn::TxnId> finished;
  std::unordered_map<txn::ObjectId, std::vector<txn::TxnId>> wlocks;
  std::unordered_map<txn::ObjectId, std::vector<txn::TxnId>> rlocks;
};

LockTable BuildLockTable(RequestStore* store);

/// SS2PL qualification: drops requests blocked by a lock of another
/// transaction or by an older conflicting pending request. Pending-pending
/// conflicts are judged against `conflict_universe` when given (normally
/// the store's complete pending set), else against `pending` itself — so a
/// composed filter stage stays SS2PL-exact even after an earlier stage
/// shrank the batch.
RequestBatch FilterSs2pl(const LockTable& locks, const RequestBatch& pending,
                         const RequestBatch* conflict_universe = nullptr);

/// Read-committed qualification: only writes block (on write locks and on
/// older pending writes); readers always qualify. `conflict_universe` as in
/// FilterSs2pl.
RequestBatch FilterReadCommitted(const LockTable& locks,
                                 const RequestBatch& pending,
                                 const RequestBatch* conflict_universe = nullptr);

void RankById(RequestBatch* batch);
void RankByPriority(RequestBatch* batch);
void RankByDeadline(RequestBatch* batch);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_NATIVE_PROTOCOL_H_
