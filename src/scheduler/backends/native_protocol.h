// Native backend: hand-coded C++ scheduling — the paper's Figure 2
// comparison point, now a first-class backend behind the same Protocol API
// so its per-cycle cost is benchmarkable against the declarative backends.
//
// The spec's `text` selects a variant:
//   ss2pl          strong 2PL qualification, dispatch by id
//   fcfs           no consistency control, dispatch by id
//   sla-priority   SS2PL qualification, premium tier dispatched first
//   edf            SS2PL qualification, earliest deadline first (0 = none)
//   read-committed readers never block; writers respect write locks
//   wfq            SS2PL qualification, tenants ranked by virtual time
//   drr            SS2PL qualification, tenants ranked by service round
//   tenant-cap     SS2PL qualification minus throttled tenants (in-flight
//                  cap or empty token bucket), dispatch by id
//
// The tenant-aware variants read the per-tenant QoS state off the store's
// `tenants` relation (typed mirror) — the same rows the SQL/Datalog
// formulations join against — so all four formulations answer identically
// by construction; see docs/PROTOCOLS.md.
//
// The backend is *incremental*: it reads pending straight off the store's
// typed mirror (no row decoding) and keeps a LockTableState fed by the
// scheduler's delta hooks, so a cycle costs O(pending + delta) rather than
// O(pending + history). Prefixing the variant with "scratch:" (e.g.
// "scratch:ss2pl") compiles the pre-incremental formulation instead — a
// stateless full-rescan per cycle — kept as the from-scratch baseline the
// equivalence tests and the cycle-scale bench compare against.
//
// The lock analysis matches the SQL (Listing 1) and Datalog formulations
// operation for operation, so the native and declarative backends qualify
// identical request sets — the equivalence the protocol tests pin down.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_NATIVE_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_NATIVE_PROTOCOL_H_

#include <memory>

#include "scheduler/lock_table.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler {

Result<std::unique_ptr<Protocol>> CompileNativeProtocol(const ProtocolSpec& spec,
                                                        RequestStore* store);

// --- ranking building blocks, shared with the composed backend's stages ---

void RankById(RequestBatch* batch);
void RankByPriority(RequestBatch* batch);
void RankByDeadline(RequestBatch* batch);
/// wfq order: ascending tenant virtual time (from `store`'s tenants
/// mirror; absent tenants rank at vtime 0), ties by id.
void RankByTenantVtime(RequestBatch* batch, const RequestStore& store);
/// drr order: ascending tenant service round, then tenant, then id.
void RankByTenantRound(RequestBatch* batch, const RequestStore& store);
/// tenant-cap filter: drops requests of throttled tenants
/// (TenantAcct::Throttled) — in-flight cap reached, or token bucket empty.
RequestBatch FilterThrottledTenants(RequestBatch batch,
                                    const RequestStore& store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_NATIVE_PROTOCOL_H_
