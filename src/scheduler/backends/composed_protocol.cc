#include "scheduler/backends/composed_protocol.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "scheduler/backends/native_protocol.h"
#include "scheduler/lock_table.h"

namespace declsched::scheduler {

namespace {

class FilterStage : public ProtocolStage {
 public:
  enum class Kind { kSs2pl, kReadCommitted, kNone };

  explicit FilterStage(Kind kind) : kind_(kind) {}

  Result<RequestBatch> Apply(const ScheduleContext& context,
                             RequestBatch batch) const override {
    if (kind_ == Kind::kNone) return batch;
    // The owning ComposedProtocol maintains the lock table incrementally
    // and hands it down through the context; build from scratch only when
    // driven outside that pipeline.
    LockTable scratch;
    const LockTable* locks = context.locks;
    if (locks == nullptr) {
      scratch = BuildLockTable(context.store);
      locks = &scratch;
    }
    // Pending-pending conflicts are judged against the store's complete
    // pending set, not the incoming batch: an earlier stage may have
    // dropped the older conflicting request from the batch, but it is
    // still pending and still blocks — age ordering must not weaken just
    // because a cap or rank stage ran first. The pipeline shares one copy
    // of that universe through the context.
    RequestBatch fetched;
    const RequestBatch* universe = context.pending_universe;
    if (universe == nullptr) {
      DS_ASSIGN_OR_RETURN(fetched, context.store->AllPending());
      universe = &fetched;
    }
    return kind_ == Kind::kSs2pl
               ? FilterSs2pl(*locks, batch, universe)
               : FilterReadCommitted(*locks, batch, universe);
  }

  bool NeedsLockTable() const override { return kind_ != Kind::kNone; }

 private:
  Kind kind_;
};

class RankStage : public ProtocolStage {
 public:
  enum class Kind { kFcfs, kPriority, kEdf };

  explicit RankStage(Kind kind) : kind_(kind) {}

  Result<RequestBatch> Apply(const ScheduleContext&,
                             RequestBatch batch) const override {
    switch (kind_) {
      case Kind::kFcfs:
        RankById(&batch);
        break;
      case Kind::kPriority:
        RankByPriority(&batch);
        break;
      case Kind::kEdf:
        RankByDeadline(&batch);
        break;
    }
    return batch;
  }

  bool DefinesOrder() const override { return true; }

 private:
  Kind kind_;
};

class CapStage : public ProtocolStage {
 public:
  explicit CapStage(int64_t limit) : limit_(limit) {}

  Result<RequestBatch> Apply(const ScheduleContext&,
                             RequestBatch batch) const override {
    if (static_cast<int64_t>(batch.size()) > limit_) {
      batch.resize(static_cast<size_t>(limit_));
    }
    return batch;
  }

 private:
  int64_t limit_;
};

/// Tenant-fair ordering off the store's `tenants` relation — the composed
/// formulation of the native wfq/drr variants.
class FairRankStage : public ProtocolStage {
 public:
  enum class Kind { kVtime, kRound };

  explicit FairRankStage(Kind kind) : kind_(kind) {}

  Result<RequestBatch> Apply(const ScheduleContext& context,
                             RequestBatch batch) const override {
    if (kind_ == Kind::kVtime) {
      RankByTenantVtime(&batch, *context.store);
    } else {
      RankByTenantRound(&batch, *context.store);
    }
    return batch;
  }

  bool DefinesOrder() const override { return true; }

 private:
  Kind kind_;
};

/// Drops requests of throttled tenants — the composed formulation of the
/// native tenant-cap variant.
class TenantCapStage : public ProtocolStage {
 public:
  Result<RequestBatch> Apply(const ScheduleContext& context,
                             RequestBatch batch) const override {
    return FilterThrottledTenants(std::move(batch), *context.store);
  }
};

/// Starvation guard as a stage: requests of tenants whose oldest *pending*
/// request has waited >= wait_us move to the front, most-starved tenant
/// first; everything else keeps its order. Judged against the cycle's full
/// pending universe (like the filter stages), so an earlier cap/rank stage
/// cannot hide a tenant's oldest request from the guard.
class StarvationBoostStage : public ProtocolStage {
 public:
  explicit StarvationBoostStage(int64_t wait_us) : wait_us_(wait_us) {}

  Result<RequestBatch> Apply(const ScheduleContext& context,
                             RequestBatch batch) const override {
    RequestBatch fetched;
    const RequestBatch* universe = context.pending_universe;
    if (universe == nullptr) {
      DS_ASSIGN_OR_RETURN(fetched, context.store->AllPending());
      universe = &fetched;
    }
    // Oldest pending arrival per tenant. Min, not first-sight: preassigned
    // ids from concurrent submitters (SubmitRouted) need not arrive in
    // id order.
    std::map<int64_t, int64_t> oldest;
    for (const Request& r : *universe) {
      auto [it, inserted] = oldest.emplace(r.tenant, r.arrival.micros());
      if (!inserted && r.arrival.micros() < it->second) {
        it->second = r.arrival.micros();
      }
    }
    std::map<int64_t, int64_t> starved;  // tenant -> oldest arrival
    for (const auto& [tenant, arrival] : oldest) {
      if (context.now.micros() - arrival >= wait_us_) {
        starved.emplace(tenant, arrival);
      }
    }
    if (starved.empty()) return batch;
    std::stable_sort(batch.begin(), batch.end(),
                     [&starved](const Request& a, const Request& b) {
                       auto sa = starved.find(a.tenant);
                       auto sb = starved.find(b.tenant);
                       const int64_t ka =
                           sa == starved.end() ? INT64_MAX : sa->second;
                       const int64_t kb =
                           sb == starved.end() ? INT64_MAX : sb->second;
                       return ka < kb;
                     });
    return batch;
  }

  bool DefinesOrder() const override { return true; }

 private:
  int64_t wait_us_;
};

Result<std::unique_ptr<ProtocolStage>> BuildFilter(const std::string& arg) {
  if (arg == "ss2pl") {
    return std::unique_ptr<ProtocolStage>(new FilterStage(FilterStage::Kind::kSs2pl));
  }
  if (arg == "read-committed") {
    return std::unique_ptr<ProtocolStage>(
        new FilterStage(FilterStage::Kind::kReadCommitted));
  }
  if (arg == "none") {
    return std::unique_ptr<ProtocolStage>(new FilterStage(FilterStage::Kind::kNone));
  }
  return Status::BindError("unknown filter '" + arg +
                           "' (want ss2pl, read-committed, or none)");
}

Result<std::unique_ptr<ProtocolStage>> BuildRank(const std::string& arg) {
  if (arg == "fcfs") {
    return std::unique_ptr<ProtocolStage>(new RankStage(RankStage::Kind::kFcfs));
  }
  if (arg == "priority") {
    return std::unique_ptr<ProtocolStage>(new RankStage(RankStage::Kind::kPriority));
  }
  if (arg == "edf") {
    return std::unique_ptr<ProtocolStage>(new RankStage(RankStage::Kind::kEdf));
  }
  return Status::BindError("unknown rank '" + arg +
                           "' (want fcfs, priority, or edf)");
}

Result<std::unique_ptr<ProtocolStage>> BuildCap(const std::string& arg) {
  char* end = nullptr;
  const long long limit = std::strtoll(arg.c_str(), &end, 10);
  if (arg.empty() || end == nullptr || *end != '\0' || limit <= 0) {
    return Status::BindError("cap needs a positive integer, got '" + arg + "'");
  }
  return std::unique_ptr<ProtocolStage>(new CapStage(limit));
}

Result<std::unique_ptr<ProtocolStage>> BuildFairRank(const std::string& arg) {
  if (arg == "vtime") {
    return std::unique_ptr<ProtocolStage>(
        new FairRankStage(FairRankStage::Kind::kVtime));
  }
  if (arg == "round") {
    return std::unique_ptr<ProtocolStage>(
        new FairRankStage(FairRankStage::Kind::kRound));
  }
  return Status::BindError("unknown fair_rank '" + arg +
                           "' (want vtime or round)");
}

Result<std::unique_ptr<ProtocolStage>> BuildTenantCap(const std::string& arg) {
  if (!arg.empty()) {
    return Status::BindError(
        "tenant_cap takes no argument (per-tenant caps live in the "
        "tenants relation), got '" +
        arg + "'");
  }
  return std::unique_ptr<ProtocolStage>(new TenantCapStage());
}

Result<std::unique_ptr<ProtocolStage>> BuildStarvationBoost(
    const std::string& arg) {
  char* end = nullptr;
  const long long wait_us = std::strtoll(arg.c_str(), &end, 10);
  if (arg.empty() || end == nullptr || *end != '\0' || wait_us <= 0) {
    return Status::BindError(
        "starvation_boost needs a positive wait in micros, got '" + arg + "'");
  }
  return std::unique_ptr<ProtocolStage>(new StarvationBoostStage(wait_us));
}

std::map<std::string, StageBuilder>& StageRegistry() {
  static std::map<std::string, StageBuilder>* registry = [] {
    auto* r = new std::map<std::string, StageBuilder>();
    (*r)["filter"] = BuildFilter;
    (*r)["rank"] = BuildRank;
    (*r)["cap"] = BuildCap;
    (*r)["fair_rank"] = BuildFairRank;
    (*r)["tenant_cap"] = BuildTenantCap;
    (*r)["starvation_boost"] = BuildStarvationBoost;
    return r;
  }();
  return *registry;
}

class ComposedProtocol : public Protocol {
 public:
  ComposedProtocol(ProtocolSpec spec,
                   std::vector<std::unique_ptr<ProtocolStage>> stages,
                   RequestStore* store)
      : Protocol(std::move(spec)), stages_(std::move(stages)), store_(store) {
    for (const auto& stage : stages_) {
      needs_locks_ = needs_locks_ || stage->NeedsLockTable();
    }
  }

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    ScheduleContext staged = context;
    if (needs_locks_ && context.store == store_) {
      staged.locks = &lock_state_.Refresh(*context.store);
    }
    // One copy of the full pending set serves as both the initial batch and
    // every filter stage's conflict universe.
    DS_ASSIGN_OR_RETURN(const RequestBatch universe, context.store->AllPending());
    staged.pending_universe = &universe;
    RequestBatch batch = universe;
    for (const auto& stage : stages_) {
      DS_ASSIGN_OR_RETURN(batch, stage->Apply(staged, std::move(batch)));
    }
    return batch;
  }

  void OnScheduled(const RequestBatch& batch) override {
    if (needs_locks_) lock_state_.ApplyHistoryAppend(batch, *store_);
  }
  void OnFinished(const std::vector<txn::TxnId>& txns) override {
    if (needs_locks_) lock_state_.ApplyFinished(txns, *store_);
  }

 private:
  std::vector<std::unique_ptr<ProtocolStage>> stages_;
  RequestStore* store_;
  bool needs_locks_ = false;
  mutable LockTableState lock_state_;
};

}  // namespace

Status RegisterStage(const std::string& kind, StageBuilder builder) {
  if (kind.empty() || builder == nullptr) {
    return Status::InvalidArgument("stage kind and builder must be set");
  }
  if (!StageRegistry().emplace(kind, std::move(builder)).second) {
    return Status::AlreadyExists("stage kind already registered: " + kind);
  }
  return Status::OK();
}

std::vector<std::string> StageKinds() {
  std::vector<std::string> kinds;
  for (const auto& [kind, builder] : StageRegistry()) kinds.push_back(kind);
  return kinds;
}

Result<std::unique_ptr<Protocol>> CompileComposedProtocol(
    const ProtocolSpec& spec, RequestStore* store) {
  std::vector<std::unique_ptr<ProtocolStage>> stages;
  bool ordered = false;
  for (const std::string& piece : Split(spec.text, '|')) {
    const std::string descriptor(Trim(piece));
    if (descriptor.empty()) continue;
    const size_t colon = descriptor.find(':');
    const std::string kind = descriptor.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : std::string(Trim(descriptor.substr(colon + 1)));
    auto it = StageRegistry().find(std::string(Trim(kind)));
    if (it == StageRegistry().end()) {
      return Status::BindError(StrFormat("protocol %s: unknown stage kind '%s'",
                                         spec.name.c_str(), kind.c_str()));
    }
    auto stage = it->second(arg);
    if (!stage.ok()) {
      return Status::BindError(StrFormat("protocol %s: stage '%s': %s",
                                         spec.name.c_str(), descriptor.c_str(),
                                         stage.status().message().c_str()));
    }
    ordered = ordered || (*stage)->DefinesOrder();
    stages.push_back(std::move(*stage));
  }
  if (stages.empty()) {
    return Status::BindError(StrFormat("protocol %s: empty stage pipeline",
                                       spec.name.c_str()));
  }
  ProtocolSpec resolved = spec;
  resolved.ordered = resolved.ordered || ordered;
  return std::unique_ptr<Protocol>(
      new ComposedProtocol(std::move(resolved), std::move(stages), store));
}

}  // namespace declsched::scheduler
