#include "scheduler/backends/datalog_protocol.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "datalog/engine.h"
#include "scheduler/ir/compiled_protocol.h"
#include "scheduler/ir/lower_datalog.h"

namespace declsched::scheduler {

namespace {

/// The interpreted path: the validated program evaluated by the semi-naive
/// engine against the store's cached EDB every cycle. Kept as the
/// differential oracle for the compiled path (and the semantics of last
/// resort for programs outside the IR dialect).
class InterpretedDatalogProtocol : public Protocol {
 public:
  InterpretedDatalogProtocol(ProtocolSpec spec, datalog::DatalogProgram program)
      : Protocol(std::move(spec)), program_(std::move(program)) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    // The EDB comes from the store's epoch-keyed cache: unchanged relations
    // (typically history, often both on a stalled cycle) are not rebuilt.
    DS_ASSIGN_OR_RETURN(datalog::Database result,
                        program_.Evaluate(context.store->BuildDatalogEdb()));
    const datalog::Relation& rel = result.at(spec_.datalog_output);
    DS_ASSIGN_OR_RETURN(RequestBatch batch, context.store->RowsToRequests(rel));
    if (spec_.datalog_rank.empty()) {
      std::sort(batch.begin(), batch.end(),
                [](const Request& a, const Request& b) { return a.id < b.id; });
      return batch;
    }
    // Ranked dispatch: the rank relation maps each id to its sort-key
    // columns; order is ascending by keys then id, requests missing from
    // the relation last. Datalog has no ORDER BY, so the key columns ARE
    // the protocol's declared dispatch order.
    const datalog::Relation& rank = result.at(spec_.datalog_rank);
    std::unordered_map<int64_t, const storage::Row*> keys;
    keys.reserve(rank.size());
    for (const storage::Row& tuple : rank) {
      keys.emplace(tuple[0].AsInt64(), &tuple);
    }
    auto key_of = [&keys](const Request& r) -> const storage::Row* {
      auto it = keys.find(r.id);
      return it == keys.end() ? nullptr : it->second;
    };
    std::sort(batch.begin(), batch.end(),
              [&key_of](const Request& a, const Request& b) {
                const storage::Row* ka = key_of(a);
                const storage::Row* kb = key_of(b);
                if ((ka == nullptr) != (kb == nullptr)) return kb == nullptr;
                if (ka != nullptr) {
                  for (size_t i = 1; i < ka->size() && i < kb->size(); ++i) {
                    const int64_t va = (*ka)[i].AsInt64();
                    const int64_t vb = (*kb)[i].AsInt64();
                    if (va != vb) return va < vb;
                  }
                }
                return a.id < b.id;
              });
    return batch;
  }

 private:
  datalog::DatalogProgram program_;
};

/// Validates the program and resolves the spec's ordered flag (a rank
/// relation defines the dispatch order). Shared by both execution paths so
/// compiled and interpreted variants carry identical specs.
Result<ProtocolSpec> ResolveSpec(const ProtocolSpec& spec,
                                 const datalog::DatalogProgram& program) {
  const auto& idb = program.idb_predicates();
  if (std::find(idb.begin(), idb.end(), spec.datalog_output) == idb.end()) {
    return Status::BindError(StrFormat("protocol %s: program does not derive '%s'",
                                       spec.name.c_str(),
                                       spec.datalog_output.c_str()));
  }
  ProtocolSpec resolved = spec;
  if (!spec.datalog_rank.empty()) {
    if (std::find(idb.begin(), idb.end(), spec.datalog_rank) == idb.end()) {
      return Status::BindError(
          StrFormat("protocol %s: program does not derive rank relation '%s'",
                    spec.name.c_str(), spec.datalog_rank.c_str()));
    }
    resolved.ordered = true;
  }
  return resolved;
}

}  // namespace

Result<std::unique_ptr<Protocol>> CompileDatalogProtocol(
    const ProtocolSpec& spec, RequestStore* store) {
  ProtocolSpec input = spec;
  bool force_interp = false;
  constexpr const char kInterpPrefix[] = "interp:";
  if (input.text.rfind(kInterpPrefix, 0) == 0) {
    force_interp = true;
    input.text = input.text.substr(sizeof(kInterpPrefix) - 1);
  }
  DS_ASSIGN_OR_RETURN(datalog::DatalogProgram program,
                      datalog::DatalogProgram::Create(input.text));
  DS_ASSIGN_OR_RETURN(ProtocolSpec resolved, ResolveSpec(input, program));
  if (!force_interp) {
    // Compile-first: lower the rule AST into the protocol IR; programs
    // outside the dialect run interpreted.
    Result<ir::ProtocolPlan> lowered = ir::LowerDatalogSpec(resolved);
    if (lowered.ok()) {
      return std::unique_ptr<Protocol>(new ir::CompiledProtocol(
          std::move(resolved), store, std::move(lowered).MoveValue()));
    }
    if (!lowered.status().IsUnsupported()) return lowered.status();
  }
  return std::unique_ptr<Protocol>(
      new InterpretedDatalogProtocol(std::move(resolved), std::move(program)));
}

}  // namespace declsched::scheduler
