#include "scheduler/backends/datalog_protocol.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "datalog/engine.h"

namespace declsched::scheduler {

namespace {

class DatalogProtocol : public Protocol {
 public:
  DatalogProtocol(ProtocolSpec spec, datalog::DatalogProgram program)
      : Protocol(std::move(spec)), program_(std::move(program)) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    // The EDB comes from the store's epoch-keyed cache: unchanged relations
    // (typically history, often both on a stalled cycle) are not rebuilt.
    DS_ASSIGN_OR_RETURN(datalog::Database result,
                        program_.Evaluate(context.store->BuildDatalogEdb()));
    const datalog::Relation& rel = result.at(spec_.datalog_output);
    DS_ASSIGN_OR_RETURN(RequestBatch batch, context.store->RowsToRequests(rel));
    std::sort(batch.begin(), batch.end(),
              [](const Request& a, const Request& b) { return a.id < b.id; });
    return batch;
  }

 private:
  datalog::DatalogProgram program_;
};

}  // namespace

Result<std::unique_ptr<Protocol>> CompileDatalogProtocol(
    const ProtocolSpec& spec, RequestStore* /*store*/) {
  DS_ASSIGN_OR_RETURN(datalog::DatalogProgram program,
                      datalog::DatalogProgram::Create(spec.text));
  // The output relation must be derived and have the Table 2 arity.
  const auto& idb = program.idb_predicates();
  if (std::find(idb.begin(), idb.end(), spec.datalog_output) == idb.end()) {
    return Status::BindError(StrFormat("protocol %s: program does not derive '%s'",
                                       spec.name.c_str(),
                                       spec.datalog_output.c_str()));
  }
  return std::unique_ptr<Protocol>(new DatalogProtocol(spec, std::move(program)));
}

}  // namespace declsched::scheduler
