// Composed backend: a protocol as a pipeline of stages over the pending
// batch, unlocking scenario mixes ("read-committed + EDF + admission cap")
// without writing new SQL. The spec's `text` is a '|'-separated pipeline of
// `kind:arg` descriptors, evaluated left to right starting from the full
// pending set:
//
//   filter:ss2pl | rank:edf | cap:16
//
// Built-in stages:
//   filter:ss2pl / filter:read-committed / filter:none   consistency filter
//   rank:fcfs / rank:priority / rank:edf                 dispatch ordering
//   cap:N                                                admission cap
//   fair_rank:vtime / fair_rank:round                    tenant fairness
//                    ordering (wfq / drr, off the `tenants` relation)
//   tenant_cap                                           drop requests of
//                    throttled tenants (in-flight cap / empty token bucket)
//   starvation_boost:WAIT_US                             move requests of
//                    tenants whose oldest pending request has waited
//                    >= WAIT_US micros to the front (most-starved first)
//
// New stage kinds register a builder via RegisterStage(), the same way new
// backends register in the ProtocolFactory.

#ifndef DECLSCHED_SCHEDULER_BACKENDS_COMPOSED_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_BACKENDS_COMPOSED_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scheduler/protocol.h"

namespace declsched::scheduler {

/// One step of a composed protocol: transforms the batch-in-flight (drop,
/// reorder, truncate — but never invent requests).
class ProtocolStage {
 public:
  virtual ~ProtocolStage() = default;
  virtual Result<RequestBatch> Apply(const ScheduleContext& context,
                                     RequestBatch batch) const = 0;
  /// True if the stage defines the dispatch order (rank stages); a pipeline
  /// containing any ordering stage makes the composed protocol `ordered`.
  virtual bool DefinesOrder() const { return false; }
  /// True if the stage consults history-implied locks. A pipeline with any
  /// such stage makes the composed protocol maintain an incremental
  /// LockTableState and pass it to every stage via ScheduleContext::locks;
  /// stages should prefer it over a from-scratch BuildLockTable().
  virtual bool NeedsLockTable() const { return false; }
};

/// Builds a stage from the descriptor's argument (the part after ':').
using StageBuilder =
    std::function<Result<std::unique_ptr<ProtocolStage>>(const std::string& arg)>;

/// Registers a stage kind for `kind:arg` descriptors. Built-ins (filter,
/// rank, cap) are pre-registered.
Status RegisterStage(const std::string& kind, StageBuilder builder);

/// Stage kinds currently registered (built-ins plus custom).
std::vector<std::string> StageKinds();

Result<std::unique_ptr<Protocol>> CompileComposedProtocol(
    const ProtocolSpec& spec, RequestStore* store);

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_BACKENDS_COMPOSED_PROTOCOL_H_
