#include "scheduler/backends/native_protocol.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "storage/table.h"

namespace declsched::scheduler {

namespace {

using txn::ObjectId;
using txn::TxnId;

void InsertHolder(std::unordered_map<ObjectId, std::vector<TxnId>>* locks,
                  ObjectId object, TxnId ta) {
  std::vector<TxnId>& holders = (*locks)[object];
  if (std::find(holders.begin(), holders.end(), ta) == holders.end()) {
    holders.push_back(ta);
  }
}

/// True if any transaction other than `self` appears in the lock set.
bool LockedByOther(
    const std::unordered_map<ObjectId, std::vector<TxnId>>& locks,
    ObjectId object, TxnId self) {
  auto it = locks.find(object);
  if (it == locks.end()) return false;
  for (TxnId holder : it->second) {
    if (holder != self) return true;
  }
  return false;
}

/// Per-object oldest pending transaction (any op / writes only), the native
/// form of the declarative pending-pending conflict rules: a request is
/// blocked by any strictly older pending request on its object when either
/// side is a write.
struct PendingConflicts {
  std::unordered_map<ObjectId, TxnId> oldest_any;
  std::unordered_map<ObjectId, TxnId> oldest_write;

  explicit PendingConflicts(const RequestBatch& pending) {
    for (const Request& r : pending) {
      auto [it, inserted] = oldest_any.emplace(r.object, r.ta);
      if (!inserted && r.ta < it->second) it->second = r.ta;
      if (r.op == txn::OpType::kWrite) {
        auto [wit, winserted] = oldest_write.emplace(r.object, r.ta);
        if (!winserted && r.ta < wit->second) wit->second = r.ta;
      }
    }
  }

  bool OlderWriteExists(const Request& r) const {
    auto it = oldest_write.find(r.object);
    return it != oldest_write.end() && it->second < r.ta;
  }
  bool OlderRequestExists(const Request& r) const {
    auto it = oldest_any.find(r.object);
    return it != oldest_any.end() && it->second < r.ta;
  }
};

/// Lock analysis over the history relation, optionally restricted to the
/// objects in `relevant` (null = all objects) — the hand-coded
/// specialization the native backend uses per cycle: lock rows on objects
/// no pending request touches can never block, so their lock sets are not
/// materialized. Answers identically to the unrestricted table for every
/// object in `relevant`.
LockTable BuildLockTableImpl(RequestStore* store,
                             const std::unordered_set<ObjectId>* relevant) {
  LockTable locks;
  const storage::Table* history = store->catalog()->GetTable("history");

  // Single table scan into a compact op list; the lock sets need a second
  // pass because finished/wrote facts may arrive after the rows they gate.
  struct HistOp {
    txn::OpType op;
    TxnId ta;
    ObjectId object;
  };
  std::vector<HistOp> ops;
  std::unordered_map<ObjectId, std::vector<TxnId>> wrote;
  history->ForEach([&](storage::RowId, const storage::Row& row) {
    const txn::OpType op =
        RequestStore::ParseOperation(row[RequestStore::kColOperation].AsString());
    const TxnId ta = row[RequestStore::kColTa].AsInt64();
    if (op == txn::OpType::kCommit || op == txn::OpType::kAbort) {
      locks.finished.insert(ta);
      return;
    }
    const ObjectId object = row[RequestStore::kColObject].AsInt64();
    if (relevant != nullptr && relevant->count(object) == 0) return;
    if (op == txn::OpType::kWrite) InsertHolder(&wrote, object, ta);
    ops.push_back(HistOp{op, ta, object});
  });

  for (const HistOp& h : ops) {
    if (locks.finished.count(h.ta) > 0) continue;
    if (h.op == txn::OpType::kWrite) {
      InsertHolder(&locks.wlocks, h.object, h.ta);
    } else if (h.op == txn::OpType::kRead) {
      auto it = wrote.find(h.object);
      if (it == wrote.end() ||
          std::find(it->second.begin(), it->second.end(), h.ta) ==
              it->second.end()) {
        InsertHolder(&locks.rlocks, h.object, h.ta);
      }
    }
  }
  return locks;
}

class NativeProtocol : public Protocol {
 public:
  enum class Variant { kSs2pl, kFcfs, kSlaPriority, kEdf, kReadCommitted };

  NativeProtocol(ProtocolSpec spec, Variant variant)
      : Protocol(std::move(spec)), variant_(variant) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    // Hand-coded fast path: build the pending batch straight off the table
    // rows (each row already carries the SLA columns, so the generic
    // AllPending() per-row index re-join is pure overhead here).
    RequestBatch pending;
    pending.reserve(static_cast<size_t>(context.store->pending_count()));
    const storage::Table* requests = context.store->catalog()->GetTable("requests");
    requests->ForEach([&](storage::RowId, const storage::Row& row) {
      Request r;
      r.id = row[RequestStore::kColId].AsInt64();
      r.ta = row[RequestStore::kColTa].AsInt64();
      r.intrata = row[RequestStore::kColIntrata].AsInt64();
      r.op = RequestStore::ParseOperation(row[RequestStore::kColOperation].AsString());
      r.object = row[RequestStore::kColObject].AsInt64();
      r.priority = static_cast<int>(row[RequestStore::kColPriority].AsInt64());
      r.deadline = SimTime::FromMicros(row[RequestStore::kColDeadline].AsInt64());
      r.arrival = SimTime::FromMicros(row[RequestStore::kColArrival].AsInt64());
      r.client = static_cast<int>(row[RequestStore::kColClient].AsInt64());
      pending.push_back(r);
    });
    RankById(&pending);
    if (variant_ == Variant::kFcfs) return pending;

    std::unordered_set<ObjectId> pending_objects;
    pending_objects.reserve(pending.size());
    for (const Request& r : pending) pending_objects.insert(r.object);
    const LockTable locks =
        BuildLockTableImpl(context.store, &pending_objects);
    RequestBatch qualified = variant_ == Variant::kReadCommitted
                                 ? FilterReadCommitted(locks, pending)
                                 : FilterSs2pl(locks, pending);
    switch (variant_) {
      case Variant::kSlaPriority:
        RankByPriority(&qualified);
        break;
      case Variant::kEdf:
        RankByDeadline(&qualified);
        break;
      default:
        break;  // id order, established above
    }
    return qualified;
  }

 private:
  Variant variant_;
};

}  // namespace

LockTable BuildLockTable(RequestStore* store) {
  return BuildLockTableImpl(store, /*relevant=*/nullptr);
}

RequestBatch FilterSs2pl(const LockTable& locks, const RequestBatch& pending,
                         const RequestBatch* conflict_universe) {
  const PendingConflicts conflicts(
      conflict_universe != nullptr ? *conflict_universe : pending);
  RequestBatch qualified;
  qualified.reserve(pending.size());
  for (const Request& r : pending) {
    if (LockedByOther(locks.wlocks, r.object, r.ta)) continue;
    const bool is_write = r.op == txn::OpType::kWrite;
    if (is_write && LockedByOther(locks.rlocks, r.object, r.ta)) continue;
    if (conflicts.OlderWriteExists(r)) continue;
    if (is_write && conflicts.OlderRequestExists(r)) continue;
    qualified.push_back(r);
  }
  return qualified;
}

RequestBatch FilterReadCommitted(const LockTable& locks,
                                 const RequestBatch& pending,
                                 const RequestBatch* conflict_universe) {
  const PendingConflicts conflicts(
      conflict_universe != nullptr ? *conflict_universe : pending);
  RequestBatch qualified;
  qualified.reserve(pending.size());
  for (const Request& r : pending) {
    if (r.op == txn::OpType::kWrite &&
        (LockedByOther(locks.wlocks, r.object, r.ta) ||
         conflicts.OlderWriteExists(r))) {
      continue;
    }
    qualified.push_back(r);
  }
  return qualified;
}

void RankById(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
}

void RankByPriority(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(), [](const Request& a, const Request& b) {
    return std::make_pair(a.priority, a.id) < std::make_pair(b.priority, b.id);
  });
}

void RankByDeadline(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(), [](const Request& a, const Request& b) {
    const int a_none = a.deadline == SimTime() ? 1 : 0;
    const int b_none = b.deadline == SimTime() ? 1 : 0;
    return std::make_tuple(a_none, a.deadline.micros(), a.id) <
           std::make_tuple(b_none, b.deadline.micros(), b.id);
  });
}

Result<std::unique_ptr<Protocol>> CompileNativeProtocol(const ProtocolSpec& spec,
                                                        RequestStore* /*store*/) {
  const std::string variant(Trim(spec.text));
  NativeProtocol::Variant v;
  if (variant == "ss2pl") {
    v = NativeProtocol::Variant::kSs2pl;
  } else if (variant == "fcfs") {
    v = NativeProtocol::Variant::kFcfs;
  } else if (variant == "sla-priority") {
    v = NativeProtocol::Variant::kSlaPriority;
  } else if (variant == "edf") {
    v = NativeProtocol::Variant::kEdf;
  } else if (variant == "read-committed") {
    v = NativeProtocol::Variant::kReadCommitted;
  } else {
    return Status::BindError(StrFormat(
        "protocol %s: unknown native variant '%s' (want ss2pl, fcfs, "
        "sla-priority, edf, or read-committed)",
        spec.name.c_str(), variant.c_str()));
  }
  return std::unique_ptr<Protocol>(new NativeProtocol(spec, v));
}

}  // namespace declsched::scheduler
