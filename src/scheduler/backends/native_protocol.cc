#include "scheduler/backends/native_protocol.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "storage/table.h"

namespace declsched::scheduler {

namespace {

using txn::ObjectId;
using txn::TxnId;

class NativeProtocol : public Protocol {
 public:
  enum class Variant { kSs2pl, kFcfs, kSlaPriority, kEdf, kReadCommitted };

  NativeProtocol(ProtocolSpec spec, Variant variant, RequestStore* store,
                 bool incremental)
      : Protocol(std::move(spec)),
        variant_(variant),
        store_(store),
        incremental_(incremental) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    if (!incremental_ || context.store != store_) {
      // Stateless fallback: "scratch:" variants, or a store this instance
      // holds no state for.
      return ScheduleFromScratch(context);
    }
    // Incremental fast path. Pending comes off the store's typed mirror —
    // already decoded, already in id order (the mirror is keyed by id).
    RequestBatch pending;
    const auto& mirror = context.store->pending_by_id();
    pending.reserve(mirror.size());
    for (const auto& [id, request] : mirror) pending.push_back(request);
    if (variant_ == Variant::kFcfs) return pending;

    const LockTable& locks = lock_state_.Refresh(*context.store);
    return Qualify(locks, pending);
  }

  // Delta hooks: keep the lock state in lockstep with history so Schedule()
  // never rescans it. FCFS ignores locks entirely, so it skips the upkeep.
  void OnScheduled(const RequestBatch& batch) override {
    if (MaintainsLockState()) lock_state_.ApplyHistoryAppend(batch, *store_);
  }
  void OnFinished(const std::vector<TxnId>& txns) override {
    if (MaintainsLockState()) lock_state_.ApplyFinished(txns, *store_);
  }

 private:
  bool MaintainsLockState() const {
    return incremental_ && variant_ != Variant::kFcfs;
  }

  RequestBatch Qualify(const LockTable& locks, RequestBatch& pending) const {
    RequestBatch qualified = variant_ == Variant::kReadCommitted
                                 ? FilterReadCommitted(locks, pending)
                                 : FilterSs2pl(locks, pending);
    switch (variant_) {
      case Variant::kSlaPriority:
        RankByPriority(&qualified);
        break;
      case Variant::kEdf:
        RankByDeadline(&qualified);
        break;
      default:
        break;  // id order, established by the caller
    }
    return qualified;
  }

  /// The pre-incremental formulation: decode pending from the table rows,
  /// rebuild the lock table from a full history scan, restricted to the
  /// objects pending actually touches.
  Result<RequestBatch> ScheduleFromScratch(const ScheduleContext& context) const {
    RequestBatch pending;
    pending.reserve(static_cast<size_t>(context.store->pending_count()));
    const storage::Table* requests = context.store->catalog()->GetTable("requests");
    requests->ForEach([&](storage::RowId, const storage::Row& row) {
      pending.push_back(RequestStore::RowToRequestFull(row));
    });
    RankById(&pending);
    if (variant_ == Variant::kFcfs) return pending;

    std::unordered_set<ObjectId> pending_objects;
    pending_objects.reserve(pending.size());
    for (const Request& r : pending) pending_objects.insert(r.object);
    const LockTable locks =
        BuildLockTableRestricted(context.store, &pending_objects);
    return Qualify(locks, pending);
  }

  Variant variant_;
  RequestStore* store_;
  bool incremental_;
  /// Cache of the store's history-implied locks; mutable because Schedule()
  /// is a read of the store, even when it refreshes the cache.
  mutable LockTableState lock_state_;
};

}  // namespace

void RankById(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
}

void RankByPriority(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(), [](const Request& a, const Request& b) {
    return std::make_pair(a.priority, a.id) < std::make_pair(b.priority, b.id);
  });
}

void RankByDeadline(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(), [](const Request& a, const Request& b) {
    const int a_none = a.deadline == SimTime() ? 1 : 0;
    const int b_none = b.deadline == SimTime() ? 1 : 0;
    return std::make_tuple(a_none, a.deadline.micros(), a.id) <
           std::make_tuple(b_none, b.deadline.micros(), b.id);
  });
}

Result<std::unique_ptr<Protocol>> CompileNativeProtocol(const ProtocolSpec& spec,
                                                        RequestStore* store) {
  std::string variant(Trim(spec.text));
  bool incremental = true;
  constexpr const char kScratchPrefix[] = "scratch:";
  if (variant.rfind(kScratchPrefix, 0) == 0) {
    incremental = false;
    variant = std::string(Trim(variant.substr(sizeof(kScratchPrefix) - 1)));
  }
  NativeProtocol::Variant v;
  if (variant == "ss2pl") {
    v = NativeProtocol::Variant::kSs2pl;
  } else if (variant == "fcfs") {
    v = NativeProtocol::Variant::kFcfs;
  } else if (variant == "sla-priority") {
    v = NativeProtocol::Variant::kSlaPriority;
  } else if (variant == "edf") {
    v = NativeProtocol::Variant::kEdf;
  } else if (variant == "read-committed") {
    v = NativeProtocol::Variant::kReadCommitted;
  } else {
    return Status::BindError(StrFormat(
        "protocol %s: unknown native variant '%s' (want ss2pl, fcfs, "
        "sla-priority, edf, or read-committed, optionally scratch:-prefixed)",
        spec.name.c_str(), variant.c_str()));
  }
  return std::unique_ptr<Protocol>(
      new NativeProtocol(spec, v, store, incremental));
}

}  // namespace declsched::scheduler
