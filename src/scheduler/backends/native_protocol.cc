#include "scheduler/backends/native_protocol.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "storage/table.h"

namespace declsched::scheduler {

namespace {

using txn::ObjectId;
using txn::TxnId;

class NativeProtocol : public Protocol {
 public:
  enum class Variant {
    kSs2pl,
    kFcfs,
    kSlaPriority,
    kEdf,
    kReadCommitted,
    kWfq,
    kDrr,
    kTenantCap,
  };

  NativeProtocol(ProtocolSpec spec, Variant variant, RequestStore* store,
                 bool incremental)
      : Protocol(std::move(spec)),
        variant_(variant),
        store_(store),
        incremental_(incremental) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    if (!incremental_ || context.store != store_) {
      // Stateless fallback: "scratch:" variants, or a store this instance
      // holds no state for.
      return ScheduleFromScratch(context);
    }
    // Incremental fast path. Pending comes off the store's typed mirror —
    // already decoded, already in id order (the mirror is keyed by id).
    RequestBatch pending;
    const auto& mirror = context.store->pending_by_id();
    pending.reserve(mirror.size());
    for (const auto& [id, request] : mirror) pending.push_back(request);
    if (variant_ == Variant::kFcfs) return pending;

    const LockTable& locks = lock_state_.Refresh(*context.store);
    return Qualify(locks, pending, *context.store);
  }

  // Delta hooks: keep the lock state in lockstep with history so Schedule()
  // never rescans it. FCFS ignores locks entirely, so it skips the upkeep.
  void OnScheduled(const RequestBatch& batch) override {
    if (MaintainsLockState()) lock_state_.ApplyHistoryAppend(batch, *store_);
  }
  void OnFinished(const std::vector<TxnId>& txns) override {
    if (MaintainsLockState()) lock_state_.ApplyFinished(txns, *store_);
  }

 private:
  bool MaintainsLockState() const {
    return incremental_ && variant_ != Variant::kFcfs;
  }

  RequestBatch Qualify(const LockTable& locks, RequestBatch& pending,
                       const RequestStore& store) const {
    RequestBatch qualified = variant_ == Variant::kReadCommitted
                                 ? FilterReadCommitted(locks, pending)
                                 : FilterSs2pl(locks, pending);
    switch (variant_) {
      case Variant::kSlaPriority:
        RankByPriority(&qualified);
        break;
      case Variant::kEdf:
        RankByDeadline(&qualified);
        break;
      case Variant::kWfq:
        RankByTenantVtime(&qualified, store);
        break;
      case Variant::kDrr:
        RankByTenantRound(&qualified, store);
        break;
      case Variant::kTenantCap:
        qualified = FilterThrottledTenants(std::move(qualified), store);
        break;
      default:
        break;  // id order, established by the caller
    }
    return qualified;
  }

  /// The pre-incremental formulation: decode pending from the table rows,
  /// rebuild the lock table from a full history scan, restricted to the
  /// objects pending actually touches.
  Result<RequestBatch> ScheduleFromScratch(const ScheduleContext& context) const {
    RequestBatch pending;
    pending.reserve(static_cast<size_t>(context.store->pending_count()));
    const storage::Table* requests = context.store->catalog()->GetTable("requests");
    requests->ForEach([&](storage::RowId, const storage::Row& row) {
      pending.push_back(RequestStore::RowToRequestFull(row));
    });
    RankById(&pending);
    if (variant_ == Variant::kFcfs) return pending;

    std::unordered_set<ObjectId> pending_objects;
    pending_objects.reserve(pending.size());
    for (const Request& r : pending) pending_objects.insert(r.object);
    const LockTable locks =
        BuildLockTableRestricted(context.store, &pending_objects);
    return Qualify(locks, pending, *context.store);
  }

  Variant variant_;
  RequestStore* store_;
  bool incremental_;
  /// Cache of the store's history-implied locks; mutable because Schedule()
  /// is a read of the store, even when it refreshes the cache.
  mutable LockTableState lock_state_;
};

}  // namespace

void RankById(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
}

void RankByPriority(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(), [](const Request& a, const Request& b) {
    return std::make_pair(a.priority, a.id) < std::make_pair(b.priority, b.id);
  });
}

void RankByDeadline(RequestBatch* batch) {
  std::sort(batch->begin(), batch->end(), [](const Request& a, const Request& b) {
    const int a_none = a.deadline == SimTime() ? 1 : 0;
    const int b_none = b.deadline == SimTime() ? 1 : 0;
    return std::make_tuple(a_none, a.deadline.micros(), a.id) <
           std::make_tuple(b_none, b.deadline.micros(), b.id);
  });
}

namespace {

/// Tenant-acct lookup memoizing the last tenant seen — batches are
/// typically runs of the same tenant.
class TenantAcctReader {
 public:
  explicit TenantAcctReader(const RequestStore& store)
      : tenants_(store.tenants_by_id()) {}

  const TenantAcct& For(int64_t tenant) {
    if (cached_ == nullptr || cached_->tenant != tenant) {
      auto it = tenants_.find(tenant);
      if (it != tenants_.end()) {
        cached_ = &it->second;
      } else {
        default_ = TenantAcct{};
        default_.tenant = tenant;
        cached_ = &default_;
      }
    }
    return *cached_;
  }

 private:
  const std::map<int64_t, TenantAcct>& tenants_;
  const TenantAcct* cached_ = nullptr;
  TenantAcct default_;
};

}  // namespace

void RankByTenantVtime(RequestBatch* batch, const RequestStore& store) {
  TenantAcctReader acct(store);
  std::sort(batch->begin(), batch->end(),
            [&acct](const Request& a, const Request& b) {
              return std::make_pair(acct.For(a.tenant).vtime, a.id) <
                     std::make_pair(acct.For(b.tenant).vtime, b.id);
            });
}

void RankByTenantRound(RequestBatch* batch, const RequestStore& store) {
  TenantAcctReader acct(store);
  std::sort(batch->begin(), batch->end(),
            [&acct](const Request& a, const Request& b) {
              return std::make_tuple(acct.For(a.tenant).round,
                                     static_cast<int64_t>(a.tenant), a.id) <
                     std::make_tuple(acct.For(b.tenant).round,
                                     static_cast<int64_t>(b.tenant), b.id);
            });
}

RequestBatch FilterThrottledTenants(RequestBatch batch,
                                    const RequestStore& store) {
  TenantAcctReader acct(store);
  RequestBatch out;
  out.reserve(batch.size());
  for (Request& r : batch) {
    if (!acct.For(r.tenant).Throttled()) out.push_back(std::move(r));
  }
  return out;
}

Result<std::unique_ptr<Protocol>> CompileNativeProtocol(const ProtocolSpec& spec,
                                                        RequestStore* store) {
  std::string variant(Trim(spec.text));
  bool incremental = true;
  constexpr const char kScratchPrefix[] = "scratch:";
  if (variant.rfind(kScratchPrefix, 0) == 0) {
    incremental = false;
    variant = std::string(Trim(variant.substr(sizeof(kScratchPrefix) - 1)));
  }
  NativeProtocol::Variant v;
  if (variant == "ss2pl") {
    v = NativeProtocol::Variant::kSs2pl;
  } else if (variant == "fcfs") {
    v = NativeProtocol::Variant::kFcfs;
  } else if (variant == "sla-priority") {
    v = NativeProtocol::Variant::kSlaPriority;
  } else if (variant == "edf") {
    v = NativeProtocol::Variant::kEdf;
  } else if (variant == "read-committed") {
    v = NativeProtocol::Variant::kReadCommitted;
  } else if (variant == "wfq") {
    v = NativeProtocol::Variant::kWfq;
  } else if (variant == "drr") {
    v = NativeProtocol::Variant::kDrr;
  } else if (variant == "tenant-cap") {
    v = NativeProtocol::Variant::kTenantCap;
  } else {
    return Status::BindError(StrFormat(
        "protocol %s: unknown native variant '%s' (want ss2pl, fcfs, "
        "sla-priority, edf, read-committed, wfq, drr, or tenant-cap, "
        "optionally scratch:-prefixed)",
        spec.name.c_str(), variant.c_str()));
  }
  return std::unique_ptr<Protocol>(
      new NativeProtocol(spec, v, store, incremental));
}

}  // namespace declsched::scheduler
