#include "scheduler/backends/sql_protocol.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "sql/engine.h"

namespace declsched::scheduler {

namespace {

class SqlProtocol : public Protocol {
 public:
  SqlProtocol(ProtocolSpec spec, RequestStore* bound_store,
              sql::PreparedQuery prepared, std::vector<int> cols)
      : Protocol(std::move(spec)),
        bound_store_(bound_store),
        prepared_(std::move(prepared)),
        cols_(std::move(cols)) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    // The prepared plan reads the compile-time store's relations; silently
    // answering for a different context store would mix two stores' data.
    if (context.store != bound_store_) {
      return Status::InvalidArgument(
          "protocol " + spec_.name +
          ": scheduled against a different store than it was compiled for");
    }
    DS_ASSIGN_OR_RETURN(sql::QueryResult result, prepared_.Run());
    RequestBatch batch;
    batch.reserve(result.rows.size());
    for (const storage::Row& row : result.rows) {
      Request request;
      request.id = row[cols_[0]].AsInt64();
      request.ta = row[cols_[1]].AsInt64();
      request.intrata = row[cols_[2]].AsInt64();
      request.op = RequestStore::ParseOperation(row[cols_[3]].AsString());
      request.object = row[cols_[4]].AsInt64();
      batch.push_back(request);
    }
    // One batched re-join against the pending mirror instead of an index
    // lookup per row (protocols only guarantee the Table 2 columns).
    context.store->JoinSlaColumns(&batch);
    if (!spec_.ordered) {
      std::sort(batch.begin(), batch.end(),
                [](const Request& a, const Request& b) { return a.id < b.id; });
    }
    return batch;
  }

 private:
  RequestStore* bound_store_;
  sql::PreparedQuery prepared_;
  // Column positions of (id, ta, intrata, operation, object) in the SQL
  // result schema.
  std::vector<int> cols_;
};

}  // namespace

Result<std::unique_ptr<Protocol>> CompileSqlProtocol(const ProtocolSpec& spec,
                                                     RequestStore* store) {
  DS_ASSIGN_OR_RETURN(sql::PreparedQuery prepared,
                      store->sql_engine()->PrepareQuery(spec.text));
  // Map the Table 2 columns by name in the result schema.
  const sql::OutSchema& schema = prepared.schema();
  std::vector<int> cols;
  for (const char* name : {"id", "ta", "intrata", "operation", "object"}) {
    int found = -1;
    for (int i = 0; i < static_cast<int>(schema.size()); ++i) {
      if (EqualsIgnoreCase(schema[i].name, name)) {
        found = i;
        break;
      }
    }
    if (found < 0) {
      return Status::BindError(StrFormat("protocol %s: result lacks column '%s'",
                                         spec.name.c_str(), name));
    }
    cols.push_back(found);
  }
  return std::unique_ptr<Protocol>(
      new SqlProtocol(spec, store, std::move(prepared), std::move(cols)));
}

}  // namespace declsched::scheduler
