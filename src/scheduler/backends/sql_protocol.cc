#include "scheduler/backends/sql_protocol.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "scheduler/backends/native_protocol.h"
#include "scheduler/ir/compiled_protocol.h"
#include "scheduler/ir/lower_sql.h"
#include "sql/engine.h"

namespace declsched::scheduler {

namespace {

/// The interpreted path: the SELECT prepared once, re-run every cycle
/// through the SQL engine. Kept as the differential oracle for the
/// compiled path (and the semantics of last resort for queries outside
/// the IR dialect).
class InterpretedSqlProtocol : public Protocol {
 public:
  InterpretedSqlProtocol(ProtocolSpec spec, RequestStore* bound_store,
                         sql::PreparedQuery prepared, std::vector<int> cols)
      : Protocol(std::move(spec)),
        bound_store_(bound_store),
        prepared_(std::move(prepared)),
        cols_(std::move(cols)) {}

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override {
    // The prepared plan reads the compile-time store's relations; silently
    // answering for a different context store would mix two stores' data.
    if (context.store != bound_store_) {
      return Status::InvalidArgument(
          "protocol " + spec_.name +
          ": scheduled against a different store than it was compiled for");
    }
    DS_ASSIGN_OR_RETURN(sql::QueryResult result, prepared_.Run());
    // One shared decode+SLA-join pass over the typed pending mirror.
    DS_ASSIGN_OR_RETURN(RequestBatch batch,
                        context.store->RowsToRequests(result.rows, cols_));
    if (!spec_.ordered) RankById(&batch);
    return batch;
  }

 private:
  RequestStore* bound_store_;
  sql::PreparedQuery prepared_;
  // Column positions of (id, ta, intrata, operation, object) in the SQL
  // result schema.
  std::vector<int> cols_;
};

Result<std::unique_ptr<Protocol>> CompileInterpreted(const ProtocolSpec& spec,
                                                     RequestStore* store) {
  DS_ASSIGN_OR_RETURN(sql::PreparedQuery prepared,
                      store->sql_engine()->PrepareQuery(spec.text));
  // Map the Table 2 columns by name in the result schema.
  const sql::OutSchema& schema = prepared.schema();
  std::vector<int> cols;
  for (const char* name : {"id", "ta", "intrata", "operation", "object"}) {
    int found = -1;
    for (int i = 0; i < static_cast<int>(schema.size()); ++i) {
      if (EqualsIgnoreCase(schema[static_cast<size_t>(i)].name, name)) {
        found = i;
        break;
      }
    }
    if (found < 0) {
      return Status::BindError(StrFormat("protocol %s: result lacks column '%s'",
                                         spec.name.c_str(), name));
    }
    cols.push_back(found);
  }
  return std::unique_ptr<Protocol>(new InterpretedSqlProtocol(
      spec, store, std::move(prepared), std::move(cols)));
}

}  // namespace

Result<std::unique_ptr<Protocol>> CompileSqlProtocol(const ProtocolSpec& spec,
                                                     RequestStore* store) {
  ProtocolSpec resolved = spec;
  constexpr const char kInterpPrefix[] = "interp:";
  if (resolved.text.rfind(kInterpPrefix, 0) == 0) {
    // Forced interpreter — the differential oracle variant.
    resolved.text = resolved.text.substr(sizeof(kInterpPrefix) - 1);
    return CompileInterpreted(resolved, store);
  }
  // Compile-first: lower the planned SELECT into the protocol IR. Queries
  // outside the IR dialect fall back to the interpreter (Unsupported is the
  // lowering's "not my dialect" signal; real errors — parse, bind — are
  // surfaced by the interpreted path below with the same text).
  Result<ir::ProtocolPlan> lowered =
      ir::LowerSqlSpec(resolved, *store->catalog());
  if (lowered.ok()) {
    return std::unique_ptr<Protocol>(new ir::CompiledProtocol(
        std::move(resolved), store, std::move(lowered).MoveValue()));
  }
  if (!lowered.status().IsUnsupported()) return lowered.status();
  return CompileInterpreted(resolved, store);
}

}  // namespace declsched::scheduler
