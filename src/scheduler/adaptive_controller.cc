#include "scheduler/adaptive_controller.h"

#include "common/string_util.h"

namespace declsched::scheduler {

AdaptiveConsistencyController::AdaptiveConsistencyController(
    Options options, DeclarativeScheduler* scheduler)
    : options_(std::move(options)), scheduler_(scheduler) {
  // Lazy defaults: an empty name means "the canonical pair".
  if (options_.strict.name.empty()) options_.strict = Ss2plSql();
  if (options_.relaxed.name.empty()) options_.relaxed = ReadCommittedSql();
}

Status AdaptiveConsistencyController::Validate() const {
  if (options_.strict.name == options_.relaxed.name) {
    return Status::InvalidArgument(
        StrFormat("adaptive strict and relaxed specs both name '%s' — "
                  "switching between identical protocols is a no-op loop",
                  options_.strict.name.c_str()));
  }
  if (options_.tighten_below > options_.relax_above) {
    return Status::InvalidArgument(
        StrFormat("adaptive hysteresis band inverted: tighten_below (%lld) > "
                  "relax_above (%lld)",
                  static_cast<long long>(options_.tighten_below),
                  static_cast<long long>(options_.relax_above)));
  }
  if (options_.min_cycles_between_switches < 0) {
    return Status::InvalidArgument(
        "adaptive min_cycles_between_switches must be >= 0");
  }
  return Status::OK();
}

Result<bool> AdaptiveConsistencyController::OnCycle(
    const AdaptiveSignals& signals) {
  return Step(signals.LoadScore());
}

Result<bool> AdaptiveConsistencyController::OnCycle(int64_t load) {
  return Step(load);
}

Result<bool> AdaptiveConsistencyController::Step(int64_t load) {
  if (!validated_) {
    DS_RETURN_NOT_OK(Validate());
    validated_ = true;
  }
  last_load_.store(load, std::memory_order_relaxed);
  ++cycles_since_switch_;
  if (cycles_since_switch_ < options_.min_cycles_between_switches) return false;
  const bool relaxed = relaxed_active_.load(std::memory_order_relaxed);
  if (!relaxed && load > options_.relax_above) {
    DS_RETURN_NOT_OK(scheduler_->SwitchProtocol(options_.relaxed));
    relaxed_active_.store(true, std::memory_order_relaxed);
    switches_.fetch_add(1, std::memory_order_relaxed);
    cycles_since_switch_ = 0;
    return true;
  }
  if (relaxed && load < options_.tighten_below) {
    DS_RETURN_NOT_OK(scheduler_->SwitchProtocol(options_.strict));
    relaxed_active_.store(false, std::memory_order_relaxed);
    switches_.fetch_add(1, std::memory_order_relaxed);
    cycles_since_switch_ = 0;
    return true;
  }
  return false;
}

}  // namespace declsched::scheduler
