#include "scheduler/adaptive_controller.h"

namespace declsched::scheduler {

Result<bool> AdaptiveConsistencyController::OnCycle(int64_t load) {
  ++cycles_since_switch_;
  if (cycles_since_switch_ < options_.min_cycles_between_switches) return false;
  if (!relaxed_active_ && load > options_.relax_above) {
    DS_RETURN_NOT_OK(scheduler_->SwitchProtocol(options_.relaxed));
    relaxed_active_ = true;
    ++switches_;
    cycles_since_switch_ = 0;
    return true;
  }
  if (relaxed_active_ && load < options_.tighten_below) {
    DS_RETURN_NOT_OK(scheduler_->SwitchProtocol(options_.strict));
    relaxed_active_ = false;
    ++switches_;
    cycles_since_switch_ = 0;
    return true;
  }
  return false;
}

}  // namespace declsched::scheduler
