// Declarative deadlock detection.
//
// Batch scheduling can wedge: T1 holds a lock T2 needs while T2 holds a lock
// T1 needs — neither pending request ever qualifies. The paper does not
// address this; we resolve it *declaratively*, with a recursive Datalog
// program computing the waits-for graph's transitive closure and selecting
// the youngest transaction on each cycle as the victim. This doubles as the
// showcase for why a recursive scheduler language (Section 5) earns its keep:
// transitive closure is inexpressible in the paper's plain SQL dialect.

#ifndef DECLSCHED_SCHEDULER_DEADLOCK_RESOLVER_H_
#define DECLSCHED_SCHEDULER_DEADLOCK_RESOLVER_H_

#include <vector>

#include "common/result.h"
#include "datalog/engine.h"
#include "scheduler/request_store.h"
#include "txn/types.h"

namespace declsched::scheduler {

class DeadlockResolver {
 public:
  static Result<DeadlockResolver> Create();

  /// Transactions chosen as victims (the youngest on each waits-for cycle),
  /// given the store's current pending/history state.
  Result<std::vector<txn::TxnId>> FindVictims(const RequestStore& store) const;

  /// The Datalog program text (for documentation / examples).
  static const char* ProgramText();

 private:
  explicit DeadlockResolver(datalog::DatalogProgram program);
  std::shared_ptr<const datalog::DatalogProgram> program_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_DEADLOCK_RESOLVER_H_
