#include "scheduler/ir/protocol_plan.h"

namespace declsched::scheduler::ir {

namespace {

template <typename Fn>
bool AnyNode(const PlanNode* node, Fn&& pred) {
  for (; node != nullptr; node = node->input.get()) {
    if (pred(*node)) return true;
  }
  return false;
}

}  // namespace

bool ProtocolPlan::NeedsLockTable() const {
  return AnyNode(root.get(), [](const PlanNode& n) {
    return n.kind == PlanNode::Kind::kLockAntiJoin &&
           n.conflicts.NeedsLockTable();
  });
}

bool ProtocolPlan::NeedsTenants() const {
  return AnyNode(root.get(), [](const PlanNode& n) {
    return n.kind == PlanNode::Kind::kTenantJoin ||
           n.kind == PlanNode::Kind::kThrottleAntiJoin;
  });
}

bool ProtocolPlan::MayReorder() const {
  // Only rank nodes disturb the scan's ascending-id order; filters,
  // anti-joins, joins and limits all preserve it.
  return AnyNode(root.get(),
                 [](const PlanNode& n) { return n.kind == PlanNode::Kind::kRank; });
}

}  // namespace declsched::scheduler::ir
