// ExplainProtocol: render what a protocol spec compiles to.
//
// For SQL/Datalog specs that lower, the output is the optimized IR
// operator tree (the compiled artifact the executor runs); for specs that
// fall back to the interpreted engines, the SQL physical plan
// (sql::ExplainPlan) or the validated Datalog program, with the lowering
// error that forced the fallback; for native/composed/passthrough specs, a
// one-line description of the hand-coded path.

#ifndef DECLSCHED_SCHEDULER_IR_EXPLAIN_H_
#define DECLSCHED_SCHEDULER_IR_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler::ir {

/// Multi-line rendering of a lowered plan, root first (the sql/explain
/// indentation style). Example:
///
///   Rank [priority, id]
///     LockAntiJoin [wlock->all, rlock->w, pend:w->all, pend:any->w]
///       ScanPending
std::string ExplainProtocolPlan(const ProtocolPlan& plan);

/// Compiles `spec` the way its backend would and renders the result.
/// `store` supplies the catalog the SQL planner binds against.
Result<std::string> ExplainProtocol(const ProtocolSpec& spec,
                                    RequestStore* store);

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_EXPLAIN_H_
