// Arena: per-cycle bump allocation for the vectorized executor.
//
// Every transient array a cycle needs — selection vectors, gathered rank
// keys, join indexes — comes from one arena that is Reset() at the top of
// the next Execute(). Reset never returns memory to the allocator: the
// arena keeps its largest block, so a warmed executor allocates nothing in
// steady state (the SNIPPETS.md snippet-3 arena idiom, specialized to
// trivially-destructible scratch arrays).

#ifndef DECLSCHED_SCHEDULER_IR_VEC_ARENA_H_
#define DECLSCHED_SCHEDULER_IR_VEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace declsched::scheduler::ir::vec {

class Arena {
 public:
  /// `n` default-initialized elements of a trivially destructible type,
  /// suitably aligned. Valid until the next Reset().
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (n == 0) return reinterpret_cast<T*>(&zero_size_sentinel_);
    return static_cast<T*>(AllocBytes(n * sizeof(T), alignof(T)));
  }

  /// Reclaims every allocation. Keeps the single largest block hot, so a
  /// steady-state cycle reuses it without touching malloc.
  void Reset() {
    if (blocks_.size() > 1) {
      // Consolidate: next cycle gets one block big enough for everything
      // this cycle needed, instead of re-walking a chain.
      size_t total = 0;
      for (const Block& b : blocks_) total += b.capacity;
      blocks_.clear();
      AddBlock(total);
    }
    used_ = 0;
  }

  /// Bytes handed out since the last Reset (tests assert steady-state
  /// behavior through it).
  size_t bytes_used() const { return used_; }
  /// Bytes the arena holds on to across Resets.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t offset = 0;
  };

  static constexpr size_t kMinBlockBytes = 16 * 1024;

  void AddBlock(size_t at_least) {
    size_t capacity = kMinBlockBytes;
    while (capacity < at_least) capacity *= 2;
    Block block;
    block.data = std::make_unique<char[]>(capacity);
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
  }

  void* AllocBytes(size_t bytes, size_t align) {
    if (blocks_.empty()) AddBlock(bytes + align);
    Block* block = &blocks_.back();
    size_t offset = (block->offset + align - 1) & ~(align - 1);
    if (offset + bytes > block->capacity) {
      AddBlock(bytes + align);
      block = &blocks_.back();
      offset = 0;
    }
    block->offset = offset + bytes;
    used_ += bytes;
    return block->data.get() + offset;
  }

  std::vector<Block> blocks_;
  size_t used_ = 0;
  /// Zero-length arrays need a valid non-null pointer without spending
  /// arena space (max-aligned so any element type is happy).
  alignas(alignof(std::max_align_t)) char zero_size_sentinel_ = 0;
};

}  // namespace declsched::scheduler::ir::vec

#endif  // DECLSCHED_SCHEDULER_IR_VEC_ARENA_H_
