#include "scheduler/ir/vec/column_mirror.h"

namespace declsched::scheduler::ir::vec {

const PendingColumns& ColumnarMirror::RefreshPending(const RequestStore& store) {
  // Touch the typed mirror first: it heals out-of-band table edits and
  // bumps the pending epoch when it does, so the staleness check below
  // cannot miss them. O(1) when the store mirror is already current.
  const auto& by_id = store.pending_by_id();
  if (pending_synced_with(store)) {
    MaybeCompact();
    return pending_;
  }
  (void)by_id;
  RebuildPending(store);
  return pending_;
}

void ColumnarMirror::RebuildPending(const RequestStore& store) {
  pending_.Clear();
  const auto& by_id = store.pending_by_id();
  for (const auto& [id, request] : by_id) pending_.PushBack(request);
  synced_epoch_ = store.pending_epoch();
  synced_version_ = store.pending_version();
  ++full_rebuilds_;
}

void ColumnarMirror::MaybeCompact() {
  // Compact when tombstones outnumber live rows: every live row has been
  // copied at most once per doubling of deletions, so maintenance stays
  // O(delta) amortized. Runs only at refresh time (cycle start), before
  // any selection vector references row indices.
  if (pending_.dead_count * 2 <= static_cast<int64_t>(pending_.size())) return;
  size_t out = 0;
  const size_t n = pending_.size();
  for (size_t i = 0; i < n; ++i) {
    if (pending_.dead[i]) continue;
    if (out != i) {
      pending_.id[out] = pending_.id[i];
      pending_.ta[out] = pending_.ta[i];
      pending_.intrata[out] = pending_.intrata[i];
      pending_.object[out] = pending_.object[i];
      pending_.priority[out] = pending_.priority[i];
      pending_.deadline[out] = pending_.deadline[i];
      pending_.arrival[out] = pending_.arrival[i];
      pending_.client[out] = pending_.client[i];
      pending_.tenant[out] = pending_.tenant[i];
      pending_.op[out] = pending_.op[i];
    }
    pending_.dead[out] = 0;
    ++out;
  }
  pending_.id.resize(out);
  pending_.ta.resize(out);
  pending_.intrata.resize(out);
  pending_.object.resize(out);
  pending_.priority.resize(out);
  pending_.deadline.resize(out);
  pending_.arrival.resize(out);
  pending_.client.resize(out);
  pending_.tenant.resize(out);
  pending_.op.resize(out);
  pending_.dead.resize(out);
  pending_.dead_count = 0;
  ++compactions_;
}

void ColumnarMirror::OnAdmitted(const RequestBatch& batch,
                                const RequestStore& store) {
  if (synced_epoch_ == kUnsynced) return;
  // InsertPending no-ops (no epoch bump) on an empty batch.
  if (batch.empty()) return;
  // The narrated mutation appended exactly batch.size() rows; any other
  // epoch or version movement means something else also wrote the table.
  if (store.pending_epoch() != synced_epoch_ + 1 ||
      store.pending_version() != synced_version_ + batch.size()) {
    synced_epoch_ = kUnsynced;
    return;
  }
  // Admission ids are monotone (the scheduler assigns them consecutively);
  // anything else would break the sorted-id invariant, so resync instead.
  int64_t max_id = pending_.id.empty() ? INT64_MIN : pending_.id.back();
  for (const Request& r : batch) {
    if (r.id <= max_id) {
      synced_epoch_ = kUnsynced;
      return;
    }
    max_id = r.id;
  }
  for (const Request& r : batch) pending_.PushBack(r);
  synced_epoch_ = store.pending_epoch();
  synced_version_ = store.pending_version();
  ++deltas_applied_;
}

void ColumnarMirror::OnScheduled(const RequestBatch& batch,
                                 const RequestStore& store) {
  if (synced_epoch_ == kUnsynced) return;
  const uint64_t epoch = store.pending_epoch();
  if (epoch == synced_epoch_) {
    // A finisher marker that dropped nothing from pending (the victim had
    // no pending rows): no pending mutation happened, but verify that via
    // the content version before staying synced.
    if (store.pending_version() != synced_version_) synced_epoch_ = kUnsynced;
    return;
  }
  if (epoch != synced_epoch_ + 1) {
    synced_epoch_ = kUnsynced;
    return;
  }
  // Exactly one pending mutation: MarkScheduled of this batch, or the
  // DropPendingOfTransaction preceding an injected marker. Tombstone what
  // it removed, then check the removal count against the version delta —
  // the arithmetic catches a mixed-in out-of-band edit.
  int64_t removed = 0;
  for (const Request& r : batch) {
    const int64_t row = pending_.FindLive(r.id);
    if (row >= 0) {
      // A dispatched request (termination markers included when they flowed
      // through pending) tombstones its own row only.
      pending_.dead[static_cast<size_t>(row)] = 1;
      ++pending_.dead_count;
      ++removed;
      continue;
    }
    // An injected finisher marker: its id never entered pending, and the
    // narrated drop removed every pending row of its transaction.
    const size_t n = pending_.size();
    for (size_t i = 0; i < n; ++i) {
      if (!pending_.dead[i] && pending_.ta[i] == r.ta) {
        pending_.dead[i] = 1;
        ++pending_.dead_count;
        ++removed;
      }
    }
  }
  if (store.pending_version() != synced_version_ + removed) {
    synced_epoch_ = kUnsynced;
    return;
  }
  synced_epoch_ = epoch;
  synced_version_ = store.pending_version();
  ++deltas_applied_;
}

const TenantColumns& ColumnarMirror::RefreshTenants(const RequestStore& store) {
  // tenants_by_id() heals out-of-band edits into the typed mirror (the
  // version then reflects the healed table), so reading it first keeps one
  // rebuild from hiding another.
  const auto& by_id = store.tenants_by_id();
  if (tenants_version_ == store.tenants_version()) return tenants_;
  tenants_.Clear();
  for (const auto& [tenant, acct] : by_id) {
    tenants_.PushBack(acct.tenant, acct.vtime, acct.round, acct.Throttled());
  }
  tenants_version_ = store.tenants_version();
  ++tenant_rebuilds_;
  return tenants_;
}

}  // namespace declsched::scheduler::ir::vec
