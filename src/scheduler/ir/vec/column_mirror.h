// ColumnarMirror: incrementally maintained SoA mirrors of the pending and
// tenants relations — LockTableState's epoch/content-version staleness
// contract, applied to columns.
//
// Sync contract (pending): each RequestStore pending mutation bumps the
// store's pending epoch exactly once, the scheduler narrates it through
// exactly one hook immediately after making it, and the requests table's
// content version moves on every edit however invoked. OnAdmitted /
// OnScheduled accept a delta iff the store is exactly one narrated epoch
// ahead AND the table version moved by exactly the narrated row count;
// anything else (missed mutation, out-of-band DML, a fresh instance after
// SwitchProtocol) drops to unsynced and the next RefreshPending() rebuilds
// from the store's typed mirror. Rows are identified by value (id), never
// by storage::RowId — which is what makes the mirror immune to the table's
// auto-vacuum row compaction (Vacuum() remaps RowIds without bumping the
// content version, so a RowId-keyed mirror would silently read remapped
// slots; an id-keyed one cannot).
//
// Dispatch tombstones rows instead of erasing (erasure from column middles
// is O(pending) per row); RefreshPending compacts when tombstones outnumber
// live rows, so maintenance stays O(delta) amortized.
//
// Tenants have no narrated delta hook (the TenantAccountant upserts rows
// between hooks), so that mirror is purely version-keyed: RefreshTenants()
// rebuilds whenever the tenants table's content version moved. Tenant
// counts are orders of magnitude below request counts, so the rebuild is
// cheap; the counter is exposed for tests anyway.
//
// Thread ownership: owned by a protocol instance; hooks and refreshes run
// on the one cycle thread of the scheduler that owns the store.

#ifndef DECLSCHED_SCHEDULER_IR_VEC_COLUMN_MIRROR_H_
#define DECLSCHED_SCHEDULER_IR_VEC_COLUMN_MIRROR_H_

#include <cstdint>

#include "scheduler/ir/vec/column_batch.h"
#include "scheduler/request_store.h"

namespace declsched::scheduler::ir::vec {

class ColumnarMirror {
 public:
  /// The pending columns answering for the store's current pending
  /// relation. O(1) when the hooks kept the mirror synced (plus amortized
  /// tombstone compaction); full rebuild from the typed mirror when not.
  const PendingColumns& RefreshPending(const RequestStore& store);

  /// The tenant columns answering for the store's current tenants relation
  /// (rebuilt iff the table's content version moved since the last call).
  const TenantColumns& RefreshTenants(const RequestStore& store);

  /// Delta: `batch` was just admitted into pending (ids ascending, above
  /// every id this mirror has seen).
  void OnAdmitted(const RequestBatch& batch, const RequestStore& store);

  /// Delta: `batch` just entered history. Dispatched requests tombstone
  /// their own row; an injected finisher marker (id never in pending)
  /// tombstones every live row of its transaction — the narration shape of
  /// DropPendingOfTransaction + InsertHistory, whose pending-epoch bump is
  /// folded into this one hook.
  void OnScheduled(const RequestBatch& batch, const RequestStore& store);

  /// True if the next RefreshPending() can answer without a rebuild.
  bool pending_synced_with(const RequestStore& store) const {
    return synced_epoch_ != kUnsynced &&
           synced_epoch_ == store.pending_epoch() &&
           synced_version_ == store.pending_version();
  }

  int64_t full_rebuilds() const { return full_rebuilds_; }
  int64_t deltas_applied() const { return deltas_applied_; }
  int64_t tenant_rebuilds() const { return tenant_rebuilds_; }
  int64_t compactions() const { return compactions_; }

 private:
  /// Sentinel: below any real store epoch (stores start at 1).
  static constexpr uint64_t kUnsynced = 0;

  void RebuildPending(const RequestStore& store);
  void MaybeCompact();

  PendingColumns pending_;
  TenantColumns tenants_;
  uint64_t synced_epoch_ = kUnsynced;
  /// Requests table content version at the last sync point.
  uint64_t synced_version_ = 0;
  /// Sentinel-initialized: table versions start at 0 and the first refresh
  /// must materialize the (possibly empty) relation.
  uint64_t tenants_version_ = ~uint64_t{0};
  int64_t full_rebuilds_ = 0;
  int64_t deltas_applied_ = 0;
  int64_t tenant_rebuilds_ = 0;
  int64_t compactions_ = 0;
};

}  // namespace declsched::scheduler::ir::vec

#endif  // DECLSCHED_SCHEDULER_IR_VEC_COLUMN_MIRROR_H_
