#include "scheduler/ir/vec/vec_ops.h"

#include <algorithm>

namespace declsched::scheduler::ir::vec {

namespace {

/// Compacts one predicate over the selection without branching on the
/// outcome: the comparison kind is hoisted out of the loop, the keep bit
/// advances the write cursor.
template <typename KeepFn>
int32_t CompactSel(int32_t* sel, int32_t* acct, int32_t n, KeepFn keep) {
  int32_t k = 0;
  if (acct == nullptr) {
    for (int32_t i = 0; i < n; ++i) {
      const int32_t s = sel[i];
      sel[k] = s;
      k += keep(i, s) ? 1 : 0;
    }
  } else {
    for (int32_t i = 0; i < n; ++i) {
      const int32_t s = sel[i];
      sel[k] = s;
      acct[k] = acct[i];
      k += keep(i, s) ? 1 : 0;
    }
  }
  return k;
}

int32_t FilterOnePredicate(const PendingColumns& cols,
                           const FieldPredicate& pred, int32_t* sel,
                           int32_t* acct, int32_t n) {
  if (pred.field == RequestField::kOperation) {
    // Operation predicates only lower as eq/ne (executor.cc's dialect).
    const uint8_t want = static_cast<uint8_t>(pred.op_value);
    const uint8_t* op = cols.op.data();
    if (pred.cmp == CompareKind::kEq) {
      return CompactSel(sel, acct, n,
                        [op, want](int32_t, int32_t s) { return op[s] == want; });
    }
    return CompactSel(sel, acct, n,
                      [op, want](int32_t, int32_t s) { return op[s] != want; });
  }
  const int64_t* col = cols.ColumnFor(pred.field);
  const int64_t v = pred.value;
  switch (pred.cmp) {
    case CompareKind::kEq:
      return CompactSel(sel, acct, n,
                        [col, v](int32_t, int32_t s) { return col[s] == v; });
    case CompareKind::kNe:
      return CompactSel(sel, acct, n,
                        [col, v](int32_t, int32_t s) { return col[s] != v; });
    case CompareKind::kLt:
      return CompactSel(sel, acct, n,
                        [col, v](int32_t, int32_t s) { return col[s] < v; });
    case CompareKind::kLe:
      return CompactSel(sel, acct, n,
                        [col, v](int32_t, int32_t s) { return col[s] <= v; });
    case CompareKind::kGt:
      return CompactSel(sel, acct, n,
                        [col, v](int32_t, int32_t s) { return col[s] > v; });
    case CompareKind::kGe:
      return CompactSel(sel, acct, n,
                        [col, v](int32_t, int32_t s) { return col[s] >= v; });
  }
  return n;
}

}  // namespace

int32_t ScanLive(const PendingColumns& cols, int32_t* sel) {
  const size_t n = cols.size();
  const uint8_t* dead = cols.dead.data();
  int32_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<int32_t>(i);
    k += dead[i] ? 0 : 1;
  }
  return k;
}

int32_t FilterSel(const PendingColumns& cols, const FieldPredicate* preds,
                  size_t num_preds, int32_t* sel, int32_t* acct, int32_t n) {
  for (size_t p = 0; p < num_preds && n > 0; ++p) {
    n = FilterOnePredicate(cols, preds[p], sel, acct, n);
  }
  return n;
}

void BuildPendingConflicts(const PendingColumns& cols, PendingConflicts* out) {
  const size_t n = cols.size();
  for (size_t i = 0; i < n; ++i) {
    if (cols.dead[i]) continue;
    const int64_t object = cols.object[i];
    const int64_t ta = cols.ta[i];
    auto [it, inserted] = out->oldest_any.emplace(object, ta);
    if (!inserted && ta < it->second) it->second = ta;
    if (static_cast<txn::OpType>(cols.op[i]) == txn::OpType::kWrite) {
      auto [wit, winserted] = out->oldest_write.emplace(object, ta);
      if (!winserted && ta < wit->second) wit->second = ta;
    }
  }
}

int32_t LockAntiJoinSel(const PendingColumns& cols, const ConflictRules& rules,
                        const LockTable* locks,
                        const PendingConflicts* conflicts, int32_t* sel,
                        int32_t* acct, int32_t n) {
  const uint8_t* op = cols.op.data();
  const int64_t* object = cols.object.data();
  const int64_t* ta = cols.ta.data();
  const uint8_t write = static_cast<uint8_t>(txn::OpType::kWrite);
  return CompactSel(sel, acct, n, [&](int32_t, int32_t s) {
    const bool is_write = op[s] == write;
    if (locks != nullptr) {
      if ((rules.wlock_blocks_all || (is_write && rules.wlock_blocks_writes)) &&
          LockedByOther(locks->wlocks, object[s], ta[s])) {
        return false;
      }
      if (is_write && rules.rlock_blocks_writes &&
          LockedByOther(locks->rlocks, object[s], ta[s])) {
        return false;
      }
    }
    if (conflicts != nullptr) {
      if (rules.pending_write_blocks_all ||
          (is_write && rules.pending_write_blocks_writes)) {
        auto it = conflicts->oldest_write.find(object[s]);
        if (it != conflicts->oldest_write.end() && it->second < ta[s]) {
          return false;
        }
      }
      if (is_write && rules.pending_any_blocks_writes) {
        auto it = conflicts->oldest_any.find(object[s]);
        if (it != conflicts->oldest_any.end() && it->second < ta[s]) {
          return false;
        }
      }
    }
    return true;
  });
}

int32_t ThrottleAntiJoinSel(const PendingColumns& cols,
                            const TenantColumns& tenants, int32_t* sel,
                            int32_t* acct, int32_t n) {
  const int64_t* tenant = cols.tenant.data();
  // Memoize the last tenant probed: selections run in id order, which
  // clusters same-tenant requests in practice (same as the scalar path).
  int64_t last_tenant = 0;
  bool last_throttled = false;
  bool have_last = false;
  return CompactSel(sel, acct, n, [&](int32_t, int32_t s) {
    const int64_t t = tenant[s];
    if (!have_last || t != last_tenant) {
      const int32_t row = tenants.Find(t);
      last_throttled = row >= 0 && tenants.throttled[row] != 0;
      last_tenant = t;
      have_last = true;
    }
    return !last_throttled;
  });
}

int32_t TenantJoinSel(const PendingColumns& cols, const TenantColumns& tenants,
                      bool left_outer, int32_t* sel, int32_t* acct, int32_t n) {
  const int64_t* tenant = cols.tenant.data();
  int64_t last_tenant = 0;
  int32_t last_row = -1;
  bool have_last = false;
  int32_t k = 0;
  for (int32_t i = 0; i < n; ++i) {
    const int32_t s = sel[i];
    const int64_t t = tenant[s];
    if (!have_last || t != last_tenant) {
      last_row = tenants.Find(t);
      last_tenant = t;
      have_last = true;
    }
    if (last_row >= 0) {
      sel[k] = s;
      acct[k] = last_row;
      ++k;
    } else if (left_outer) {
      // Unknown tenant: keep the row with whatever acct an earlier join
      // attached (none = -1) — the scalar RowRef's untouched-acct behavior.
      sel[k] = s;
      acct[k] = acct[i];
      ++k;
    }
  }
  return k;
}

void RankSel(const PendingColumns& cols, const TenantColumns& tenants,
             const PlanNode& node, int32_t* sel, int32_t* acct, int32_t n,
             Arena* arena) {
  if (n <= 1) return;
  const size_t num_keys = node.keys.size();
  // Gather every key into dense per-position arrays so the comparator —
  // which std::sort calls O(n log n) times — reads sequential scratch
  // instead of re-deriving values through column indirection each call.
  int64_t** keys = arena->AllocArray<int64_t*>(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    keys[k] = arena->AllocArray<int64_t>(static_cast<size_t>(n));
    const RankSource source = node.keys[k].source;
    for (int32_t i = 0; i < n; ++i) {
      const int32_t s = sel[i];
      const int32_t a = acct != nullptr ? acct[i] : -1;
      int64_t v = 0;
      switch (source) {
        case RankSource::kId: v = cols.id[s]; break;
        case RankSource::kPriority: v = cols.priority[s]; break;
        case RankSource::kDeadline: v = cols.deadline[s]; break;
        case RankSource::kDeadlineIsZero: v = cols.deadline[s] == 0 ? 1 : 0; break;
        case RankSource::kTenant: v = cols.tenant[s]; break;
        case RankSource::kTenantVtime: v = a >= 0 ? tenants.vtime[a] : 0; break;
        case RankSource::kTenantRound: v = a >= 0 ? tenants.round[a] : 0; break;
      }
      keys[k][i] = v;
    }
  }
  const int64_t* id = cols.id.data();
  int32_t* perm = arena->AllocArray<int32_t>(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) perm[i] = i;
  const bool missing_last = node.missing_acct_last;
  std::sort(perm, perm + n, [&](int32_t a, int32_t b) {
    const bool has_a = acct != nullptr && acct[a] >= 0;
    const bool has_b = acct != nullptr && acct[b] >= 0;
    if (missing_last && has_a != has_b) return !has_b;
    if (!missing_last || has_a) {
      for (size_t k = 0; k < num_keys; ++k) {
        const int64_t va = keys[k][a];
        const int64_t vb = keys[k][b];
        if (va != vb) return va < vb;
      }
    }
    return id[sel[a]] < id[sel[b]];
  });
  // Apply the permutation through arena scratch (sel and acct move in
  // lockstep so a later node still sees aligned arrays).
  int32_t* tmp = arena->AllocArray<int32_t>(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) tmp[i] = sel[perm[i]];
  std::copy(tmp, tmp + n, sel);
  if (acct != nullptr) {
    for (int32_t i = 0; i < n; ++i) tmp[i] = acct[perm[i]];
    std::copy(tmp, tmp + n, acct);
  }
}

}  // namespace declsched::scheduler::ir::vec
