// Batch operators of the vectorized executor — one kernel per hot pipeline
// stage, all working on selection vectors over PendingColumns.
//
// A selection vector is an int32 index array into the columns (live rows
// only, pipeline order); every qualifying kernel compacts it in place with
// the branch-free `sel[k] = s; k += keep` idiom, so the inner loops carry
// no unpredictable branches. `acct` is the optional parallel array of
// tenant-row indices a kTenantJoin attaches (-1 = no matching tenants row,
// mirroring the scalar executor's null acct pointer); kernels that compact
// the selection compact it in lockstep when present.
//
// Semantics are bit-for-bit the scalar PlanExecutor's — the differential
// suite holds the two to dispatch-order-exact equality — so every predicate
// evaluation, conflict rule, null-acct convention, and tie-break below
// mirrors executor.cc precisely.

#ifndef DECLSCHED_SCHEDULER_IR_VEC_VEC_OPS_H_
#define DECLSCHED_SCHEDULER_IR_VEC_VEC_OPS_H_

#include <cstdint>

#include "scheduler/ir/protocol_plan.h"
#include "scheduler/ir/vec/arena.h"
#include "scheduler/ir/vec/column_batch.h"
#include "scheduler/lock_table.h"

namespace declsched::scheduler::ir::vec {

/// Fills `sel` with every live row index, ascending (the id-ordered scan).
/// `sel` must hold cols.size() entries; returns the live count.
int32_t ScanLive(const PendingColumns& cols, int32_t* sel);

/// One ANDed predicate conjunction over the selection; compacts `sel` (and
/// `acct` when non-null) and returns the new count.
int32_t FilterSel(const PendingColumns& cols, const FieldPredicate* preds,
                  size_t num_preds, int32_t* sel, int32_t* acct, int32_t n);

/// Pending-pending conflict summary over every live row — the full pending
/// universe, exactly what the scalar executor derives from the store's
/// typed mirror (termination markers included; their kNoObject entries only
/// ever match other markers).
void BuildPendingConflicts(const PendingColumns& cols, PendingConflicts* out);

/// Anti-join against the blocked-request relation implied by `rules`.
/// `locks`/`conflicts` may be null when no rule consults that side.
int32_t LockAntiJoinSel(const PendingColumns& cols, const ConflictRules& rules,
                        const LockTable* locks,
                        const PendingConflicts* conflicts, int32_t* sel,
                        int32_t* acct, int32_t n);

/// Anti-join against the throttled-tenant set (binary-search probe with a
/// last-tenant memo: id order clusters same-tenant requests).
int32_t ThrottleAntiJoinSel(const PendingColumns& cols,
                            const TenantColumns& tenants, int32_t* sel,
                            int32_t* acct, int32_t n);

/// Join with the tenants relation: fills `acct` with the tenant-row index
/// of each selected request. Inner join drops requests of unknown tenants;
/// left-outer keeps them with their prior acct (none = -1), matching the
/// scalar executor row-ref semantics.
int32_t TenantJoinSel(const PendingColumns& cols, const TenantColumns& tenants,
                      bool left_outer, int32_t* sel, int32_t* acct, int32_t n);

/// Sorts the selection by the rank node's keys (ties broken by ascending
/// id; missing-acct rows last when the node says so). Gathers key columns
/// into `arena` scratch first so the comparator touches dense arrays.
/// Permutes `acct` in lockstep when non-null.
void RankSel(const PendingColumns& cols, const TenantColumns& tenants,
             const PlanNode& node, int32_t* sel, int32_t* acct, int32_t n,
             Arena* arena);

}  // namespace declsched::scheduler::ir::vec

#endif  // DECLSCHED_SCHEDULER_IR_VEC_VEC_OPS_H_
