#include "scheduler/ir/vec/vec_executor.h"

namespace declsched::scheduler::ir::vec {

Result<RequestBatch> VecPlanExecutor::Execute(const ProtocolPlan& plan,
                                              const ScheduleContext& context) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("compiled protocol plan has no root");
  }
  RequestStore* store = context.store;
  arena_.Reset();
  chain_.clear();
  for (const PlanNode* node = plan.root.get(); node != nullptr;
       node = node->input.get()) {
    chain_.push_back(node);
  }
  // The mirror refresh is unconditional: even a plan without a scan (which
  // executes over an empty stream, like the scalar executor's empty row
  // vector) may carry a lock anti-join whose pending-conflict universe is
  // the full mirror.
  const PendingColumns& cols = mirror_.RefreshPending(*store);
  const TenantColumns* tenants = nullptr;

  const size_t cap = cols.size();
  int32_t* sel = arena_.AllocArray<int32_t>(cap);
  int32_t* acct = arena_.AllocArray<int32_t>(cap);
  int32_t n = 0;  // a pipeline with no kScanPending streams zero rows

  // One-shot per cycle: the conflict universe is the same full pending set
  // for every anti-join in the pipeline (and for repeat executions it is
  // rebuilt, matching the scalar executor's per-node construction).
  PendingConflicts conflicts{RequestBatch{}};
  bool have_conflicts = false;

  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
    const PlanNode& node = **it;
    switch (node.kind) {
      case PlanNode::Kind::kScanPending: {
        n = ScanLive(cols, sel);
        for (int32_t i = 0; i < n; ++i) acct[i] = -1;
        break;
      }
      case PlanNode::Kind::kFilter: {
        n = FilterSel(cols, node.predicates.data(), node.predicates.size(),
                      sel, acct, n);
        break;
      }
      case PlanNode::Kind::kLockAntiJoin: {
        const LockTable* locks = node.conflicts.NeedsLockTable()
                                     ? &lock_state_.Refresh(*store)
                                     : nullptr;
        const PendingConflicts* pc = nullptr;
        if (node.conflicts.NeedsPendingConflicts()) {
          if (!have_conflicts) {
            BuildPendingConflicts(cols, &conflicts);
            have_conflicts = true;
          }
          pc = &conflicts;
        }
        n = LockAntiJoinSel(cols, node.conflicts, locks, pc, sel, acct, n);
        break;
      }
      case PlanNode::Kind::kThrottleAntiJoin: {
        if (tenants == nullptr) tenants = &mirror_.RefreshTenants(*store);
        n = ThrottleAntiJoinSel(cols, *tenants, sel, acct, n);
        break;
      }
      case PlanNode::Kind::kTenantJoin: {
        if (tenants == nullptr) tenants = &mirror_.RefreshTenants(*store);
        n = TenantJoinSel(cols, *tenants, node.left_outer, sel, acct, n);
        break;
      }
      case PlanNode::Kind::kRank: {
        if (tenants == nullptr) tenants = &mirror_.RefreshTenants(*store);
        RankSel(cols, *tenants, node, sel, acct, n, &arena_);
        break;
      }
      case PlanNode::Kind::kLimit: {
        if (node.limit >= 0 && n > node.limit) {
          n = static_cast<int32_t>(node.limit);
        }
        break;
      }
    }
  }

  RequestBatch batch;
  batch.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    batch.push_back(cols.MaterializeRow(static_cast<size_t>(sel[i])));
  }
  return batch;
}

}  // namespace declsched::scheduler::ir::vec
