// Struct-of-arrays mirrors of the scheduler relations — the data layout the
// vectorized executor runs over.
//
// PendingColumns mirrors the pending `requests` relation as one array per
// column, sorted ascending by id, with a tombstone bitmap instead of eager
// erasure (dispatch tombstones rows; compaction is amortized by the owning
// ColumnarMirror). Batch operators then touch only the columns a node
// reads — a predicate on `priority` streams one contiguous array instead of
// striding over whole Request structs — and identify rows by index through
// selection vectors, so a pipeline never copies a request until the final
// output materialization.
//
// TenantColumns mirrors the `tenants` accounting relation: the two rank
// keys (vtime, round) plus the pre-evaluated Throttled() bit, sorted by
// tenant id for binary-search joins.

#ifndef DECLSCHED_SCHEDULER_IR_VEC_COLUMN_BATCH_H_
#define DECLSCHED_SCHEDULER_IR_VEC_COLUMN_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "scheduler/ir/protocol_plan.h"
#include "scheduler/request.h"

namespace declsched::scheduler::ir::vec {

/// Columnar image of the pending relation. All value columns are int64 so
/// kernels can address any field through one column pointer; `op` stays a
/// byte (it is only ever compared for equality, and the lock anti-join
/// reads it per row).
struct PendingColumns {
  std::vector<int64_t> id;
  std::vector<int64_t> ta;
  std::vector<int64_t> intrata;
  std::vector<int64_t> object;
  std::vector<int64_t> priority;
  std::vector<int64_t> deadline;  // micros
  std::vector<int64_t> arrival;   // micros
  std::vector<int64_t> client;
  std::vector<int64_t> tenant;
  std::vector<uint8_t> op;    // static_cast<uint8_t>(txn::OpType)
  std::vector<uint8_t> dead;  // 1 = tombstoned (dispatched/dropped)
  int64_t dead_count = 0;

  size_t size() const { return id.size(); }
  int64_t live_count() const {
    return static_cast<int64_t>(size()) - dead_count;
  }

  void Clear() {
    id.clear();
    ta.clear();
    intrata.clear();
    object.clear();
    priority.clear();
    deadline.clear();
    arrival.clear();
    client.clear();
    tenant.clear();
    op.clear();
    dead.clear();
    dead_count = 0;
  }

  /// Appends `r`. Caller keeps the ascending-id invariant.
  void PushBack(const Request& r) {
    id.push_back(r.id);
    ta.push_back(r.ta);
    intrata.push_back(r.intrata);
    object.push_back(r.object);
    priority.push_back(r.priority);
    deadline.push_back(r.deadline.micros());
    arrival.push_back(r.arrival.micros());
    client.push_back(r.client);
    tenant.push_back(r.tenant);
    op.push_back(static_cast<uint8_t>(r.op));
    dead.push_back(0);
  }

  /// Rebuilds a full Request from row `i` — the one copy a pipeline makes,
  /// at output time.
  Request MaterializeRow(size_t i) const {
    Request r;
    r.id = id[i];
    r.ta = ta[i];
    r.intrata = intrata[i];
    r.op = static_cast<txn::OpType>(op[i]);
    r.object = object[i];
    r.priority = static_cast<int>(priority[i]);
    r.deadline = SimTime::FromMicros(deadline[i]);
    r.arrival = SimTime::FromMicros(arrival[i]);
    r.client = static_cast<int>(client[i]);
    r.tenant = static_cast<int>(tenant[i]);
    return r;
  }

  /// Index of the live row with `request_id`, -1 if absent or tombstoned.
  /// Binary search: the id column is sorted (tombstones included).
  int64_t FindLive(int64_t request_id) const {
    auto it = std::lower_bound(id.begin(), id.end(), request_id);
    if (it == id.end() || *it != request_id) return -1;
    const size_t i = static_cast<size_t>(it - id.begin());
    return dead[i] ? -1 : static_cast<int64_t>(i);
  }

  /// The column array backing `field`; null for kOperation (byte column).
  const int64_t* ColumnFor(RequestField field) const {
    switch (field) {
      case RequestField::kId: return id.data();
      case RequestField::kTa: return ta.data();
      case RequestField::kIntrata: return intrata.data();
      case RequestField::kObject: return object.data();
      case RequestField::kPriority: return priority.data();
      case RequestField::kDeadline: return deadline.data();
      case RequestField::kArrival: return arrival.data();
      case RequestField::kClient: return client.data();
      case RequestField::kTenant: return tenant.data();
      case RequestField::kOperation: return nullptr;
    }
    return nullptr;
  }
};

/// Columnar image of the tenants accounting relation, sorted by tenant id.
/// `throttled` is TenantAcct::Throttled() evaluated once per rebuild, so
/// the anti-join probes one byte instead of four accounting fields.
struct TenantColumns {
  std::vector<int64_t> tenant;
  std::vector<int64_t> vtime;
  std::vector<int64_t> round;
  std::vector<uint8_t> throttled;

  size_t size() const { return tenant.size(); }

  void Clear() {
    tenant.clear();
    vtime.clear();
    round.clear();
    throttled.clear();
  }

  /// Appends a row. Caller keeps the ascending-tenant invariant.
  void PushBack(int64_t t, int64_t vt, int64_t rd, bool thr) {
    tenant.push_back(t);
    vtime.push_back(vt);
    round.push_back(rd);
    throttled.push_back(thr ? 1 : 0);
  }

  /// Index of tenant `t`, -1 if the relation has no row for it.
  int32_t Find(int64_t t) const {
    auto it = std::lower_bound(tenant.begin(), tenant.end(), t);
    if (it == tenant.end() || *it != t) return -1;
    return static_cast<int32_t>(it - tenant.begin());
  }
};

}  // namespace declsched::scheduler::ir::vec

#endif  // DECLSCHED_SCHEDULER_IR_VEC_COLUMN_BATCH_H_
