// VecPlanExecutor: runs a compiled ProtocolPlan over columnar mirrors with
// batch operators — the vectorized twin of the scalar PlanExecutor.
//
// One executor is owned by one compiled protocol instance and inherits its
// threading contract (the owning scheduler's cycle thread). It carries the
// protocol's incremental state twice over: the LockTableState the scalar
// executor also keeps, plus the ColumnarMirror holding the SoA image of
// pending/tenants — both riding the scheduler's delta hooks, both answering
// unnarrated store edits with a staleness rebuild, never a stale result.
//
// A cycle executes the plan as selection-vector kernels over the columns:
// one scan fills the selection, each qualifying node compacts it branch-
// free, rank sorts a permutation over gathered key arrays, and the only
// per-request copy is the final output materialization. All transient
// arrays come from a per-cycle bump arena that retains its high-water block,
// so a warmed executor allocates nothing in steady state.

#ifndef DECLSCHED_SCHEDULER_IR_VEC_VEC_EXECUTOR_H_
#define DECLSCHED_SCHEDULER_IR_VEC_VEC_EXECUTOR_H_

#include "common/result.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/ir/vec/arena.h"
#include "scheduler/ir/vec/column_mirror.h"
#include "scheduler/ir/vec/vec_ops.h"
#include "scheduler/lock_table.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler::ir::vec {

class VecPlanExecutor {
 public:
  /// Evaluates `plan` against the context's store. Output order: the rank
  /// node's order if the plan has one, ascending id otherwise — identical
  /// to the scalar executor on every plan and store state.
  Result<RequestBatch> Execute(const ProtocolPlan& plan,
                               const ScheduleContext& context);

  /// The incremental lock state (delta forwarding; O(delta) assertions).
  LockTableState& lock_state() { return lock_state_; }
  const LockTableState& lock_state() const { return lock_state_; }

  /// The columnar mirror (delta forwarding; staleness/compaction
  /// assertions).
  ColumnarMirror& mirror() { return mirror_; }
  const ColumnarMirror& mirror() const { return mirror_; }

  /// Arena bytes the last Execute() used (steady-state allocation tests).
  size_t last_arena_bytes() const { return arena_.bytes_used(); }

 private:
  ColumnarMirror mirror_;
  LockTableState lock_state_;
  Arena arena_;
  /// Flatten scratch: the plan's nodes leaf-to-root. Member so repeat
  /// cycles reuse the capacity.
  std::vector<const PlanNode*> chain_;
};

}  // namespace declsched::scheduler::ir::vec

#endif  // DECLSCHED_SCHEDULER_IR_VEC_VEC_EXECUTOR_H_
