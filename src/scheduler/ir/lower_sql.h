// LowerSqlPlan: SQL front-end of the protocol IR.
//
// Takes the sql::Planner's physical plan for a protocol SELECT and lowers
// it into a ProtocolPlan by recognizing the relational idioms the protocol
// dialect is built from (the paper's Listing 1 family):
//
//   * the lock-set CTEs over `history` (write locks via the finished-TA
//     anti-join, read locks via the decorrelated NOT EXISTS with the
//     wrote-suppression rule);
//   * the blocked-operation branches (requests x lock set joined on object
//     with a ta inequality; requests x requests pending-pending ordering
//     conflicts), unioned and EXCEPTed against the pending relation;
//   * the final join of `requests` back onto the qualified set, optional
//     `tenants` join for fairness keys, the throttled-tenant NOT IN
//     anti-join, ORDER BY over request/tenant columns, LIMIT, and plain
//     WHERE conjuncts over request columns.
//
// Recognition is structural and name-driven (operator shapes plus the
// bound column names the planner carries), not text matching: any SELECT
// the planner lays out in these shapes lowers, wherever it came from.
// Everything else returns Unsupported and the SQL backend falls back to
// the interpreted engine — compilation is an optimization, never a
// semantics change.

#ifndef DECLSCHED_SCHEDULER_IR_LOWER_SQL_H_
#define DECLSCHED_SCHEDULER_IR_LOWER_SQL_H_

#include "common/result.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/protocol.h"
#include "sql/plan.h"

namespace declsched::scheduler::ir {

/// Lowers a planned protocol SELECT. `ordered` comes from the spec: when
/// false the rank nodes the query's ORDER BY produced are advisory only
/// (the protocol dispatches by id) and the optimizer may drop them.
Result<ProtocolPlan> LowerSqlPlan(const sql::PreparedPlan& plan,
                                  const storage::Catalog& catalog,
                                  bool ordered);

/// Parses, plans, lowers and optimizes `spec.text` against `catalog`.
/// The one-call form the SQL backend and ExplainProtocol() use.
Result<ProtocolPlan> LowerSqlSpec(const ProtocolSpec& spec,
                                  const storage::Catalog& catalog);

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_LOWER_SQL_H_
