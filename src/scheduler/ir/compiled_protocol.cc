#include "scheduler/ir/compiled_protocol.h"

#include <utility>

#include "scheduler/backends/native_protocol.h"

namespace declsched::scheduler::ir {

CompiledProtocol::CompiledProtocol(ProtocolSpec spec, RequestStore* store,
                                   ProtocolPlan plan)
    : Protocol(std::move(spec)),
      store_(store),
      plan_(std::move(plan)),
      needs_lock_table_(plan_.NeedsLockTable()),
      may_reorder_(plan_.MayReorder()),
      use_vec_(spec_.ir_executor != "scalar") {}

Result<RequestBatch> CompiledProtocol::Schedule(
    const ScheduleContext& context) const {
  // The plan (and the executor's incremental state) is bound to the store
  // it was compiled against; answering for another store would mix data.
  if (context.store != store_) {
    return Status::InvalidArgument(
        "protocol " + spec_.name +
        ": scheduled against a different store than it was compiled for");
  }
  RequestBatch batch;
  if (use_vec_) {
    DS_ASSIGN_OR_RETURN(batch, vec_.Execute(plan_, context));
  } else {
    DS_ASSIGN_OR_RETURN(batch, scalar_.Execute(plan_, context));
  }
  // Unordered protocols dispatch by ascending id whatever the text's
  // internal ordering was — same contract as the interpreted backends.
  if (!spec_.ordered && may_reorder_) RankById(&batch);
  return batch;
}

void CompiledProtocol::OnAdmitted(const RequestBatch& batch) {
  if (use_vec_) vec_.mirror().OnAdmitted(batch, *store_);
}

void CompiledProtocol::OnScheduled(const RequestBatch& batch) {
  // The columnar mirror tracks every pending mutation; the lock state only
  // matters for plans that consult history locks.
  if (use_vec_) vec_.mirror().OnScheduled(batch, *store_);
  if (needs_lock_table_) {
    if (use_vec_) {
      vec_.lock_state().ApplyHistoryAppend(batch, *store_);
    } else {
      scalar_.lock_state().ApplyHistoryAppend(batch, *store_);
    }
  }
}

void CompiledProtocol::OnFinished(const std::vector<txn::TxnId>& txns) {
  if (needs_lock_table_) {
    if (use_vec_) {
      vec_.lock_state().ApplyFinished(txns, *store_);
    } else {
      scalar_.lock_state().ApplyFinished(txns, *store_);
    }
  }
}

}  // namespace declsched::scheduler::ir
