#include "scheduler/ir/compiled_protocol.h"

#include <utility>

#include "scheduler/backends/native_protocol.h"

namespace declsched::scheduler::ir {

CompiledProtocol::CompiledProtocol(ProtocolSpec spec, RequestStore* store,
                                   ProtocolPlan plan)
    : Protocol(std::move(spec)),
      store_(store),
      plan_(std::move(plan)),
      needs_lock_table_(plan_.NeedsLockTable()),
      may_reorder_(plan_.MayReorder()) {}

Result<RequestBatch> CompiledProtocol::Schedule(
    const ScheduleContext& context) const {
  // The plan (and the executor's incremental state) is bound to the store
  // it was compiled against; answering for another store would mix data.
  if (context.store != store_) {
    return Status::InvalidArgument(
        "protocol " + spec_.name +
        ": scheduled against a different store than it was compiled for");
  }
  DS_ASSIGN_OR_RETURN(RequestBatch batch, executor_.Execute(plan_, context));
  // Unordered protocols dispatch by ascending id whatever the text's
  // internal ordering was — same contract as the interpreted backends.
  if (!spec_.ordered && may_reorder_) RankById(&batch);
  return batch;
}

void CompiledProtocol::OnScheduled(const RequestBatch& batch) {
  if (needs_lock_table_) {
    executor_.lock_state().ApplyHistoryAppend(batch, *store_);
  }
}

void CompiledProtocol::OnFinished(const std::vector<txn::TxnId>& txns) {
  if (needs_lock_table_) {
    executor_.lock_state().ApplyFinished(txns, *store_);
  }
}

}  // namespace declsched::scheduler::ir
