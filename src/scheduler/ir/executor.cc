#include "scheduler/ir/executor.h"

#include <algorithm>
#include <tuple>

namespace declsched::scheduler::ir {

namespace {

bool EvalCompare(CompareKind cmp, int64_t lhs, int64_t rhs) {
  switch (cmp) {
    case CompareKind::kEq: return lhs == rhs;
    case CompareKind::kNe: return lhs != rhs;
    case CompareKind::kLt: return lhs < rhs;
    case CompareKind::kLe: return lhs <= rhs;
    case CompareKind::kGt: return lhs > rhs;
    case CompareKind::kGe: return lhs >= rhs;
  }
  return false;
}

bool EvalPredicate(const FieldPredicate& pred, const Request& r) {
  if (pred.field == RequestField::kOperation) {
    const bool equal = r.op == pred.op_value;
    return pred.cmp == CompareKind::kEq ? equal : !equal;
  }
  int64_t lhs = 0;
  switch (pred.field) {
    case RequestField::kId: lhs = r.id; break;
    case RequestField::kTa: lhs = r.ta; break;
    case RequestField::kIntrata: lhs = r.intrata; break;
    case RequestField::kObject: lhs = r.object; break;
    case RequestField::kPriority: lhs = r.priority; break;
    case RequestField::kDeadline: lhs = r.deadline.micros(); break;
    case RequestField::kArrival: lhs = r.arrival.micros(); break;
    case RequestField::kClient: lhs = r.client; break;
    case RequestField::kTenant: lhs = r.tenant; break;
    case RequestField::kOperation: break;  // handled above
  }
  return EvalCompare(pred.cmp, lhs, pred.value);
}

/// True if `r` is blocked under `rules` given the history locks and the
/// pending-pending conflict summary. The generalization of FilterSs2pl /
/// FilterReadCommitted to any rule combination the lowerings produce.
bool Blocked(const ConflictRules& rules, const LockTable& locks,
             const PendingConflicts& conflicts, const Request& r) {
  const bool is_write = r.op == txn::OpType::kWrite;
  if ((rules.wlock_blocks_all || (is_write && rules.wlock_blocks_writes)) &&
      LockedByOther(locks.wlocks, r.object, r.ta)) {
    return true;
  }
  if (is_write && rules.rlock_blocks_writes &&
      LockedByOther(locks.rlocks, r.object, r.ta)) {
    return true;
  }
  if ((rules.pending_write_blocks_all ||
       (is_write && rules.pending_write_blocks_writes)) &&
      conflicts.OlderWriteExists(r)) {
    return true;
  }
  if (is_write && rules.pending_any_blocks_writes &&
      conflicts.OlderRequestExists(r)) {
    return true;
  }
  return false;
}

int64_t RankValue(RankSource source, const Request& r, const TenantAcct* acct) {
  switch (source) {
    case RankSource::kId: return r.id;
    case RankSource::kPriority: return r.priority;
    case RankSource::kDeadline: return r.deadline.micros();
    case RankSource::kDeadlineIsZero: return r.deadline == SimTime() ? 1 : 0;
    case RankSource::kTenant: return r.tenant;
    case RankSource::kTenantVtime: return acct != nullptr ? acct->vtime : 0;
    case RankSource::kTenantRound: return acct != nullptr ? acct->round : 0;
  }
  return 0;
}

}  // namespace

Status PlanExecutor::Apply(const PlanNode& node, const ScheduleContext& context,
                           std::vector<RowRef>* rows) {
  if (node.input != nullptr) {
    DS_RETURN_NOT_OK(Apply(*node.input, context, rows));
  }
  RequestStore* store = context.store;
  switch (node.kind) {
    case PlanNode::Kind::kScanPending: {
      const auto& mirror = store->pending_by_id();
      rows->clear();
      rows->reserve(mirror.size());
      for (const auto& [id, request] : mirror) {
        rows->push_back(RowRef{&request, nullptr});
      }
      return Status::OK();
    }
    case PlanNode::Kind::kFilter: {
      auto out = rows->begin();
      for (const RowRef& row : *rows) {
        bool keep = true;
        for (const FieldPredicate& pred : node.predicates) {
          if (!EvalPredicate(pred, *row.req)) {
            keep = false;
            break;
          }
        }
        if (keep) *out++ = row;
      }
      rows->erase(out, rows->end());
      return Status::OK();
    }
    case PlanNode::Kind::kLockAntiJoin: {
      // History locks from the incremental state (O(1) when the hooks kept
      // it synced, rebuild otherwise); pending-pending conflicts always
      // against the full pending universe, as the declarative texts state.
      // Either side is skipped entirely when no rule consults it.
      static const LockTable kNoLocks;
      static const PendingConflicts kNoConflicts{RequestBatch{}};
      const LockTable& locks = node.conflicts.NeedsLockTable()
                                   ? lock_state_.Refresh(*store)
                                   : kNoLocks;
      const PendingConflicts conflicts =
          node.conflicts.NeedsPendingConflicts()
              ? PendingConflicts(store->pending_by_id())
              : kNoConflicts;
      auto out = rows->begin();
      for (const RowRef& row : *rows) {
        if (!Blocked(node.conflicts, locks, conflicts, *row.req)) *out++ = row;
      }
      rows->erase(out, rows->end());
      return Status::OK();
    }
    case PlanNode::Kind::kThrottleAntiJoin: {
      const auto& tenants = store->tenants_by_id();
      // Memoize the last tenant looked up: batches run in id order, which
      // clusters same-tenant requests in practice.
      int64_t last_tenant = 0;
      bool last_throttled = false;
      bool have_last = false;
      auto out = rows->begin();
      for (const RowRef& row : *rows) {
        const int64_t tenant = row.req->tenant;
        if (!have_last || tenant != last_tenant) {
          auto it = tenants.find(tenant);
          last_throttled = it != tenants.end() && it->second.Throttled();
          last_tenant = tenant;
          have_last = true;
        }
        if (!last_throttled) *out++ = row;
      }
      rows->erase(out, rows->end());
      return Status::OK();
    }
    case PlanNode::Kind::kTenantJoin: {
      const auto& tenants = store->tenants_by_id();
      auto out = rows->begin();
      for (RowRef row : *rows) {
        auto it = tenants.find(row.req->tenant);
        if (it != tenants.end()) {
          row.acct = &it->second;
        } else if (!node.left_outer) {
          continue;  // inner join: unknown tenant drops the request
        }
        *out++ = row;
      }
      rows->erase(out, rows->end());
      return Status::OK();
    }
    case PlanNode::Kind::kRank: {
      std::sort(rows->begin(), rows->end(),
                [&node](const RowRef& a, const RowRef& b) {
                  if (node.missing_acct_last &&
                      (a.acct == nullptr) != (b.acct == nullptr)) {
                    return b.acct == nullptr;
                  }
                  if (!node.missing_acct_last || a.acct != nullptr) {
                    for (const RankKey& key : node.keys) {
                      const int64_t va = RankValue(key.source, *a.req, a.acct);
                      const int64_t vb = RankValue(key.source, *b.req, b.acct);
                      if (va != vb) return va < vb;
                    }
                  }
                  return a.req->id < b.req->id;
                });
      return Status::OK();
    }
    case PlanNode::Kind::kLimit: {
      if (node.limit >= 0 &&
          rows->size() > static_cast<size_t>(node.limit)) {
        rows->resize(static_cast<size_t>(node.limit));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown plan node kind");
}

Result<RequestBatch> PlanExecutor::Execute(const ProtocolPlan& plan,
                                           const ScheduleContext& context) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("compiled protocol plan has no root");
  }
  std::vector<RowRef> rows;
  DS_RETURN_NOT_OK(Apply(*plan.root, context, &rows));
  RequestBatch batch;
  batch.reserve(rows.size());
  for (const RowRef& row : rows) batch.push_back(*row.req);
  return batch;
}

}  // namespace declsched::scheduler::ir
