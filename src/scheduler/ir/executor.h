// PlanExecutor: runs a compiled ProtocolPlan over the store's typed state.
//
// One executor is owned by one compiled protocol instance and inherits its
// threading contract (the owning scheduler's cycle thread). It carries the
// protocol's incremental LockTableState: the owning protocol forwards the
// scheduler's delta hooks here, so a cycle's lock analysis costs O(delta)
// exactly like the native backend — and the same epoch/content-version
// staleness handshake answers unnarrated store edits with a from-scratch
// rebuild, never a stale result.
//
// Execution walks the pipeline over a stream of row refs (pointer to the
// mirror's Request plus an optional pointer to the joined TenantAcct):
// no Value decode, no row materialization until the final output copy.

#ifndef DECLSCHED_SCHEDULER_IR_EXECUTOR_H_
#define DECLSCHED_SCHEDULER_IR_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/lock_table.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler::ir {

class PlanExecutor {
 public:
  /// Evaluates `plan` against the context's store. Output order: the rank
  /// node's order if the plan has one, ascending id otherwise.
  Result<RequestBatch> Execute(const ProtocolPlan& plan,
                               const ScheduleContext& context);

  /// The incremental lock state (for delta forwarding and for tests
  /// asserting the O(delta) claim via its rebuild counters).
  LockTableState& lock_state() { return lock_state_; }
  const LockTableState& lock_state() const { return lock_state_; }

 private:
  /// A request flowing through the pipeline; `acct` is attached by a
  /// kTenantJoin node (null before one, and after a left-outer join with
  /// no matching tenants row).
  struct RowRef {
    const Request* req = nullptr;
    const TenantAcct* acct = nullptr;
  };

  Status Apply(const PlanNode& node, const ScheduleContext& context,
               std::vector<RowRef>* rows);

  LockTableState lock_state_;
};

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_EXECUTOR_H_
