#include "scheduler/ir/lower_sql.h"

#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "scheduler/ir/optimize.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace declsched::scheduler::ir {

namespace {

using sql::BoundExpr;
using sql::BoundKind;
using sql::OutSchema;
using SqlNode = sql::PlanNode;

Status Unsupported(const std::string& what) {
  return Status::Unsupported("sql lowering: " + what);
}

/// The base relations a protocol SELECT may scan.
struct Tables {
  const storage::Table* requests = nullptr;
  const storage::Table* history = nullptr;
  const storage::Table* tenants = nullptr;
};

bool NameIs(const OutSchema& schema, int col, const char* name) {
  return col >= 0 && col < static_cast<int>(schema.size()) &&
         EqualsIgnoreCase(schema[static_cast<size_t>(col)].name, name);
}

std::string LowerName(const OutSchema& schema, int col) {
  if (col < 0 || col >= static_cast<int>(schema.size())) return "";
  return ToLower(schema[static_cast<size_t>(col)].name);
}

// --- expression matchers ------------------------------------------------

void FlattenBin(const BoundExpr* e, sql::BinOp op,
                std::vector<const BoundExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == BoundKind::kBinary && e->bin_op == op) {
    FlattenBin(e->children[0].get(), op, out);
    FlattenBin(e->children[1].get(), op, out);
    return;
  }
  out->push_back(e);
}

std::vector<const BoundExpr*> Conjuncts(const BoundExpr* e) {
  std::vector<const BoundExpr*> out;
  FlattenBin(e, sql::BinOp::kAnd, &out);
  return out;
}

std::vector<const BoundExpr*> Disjuncts(const BoundExpr* e) {
  std::vector<const BoundExpr*> out;
  FlattenBin(e, sql::BinOp::kOr, &out);
  return out;
}

bool IsColRefAtDepth(const BoundExpr& e, int depth, int* col) {
  if (e.kind != BoundKind::kColRef || e.depth != depth) return false;
  *col = e.col;
  return true;
}

bool IsColRef(const BoundExpr& e, int* col) { return IsColRefAtDepth(e, 0, col); }

bool IsStringConst(const BoundExpr& e, std::string* s) {
  if (e.kind != BoundKind::kConst ||
      e.value.type() != storage::ValueType::kString) {
    return false;
  }
  *s = e.value.AsString();
  return true;
}

bool IsIntConst(const BoundExpr& e, int64_t* v) {
  if (e.kind != BoundKind::kConst ||
      e.value.type() != storage::ValueType::kInt64) {
    return false;
  }
  *v = e.value.AsInt64();
  return true;
}

sql::BinOp FlipCompare(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kLt: return sql::BinOp::kGt;
    case sql::BinOp::kLe: return sql::BinOp::kGe;
    case sql::BinOp::kGt: return sql::BinOp::kLt;
    case sql::BinOp::kGe: return sql::BinOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool IsCompareOp(sql::BinOp op) {
  return op == sql::BinOp::kEq || op == sql::BinOp::kNe ||
         op == sql::BinOp::kLt || op == sql::BinOp::kLe ||
         op == sql::BinOp::kGt || op == sql::BinOp::kGe;
}

/// Matches `<col> <op> <const>` (either operand order; op normalized to the
/// column-on-the-left reading).
struct ColConstCompare {
  int col = -1;
  sql::BinOp op = sql::BinOp::kEq;
  storage::Value value;
};

bool MatchColConst(const BoundExpr& e, ColConstCompare* out) {
  if (e.kind != BoundKind::kBinary || !IsCompareOp(e.bin_op)) return false;
  const BoundExpr& lhs = *e.children[0];
  const BoundExpr& rhs = *e.children[1];
  if (lhs.kind == BoundKind::kColRef && lhs.depth == 0 &&
      rhs.kind == BoundKind::kConst) {
    out->col = lhs.col;
    out->op = e.bin_op;
    out->value = rhs.value;
    return true;
  }
  if (rhs.kind == BoundKind::kColRef && rhs.depth == 0 &&
      lhs.kind == BoundKind::kConst) {
    out->col = rhs.col;
    out->op = FlipCompare(e.bin_op);
    out->value = lhs.value;
    return true;
  }
  return false;
}

/// Matches `<colA> <op> <colB>` at depth 0 (either order; op normalized to
/// lhs-col-on-the-left).
struct ColColCompare {
  int lhs_col = -1;
  int rhs_col = -1;
  sql::BinOp op = sql::BinOp::kEq;
};

bool MatchColCol(const BoundExpr& e, ColColCompare* out) {
  if (e.kind != BoundKind::kBinary || !IsCompareOp(e.bin_op)) return false;
  int lhs = -1;
  int rhs = -1;
  if (!IsColRef(*e.children[0], &lhs) || !IsColRef(*e.children[1], &rhs)) {
    return false;
  }
  out->lhs_col = lhs;
  out->rhs_col = rhs;
  out->op = e.bin_op;
  return true;
}

/// True if `e` compares the named column (at `depth`) for equality with the
/// string constant `value` — e.g. operation = 'w'.
bool IsNamedStringEq(const BoundExpr& e, const OutSchema& schema, int depth,
                     const char* name, const char* value) {
  if (e.kind != BoundKind::kBinary || e.bin_op != sql::BinOp::kEq) return false;
  for (int flip = 0; flip < 2; ++flip) {
    const BoundExpr& col = *e.children[static_cast<size_t>(flip)];
    const BoundExpr& cons = *e.children[static_cast<size_t>(1 - flip)];
    int c = -1;
    std::string s;
    if (IsColRefAtDepth(col, depth, &c) && NameIs(schema, c, name) &&
        IsStringConst(cons, &s) && EqualsIgnoreCase(s, value)) {
      return true;
    }
  }
  return false;
}

// --- plan-node helpers --------------------------------------------------

bool IsScanOf(const SqlNode& node, const storage::Table* table) {
  return node.kind == SqlNode::Kind::kScan && node.table == table;
}

/// Peels a Project whose exprs are all depth-0 column refs, returning the
/// child and the output-position -> child-column mapping. Null if not that
/// shape.
const SqlNode* PeelColProject(const SqlNode& node, std::vector<int>* cols) {
  if (node.kind != SqlNode::Kind::kProject) return nullptr;
  cols->clear();
  for (const auto& expr : node.exprs) {
    int col = -1;
    if (!IsColRef(*expr, &col)) return nullptr;
    cols->push_back(col);
  }
  return node.children[0].get();
}

// --- lock-set CTE classification ---------------------------------------

enum class LockSetKind { kWLocks, kRLocks };

/// The finished-transactions subplan: Project [ta] <- Filter (operation =
/// 'a' OR operation = 'c') <- Scan history.
bool IsFinishedTaSubplan(const SqlNode& node, const Tables& t) {
  std::vector<int> cols;
  const SqlNode* child = PeelColProject(node, &cols);
  if (child == nullptr || cols.size() != 1) return false;
  if (child->kind != SqlNode::Kind::kFilter) return false;
  const SqlNode& scan = *child->children[0];
  if (!IsScanOf(scan, t.history)) return false;
  if (!NameIs(scan.schema, cols[0], "ta")) return false;
  bool has_a = false;
  bool has_c = false;
  for (const BoundExpr* d : Disjuncts(child->predicate.get())) {
    if (IsNamedStringEq(*d, scan.schema, 0, "operation", "a")) {
      has_a = true;
    } else if (IsNamedStringEq(*d, scan.schema, 0, "operation", "c")) {
      has_c = true;
    } else {
      return false;
    }
  }
  return has_a && has_c;
}

/// Write-lock set: history rows with operation = 'w' whose transaction has
/// no termination marker — the LEFT JOIN ... IS NULL anti-join idiom.
bool IsWLockSet(const SqlNode& node, const Tables& t) {
  const SqlNode* cur = &node;
  if (cur->kind == SqlNode::Kind::kDistinct) cur = cur->children[0].get();
  std::vector<int> cols;
  cur = PeelColProject(*cur, &cols);
  if (cur == nullptr || cur->kind != SqlNode::Kind::kFilter) return false;
  const SqlNode& join = *cur->children[0];
  if (join.kind != SqlNode::Kind::kHashJoin &&
      join.kind != SqlNode::Kind::kNestedLoopJoin) {
    return false;
  }
  if (!join.left_outer) return false;
  const SqlNode& left = *join.children[0];
  if (!IsScanOf(left, t.history)) return false;
  if (!IsFinishedTaSubplan(*join.children[1], t)) return false;
  // The join must pair the transaction columns.
  if (join.left_keys.size() != 1 || join.right_keys.size() != 1) return false;
  int lkey = -1;
  int rkey = -1;
  if (!IsColRef(*join.left_keys[0], &lkey) ||
      !IsColRef(*join.right_keys[0], &rkey)) {
    return false;
  }
  if (!NameIs(left.schema, lkey, "ta")) return false;
  // Filter: operation = 'w' AND <right ta> IS NULL.
  const int left_width = static_cast<int>(left.schema.size());
  bool has_w = false;
  bool has_null_probe = false;
  for (const BoundExpr* c : Conjuncts(cur->predicate.get())) {
    if (IsNamedStringEq(*c, join.schema, 0, "operation", "w")) {
      has_w = true;
      continue;
    }
    int col = -1;
    if (c->kind == BoundKind::kIsNull && !c->negated &&
        IsColRef(*c->children[0], &col) && col >= left_width) {
      has_null_probe = true;
      continue;
    }
    return false;
  }
  if (!has_w || !has_null_probe) return false;
  // Output must expose the object and ta columns of the lock rows.
  bool has_object = false;
  bool has_ta = false;
  for (int col : cols) {
    has_object |= NameIs(join.schema, col, "object");
    has_ta |= NameIs(join.schema, col, "ta");
  }
  return has_object && has_ta;
}

/// Read-lock set: history rows of unfinished transactions that did not
/// write the same object — the decorrelated NOT EXISTS idiom. Recognized by
/// its feature set: NOT EXISTS over history keyed on ta whose residual
/// mentions the object-equality (wrote-suppression), the 'w' write probe,
/// and the 'a'/'c' liveness probes.
bool IsRLockSet(const SqlNode& node, const Tables& t) {
  std::vector<int> cols;
  const SqlNode* cur = PeelColProject(node, &cols);
  if (cur == nullptr || cur->kind != SqlNode::Kind::kFilter) return false;
  const SqlNode& scan = *cur->children[0];
  if (!IsScanOf(scan, t.history)) return false;
  const BoundExpr& pred = *cur->predicate;
  if (pred.kind != BoundKind::kExists || !pred.negated ||
      pred.subquery == nullptr) {
    return false;
  }
  const sql::SubqueryPlan& sq = *pred.subquery;
  if (!sq.decorrelated || sq.source == nullptr ||
      !IsScanOf(*sq.source, t.history) || sq.residual == nullptr) {
    return false;
  }
  // Feature scan over the residual (depth 0 = inner history row, depth 1 =
  // outer history row).
  bool object_eq = false;
  bool probe_w = false;
  bool probe_a = false;
  bool probe_c = false;
  std::vector<const BoundExpr*> stack = {sq.residual.get()};
  while (!stack.empty()) {
    const BoundExpr* e = stack.back();
    stack.pop_back();
    for (const auto& child : e->children) stack.push_back(child.get());
    if (e->kind != BoundKind::kBinary || e->bin_op != sql::BinOp::kEq) continue;
    int inner = -1;
    int outer = -1;
    if (IsColRefAtDepth(*e->children[0], 0, &inner) &&
        IsColRefAtDepth(*e->children[1], 1, &outer) &&
        NameIs(scan.schema, inner, "object") &&
        NameIs(scan.schema, outer, "object")) {
      object_eq = true;
    }
    if (IsColRefAtDepth(*e->children[1], 0, &inner) &&
        IsColRefAtDepth(*e->children[0], 1, &outer) &&
        NameIs(scan.schema, inner, "object") &&
        NameIs(scan.schema, outer, "object")) {
      object_eq = true;
    }
    probe_w |= IsNamedStringEq(*e, scan.schema, 0, "operation", "w");
    probe_a |= IsNamedStringEq(*e, scan.schema, 0, "operation", "a");
    probe_c |= IsNamedStringEq(*e, scan.schema, 0, "operation", "c");
  }
  if (!(object_eq && probe_w && probe_a && probe_c)) return false;
  bool has_object = false;
  bool has_ta = false;
  for (int col : cols) {
    has_object |= NameIs(scan.schema, col, "object");
    has_ta |= NameIs(scan.schema, col, "ta");
  }
  return has_object && has_ta;
}

Result<LockSetKind> ClassifyLockCte(const SqlNode& cte, const Tables& t) {
  if (IsWLockSet(cte, t)) return LockSetKind::kWLocks;
  if (IsRLockSet(cte, t)) return LockSetKind::kRLocks;
  return Unsupported("CTE is neither a write-lock nor a read-lock set");
}

// --- blocked-branch classification -------------------------------------

struct Ctes {
  const std::vector<std::unique_ptr<SqlNode>>* plans;

  Result<const SqlNode*> Resolve(int index) const {
    if (index < 0 || index >= static_cast<int>(plans->size())) {
      return Unsupported("CteScan references an unknown CTE");
    }
    return (*plans)[static_cast<size_t>(index)].get();
  }
};

/// Peels `Filter (operation = 'w') <- Scan requests` / bare `Scan requests`.
/// Returns the scan, setting `writes_only`; null if another shape.
const SqlNode* PeelRequestsSide(const SqlNode& node, const Tables& t,
                                bool* writes_only) {
  *writes_only = false;
  const SqlNode* cur = &node;
  if (cur->kind == SqlNode::Kind::kFilter) {
    const SqlNode& scan = *cur->children[0];
    if (!IsScanOf(scan, t.requests)) return nullptr;
    for (const BoundExpr* c : Conjuncts(cur->predicate.get())) {
      if (!IsNamedStringEq(*c, scan.schema, 0, "operation", "w")) return nullptr;
      *writes_only = true;
    }
    return &scan;
  }
  return IsScanOf(*cur, t.requests) ? cur : nullptr;
}

Result<ConflictRules> ClassifyBlockedBranch(const SqlNode& branch,
                                            const Ctes& ctes, const Tables& t);

/// Resolves a branch wrapper: Project [ta, intrata] and CteScan indirection
/// down to the underlying join, then classifies it.
Result<ConflictRules> ClassifyBranchNode(const SqlNode& node, const Ctes& ctes,
                                         const Tables& t) {
  if (node.kind == SqlNode::Kind::kCteScan) {
    DS_ASSIGN_OR_RETURN(const SqlNode* resolved, ctes.Resolve(node.cte_index));
    return ClassifyBranchNode(*resolved, ctes, t);
  }
  if (node.kind == SqlNode::Kind::kProject) {
    std::vector<int> cols;
    const SqlNode* child = PeelColProject(node, &cols);
    if (child == nullptr || cols.size() != 2 ||
        !NameIs(child->schema, cols[0], "ta") ||
        !NameIs(child->schema, cols[1], "intrata")) {
      return Unsupported("blocked branch does not project (ta, intrata)");
    }
    if (child->kind == SqlNode::Kind::kCteScan) {
      return ClassifyBranchNode(*child, ctes, t);
    }
    return ClassifyBlockedBranch(node, ctes, t);
  }
  return ClassifyBlockedBranch(node, ctes, t);
}

/// Classifies one blocked-operation branch:
///   Project [ta, intrata] <- Join(requests[, op='w'] x lock-set CTE)
///     on object, residual ta <> ta                      (lock conflicts)
///   Project [ta, intrata] <- Join(requests x requests)
///     on object, residual ta > ta [and write-side tests] (pending-pending)
Result<ConflictRules> ClassifyBlockedBranch(const SqlNode& branch,
                                            const Ctes& ctes, const Tables& t) {
  std::vector<int> proj_cols;
  const SqlNode* join = PeelColProject(branch, &proj_cols);
  if (join == nullptr || proj_cols.size() != 2) {
    return Unsupported("blocked branch does not project two columns");
  }
  if (join->kind != SqlNode::Kind::kHashJoin &&
      join->kind != SqlNode::Kind::kNestedLoopJoin) {
    return Unsupported("blocked branch is not a join");
  }
  if (join->left_outer) return Unsupported("blocked branch join is outer");
  bool left_w = false;
  const SqlNode* left_scan = PeelRequestsSide(*join->children[0], t, &left_w);
  if (left_scan == nullptr) {
    return Unsupported("blocked branch left side is not the requests relation");
  }
  const int left_width = static_cast<int>(join->children[0]->schema.size());

  // Both columns of the projection must come from one side — the blocked
  // side the branch derives (ta, intrata) of.
  const bool proj_left = proj_cols[0] < left_width && proj_cols[1] < left_width;
  const bool proj_right =
      proj_cols[0] >= left_width && proj_cols[1] >= left_width;
  if (!proj_left && !proj_right) {
    return Unsupported("blocked branch projects columns of both join sides");
  }
  if (!NameIs(join->schema, proj_cols[0], "ta") ||
      !NameIs(join->schema, proj_cols[1], "intrata")) {
    return Unsupported("blocked branch does not project (ta, intrata)");
  }

  // The join must pair the object columns.
  if (join->left_keys.size() != 1 || join->right_keys.size() != 1) {
    return Unsupported("blocked branch join is not a single-key object join");
  }
  int lkey = -1;
  int rkey = -1;
  if (!IsColRef(*join->left_keys[0], &lkey) ||
      !IsColRef(*join->right_keys[0], &rkey) ||
      !NameIs(join->children[0]->schema, lkey, "object") ||
      !NameIs(join->children[1]->schema, rkey, "object")) {
    return Unsupported("blocked branch does not join on object");
  }

  const SqlNode& right = *join->children[1];

  // Case 1: requests x lock-set CTE.
  if (right.kind == SqlNode::Kind::kCteScan) {
    if (!proj_left) {
      return Unsupported("lock conflict branch projects the lock side");
    }
    DS_ASSIGN_OR_RETURN(const SqlNode* cte, ctes.Resolve(right.cte_index));
    DS_ASSIGN_OR_RETURN(LockSetKind lock_kind, ClassifyLockCte(*cte, t));
    // Residual: exactly `requests.ta <> lockset.ta`.
    const std::vector<const BoundExpr*> residual =
        Conjuncts(join->predicate.get());
    if (residual.size() != 1) {
      return Unsupported("lock conflict branch has an unexpected residual");
    }
    ColColCompare ne;
    if (!MatchColCol(*residual[0], &ne) || ne.op != sql::BinOp::kNe ||
        !NameIs(join->schema, ne.lhs_col, "ta") ||
        !NameIs(join->schema, ne.rhs_col, "ta") ||
        (ne.lhs_col < left_width) == (ne.rhs_col < left_width)) {
      return Unsupported("lock conflict branch lacks the ta <> ta test");
    }
    ConflictRules rules;
    if (lock_kind == LockSetKind::kWLocks) {
      (left_w ? rules.wlock_blocks_writes : rules.wlock_blocks_all) = true;
    } else {
      if (!left_w) {
        return Unsupported("read locks blocking non-writes has no IR form");
      }
      rules.rlock_blocks_writes = true;
    }
    return rules;
  }

  // Case 2: requests x requests (pending-pending ordering conflicts).
  bool right_w = false;
  if (PeelRequestsSide(right, t, &right_w) == nullptr) {
    return Unsupported("blocked branch right side is not requests or a CTE");
  }
  bool blocked_w = proj_left ? left_w : right_w;  // blocked side writes only
  bool other_w = proj_left ? right_w : left_w;    // older side writes only
  bool either_w = false;                          // OR of both write tests
  bool have_order = false;
  for (const BoundExpr* c : Conjuncts(join->predicate.get())) {
    ColColCompare cmp;
    if (MatchColCol(*c, &cmp) && NameIs(join->schema, cmp.lhs_col, "ta") &&
        NameIs(join->schema, cmp.rhs_col, "ta") &&
        (cmp.op == sql::BinOp::kGt || cmp.op == sql::BinOp::kLt)) {
      // Normalize to greater-side on the left of kGt.
      const int greater = cmp.op == sql::BinOp::kGt ? cmp.lhs_col : cmp.rhs_col;
      const bool greater_left = greater < left_width;
      if (greater_left != proj_left) {
        return Unsupported("pending conflict blocks the older request");
      }
      have_order = true;
      continue;
    }
    // ((older.operation = 'w') OR (blocked.operation = 'w')) — both sides.
    const std::vector<const BoundExpr*> ds = Disjuncts(c);
    if (ds.size() == 2) {
      bool saw_left = false;
      bool saw_right = false;
      for (const BoundExpr* d : ds) {
        ColConstCompare cc;
        std::string s;
        if (MatchColConst(*d, &cc) && cc.op == sql::BinOp::kEq &&
            NameIs(join->schema, cc.col, "operation") &&
            cc.value.type() == storage::ValueType::kString &&
            EqualsIgnoreCase(cc.value.AsString(), "w")) {
          (cc.col < left_width ? saw_left : saw_right) = true;
        }
      }
      if (saw_left && saw_right) {
        either_w = true;
        continue;
      }
    }
    return Unsupported("pending conflict residual has an unexpected conjunct");
  }
  if (!have_order) {
    return Unsupported("pending conflict lacks the ta ordering test");
  }
  ConflictRules rules;
  if (either_w) {
    if (blocked_w || other_w) {
      return Unsupported("pending conflict mixes OR and per-side write tests");
    }
    rules.pending_write_blocks_all = true;
    rules.pending_any_blocks_writes = true;
  } else if (blocked_w && other_w) {
    rules.pending_write_blocks_writes = true;
  } else if (other_w) {
    rules.pending_write_blocks_all = true;
  } else if (blocked_w) {
    rules.pending_any_blocks_writes = true;
  } else {
    return Unsupported("pending conflict with no write test has no IR form");
  }
  return rules;
}

/// Flattens the EXCEPT's right side through UnionAll / CteScan / trivial
/// (ta, intrata) projections into the individual blocked branches.
Status FlattenBlockedBranches(const SqlNode& node, const Ctes& ctes,
                              const Tables& t, ConflictRules* rules) {
  if (node.kind == SqlNode::Kind::kUnionAll) {
    DS_RETURN_NOT_OK(FlattenBlockedBranches(*node.children[0], ctes, t, rules));
    return FlattenBlockedBranches(*node.children[1], ctes, t, rules);
  }
  if (node.kind == SqlNode::Kind::kCteScan) {
    DS_ASSIGN_OR_RETURN(const SqlNode* resolved, ctes.Resolve(node.cte_index));
    return FlattenBlockedBranches(*resolved, ctes, t, rules);
  }
  if (node.kind == SqlNode::Kind::kProject) {
    // Either a pass-through wrapper over a CteScan / UnionAll, or the
    // branch's own projection — ClassifyBranchNode tells them apart.
    std::vector<int> cols;
    const SqlNode* child = PeelColProject(node, &cols);
    if (child != nullptr && (child->kind == SqlNode::Kind::kCteScan ||
                             child->kind == SqlNode::Kind::kUnionAll)) {
      if (cols.size() != 2 || !NameIs(child->schema, cols[0], "ta") ||
          !NameIs(child->schema, cols[1], "intrata")) {
        return Unsupported("blocked union projects something besides "
                           "(ta, intrata)");
      }
      return FlattenBlockedBranches(*child, ctes, t, rules);
    }
  }
  DS_ASSIGN_OR_RETURN(ConflictRules branch, ClassifyBranchNode(node, ctes, t));
  rules->Merge(branch);
  return Status::OK();
}

/// The qualified-operations CTE: (SELECT ta, intrata FROM requests) EXCEPT
/// (union of blocked branches). Returns the merged conflict rules.
Result<ConflictRules> ClassifyQualifiedCte(const SqlNode& cte, const Ctes& ctes,
                                           const Tables& t) {
  if (cte.kind != SqlNode::Kind::kExcept) {
    return Unsupported("qualified CTE is not an EXCEPT");
  }
  std::vector<int> cols;
  const SqlNode* left = PeelColProject(*cte.children[0], &cols);
  if (left == nullptr || !IsScanOf(*left, t.requests) || cols.size() != 2 ||
      !NameIs(left->schema, cols[0], "ta") ||
      !NameIs(left->schema, cols[1], "intrata")) {
    return Unsupported("EXCEPT left side is not (ta, intrata) of requests");
  }
  ConflictRules rules;
  DS_RETURN_NOT_OK(FlattenBlockedBranches(*cte.children[1], ctes, t, &rules));
  if (!rules.Any()) return Unsupported("EXCEPT right side blocks nothing");
  return rules;
}

// --- throttled-tenant subquery ------------------------------------------

/// SELECT tenant FROM tenants WHERE (cap > 0 AND inflight >= cap) OR
/// (rate > 0 AND tokens <= 0) — the TenantAcct::Throttled() predicate.
bool IsThrottledTenantSubquery(const SqlNode& plan, const Tables& t) {
  std::vector<int> cols;
  const SqlNode* filter = PeelColProject(plan, &cols);
  if (filter == nullptr || cols.size() != 1 ||
      filter->kind != SqlNode::Kind::kFilter) {
    return false;
  }
  const SqlNode& scan = *filter->children[0];
  if (!IsScanOf(scan, t.tenants) || !NameIs(scan.schema, cols[0], "tenant")) {
    return false;
  }
  bool cap_branch = false;
  bool rate_branch = false;
  for (const BoundExpr* d : Disjuncts(filter->predicate.get())) {
    bool gt_zero_cap = false;
    bool gt_zero_rate = false;
    bool inflight_ge_cap = false;
    bool tokens_le_zero = false;
    for (const BoundExpr* c : Conjuncts(d)) {
      ColConstCompare cc;
      ColColCompare cols_cmp;
      int64_t v = 0;
      if (MatchColConst(*c, &cc) &&
          cc.value.type() == storage::ValueType::kInt64) {
        v = cc.value.AsInt64();
        if (v == 0 && cc.op == sql::BinOp::kGt) {
          gt_zero_cap |= NameIs(scan.schema, cc.col, "cap");
          gt_zero_rate |= NameIs(scan.schema, cc.col, "rate");
          continue;
        }
        if (v == 0 && cc.op == sql::BinOp::kLe &&
            NameIs(scan.schema, cc.col, "tokens")) {
          tokens_le_zero = true;
          continue;
        }
      }
      if (MatchColCol(*c, &cols_cmp)) {
        const bool ge = cols_cmp.op == sql::BinOp::kGe &&
                        NameIs(scan.schema, cols_cmp.lhs_col, "inflight") &&
                        NameIs(scan.schema, cols_cmp.rhs_col, "cap");
        const bool le = cols_cmp.op == sql::BinOp::kLe &&
                        NameIs(scan.schema, cols_cmp.lhs_col, "cap") &&
                        NameIs(scan.schema, cols_cmp.rhs_col, "inflight");
        if (ge || le) {
          inflight_ge_cap = true;
          continue;
        }
      }
      return false;
    }
    if (gt_zero_cap && inflight_ge_cap && !gt_zero_rate && !tokens_le_zero) {
      cap_branch = true;
    } else if (gt_zero_rate && tokens_le_zero && !gt_zero_cap &&
               !inflight_ge_cap) {
      rate_branch = true;
    } else {
      return false;
    }
  }
  return cap_branch && rate_branch;
}

// --- generic typed predicates over the requests scan --------------------

Result<RequestField> FieldByName(const std::string& name) {
  if (name == "id") return RequestField::kId;
  if (name == "ta") return RequestField::kTa;
  if (name == "intrata") return RequestField::kIntrata;
  if (name == "object") return RequestField::kObject;
  if (name == "priority") return RequestField::kPriority;
  if (name == "deadline") return RequestField::kDeadline;
  if (name == "arrival") return RequestField::kArrival;
  if (name == "client") return RequestField::kClient;
  if (name == "tenant") return RequestField::kTenant;
  if (name == "operation") return RequestField::kOperation;
  return Unsupported("no typed request field named '" + name + "'");
}

CompareKind ToCompareKind(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kEq: return CompareKind::kEq;
    case sql::BinOp::kNe: return CompareKind::kNe;
    case sql::BinOp::kLt: return CompareKind::kLt;
    case sql::BinOp::kLe: return CompareKind::kLe;
    case sql::BinOp::kGt: return CompareKind::kGt;
    default: return CompareKind::kGe;
  }
}

Status LowerScanPredicates(const BoundExpr* predicate, const OutSchema& schema,
                           std::vector<FieldPredicate>* out) {
  for (const BoundExpr* c : Conjuncts(predicate)) {
    ColConstCompare cc;
    if (!MatchColConst(*c, &cc)) {
      return Unsupported("WHERE conjunct is not column-vs-constant");
    }
    FieldPredicate pred;
    DS_ASSIGN_OR_RETURN(pred.field, FieldByName(LowerName(schema, cc.col)));
    pred.cmp = ToCompareKind(cc.op);
    if (pred.field == RequestField::kOperation) {
      if (cc.value.type() != storage::ValueType::kString ||
          (pred.cmp != CompareKind::kEq && pred.cmp != CompareKind::kNe)) {
        return Unsupported("operation predicates support = / <> of a string");
      }
      const std::string& s = cc.value.AsString();
      if (s != "r" && s != "w" && s != "a" && s != "c") {
        return Unsupported("unknown operation constant '" + s + "'");
      }
      pred.op_value = RequestStore::ParseOperation(s);
    } else if (cc.value.type() == storage::ValueType::kInt64) {
      pred.value = cc.value.AsInt64();
    } else {
      return Unsupported("typed predicates compare against integers");
    }
    out->push_back(pred);
  }
  return Status::OK();
}

// --- rank-key resolution ------------------------------------------------

Result<RankSource> RankSourceByName(const std::string& name) {
  if (name == "id") return RankSource::kId;
  if (name == "priority") return RankSource::kPriority;
  if (name == "deadline") return RankSource::kDeadline;
  if (name == "tenant") return RankSource::kTenant;
  if (name == "vtime") return RankSource::kTenantVtime;
  if (name == "round") return RankSource::kTenantRound;
  return Unsupported("ORDER BY column '" + name + "' is not a rank source");
}

/// Resolves one ORDER BY key bound over the final projection: a column ref
/// through the projection to its source column, or the EDF CASE WHEN
/// deadline = 0 THEN 1 ELSE 0 idiom.
Result<RankSource> ResolveSortKey(const BoundExpr& expr, const SqlNode& project,
                                  const SqlNode& below) {
  int out_col = -1;
  if (IsColRef(expr, &out_col)) {
    if (out_col < 0 || out_col >= static_cast<int>(project.exprs.size())) {
      return Unsupported("ORDER BY references an unknown output column");
    }
    int src = -1;
    if (!IsColRef(*project.exprs[static_cast<size_t>(out_col)], &src)) {
      return Unsupported("ORDER BY column is not a plain projection");
    }
    return RankSourceByName(LowerName(below.schema, src));
  }
  if (expr.kind == BoundKind::kCase && !expr.case_has_operand &&
      expr.case_has_else && expr.children.size() == 3) {
    // CASE WHEN deadline = 0 THEN 1 ELSE 0 END: no-deadline-last.
    const BoundExpr& when = *expr.children[0];
    int64_t then_v = 0;
    int64_t else_v = 0;
    ColConstCompare cc;
    if (MatchColConst(when, &cc) && cc.op == sql::BinOp::kEq &&
        cc.value.type() == storage::ValueType::kInt64 &&
        cc.value.AsInt64() == 0 && IsIntConst(*expr.children[1], &then_v) &&
        IsIntConst(*expr.children[2], &else_v) && then_v == 1 && else_v == 0) {
      int src = -1;
      if (cc.col >= 0 && cc.col < static_cast<int>(project.exprs.size()) &&
          IsColRef(*project.exprs[static_cast<size_t>(cc.col)], &src) &&
          NameIs(below.schema, src, "deadline")) {
        return RankSource::kDeadlineIsZero;
      }
    }
  }
  return Unsupported("ORDER BY key is not a recognized rank expression");
}

}  // namespace

Result<ProtocolPlan> LowerSqlPlan(const sql::PreparedPlan& plan,
                                  const storage::Catalog& catalog,
                                  bool ordered) {
  Tables t;
  t.requests = catalog.GetTable("requests");
  t.history = catalog.GetTable("history");
  t.tenants = catalog.GetTable("tenants");
  if (t.requests == nullptr) {
    return Unsupported("catalog has no requests relation");
  }
  Ctes ctes{&plan.cte_plans};

  const SqlNode* node = plan.root.get();
  if (node == nullptr) return Unsupported("empty plan");

  // Peel the statement-level operators: LIMIT and ORDER BY.
  int64_t limit = -1;
  const SqlNode* sort = nullptr;
  while (node->kind == SqlNode::Kind::kLimit ||
         node->kind == SqlNode::Kind::kSort) {
    if (node->kind == SqlNode::Kind::kLimit) {
      if (limit >= 0 || sort != nullptr) {
        return Unsupported("unexpected LIMIT placement");
      }
      limit = node->limit;
    } else {
      if (sort != nullptr) return Unsupported("nested sorts");
      sort = node;
    }
    node = node->children[0].get();
  }

  if (node->kind != SqlNode::Kind::kProject) {
    return Unsupported("statement does not project the request columns");
  }
  const SqlNode& project = *node;
  node = project.children[0].get();

  // Optional throttled-tenant NOT IN filter(s) above the joins; any other
  // filter here is a plain WHERE over the requests scan and is handled by
  // the pipeline walk below.
  bool throttle = false;
  while (node->kind == SqlNode::Kind::kFilter &&
         node->predicate->kind == BoundKind::kInSubquery) {
    const BoundExpr& pred = *node->predicate;
    if (!pred.negated || pred.subquery == nullptr ||
        pred.subquery->correlated || pred.subquery->plan == nullptr) {
      return Unsupported("IN-subquery filter is not a NOT IN tenants subquery");
    }
    int col = -1;
    if (!IsColRef(*pred.children[0], &col) ||
        !NameIs(node->children[0]->schema, col, "tenant") ||
        !IsThrottledTenantSubquery(*pred.subquery->plan, t)) {
      return Unsupported("NOT IN subquery is not the throttled-tenant set");
    }
    throttle = true;
    node = node->children[0].get();
  }

  // The join pipeline down to the requests scan.
  bool tenant_join = false;
  bool have_lock_join = false;
  ConflictRules rules;
  std::vector<FieldPredicate> scan_predicates;
  const SqlNode* below_project = project.children[0].get();
  while (true) {
    if (node->kind == SqlNode::Kind::kHashJoin ||
        node->kind == SqlNode::Kind::kNestedLoopJoin) {
      if (node->left_outer || node->predicate != nullptr) {
        return Unsupported("outer or residual-carrying join in the pipeline");
      }
      const SqlNode& right = *node->children[1];
      const SqlNode& left = *node->children[0];
      if (IsScanOf(right, t.tenants)) {
        if (tenant_join) return Unsupported("repeated tenants join");
        int lkey = -1;
        int rkey = -1;
        if (node->left_keys.size() != 1 || node->right_keys.size() != 1 ||
            !IsColRef(*node->left_keys[0], &lkey) ||
            !IsColRef(*node->right_keys[0], &rkey) ||
            !NameIs(left.schema, lkey, "tenant") ||
            !NameIs(right.schema, rkey, "tenant")) {
          return Unsupported("tenants join is not on the tenant column");
        }
        tenant_join = true;
        node = node->children[0].get();
        continue;
      }
      if (right.kind == SqlNode::Kind::kCteScan) {
        if (have_lock_join) return Unsupported("repeated qualified-set join");
        // Keys must pair (ta, intrata) with the qualified set.
        if (node->left_keys.size() != 2 || node->right_keys.size() != 2) {
          return Unsupported("qualified-set join needs (ta, intrata) keys");
        }
        bool ta_ok = false;
        bool intrata_ok = false;
        for (size_t k = 0; k < 2; ++k) {
          int lkey = -1;
          int rkey = -1;
          if (!IsColRef(*node->left_keys[k], &lkey) ||
              !IsColRef(*node->right_keys[k], &rkey)) {
            return Unsupported("qualified-set join keys are not columns");
          }
          const std::string lname = LowerName(left.schema, lkey);
          if (lname != LowerName(right.schema, rkey)) {
            return Unsupported("qualified-set join pairs mismatched columns");
          }
          ta_ok |= lname == "ta";
          intrata_ok |= lname == "intrata";
        }
        if (!ta_ok || !intrata_ok) {
          return Unsupported("qualified-set join is not on (ta, intrata)");
        }
        DS_ASSIGN_OR_RETURN(const SqlNode* cte, ctes.Resolve(right.cte_index));
        DS_ASSIGN_OR_RETURN(rules, ClassifyQualifiedCte(*cte, ctes, t));
        have_lock_join = true;
        node = node->children[0].get();
        continue;
      }
      return Unsupported("join against an unrecognized relation");
    }
    if (node->kind == SqlNode::Kind::kFilter) {
      // A filter's schema equals its input's; the pipeline must still
      // bottom out at the requests scan (checked after the loop), which
      // is what makes the column names below requests fields.
      DS_RETURN_NOT_OK(LowerScanPredicates(node->predicate.get(),
                                           node->schema, &scan_predicates));
      node = node->children[0].get();
      continue;
    }
    break;
  }
  if (!IsScanOf(*node, t.requests)) {
    return Unsupported("pipeline does not bottom out at the requests scan");
  }

  // The projection must pass the Table 2 columns through in order (the
  // requests scan is the leftmost leaf, so combined columns 0..4 are its
  // id, ta, intrata, operation, object).
  static constexpr const char* kCore[] = {"id", "ta", "intrata", "operation",
                                          "object"};
  if (project.exprs.size() < 5) {
    return Unsupported("projection lacks the five request columns");
  }
  for (int i = 0; i < 5; ++i) {
    int col = -1;
    if (!IsColRef(*project.exprs[static_cast<size_t>(i)], &col) || col != i ||
        !NameIs(below_project->schema, col, kCore[static_cast<size_t>(i)])) {
      return Unsupported("projection does not pass the request columns "
                         "through in order");
    }
  }

  // Resolve ORDER BY into rank keys.
  std::vector<RankKey> keys;
  if (sort != nullptr) {
    for (const sql::SortKey& key : sort->sort_keys) {
      if (key.desc) return Unsupported("descending ORDER BY");
      DS_ASSIGN_OR_RETURN(RankSource source,
                          ResolveSortKey(*key.expr, project, *below_project));
      if (source == RankSource::kTenantVtime ||
          source == RankSource::kTenantRound) {
        if (!tenant_join) {
          return Unsupported("fairness rank key without a tenants join");
        }
      }
      keys.push_back(RankKey{source});
    }
    if (ordered && (keys.empty() || keys.back().source != RankSource::kId)) {
      // Without a trailing unique key the SQL engine's sort order is not
      // total, so the compiled order could diverge from the interpreter's.
      return Unsupported("ordered protocol lacks a trailing id sort key");
    }
  } else if (ordered) {
    return Unsupported("ordered protocol without an ORDER BY");
  }

  // Assemble the pipeline, scan first.
  ProtocolPlan out;
  out.source = "sql";
  out.ordered = ordered;
  auto scan = PlanNode::Make(PlanNode::Kind::kScanPending);
  std::unique_ptr<PlanNode> chain = std::move(scan);
  if (!scan_predicates.empty()) {
    auto filter = PlanNode::Make(PlanNode::Kind::kFilter);
    filter->predicates = std::move(scan_predicates);
    filter->input = std::move(chain);
    chain = std::move(filter);
  }
  if (have_lock_join) {
    auto anti = PlanNode::Make(PlanNode::Kind::kLockAntiJoin);
    anti->conflicts = rules;
    anti->input = std::move(chain);
    chain = std::move(anti);
  }
  if (throttle) {
    auto anti = PlanNode::Make(PlanNode::Kind::kThrottleAntiJoin);
    anti->input = std::move(chain);
    chain = std::move(anti);
  }
  if (tenant_join) {
    auto join = PlanNode::Make(PlanNode::Kind::kTenantJoin);
    join->left_outer = false;  // SQL inner join drops unknown tenants
    join->input = std::move(chain);
    chain = std::move(join);
  }
  if (!keys.empty()) {
    auto rank = PlanNode::Make(PlanNode::Kind::kRank);
    rank->keys = std::move(keys);
    rank->input = std::move(chain);
    chain = std::move(rank);
  }
  if (limit >= 0) {
    auto lim = PlanNode::Make(PlanNode::Kind::kLimit);
    lim->limit = limit;
    lim->input = std::move(chain);
    chain = std::move(lim);
  }
  out.root = std::move(chain);
  return out;
}

Result<ProtocolPlan> LowerSqlSpec(const ProtocolSpec& spec,
                                  const storage::Catalog& catalog) {
  DS_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                      sql::ParseSelect(spec.text));
  DS_ASSIGN_OR_RETURN(sql::PreparedPlan plan,
                      sql::PlanSelectStatement(catalog, *stmt));
  DS_ASSIGN_OR_RETURN(ProtocolPlan lowered,
                      LowerSqlPlan(plan, catalog, spec.ordered));
  OptimizePlan(&lowered);
  return lowered;
}

}  // namespace declsched::scheduler::ir
