// ProtocolPlan: the unified relational IR both declarative languages lower
// into (the tentpole of ISSUE 5).
//
// A protocol, whichever language states it, is a linear relational pipeline
// over the scheduler's typed state: scan the pending relation, anti-join
// away requests blocked by history-implied locks or by older pending
// conflicts, anti-join away requests of throttled tenants, join tenant
// accounting for fairness keys, rank, limit. SQL SELECTs (via the planner's
// physical plan) and Datalog programs (via the rule AST) are *lowered* into
// this IR once at compile time; every cycle then executes the plan directly
// over RequestStore's typed mirrors and an incremental LockTableState — no
// per-row Value decode, no EDB copy, no re-derivation of lock state. The
// interpreted engines stay in-tree behind the "interp:" spec-text prefix as
// differential oracles (the `scratch:ss2pl` precedent).
//
// The IR is deliberately small: it names the relational idioms scheduling
// protocols actually use (the paper's Listing 1 family and its SLA/QoS
// extensions), not all of SQL. Lowering returns Unsupported for anything
// outside the dialect and the backend falls back to the interpreted engine,
// so arbitrary hand-written protocol queries keep working — they just do
// not get the compiled fast path.

#ifndef DECLSCHED_SCHEDULER_IR_PROTOCOL_PLAN_H_
#define DECLSCHED_SCHEDULER_IR_PROTOCOL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "txn/types.h"

namespace declsched::scheduler::ir {

/// Which pending requests a lock anti-join drops: the six conflict idioms
/// the declarative formulations express (SS2PL sets four of them, weaker
/// consistency levels subsets). "wlock"/"rlock" are locks another
/// transaction holds per the history relation; "pending" rules are the
/// pending-pending ordering conflicts judged against the full pending set.
struct ConflictRules {
  /// A foreign write lock blocks every operation on the object.
  bool wlock_blocks_all = false;
  /// A foreign write lock blocks writes on the object.
  bool wlock_blocks_writes = false;
  /// A foreign read lock blocks writes on the object.
  bool rlock_blocks_writes = false;
  /// An older pending write on the object blocks every operation.
  bool pending_write_blocks_all = false;
  /// An older pending write on the object blocks writes.
  bool pending_write_blocks_writes = false;
  /// Any older pending request on the object blocks writes.
  bool pending_any_blocks_writes = false;

  bool Any() const {
    return wlock_blocks_all || wlock_blocks_writes || rlock_blocks_writes ||
           pending_write_blocks_all || pending_write_blocks_writes ||
           pending_any_blocks_writes;
  }
  /// True if any rule consults history-implied locks (vs. pending-only).
  bool NeedsLockTable() const {
    return wlock_blocks_all || wlock_blocks_writes || rlock_blocks_writes;
  }
  /// True if any rule consults the pending-pending conflict summary.
  bool NeedsPendingConflicts() const {
    return pending_write_blocks_all || pending_write_blocks_writes ||
           pending_any_blocks_writes;
  }

  void Merge(const ConflictRules& other) {
    wlock_blocks_all |= other.wlock_blocks_all;
    wlock_blocks_writes |= other.wlock_blocks_writes;
    rlock_blocks_writes |= other.rlock_blocks_writes;
    pending_write_blocks_all |= other.pending_write_blocks_all;
    pending_write_blocks_writes |= other.pending_write_blocks_writes;
    pending_any_blocks_writes |= other.pending_any_blocks_writes;
  }

  /// The paper's Listing 1 semantics (strong strict two-phase locking).
  static ConflictRules Ss2pl() {
    ConflictRules r;
    r.wlock_blocks_all = true;
    r.rlock_blocks_writes = true;
    r.pending_write_blocks_all = true;
    r.pending_any_blocks_writes = true;
    return r;
  }
  /// Relaxed read-committed: only writes block, only on write conflicts.
  static ConflictRules ReadCommitted() {
    ConflictRules r;
    r.wlock_blocks_writes = true;
    r.pending_write_blocks_writes = true;
    return r;
  }
};

/// One component of a rank node's sort key, always ascending (the dialect
/// of every registry protocol; descending keys are not lowered).
enum class RankSource : uint8_t {
  kId,             // request id (the FCFS / tie-break key)
  kPriority,       // SLA priority (0 = premium)
  kDeadline,       // absolute deadline micros
  kDeadlineIsZero, // 1 if no deadline — orders "no deadline" last (EDF)
  kTenant,         // submitting tenant id (drr round-robin component)
  kTenantVtime,    // joined tenants.vtime (wfq)
  kTenantRound,    // joined tenants.round (drr)
};

struct RankKey {
  RankSource source = RankSource::kId;
};

/// Typed single-column comparisons over the request row — what generic SQL
/// WHERE conjuncts on the requests relation lower to.
enum class CompareKind : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

enum class RequestField : uint8_t {
  kId, kTa, kIntrata, kObject, kPriority, kDeadline, kArrival, kClient,
  kTenant, kOperation,
};

struct FieldPredicate {
  RequestField field = RequestField::kId;
  CompareKind cmp = CompareKind::kEq;
  /// Comparison constant; for kOperation the decoded op is in `op_value`.
  int64_t value = 0;
  txn::OpType op_value = txn::OpType::kRead;
};

/// One operator of a compiled protocol pipeline. The pipeline is linear —
/// every node transforms the request stream of its input; joins and
/// anti-joins name their right-hand relation implicitly (the lock-conflict
/// relation derived from LockTableState, the throttled-tenant set, the
/// tenants accounting relation), which is exactly what lets the executor
/// run them against typed state instead of materialized rows.
struct PlanNode {
  enum class Kind : uint8_t {
    /// Source: the pending `requests` relation via the typed id-ordered
    /// mirror (so the stream starts in ascending-id order for free).
    kScanPending,
    /// Conjunction of typed predicates over request fields.
    kFilter,
    /// Anti-join against the blocked-request relation implied by
    /// `conflicts` — history locks come from the incremental
    /// LockTableState, pending-pending conflicts from the full pending
    /// universe (not the possibly-filtered stream, matching the
    /// declarative texts which derive `blocked` from the whole relation).
    kLockAntiJoin,
    /// Anti-join against the throttled-tenant set (TenantAcct::Throttled()
    /// over the tenants mirror) — the NOT IN / !throttled(T) idiom.
    kThrottleAntiJoin,
    /// Join with the `tenants` accounting relation on tenant id, attaching
    /// the TenantAcct needed by fairness rank keys. Inner join drops
    /// requests of unknown tenants (SQL `requests, tenants WHERE
    /// r.tenant = t.tenant`); left-outer keeps them with no acct (the
    /// Datalog rank-relation idiom, which sorts them last).
    kTenantJoin,
    /// Sort by `keys`, ties broken by ascending id.
    kRank,
    /// Keep the first `limit` requests of the stream.
    kLimit,
  };

  Kind kind = Kind::kScanPending;
  std::unique_ptr<PlanNode> input;  // null iff kScanPending

  ConflictRules conflicts;                 // kLockAntiJoin
  std::vector<FieldPredicate> predicates;  // kFilter (ANDed)
  bool left_outer = false;                 // kTenantJoin
  std::vector<RankKey> keys;               // kRank
  /// kRank: rows without a joined TenantAcct order after all rows with one
  /// (Datalog: ids missing from the rank relation sort last).
  bool missing_acct_last = false;
  int64_t limit = -1;                      // kLimit

  static std::unique_ptr<PlanNode> Make(Kind kind) {
    auto n = std::make_unique<PlanNode>();
    n->kind = kind;
    return n;
  }
};

/// A fully lowered protocol: the operator pipeline plus what the executor
/// must know about it up front.
struct ProtocolPlan {
  std::unique_ptr<PlanNode> root;
  /// Which front-end produced it ("sql" or "datalog") — for EXPLAIN output.
  std::string source;
  /// True if a kRank node defines the dispatch order; otherwise the
  /// executor's output is ascending id (like every unordered protocol).
  bool ordered = false;

  /// True if any node consults history-implied locks: the owning protocol
  /// must then feed the executor's LockTableState from the delta hooks.
  bool NeedsLockTable() const;
  /// True if any node reads the tenants accounting relation.
  bool NeedsTenants() const;
  /// True if the pipeline may emit something other than ascending-id order
  /// (it contains a rank node; every other operator preserves the
  /// id-ordered scan).
  bool MayReorder() const;
};

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_PROTOCOL_PLAN_H_
