// CompiledProtocol: a Protocol backed by a lowered ProtocolPlan.
//
// The compiled form of a SQL or Datalog spec: the plan executes over the
// store's typed mirrors, the embedded executor's LockTableState rides the
// scheduler's delta hooks, and per-cycle cost is O(pending qualification +
// delta) like the hand-coded native backend — while the protocol's
// semantics remain exactly the declarative text's (property-tested against
// the interpreted engines, which stay available behind the "interp:" spec
// prefix).

#ifndef DECLSCHED_SCHEDULER_IR_COMPILED_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_IR_COMPILED_PROTOCOL_H_

#include <memory>

#include "scheduler/ir/executor.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler::ir {

class CompiledProtocol : public Protocol {
 public:
  CompiledProtocol(ProtocolSpec spec, RequestStore* store, ProtocolPlan plan);

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override;

  // Delta hooks: keep the executor's lock state in lockstep with history.
  // Skipped entirely for plans that never consult locks (e.g. FCFS).
  void OnScheduled(const RequestBatch& batch) override;
  void OnFinished(const std::vector<txn::TxnId>& txns) override;

  /// The lowered plan (for ExplainProtocol and tests).
  const ProtocolPlan& plan() const { return plan_; }
  /// The incremental lock state (tests assert O(delta) on its counters).
  const LockTableState& lock_state() const { return executor_.lock_state(); }

 private:
  RequestStore* store_;
  ProtocolPlan plan_;
  bool needs_lock_table_;
  bool may_reorder_;
  /// Mutable: Schedule() is a read of the store even when it refreshes the
  /// executor's cached lock state (the native-backend convention).
  mutable PlanExecutor executor_;
};

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_COMPILED_PROTOCOL_H_
