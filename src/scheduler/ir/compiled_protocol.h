// CompiledProtocol: a Protocol backed by a lowered ProtocolPlan.
//
// The compiled form of a SQL or Datalog spec: the plan executes over the
// store's typed state, the embedded executor's incremental caches ride the
// scheduler's delta hooks, and per-cycle cost is O(pending qualification +
// delta) like the hand-coded native backend — while the protocol's
// semantics remain exactly the declarative text's (property-tested against
// the interpreted engines, which stay available behind the "interp:" spec
// prefix).
//
// Two executors implement the plan. The default is the vectorized columnar
// one (selection-vector kernels over an incrementally maintained SoA
// mirror); the original row-at-a-time executor stays selectable via
// ProtocolSpec::ir_executor = "scalar" as the differential oracle the vec
// path is continuously tested against.

#ifndef DECLSCHED_SCHEDULER_IR_COMPILED_PROTOCOL_H_
#define DECLSCHED_SCHEDULER_IR_COMPILED_PROTOCOL_H_

#include <memory>

#include "scheduler/ir/executor.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/ir/vec/vec_executor.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler::ir {

class CompiledProtocol : public Protocol {
 public:
  CompiledProtocol(ProtocolSpec spec, RequestStore* store, ProtocolPlan plan);

  Result<RequestBatch> Schedule(const ScheduleContext& context) const override;

  // Delta hooks: keep the active executor's incremental state (lock table,
  // and for the vec executor the columnar pending mirror) in lockstep with
  // the store. Lock-state forwarding is skipped entirely for plans that
  // never consult locks (e.g. FCFS).
  void OnAdmitted(const RequestBatch& batch) override;
  void OnScheduled(const RequestBatch& batch) override;
  void OnFinished(const std::vector<txn::TxnId>& txns) override;

  /// The lowered plan (for ExplainProtocol and tests).
  const ProtocolPlan& plan() const { return plan_; }
  /// True when the plan runs on the vectorized executor.
  bool uses_vec() const { return use_vec_; }
  /// The incremental lock state of whichever executor is active (tests
  /// assert O(delta) on its counters).
  const LockTableState& lock_state() const {
    return use_vec_ ? vec_.lock_state() : scalar_.lock_state();
  }
  /// The vec executor's columnar mirror; null when running scalar.
  const vec::ColumnarMirror* mirror() const {
    return use_vec_ ? &vec_.mirror() : nullptr;
  }

 private:
  RequestStore* store_;
  ProtocolPlan plan_;
  bool needs_lock_table_;
  bool may_reorder_;
  bool use_vec_;
  /// Mutable: Schedule() is a read of the store even when it refreshes the
  /// executor's cached state (the native-backend convention). Only the
  /// executor selected by the spec is ever touched; the idle one stays an
  /// empty shell.
  mutable PlanExecutor scalar_;
  mutable vec::VecPlanExecutor vec_;
};

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_COMPILED_PROTOCOL_H_
