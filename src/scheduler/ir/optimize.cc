#include "scheduler/ir/optimize.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace declsched::scheduler::ir {

namespace {

/// Detaches the pipeline into scan-first order for easy rewriting.
std::vector<std::unique_ptr<PlanNode>> Flatten(ProtocolPlan* plan) {
  std::vector<std::unique_ptr<PlanNode>> nodes;
  std::unique_ptr<PlanNode> cur = std::move(plan->root);
  while (cur != nullptr) {
    std::unique_ptr<PlanNode> input = std::move(cur->input);
    nodes.push_back(std::move(cur));
    cur = std::move(input);
  }
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

void Relink(ProtocolPlan* plan, std::vector<std::unique_ptr<PlanNode>> nodes) {
  std::unique_ptr<PlanNode> chain;
  for (auto& node : nodes) {
    node->input = std::move(chain);
    chain = std::move(node);
  }
  plan->root = std::move(chain);
}

bool IsCheapFilter(const PlanNode& node) {
  return node.kind == PlanNode::Kind::kFilter ||
         node.kind == PlanNode::Kind::kThrottleAntiJoin;
}

/// True if node `i`'s rank order is observable in the plan output: either
/// the protocol dispatches in rank order, or a later limit truncates by it.
bool RankObservable(const std::vector<std::unique_ptr<PlanNode>>& nodes,
                    size_t i, bool ordered) {
  for (size_t j = i + 1; j < nodes.size(); ++j) {
    if (nodes[j]->kind == PlanNode::Kind::kLimit) return true;
    // A later rank re-sorts the whole stream, hiding this one.
    if (nodes[j]->kind == PlanNode::Kind::kRank) return false;
  }
  return ordered;
}

/// True if the stream below node `i` is in ascending-id order (the scan
/// emits it; only rank nodes disturb it).
bool InputIdOrdered(const std::vector<std::unique_ptr<PlanNode>>& nodes,
                    size_t i) {
  for (size_t j = 0; j < i; ++j) {
    if (nodes[j]->kind == PlanNode::Kind::kRank) return false;
  }
  return true;
}

bool RankIsIdentityOnIdOrder(const PlanNode& rank) {
  if (rank.missing_acct_last) return false;
  for (const RankKey& key : rank.keys) {
    if (key.source != RankSource::kId) return false;
  }
  return true;  // empty key list ties straight to the id tie-break
}

/// True if any node above `i` reads the TenantAcct a kTenantJoin attaches.
bool AcctReadAbove(const std::vector<std::unique_ptr<PlanNode>>& nodes,
                   size_t i) {
  for (size_t j = i + 1; j < nodes.size(); ++j) {
    const PlanNode& n = *nodes[j];
    if (n.kind != PlanNode::Kind::kRank) continue;
    if (n.missing_acct_last) return true;
    for (const RankKey& key : n.keys) {
      if (key.source == RankSource::kTenantVtime ||
          key.source == RankSource::kTenantRound) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void OptimizePlan(ProtocolPlan* plan) {
  if (plan == nullptr || plan->root == nullptr) return;
  std::vector<std::unique_ptr<PlanNode>> nodes = Flatten(plan);

  // Rank elision: drop ranks whose order the output contract cannot
  // observe (unordered protocols dispatch by id; a later rank shadows an
  // earlier one), and identity ranks over an already id-ordered stream.
  for (size_t i = 0; i < nodes.size();) {
    const PlanNode& n = *nodes[i];
    if (n.kind == PlanNode::Kind::kRank &&
        (!RankObservable(nodes, i, plan->ordered) ||
         (RankIsIdentityOnIdOrder(n) && InputIdOrdered(nodes, i)))) {
      nodes.erase(nodes.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    ++i;
  }

  // Join elision: a LEFT OUTER tenants join nothing above reads is dead
  // weight — it never drops rows, only attaches the acct. An inner join
  // is a semijoin filter (unknown tenants drop) and must be kept even
  // when no rank key reads the acct.
  for (size_t i = 0; i < nodes.size();) {
    if (nodes[i]->kind == PlanNode::Kind::kTenantJoin &&
        nodes[i]->left_outer && !AcctReadAbove(nodes, i)) {
      nodes.erase(nodes.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    ++i;
  }

  // Predicate pushdown: within each limit-delimited segment, float the
  // cheap per-row filters (typed predicates, throttled-tenant anti-join)
  // below the lock anti-join / tenants join / rank. Legal because the lock
  // anti-join judges each request against the full pending universe and
  // history locks — never against the incoming stream — so per-row drops
  // commute; crossing a limit would change which rows survive, so
  // segments end there.
  size_t segment_start = 0;
  for (size_t i = 0; i <= nodes.size(); ++i) {
    if (i == nodes.size() || nodes[i]->kind == PlanNode::Kind::kLimit) {
      std::stable_partition(
          nodes.begin() + static_cast<ptrdiff_t>(segment_start),
          nodes.begin() + static_cast<ptrdiff_t>(i),
          [](const std::unique_ptr<PlanNode>& n) {
            return n->kind == PlanNode::Kind::kScanPending || IsCheapFilter(*n);
          });
      segment_start = i + 1;
    }
  }

  // Selection-vector-aware rewrites (the vectorized executor runs each node
  // as one compaction pass over the selection):
  //  - within each run of cheap per-row drops, order typed filters before
  //    the throttle anti-join — a predicate is a branch-free column compare
  //    while the throttle probe is a per-tenant lookup, so shrinking the
  //    selection first is strictly cheaper; legal because both are pure
  //    per-row drops and commute;
  //  - then fuse adjacent filter nodes into one conjunction, so a cycle
  //    compacts the selection once per fused group instead of per node.
  for (size_t i = 0; i < nodes.size();) {
    if (!IsCheapFilter(*nodes[i])) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < nodes.size() && IsCheapFilter(*nodes[end])) ++end;
    std::stable_partition(nodes.begin() + static_cast<ptrdiff_t>(i),
                          nodes.begin() + static_cast<ptrdiff_t>(end),
                          [](const std::unique_ptr<PlanNode>& n) {
                            return n->kind == PlanNode::Kind::kFilter;
                          });
    i = end;
  }
  for (size_t i = 1; i < nodes.size();) {
    if (nodes[i]->kind == PlanNode::Kind::kFilter &&
        nodes[i - 1]->kind == PlanNode::Kind::kFilter) {
      auto& dst = nodes[i - 1]->predicates;
      auto& src = nodes[i]->predicates;
      dst.insert(dst.end(), src.begin(), src.end());
      nodes.erase(nodes.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    ++i;
  }

  Relink(plan, std::move(nodes));
}

}  // namespace declsched::scheduler::ir
