// LowerDatalogRules: Datalog front-end of the protocol IR.
//
// Classifies the program's rules by semantic role — finished-transaction
// derivation, write/read lock sets over `hist`, blocked-operation rules
// (lock conflicts and pending-pending ordering conflicts over `req`),
// qualified-output heads, throttled-tenant rules over `tenantacct`, and
// rank relations joining `reqtenant`/`tenantacct`/`reqmeta` — by matching
// each rule against the idiom templates modulo predicate and variable
// renaming. A program whose rules all classify lowers to the same
// ProtocolPlan the equivalent SQL does; anything outside the dialect
// returns Unsupported and the Datalog backend falls back to the
// interpreted semi-naive engine.

#ifndef DECLSCHED_SCHEDULER_IR_LOWER_DATALOG_H_
#define DECLSCHED_SCHEDULER_IR_LOWER_DATALOG_H_

#include "common/result.h"
#include "datalog/ast.h"
#include "scheduler/ir/protocol_plan.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler::ir {

/// Lowers a parsed program. `spec` names the output relation
/// (`datalog_output`) and the optional rank relation (`datalog_rank`).
Result<ProtocolPlan> LowerDatalogRules(const datalog::Program& program,
                                       const ProtocolSpec& spec);

/// Parses, lowers and optimizes `spec.text`. The one-call form the Datalog
/// backend and ExplainProtocol() use.
Result<ProtocolPlan> LowerDatalogSpec(const ProtocolSpec& spec);

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_LOWER_DATALOG_H_
