#include "scheduler/ir/lower_datalog.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/parser.h"
#include "scheduler/ir/optimize.h"

namespace declsched::scheduler::ir {

namespace {

using datalog::Atom;
using datalog::BodyLiteral;
using datalog::CompareOp;
using datalog::Program;
using datalog::Rule;
using datalog::Term;

Status Unsupported(const std::string& what) {
  return Status::Unsupported("datalog lowering: " + what);
}

bool IsVar(const Term& t, std::string* name) {
  if (t.kind != Term::Kind::kVariable) return false;
  *name = t.var;
  return true;
}

bool IsStringConst(const Term& t, const char* s) {
  return t.kind == Term::Kind::kConstant &&
         t.value.type() == storage::ValueType::kString && t.value.AsString() == s;
}

bool IsIntConst(const Term& t, int64_t v) {
  return t.kind == Term::Kind::kConstant &&
         t.value.type() == storage::ValueType::kInt64 && t.value.AsInt64() == v;
}

int Occurrences(const Rule& rule, const std::string& var) {
  int count = 0;
  auto count_atom = [&](const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.kind == Term::Kind::kVariable && t.var == var) ++count;
    }
  };
  count_atom(rule.head);
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kComparison) {
      if (lit.lhs.kind == Term::Kind::kVariable && lit.lhs.var == var) ++count;
      if (lit.rhs.kind == Term::Kind::kVariable && lit.rhs.var == var) ++count;
    } else {
      count_atom(lit.atom);
    }
  }
  return count;
}

/// A "don't care" position: a wildcard, or a variable nothing else reads.
bool IsFree(const Rule& rule, const Term& t) {
  if (t.kind == Term::Kind::kWildcard) return true;
  if (t.kind != Term::Kind::kVariable) return false;
  return Occurrences(rule, t.var) == 1;
}

bool IsVarNamed(const Term& t, const std::string& name) {
  return t.kind == Term::Kind::kVariable && t.var == name;
}

// --- role classification ------------------------------------------------

enum class Role { kFinished, kWrote, kWLock, kRLock, kBlocked, kQualified,
                  kThrottled, kOther };

struct QualifiedInfo {
  ConflictRules rules;
  bool throttle = false;
};

class Analyzer {
 public:
  explicit Analyzer(const Program& program) {
    for (const Rule& rule : program.rules) {
      defs_[rule.head.predicate].push_back(&rule);
    }
  }

  Result<Role> Classify(const std::string& pred);
  Result<ConflictRules> BlockedRules(const std::string& pred);
  Result<QualifiedInfo> Qualified(const std::string& pred);
  Result<QualifiedInfo> QualifiedImpl(const std::string& pred);
  const std::vector<const Rule*>* Defs(const std::string& pred) const {
    auto it = defs_.find(pred);
    return it == defs_.end() ? nullptr : &it->second;
  }

 private:
  bool Is(const std::string& pred, Role want) {
    auto result = Classify(pred);
    return result.ok() && *result == want;
  }

  bool MatchFinished(const std::vector<const Rule*>& rules);
  bool MatchWrote(const std::vector<const Rule*>& rules);
  bool MatchWLock(const std::vector<const Rule*>& rules);
  bool MatchRLock(const std::vector<const Rule*>& rules);
  bool MatchBlocked(const std::vector<const Rule*>& rules, ConflictRules* out);
  bool MatchThrottled(const std::vector<const Rule*>& rules);

  std::map<std::string, std::vector<const Rule*>> defs_;
  std::map<std::string, Role> roles_;
  std::map<std::string, ConflictRules> blocked_;
  std::set<std::string> visiting_;
  /// Separate guard for the Qualified() alias chain (q1 :- q2 :- q1 ...).
  std::set<std::string> qualified_visiting_;
};

Result<Role> Analyzer::Classify(const std::string& pred) {
  auto it = roles_.find(pred);
  if (it != roles_.end()) return it->second;
  auto def = defs_.find(pred);
  if (def == defs_.end()) return Role::kOther;  // EDB or undefined
  if (visiting_.count(pred) > 0) {
    return Unsupported("recursive predicate '" + pred + "'");
  }
  visiting_.insert(pred);
  Role role = Role::kOther;
  ConflictRules blocked;
  if (MatchFinished(def->second)) {
    role = Role::kFinished;
  } else if (MatchWrote(def->second)) {
    role = Role::kWrote;
  } else if (MatchWLock(def->second)) {
    role = Role::kWLock;
  } else if (MatchRLock(def->second)) {
    role = Role::kRLock;
  } else if (MatchThrottled(def->second)) {
    role = Role::kThrottled;
  } else if (MatchBlocked(def->second, &blocked)) {
    role = Role::kBlocked;
    blocked_[pred] = blocked;
  } else if (Qualified(pred).ok()) {
    role = Role::kQualified;
  }
  visiting_.erase(pred);
  roles_[pred] = role;
  return role;
}

/// finished(Ta) :- hist(_, Ta, _, "c", _).   (and the "a" twin)
bool Analyzer::MatchFinished(const std::vector<const Rule*>& rules) {
  bool has_a = false;
  bool has_c = false;
  for (const Rule* rule : rules) {
    std::string ta;
    if (rule->head.args.size() != 1 || !IsVar(rule->head.args[0], &ta)) {
      return false;
    }
    if (rule->body.size() != 1 ||
        rule->body[0].kind != BodyLiteral::Kind::kAtom) {
      return false;
    }
    const Atom& hist = rule->body[0].atom;
    if (hist.predicate != "hist" || hist.args.size() != 5 ||
        !IsVarNamed(hist.args[1], ta) || !IsFree(*rule, hist.args[0]) ||
        !IsFree(*rule, hist.args[2]) || !IsFree(*rule, hist.args[4])) {
      return false;
    }
    if (IsStringConst(hist.args[3], "a")) {
      has_a = true;
    } else if (IsStringConst(hist.args[3], "c")) {
      has_c = true;
    } else {
      return false;
    }
  }
  return has_a && has_c;
}

/// wrote(Obj, Ta) :- hist(_, Ta, _, "w", Obj).
bool Analyzer::MatchWrote(const std::vector<const Rule*>& rules) {
  if (rules.size() != 1) return false;
  const Rule& rule = *rules[0];
  std::string obj;
  std::string ta;
  if (rule.head.args.size() != 2 || !IsVar(rule.head.args[0], &obj) ||
      !IsVar(rule.head.args[1], &ta) || obj == ta) {
    return false;
  }
  if (rule.body.size() != 1 || rule.body[0].kind != BodyLiteral::Kind::kAtom) {
    return false;
  }
  const Atom& hist = rule.body[0].atom;
  return hist.predicate == "hist" && hist.args.size() == 5 &&
         IsVarNamed(hist.args[1], ta) && IsStringConst(hist.args[3], "w") &&
         IsVarNamed(hist.args[4], obj) && IsFree(rule, hist.args[0]) &&
         IsFree(rule, hist.args[2]);
}

/// wlock(Obj, Ta) :- hist(_, Ta, _, "w", Obj), !finished(Ta).
bool Analyzer::MatchWLock(const std::vector<const Rule*>& rules) {
  if (rules.size() != 1) return false;
  const Rule& rule = *rules[0];
  std::string obj;
  std::string ta;
  if (rule.head.args.size() != 2 || !IsVar(rule.head.args[0], &obj) ||
      !IsVar(rule.head.args[1], &ta) || obj == ta || rule.body.size() != 2) {
    return false;
  }
  const BodyLiteral& hist_lit = rule.body[0];
  const BodyLiteral& neg = rule.body[1];
  if (hist_lit.kind != BodyLiteral::Kind::kAtom ||
      neg.kind != BodyLiteral::Kind::kNegatedAtom) {
    return false;
  }
  const Atom& hist = hist_lit.atom;
  if (hist.predicate != "hist" || hist.args.size() != 5 ||
      !IsVarNamed(hist.args[1], ta) || !IsStringConst(hist.args[3], "w") ||
      !IsVarNamed(hist.args[4], obj) || !IsFree(rule, hist.args[0]) ||
      !IsFree(rule, hist.args[2])) {
    return false;
  }
  return neg.atom.args.size() == 1 && IsVarNamed(neg.atom.args[0], ta) &&
         Is(neg.atom.predicate, Role::kFinished);
}

/// rlock(Obj, Ta) :- hist(_, Ta, _, "r", Obj), !finished(Ta),
///                   !wrote(Obj, Ta).
bool Analyzer::MatchRLock(const std::vector<const Rule*>& rules) {
  if (rules.size() != 1) return false;
  const Rule& rule = *rules[0];
  std::string obj;
  std::string ta;
  if (rule.head.args.size() != 2 || !IsVar(rule.head.args[0], &obj) ||
      !IsVar(rule.head.args[1], &ta) || obj == ta || rule.body.size() != 3) {
    return false;
  }
  const Atom* hist = nullptr;
  const Atom* neg_finished = nullptr;
  const Atom* neg_wrote = nullptr;
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kAtom && lit.atom.predicate == "hist") {
      hist = &lit.atom;
    } else if (lit.kind == BodyLiteral::Kind::kNegatedAtom &&
               lit.atom.args.size() == 1) {
      neg_finished = &lit.atom;
    } else if (lit.kind == BodyLiteral::Kind::kNegatedAtom &&
               lit.atom.args.size() == 2) {
      neg_wrote = &lit.atom;
    } else {
      return false;
    }
  }
  if (hist == nullptr || neg_finished == nullptr || neg_wrote == nullptr) {
    return false;
  }
  if (hist->args.size() != 5 || !IsVarNamed(hist->args[1], ta) ||
      !IsStringConst(hist->args[3], "r") || !IsVarNamed(hist->args[4], obj) ||
      !IsFree(rule, hist->args[0]) || !IsFree(rule, hist->args[2])) {
    return false;
  }
  return IsVarNamed(neg_finished->args[0], ta) &&
         Is(neg_finished->predicate, Role::kFinished) &&
         IsVarNamed(neg_wrote->args[0], obj) &&
         IsVarNamed(neg_wrote->args[1], ta) &&
         Is(neg_wrote->predicate, Role::kWrote);
}

namespace {

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;
  }
}

/// True if `lit` states `<var> > <other_var>` for the given variables
/// (either literal direction).
bool SaysGreater(const BodyLiteral& lit, const std::string& greater,
                 const std::string& lesser) {
  if (lit.kind != BodyLiteral::Kind::kComparison) return false;
  if (lit.op == CompareOp::kGt) {
    return IsVarNamed(lit.lhs, greater) && IsVarNamed(lit.rhs, lesser);
  }
  if (lit.op == CompareOp::kLt) {
    return IsVarNamed(lit.lhs, lesser) && IsVarNamed(lit.rhs, greater);
  }
  return false;
}

bool SaysNotEqual(const BodyLiteral& lit, const std::string& a,
                  const std::string& b) {
  return lit.kind == BodyLiteral::Kind::kComparison &&
         lit.op == CompareOp::kNe &&
         ((IsVarNamed(lit.lhs, a) && IsVarNamed(lit.rhs, b)) ||
          (IsVarNamed(lit.lhs, b) && IsVarNamed(lit.rhs, a)));
}

}  // namespace

/// blocked(Ta, In) :- req(_, Ta, In, [op], Obj), lockset(Obj, T2), Ta != T2.
/// blocked(T2, In2) :- req(_, T2, In2, [op], Obj), req(_, T1, _, [op], Obj),
///                     T2 > T1.
bool Analyzer::MatchBlocked(const std::vector<const Rule*>& rules,
                            ConflictRules* out) {
  *out = ConflictRules{};
  for (const Rule* rule_ptr : rules) {
    const Rule& rule = *rule_ptr;
    std::string ta;
    std::string in;
    if (rule.head.args.size() != 2 || !IsVar(rule.head.args[0], &ta) ||
        !IsVar(rule.head.args[1], &in) || ta == in) {
      return false;
    }
    std::vector<const Atom*> req_atoms;
    const Atom* lock_atom = nullptr;
    std::vector<const BodyLiteral*> comparisons;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kComparison) {
        comparisons.push_back(&lit);
      } else if (lit.kind == BodyLiteral::Kind::kAtom &&
                 lit.atom.predicate == "req") {
        req_atoms.push_back(&lit.atom);
      } else if (lit.kind == BodyLiteral::Kind::kAtom &&
                 lit.atom.args.size() == 2 && lock_atom == nullptr) {
        lock_atom = &lit.atom;
      } else {
        return false;
      }
    }
    if (comparisons.size() != 1) return false;

    // The blocked request's own atom binds the head variables.
    auto binds_head = [&](const Atom& a) {
      return a.args.size() == 5 && IsVarNamed(a.args[1], ta) &&
             IsVarNamed(a.args[2], in);
    };
    auto op_writes_only = [&](const Atom& a, bool* writes) {
      if (IsStringConst(a.args[3], "w")) {
        *writes = true;
        return true;
      }
      *writes = false;
      return IsFree(rule, a.args[3]);
    };

    if (lock_atom != nullptr) {
      // Lock-conflict form.
      if (req_atoms.size() != 1 || !binds_head(*req_atoms[0])) return false;
      const Atom& req = *req_atoms[0];
      std::string obj;
      std::string t2;
      bool writes = false;
      if (!IsFree(rule, req.args[0]) || !op_writes_only(req, &writes) ||
          !IsVar(req.args[4], &obj) || !IsVarNamed(lock_atom->args[0], obj) ||
          !IsVar(lock_atom->args[1], &t2) || t2 == ta ||
          !SaysNotEqual(*comparisons[0], ta, t2)) {
        // t2 == ta would make the Ta != T2 test vacuously false (the rule
        // derives nothing) — out of dialect, not a conflict rule.
        return false;
      }
      auto role = Classify(lock_atom->predicate);
      if (!role.ok()) return false;
      if (*role == Role::kWLock) {
        (writes ? out->wlock_blocks_writes : out->wlock_blocks_all) = true;
      } else if (*role == Role::kRLock && writes) {
        out->rlock_blocks_writes = true;
      } else {
        return false;
      }
      continue;
    }

    // Pending-pending form.
    if (req_atoms.size() != 2) return false;
    const Atom* blocked_atom = nullptr;
    const Atom* other_atom = nullptr;
    for (const Atom* a : req_atoms) {
      if (binds_head(*a)) {
        blocked_atom = a;
      } else {
        other_atom = a;
      }
    }
    if (blocked_atom == nullptr || other_atom == nullptr ||
        other_atom->args.size() != 5) {
      return false;
    }
    std::string obj;
    std::string other_ta;
    bool blocked_w = false;
    bool other_w = false;
    if (!IsFree(rule, blocked_atom->args[0]) ||
        !op_writes_only(*blocked_atom, &blocked_w) ||
        !IsVar(blocked_atom->args[4], &obj) ||
        !IsFree(rule, other_atom->args[0]) ||
        !IsVar(other_atom->args[1], &other_ta) || other_ta == ta ||
        !IsFree(rule, other_atom->args[2]) ||
        !op_writes_only(*other_atom, &other_w) ||
        !IsVarNamed(other_atom->args[4], obj) ||
        !SaysGreater(*comparisons[0], ta, other_ta)) {
      // other_ta == ta would make the T2 > T1 test vacuously false (the
      // rule derives nothing) — out of dialect, not a conflict rule.
      return false;
    }
    if (blocked_w && other_w) {
      out->pending_write_blocks_writes = true;
    } else if (other_w) {
      out->pending_write_blocks_all = true;
    } else if (blocked_w) {
      out->pending_any_blocks_writes = true;
    } else {
      return false;
    }
  }
  return out->Any();
}

/// throttled(T) :- tenantacct(T, _, _, _, _, _, Cap, Inf), Cap > 0,
///                 Inf >= Cap.               (and the rate/tokens twin)
bool Analyzer::MatchThrottled(const std::vector<const Rule*>& rules) {
  bool cap_rule = false;
  bool rate_rule = false;
  for (const Rule* rule_ptr : rules) {
    const Rule& rule = *rule_ptr;
    std::string t;
    if (rule.head.args.size() != 1 || !IsVar(rule.head.args[0], &t)) {
      return false;
    }
    const Atom* acct = nullptr;
    std::vector<const BodyLiteral*> comparisons;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kComparison) {
        comparisons.push_back(&lit);
      } else if (lit.kind == BodyLiteral::Kind::kAtom &&
                 lit.atom.predicate == "tenantacct" &&
                 lit.atom.args.size() == 8 && acct == nullptr) {
        acct = &lit.atom;
      } else {
        return false;
      }
    }
    if (acct == nullptr || !IsVarNamed(acct->args[0], t) ||
        comparisons.size() != 2) {
      return false;
    }
    // tenantacct columns: (tenant, weight, vtime, round, tokens, rate, cap,
    // inflight) — identify which pair of columns the rule tests.
    std::string tokens_var;
    std::string rate_var;
    std::string cap_var;
    std::string inflight_var;
    IsVar(acct->args[4], &tokens_var);
    IsVar(acct->args[5], &rate_var);
    IsVar(acct->args[6], &cap_var);
    IsVar(acct->args[7], &inflight_var);

    auto says = [&](const std::string& var, CompareOp op, int64_t value) {
      if (var.empty()) return false;
      for (const BodyLiteral* c : comparisons) {
        if (IsVarNamed(c->lhs, var) && c->op == op && IsIntConst(c->rhs, value)) {
          return true;
        }
        if (IsVarNamed(c->rhs, var) && FlipCompare(c->op) == op &&
            IsIntConst(c->lhs, value)) {
          return true;
        }
      }
      return false;
    };
    auto says_ge = [&](const std::string& a, const std::string& b) {
      if (a.empty() || b.empty()) return false;
      for (const BodyLiteral* c : comparisons) {
        if (IsVarNamed(c->lhs, a) && c->op == CompareOp::kGe &&
            IsVarNamed(c->rhs, b)) {
          return true;
        }
        if (IsVarNamed(c->lhs, b) && c->op == CompareOp::kLe &&
            IsVarNamed(c->rhs, a)) {
          return true;
        }
      }
      return false;
    };
    if (says(cap_var, CompareOp::kGt, 0) && says_ge(inflight_var, cap_var)) {
      cap_rule = true;
    } else if (says(rate_var, CompareOp::kGt, 0) &&
               says(tokens_var, CompareOp::kLe, 0)) {
      rate_rule = true;
    } else {
      return false;
    }
  }
  return cap_rule && rate_rule;
}

Result<ConflictRules> Analyzer::BlockedRules(const std::string& pred) {
  DS_ASSIGN_OR_RETURN(Role role, Classify(pred));
  if (role != Role::kBlocked) {
    return Unsupported("'" + pred + "' is not a blocked-operation relation");
  }
  return blocked_.at(pred);
}

/// qualified(Id, Ta, In, Op, Obj) :-
///     req(Id, Ta, In, Op, Obj), !blocked(Ta, In)
///   | <other-qualified>(Id, Ta, In, Op, Obj)
///   [, reqtenant(Id, T), !throttled(T)].
Result<QualifiedInfo> Analyzer::Qualified(const std::string& pred) {
  if (qualified_visiting_.count(pred) > 0) {
    return Unsupported("recursive output relation '" + pred + "'");
  }
  qualified_visiting_.insert(pred);
  auto result = QualifiedImpl(pred);
  qualified_visiting_.erase(pred);
  return result;
}

Result<QualifiedInfo> Analyzer::QualifiedImpl(const std::string& pred) {
  const std::vector<const Rule*>* defs = Defs(pred);
  if (defs == nullptr || defs->size() != 1) {
    return Unsupported("output relation '" + pred +
                       "' is not derived by exactly one rule");
  }
  const Rule& rule = *(*defs)[0];
  std::vector<std::string> head_vars;
  if (rule.head.args.size() != 5) {
    return Unsupported("output relation does not have the Table 2 arity");
  }
  for (const Term& t : rule.head.args) {
    std::string v;
    if (!IsVar(t, &v)) {
      return Unsupported("output head arguments must be variables");
    }
    head_vars.push_back(v);
  }

  auto matches_head = [&](const Atom& a) {
    if (a.args.size() != 5) return false;
    for (size_t i = 0; i < 5; ++i) {
      if (!IsVarNamed(a.args[i], head_vars[i])) return false;
    }
    return true;
  };

  const Atom* source = nullptr;        // req or an inner qualified relation
  const Atom* neg_blocked = nullptr;
  const Atom* reqtenant = nullptr;
  const Atom* neg_throttled = nullptr;
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kAtom && matches_head(lit.atom) &&
        source == nullptr) {
      source = &lit.atom;
    } else if (lit.kind == BodyLiteral::Kind::kAtom &&
               lit.atom.predicate == "reqtenant" &&
               lit.atom.args.size() == 2 && reqtenant == nullptr) {
      reqtenant = &lit.atom;
    } else if (lit.kind == BodyLiteral::Kind::kNegatedAtom &&
               lit.atom.args.size() == 2 && neg_blocked == nullptr) {
      neg_blocked = &lit.atom;
    } else if (lit.kind == BodyLiteral::Kind::kNegatedAtom &&
               lit.atom.args.size() == 1 && neg_throttled == nullptr) {
      neg_throttled = &lit.atom;
    } else {
      return Unsupported("output rule has an unrecognized body literal");
    }
  }
  if (source == nullptr) {
    return Unsupported("output rule does not bind its head from one atom");
  }

  QualifiedInfo info;
  if (source->predicate == "req") {
    if (neg_blocked == nullptr) {
      // FCFS-style: every pending request qualifies.
      info.rules = ConflictRules{};
    } else {
      if (!IsVarNamed(neg_blocked->args[0], head_vars[1]) ||
          !IsVarNamed(neg_blocked->args[1], head_vars[2])) {
        return Unsupported("blocked test is not on the head's (ta, intrata)");
      }
      DS_ASSIGN_OR_RETURN(info.rules, BlockedRules(neg_blocked->predicate));
    }
  } else {
    if (neg_blocked != nullptr) {
      return Unsupported("alias rule with a blocked test");
    }
    DS_ASSIGN_OR_RETURN(info, Qualified(source->predicate));
  }

  if (reqtenant != nullptr || neg_throttled != nullptr) {
    if (reqtenant == nullptr || neg_throttled == nullptr) {
      return Unsupported("throttle filter needs reqtenant and !throttled");
    }
    std::string tvar;
    if (!IsVarNamed(reqtenant->args[0], head_vars[0]) ||
        !IsVar(reqtenant->args[1], &tvar) ||
        !IsVarNamed(neg_throttled->args[0], tvar)) {
      return Unsupported("throttle filter does not join on the request id");
    }
    DS_ASSIGN_OR_RETURN(Role role, Classify(neg_throttled->predicate));
    if (role != Role::kThrottled) {
      return Unsupported("'" + neg_throttled->predicate +
                         "' is not the throttled-tenant relation");
    }
    info.throttle = true;
  }
  return info;
}

/// rankkey(Id, Key...) :- qualified(Id, ...), reqtenant(Id, T),
///                        tenantacct(T, ...) [, reqmeta(Id, ...)].
struct RankInfo {
  std::vector<RankKey> keys;
  bool needs_acct = false;  // body joins tenantacct: missing rows sort last
};

Result<RankInfo> LowerRankRelation(Analyzer* analyzer, const std::string& pred,
                                   const std::string& output_pred) {
  const std::vector<const Rule*>* defs = analyzer->Defs(pred);
  if (defs == nullptr || defs->size() != 1) {
    return Unsupported("rank relation '" + pred +
                       "' is not derived by exactly one rule");
  }
  const Rule& rule = *(*defs)[0];
  if (rule.head.args.size() < 2) {
    return Unsupported("rank relation carries no key columns");
  }
  std::string id;
  if (!IsVar(rule.head.args[0], &id)) {
    return Unsupported("rank head does not start with the request id");
  }

  const Atom* qualified = nullptr;
  const Atom* reqtenant = nullptr;
  const Atom* acct = nullptr;
  const Atom* reqmeta = nullptr;
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind != BodyLiteral::Kind::kAtom) {
      return Unsupported("rank rule bodies are positive joins only");
    }
    const Atom& a = lit.atom;
    if (a.predicate == output_pred && qualified == nullptr) {
      qualified = &a;
    } else if (a.predicate == "reqtenant" && a.args.size() == 2 &&
               reqtenant == nullptr) {
      reqtenant = &a;
    } else if (a.predicate == "tenantacct" && a.args.size() == 8 &&
               acct == nullptr) {
      acct = &a;
    } else if (a.predicate == "reqmeta" && a.args.size() == 4 &&
               reqmeta == nullptr) {
      reqmeta = &a;
    } else {
      return Unsupported("rank rule joins an unrecognized relation");
    }
  }
  if (qualified == nullptr || qualified->args.empty() ||
      !IsVarNamed(qualified->args[0], id)) {
    return Unsupported("rank rule does not range over the output relation");
  }
  std::string tvar;
  if (reqtenant != nullptr &&
      (!IsVarNamed(reqtenant->args[0], id) || !IsVar(reqtenant->args[1], &tvar))) {
    return Unsupported("rank rule's reqtenant does not join on the id");
  }
  if (acct != nullptr &&
      (reqtenant == nullptr || !IsVarNamed(acct->args[0], tvar))) {
    return Unsupported("rank rule's tenantacct does not join via reqtenant");
  }
  if (reqmeta != nullptr && !IsVarNamed(reqmeta->args[0], id)) {
    return Unsupported("rank rule's reqmeta does not join on the id");
  }

  RankInfo info;
  info.needs_acct = acct != nullptr;
  for (size_t k = 1; k < rule.head.args.size(); ++k) {
    std::string var;
    if (!IsVar(rule.head.args[k], &var)) {
      return Unsupported("rank key columns must be variables");
    }
    RankSource source;
    if (!tvar.empty() && var == tvar) {
      source = RankSource::kTenant;
    } else if (acct != nullptr && IsVarNamed(acct->args[2], var)) {
      source = RankSource::kTenantVtime;
    } else if (acct != nullptr && IsVarNamed(acct->args[3], var)) {
      source = RankSource::kTenantRound;
    } else if (reqmeta != nullptr && IsVarNamed(reqmeta->args[1], var)) {
      source = RankSource::kPriority;
    } else if (reqmeta != nullptr && IsVarNamed(reqmeta->args[2], var)) {
      source = RankSource::kDeadline;
    } else {
      return Unsupported("rank key '" + var +
                         "' does not come from tenantacct or reqmeta");
    }
    info.keys.push_back(RankKey{source});
  }
  // Tie-break on id mirrors the interpreter's comparator.
  info.keys.push_back(RankKey{RankSource::kId});
  return info;
}

}  // namespace

Result<ProtocolPlan> LowerDatalogRules(const datalog::Program& program,
                                       const ProtocolSpec& spec) {
  Analyzer analyzer(program);
  DS_ASSIGN_OR_RETURN(QualifiedInfo info,
                      analyzer.Qualified(spec.datalog_output));

  ProtocolPlan plan;
  plan.source = "datalog";
  std::unique_ptr<PlanNode> chain =
      PlanNode::Make(PlanNode::Kind::kScanPending);
  if (info.rules.Any()) {
    auto anti = PlanNode::Make(PlanNode::Kind::kLockAntiJoin);
    anti->conflicts = info.rules;
    anti->input = std::move(chain);
    chain = std::move(anti);
  }
  if (info.throttle) {
    auto anti = PlanNode::Make(PlanNode::Kind::kThrottleAntiJoin);
    anti->input = std::move(chain);
    chain = std::move(anti);
  }
  if (!spec.datalog_rank.empty()) {
    DS_ASSIGN_OR_RETURN(
        RankInfo rank,
        LowerRankRelation(&analyzer, spec.datalog_rank, spec.datalog_output));
    if (rank.needs_acct) {
      auto join = PlanNode::Make(PlanNode::Kind::kTenantJoin);
      join->left_outer = true;  // ids missing from the rank relation stay
      join->input = std::move(chain);
      chain = std::move(join);
    }
    auto rank_node = PlanNode::Make(PlanNode::Kind::kRank);
    rank_node->keys = std::move(rank.keys);
    rank_node->missing_acct_last = rank.needs_acct;
    rank_node->input = std::move(chain);
    chain = std::move(rank_node);
    plan.ordered = true;
  }
  plan.root = std::move(chain);
  return plan;
}

Result<ProtocolPlan> LowerDatalogSpec(const ProtocolSpec& spec) {
  DS_ASSIGN_OR_RETURN(datalog::Program program,
                      datalog::ParseProgram(spec.text));
  DS_ASSIGN_OR_RETURN(ProtocolPlan plan, LowerDatalogRules(program, spec));
  OptimizePlan(&plan);
  return plan;
}

}  // namespace declsched::scheduler::ir
