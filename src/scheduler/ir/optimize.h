// Rule-based optimization over ProtocolPlan pipelines.
//
// The lowerings emit plans that mirror the declarative text's shape; the
// optimizer then applies the rewrites a query optimizer would — the
// paper's "optimization without touching the specification", now applied
// to the compiled form:
//
//   * predicate pushdown: typed filters and the throttled-tenant anti-join
//     move below the (much more expensive) lock anti-join, so cheap
//     per-row checks shrink the stream first;
//   * rank elision: an ascending-id rank over the id-ordered scan is a
//     no-op and is dropped; for unordered protocols every rank not feeding
//     a limit is dropped (the scheduler dispatches by id anyway);
//   * join elision: a tenants join no rank key reads is dropped.
//
// Every rule preserves semantics exactly: the lock anti-join judges
// pending-pending conflicts against the full pending universe (not the
// incoming stream), so filters commute with it; ranks/joins are only
// dropped when provably unobservable in the protocol's output contract.

#ifndef DECLSCHED_SCHEDULER_IR_OPTIMIZE_H_
#define DECLSCHED_SCHEDULER_IR_OPTIMIZE_H_

#include "scheduler/ir/protocol_plan.h"

namespace declsched::scheduler::ir {

/// Optimizes `plan` in place. Idempotent.
void OptimizePlan(ProtocolPlan* plan);

}  // namespace declsched::scheduler::ir

#endif  // DECLSCHED_SCHEDULER_IR_OPTIMIZE_H_
