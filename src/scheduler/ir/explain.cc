#include "scheduler/ir/explain.h"

#include <string>
#include <vector>

#include "datalog/engine.h"
#include "scheduler/ir/lower_datalog.h"
#include "scheduler/ir/lower_sql.h"
#include "sql/explain.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace declsched::scheduler::ir {

namespace {

const char* RankSourceName(RankSource source) {
  switch (source) {
    case RankSource::kId: return "id";
    case RankSource::kPriority: return "priority";
    case RankSource::kDeadline: return "deadline";
    case RankSource::kDeadlineIsZero: return "deadline=0?";
    case RankSource::kTenant: return "tenant";
    case RankSource::kTenantVtime: return "tenants.vtime";
    case RankSource::kTenantRound: return "tenants.round";
  }
  return "?";
}

const char* FieldName(RequestField field) {
  switch (field) {
    case RequestField::kId: return "id";
    case RequestField::kTa: return "ta";
    case RequestField::kIntrata: return "intrata";
    case RequestField::kObject: return "object";
    case RequestField::kPriority: return "priority";
    case RequestField::kDeadline: return "deadline";
    case RequestField::kArrival: return "arrival";
    case RequestField::kClient: return "client";
    case RequestField::kTenant: return "tenant";
    case RequestField::kOperation: return "operation";
  }
  return "?";
}

const char* CompareName(CompareKind cmp) {
  switch (cmp) {
    case CompareKind::kEq: return "=";
    case CompareKind::kNe: return "<>";
    case CompareKind::kLt: return "<";
    case CompareKind::kLe: return "<=";
    case CompareKind::kGt: return ">";
    case CompareKind::kGe: return ">=";
  }
  return "?";
}

std::string ConflictList(const ConflictRules& rules) {
  std::vector<const char*> parts;
  if (rules.wlock_blocks_all) parts.push_back("wlock->all");
  if (rules.wlock_blocks_writes) parts.push_back("wlock->w");
  if (rules.rlock_blocks_writes) parts.push_back("rlock->w");
  if (rules.pending_write_blocks_all) parts.push_back("pend:w->all");
  if (rules.pending_write_blocks_writes) parts.push_back("pend:w->w");
  if (rules.pending_any_blocks_writes) parts.push_back("pend:any->w");
  std::string out;
  for (const char* part : parts) {
    if (!out.empty()) out += ", ";
    out += part;
  }
  return out;
}

std::string NodeLine(const PlanNode& node) {
  switch (node.kind) {
    case PlanNode::Kind::kScanPending:
      return "ScanPending";
    case PlanNode::Kind::kFilter: {
      std::string out = "Filter [";
      for (size_t i = 0; i < node.predicates.size(); ++i) {
        const FieldPredicate& p = node.predicates[i];
        if (i > 0) out += " AND ";
        out += FieldName(p.field);
        out += ' ';
        out += CompareName(p.cmp);
        out += ' ';
        if (p.field == RequestField::kOperation) {
          out += '\'';
          out += txn::OpTypeToChar(p.op_value);
          out += '\'';
        } else {
          out += std::to_string(p.value);
        }
      }
      return out + "]";
    }
    case PlanNode::Kind::kLockAntiJoin:
      return "LockAntiJoin [" + ConflictList(node.conflicts) + "]";
    case PlanNode::Kind::kThrottleAntiJoin:
      return "ThrottleAntiJoin [tenants: cap/tokens]";
    case PlanNode::Kind::kTenantJoin:
      return std::string("TenantJoin ") +
             (node.left_outer ? "LEFT [tenants]" : "[tenants]");
    case PlanNode::Kind::kRank: {
      std::string out = "Rank [";
      for (size_t i = 0; i < node.keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += RankSourceName(node.keys[i].source);
      }
      if (node.missing_acct_last) out += "; unranked last";
      return out + "]";
    }
    case PlanNode::Kind::kLimit:
      return "Limit " + std::to_string(node.limit);
  }
  return "?";
}

}  // namespace

std::string ExplainProtocolPlan(const ProtocolPlan& plan) {
  std::string out;
  int indent = 0;
  for (const PlanNode* node = plan.root.get(); node != nullptr;
       node = node->input.get(), ++indent) {
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += NodeLine(*node);
    out += '\n';
  }
  return out;
}

Result<std::string> ExplainProtocol(const ProtocolSpec& spec,
                                    RequestStore* store) {
  const std::string header =
      "protocol " + spec.name + " (backend: " + spec.backend + ")\n";
  if (spec.backend == "sql" || spec.backend == "datalog") {
    ProtocolSpec resolved = spec;
    bool force_interp = false;
    constexpr const char kInterpPrefix[] = "interp:";
    if (resolved.text.rfind(kInterpPrefix, 0) == 0) {
      force_interp = true;
      resolved.text = resolved.text.substr(sizeof(kInterpPrefix) - 1);
    }
    Result<ProtocolPlan> lowered =
        spec.backend == "sql" ? LowerSqlSpec(resolved, *store->catalog())
                              : LowerDatalogSpec(resolved);
    if (!force_interp && lowered.ok()) {
      const std::string executor =
          spec.ir_executor == "scalar"
              ? "executor: scalar (row-at-a-time oracle, forced by spec)\n"
              : "executor: vectorized (columnar, selection vectors)\n";
      return header + "compiled protocol IR:\n" + executor +
             ExplainProtocolPlan(*lowered);
    }
    std::string out = header;
    out += force_interp ? "interpreted (forced by interp: prefix)\n"
                        : "interpreted (lowering failed: " +
                              lowered.status().message() + ")\n";
    if (spec.backend == "sql") {
      DS_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                          sql::ParseSelect(resolved.text));
      DS_ASSIGN_OR_RETURN(sql::PreparedPlan plan,
                          sql::PlanSelectStatement(*store->catalog(), *stmt));
      out += "physical SQL plan:\n" + sql::ExplainPlan(plan);
    } else {
      DS_ASSIGN_OR_RETURN(datalog::DatalogProgram program,
                          datalog::DatalogProgram::Create(resolved.text));
      out += "datalog program (" + std::to_string(program.num_strata()) +
             " strata):\n" + program.ToString();
    }
    return out;
  }
  if (spec.backend == "native") {
    return header + "hand-coded C++ variant: " + spec.text + "\n";
  }
  if (spec.backend == "composed") {
    return header + "stage pipeline: " + spec.text + "\n";
  }
  return header;
}

}  // namespace declsched::scheduler::ir
