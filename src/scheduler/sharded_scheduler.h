// ShardedScheduler: the declarative middleware partitioned into N parallel
// shards, each owning a full scheduler stack of its own.
//
// Motivation: after the incremental-state work made one cycle O(delta),
// the remaining scale ceiling is that one thread owns all admission,
// analysis, and dispatch. Because the declarative policy is separated from
// the execution substrate (the Protocol API), the substrate can be sharded
// without touching any policy code: each shard runs its own
// DeclarativeScheduler — RequestStore mirror, LockTableState, compiled
// Protocol instance — on its own worker thread, over the partition of
// requests whose primary lock target it owns.
//
// Partitioning (see ShardRouter): a read/write locks exactly one object,
// and SS2PL qualification is per-object — the locks that can block a
// request and the pending requests that can conflict with it all live with
// that object's shard. Single-shard traffic therefore schedules with zero
// cross-shard coordination. The one cross-shard event is a finisher
// (commit/abort) of a transaction whose lock set spans shards: its
// dispatch must release locks on every shard the transaction touched,
// exactly once, and never before the finisher is actually dispatched
// (releasing early would publish a lock-release no unsharded SS2PL history
// could contain).
//
// The escrow path handles that event:
//   1. The coordinator (running on the submitting thread) acquires one
//      admission ticket per involved shard in canonical (ascending) shard
//      order — deadlock-free by construction, and serializing overlapping
//      escrows so their prepare/publish sequences never interleave.
//   2. Holding all tickets, it registers the escrow with every involved
//      shard (each shard's protocol sees the transaction in
//      ScheduleContext::escrowed from its next cycle) and only then
//      publishes the finisher for dispatch by admitting it to the home
//      shard (the lowest involved shard).
//   3. The home shard's protocol dispatches the finisher through the
//      normal declarative path. Observing that dispatch, the home worker
//      publishes mirror markers to the other involved shards, which apply
//      them via DeclarativeScheduler::ApplyEscrowedFinisher — the same
//      narrated store transition a local dispatch makes, so each shard's
//      incremental state absorbs the cross-shard delta at O(delta). A
//      shard that misses the narration (out-of-band edit) falls back to a
//      from-scratch rebuild via the epoch/content-version staleness
//      machinery, exactly as in the unsharded scheduler.
//
// Deadlock-victim aborts mirror the same way: the shard that aborts a
// victim publishes abort markers to every other shard in the victim's
// footprint, dropping its pending requests and releasing its locks there.
// Deadlock *detection* itself is shard-local (a waits-for cycle spanning
// shards is not yet seen); workloads that acquire objects in a canonical
// order are deadlock-free by construction.
//
// Submission contract (the paper's closed-loop clients already obey it):
// submit a transaction's finisher only after all of its reads/writes have
// been observed dispatched. Ids are assigned globally by this class.
//
// Two driving modes, same per-shard logic:
//   * threaded — Start() spawns one worker per shard; workers park when
//     quiescent and wake on admissions/mirrors. WaitIdle() waits for
//     global quiescence.
//   * cooperative — StepOnce()/RunUntilIdle() drive all shards on the
//     caller's thread, deterministically (property tests; single-core
//     speedup projection in bench_shard_scale).

#ifndef DECLSCHED_SCHEDULER_SHARDED_SCHEDULER_H_
#define DECLSCHED_SCHEDULER_SHARDED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "observability/metrics.h"
#include "scheduler/adaptive_controller.h"
#include "scheduler/declarative_scheduler.h"
#include "scheduler/shard_router.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace declsched::scheduler {

struct EscrowFanout;  // scheduler/durability.h

class ShardedScheduler {
 public:
  /// Called on the dispatching shard's cycle thread, after every cycle that
  /// dispatched requests. Must be thread-safe; may call Submit() (that is
  /// how closed-loop drivers feed finishers without an extra thread).
  using DispatchCallback = std::function<void(int shard, const RequestBatch& batch)>;

  /// Durability configuration. When enabled, Init() first recovers `dir`
  /// (snapshot restore + WAL replay + forced derived-state rebuild), then
  /// attaches one shared group-commit WAL to every shard's store, so each
  /// store mutation appends a logical record. Dispatch acknowledgments
  /// become durable at Wal::WhenDurable / Sync of the store's
  /// last_wal_lsn(); cycle threads themselves never block on fsync.
  struct DurabilityOptions {
    bool enabled = false;
    /// Data directory holding wal.log / snapshot.bin. Created if absent
    /// (one level only).
    std::string dir;
    /// fsync on each group commit. Off = page-cache durability (benches).
    bool fsync = true;
    /// Checkpoint when this many WAL bytes accumulated since the last one
    /// (checked by the periodic thread; <= 0 disables the size trigger).
    int64_t checkpoint_every_bytes = 64 << 20;
    /// Period of the background checkpoint thread started by Start()
    /// (0 = no thread; Checkpoint() can still be called manually).
    int64_t checkpoint_interval_ms = 0;
  };

  struct Options {
    int num_shards = 4;
    /// Per-shard scheduler template. shard/num_shards/first_request_id are
    /// overwritten per shard; the protocol compiles once per shard against
    /// that shard's own store.
    DeclarativeScheduler::Options shard;
    DispatchCallback on_dispatch;
    DurabilityOptions durability;
    /// Record every dispatched request into the log read by
    /// TakeDispatched(). Turn off for throughput benches that only count.
    bool keep_dispatch_log = true;
    /// When set, the scheduler reports sched_* metrics (admissions,
    /// dispatches, per-shard cycle cost, escrow traffic, GC retirements)
    /// into this registry alongside its own atomics. The registry must
    /// outlive the scheduler. Null = zero instrumentation cost.
    observability::MetricsRegistry* metrics = nullptr;
    /// Per-shard adaptive consistency (paper Section 5): when set, every
    /// shard runs its own AdaptiveConsistencyController, fed after each of
    /// its cycles with that shard's live signals — incoming-queue depth,
    /// blocked pending (lock-wait depth), the cycle's failed-to-qualify
    /// count, and the shard accountant's in-flight and starvation reads.
    /// Shards relax and tighten independently: a hot shard can run relaxed
    /// while quiet shards stay strict. Validated at Init(). With `metrics`
    /// set, exports adaptive_switches_total plus per-shard
    /// adaptive_relaxed / adaptive_load_score gauges.
    std::optional<AdaptiveConsistencyController::Options> adaptive;
  };

  /// Monotone aggregates, readable from any thread at any time.
  struct Totals {
    int64_t submitted = 0;
    int64_t dispatched = 0;
    int64_t cycles = 0;
    /// Cross-shard escrows admitted / mirror markers applied.
    int64_t escrows = 0;
    int64_t mirrors_applied = 0;
    int64_t victims = 0;
    /// Protocol switches made by per-shard adaptive controllers.
    int64_t adaptive_switches = 0;
    /// Transactions aborted through AbortTransaction (external backstops).
    int64_t external_aborts = 0;
  };

  /// Cluster-wide per-tenant accounting: each shard's TenantAccountant
  /// publishes a snapshot at its own cycle boundary (stamped with the
  /// store epochs it reflects — per-shard epochs, the same identity the
  /// escrow/staleness machinery keys on), and this merge sums the
  /// summable counters per tenant across those per-shard cuts. Per-shard
  /// state that has no cross-shard meaning (vtime, round, tokens —
  /// relative to each shard's own service stream) is reported as 0 in the
  /// merged rows; read a single shard's accountant for those.
  struct GlobalTenantSnapshot {
    struct ShardStamp {
      uint64_t version = 0;  ///< 0 = that shard has not published yet
      uint64_t pending_epoch = 0;
      uint64_t history_epoch = 0;
    };
    std::vector<ShardStamp> shards;
    /// Merged totals, ascending tenant id.
    std::vector<TenantAccountant::TenantTotals> tenants;
  };

  /// `server` may be null (benches that time pure scheduling). A non-null
  /// server is shared by all shards; DatabaseServer::ExecuteBatch is
  /// thread-safe for exactly this fan-in.
  ShardedScheduler(Options options, server::DatabaseServer* server);
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Compiles every shard's protocol. Once, before Submit/Start/Step.
  Status Init();

  /// Routes and admits a request (thread-safe, any number of submitters);
  /// assigns and returns its globally unique id. Cross-shard finishers go
  /// through the escrow path and may block briefly on admission tickets.
  int64_t Submit(Request request, SimTime now);

  /// Aborts a transaction from outside the shards: publishes an abort
  /// marker to every shard in its routed footprint — the same mirror path
  /// a deadlock-victim abort fans out through — dropping its pending
  /// requests and releasing its locks there, applied by each shard's next
  /// pass. For transactions whose finisher has NOT been submitted (a
  /// submitted finisher owns the transaction's termination), and whose
  /// requests have all drained into pending (aborting with requests still
  /// queued leaves them to dispatch after the transaction is gone).
  /// External drivers use it as a lock-wait-timeout backstop — notably for
  /// cross-shard waits-for cycles, which shard-local deadlock detection
  /// cannot see. Thread-safe. NotFound if no footprint is recorded.
  Status AbortTransaction(txn::TxnId ta, SimTime now);

  // --- threaded mode ---

  /// Spawns one worker thread per shard. Not to be mixed with StepOnce().
  Status Start();
  /// Parks and joins all workers; idempotent. Called by the destructor.
  void Stop();
  /// Waits until the system is quiescent: every worker parked, every
  /// incoming queue and mirror inbox empty. Quiescent means "no runnable
  /// work", not "all done" — pending requests may be blocked waiting for a
  /// finisher the driver has not submitted yet. False on timeout.
  bool WaitIdle(int64_t timeout_us);

  // --- cooperative mode (deterministic; caller's thread) ---

  /// Runs every shard once — absorb mirrors, then one cycle if it has
  /// runnable work. Returns how many shards ran a cycle.
  Result<int> StepOnce(SimTime now);
  /// Steps until no shard has runnable work. Error if still unquiescent
  /// after `max_steps` rounds (a livelock guard, not a deadline).
  Status RunUntilIdle(SimTime now, int max_steps = 1000000);

  // --- introspection ---

  int num_shards() const { return options_.num_shards; }
  /// The shard's underlying scheduler. Cycle-thread-only members (store(),
  /// totals(), ...) may be read only while workers are stopped or between
  /// cooperative steps.
  DeclarativeScheduler* shard(int i) { return shards_[i]->sched.get(); }
  const ShardRouter& router() const { return router_; }
  /// Shard `i`'s adaptive controller (null when Options::adaptive unset).
  /// relaxed_active()/switches()/last_load() are thread-safe; the rest is
  /// cycle-thread state.
  const AdaptiveConsistencyController* adaptive_controller(int i) const {
    return shards_[i]->adaptive.get();
  }
  Totals totals() const;
  /// Merges every shard's last published tenant-accounting snapshot (see
  /// GlobalTenantSnapshot). Thread-safe; empty tenants if the shard
  /// template runs without tenant accounting. Each shard's contribution is
  /// captured atomically at that shard's cycle boundary — never a torn
  /// mid-cycle read — and its stamp says exactly which store state it
  /// reflects.
  GlobalTenantSnapshot TenantSnapshot() const;
  /// Drains the global dispatch log (dispatch order within a shard; across
  /// shards, append order). Thread-safe.
  RequestBatch TakeDispatched();
  /// CPU time shard `i`'s cycles + mirror applications have consumed —
  /// the per-shard busy time the single-core speedup projection divides
  /// by. Thread CPU clock, not wall: time another thread (the WAL flusher,
  /// another shard on a small machine) spends preempting a cycle is that
  /// thread's cost, not this shard's.
  int64_t shard_busy_us(int i) const;
  /// CPU time submitters spent in routing + escrow coordination (the
  /// serial term of the projection).
  int64_t coordination_us() const { return coordination_us_.load(); }

  // --- durability ---

  /// The shared WAL (null unless durability is enabled).
  storage::Wal* wal() const { return wal_.get(); }
  /// What Init()'s recovery pass did (zeros unless durability is enabled).
  const storage::RecoveryResult& recovery_result() const {
    return recovery_result_;
  }
  /// Writes a snapshot of every shard's relations and truncates the WAL.
  /// Safe against running workers: they are parked for the capture and
  /// restarted after. InvalidArgument unless durability is enabled.
  Status Checkpoint();
  /// Highest transaction id seen in the restored relations (0 on a fresh
  /// start). A layer that assigns transaction ids (the front door) must
  /// resume above it, or new transactions would merge with restored ones.
  txn::TxnId recovered_max_ta() const { return recovered_max_ta_; }

 private:
  /// An escrow registered with a shard: the finisher marker plus the
  /// involved-shard mask (nonzero only on the home shard, which fans the
  /// mirrors out).
  struct EscrowEntry {
    Request marker;
    uint32_t mirror_mask = 0;
  };

  struct Shard {
    std::unique_ptr<DeclarativeScheduler> sched;

    /// Escrow registry: written by submitters holding this shard's ticket,
    /// consumed by the cycle thread (dispatch fan-out, view rebuild).
    /// `escrow_count` mirrors the map size so the per-cycle view refresh
    /// can skip the lock entirely in the common zero-escrow case.
    std::mutex escrow_mu;
    std::map<txn::TxnId, EscrowEntry> escrow_entries;
    std::atomic<int64_t> escrow_count{0};

    /// Mirror inbox: finisher markers published by other shards' cycle
    /// threads, applied by this shard's cycle thread.
    std::mutex mirror_mu;
    std::vector<Request> mirror_inbox;

    /// Worker parking. `dirty` = there may be runnable work; set by queue
    /// pushes (via the queue's notify hook), mirror publishes, and cycles
    /// that made progress.
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    bool dirty = true;
    bool parked = false;

    /// Escrow admission ticket (held briefly by submitting threads, in
    /// canonical shard order across shards).
    std::mutex ticket_mu;

    /// The view handed to this shard's protocol; cycle thread only.
    EscrowedLocks escrow_view;

    /// Per-shard adaptive controller (null unless Options::adaptive).
    /// Driven by the cycle thread after each cycle; its published state
    /// (relaxed_active, switches, last_load) is readable from any thread.
    std::unique_ptr<AdaptiveConsistencyController> adaptive;

    std::atomic<int64_t> busy_us{0};
    std::thread worker;
  };

  /// One pass of shard `s`'s loop body: absorb mirrors, rebuild the escrow
  /// view, run one cycle if dirty, process dispatches. Returns true if a
  /// cycle ran. Cycle thread (worker or cooperative caller) only.
  Result<bool> RunShardOnce(int s, SimTime now);
  Status ProcessDispatched(int s, const RequestBatch& batch);
  /// Drains and applies the shard's mirror inbox; returns how many applied.
  int ApplyMirrors(int s);
  void PublishMirror(int to_shard, const Request& marker);
  void WorkerLoop(int s);
  void MarkDirty(int s);
  SimTime Now() const { return SimTime::FromMicros(now_us_.load()); }

  /// Init()'s durability arm: recover the data directory into the fresh
  /// stores, re-establish cross-shard state, open the WAL, attach it.
  Status RecoverAndAttach();
  /// Rebuilds the cross-shard machinery recovery cannot read off a single
  /// shard: router footprints of unfinished transactions, escrow entries
  /// of restored-but-undispatched cross-shard finishers, and mirrors
  /// (from replayed kEscrowFanout records) whose application never
  /// reached the receiving shard's log.
  Status ReestablishCrossShardState(const std::vector<EscrowFanout>& fanouts);
  /// Snapshot + WAL rotate, workers already parked. lifecycle_mu_ held.
  Status WriteCheckpointNow();
  void CheckpointLoop();
  void StopCheckpointThread();
  /// Worker spawn/join only; lifecycle_mu_ held by the caller.
  Status StartLocked();
  void StopLocked();

  Options options_;
  server::DatabaseServer* server_;
  ShardRouter router_;
  /// Declared before shards_ so it is destroyed after them — the stores
  /// hold raw pointers into it.
  std::unique_ptr<storage::Wal> wal_;
  storage::RecoveryResult recovery_result_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> next_id_{1};
  txn::TxnId recovered_max_ta_ = 0;  ///< written once, during Init recovery
  std::atomic<int64_t> now_us_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> dispatched_{0};
  std::atomic<int64_t> cycles_{0};
  std::atomic<int64_t> escrows_{0};
  std::atomic<int64_t> mirrors_applied_{0};
  std::atomic<int64_t> victims_{0};
  std::atomic<int64_t> adaptive_switches_{0};
  std::atomic<int64_t> external_aborts_{0};
  std::atomic<int64_t> coordination_us_{0};

  std::mutex dispatch_log_mu_;
  RequestBatch dispatch_log_;

  /// Cached metric pointers (non-null iff options_.metrics is set).
  observability::Counter* m_submitted_ = nullptr;
  observability::Counter* m_dispatched_ = nullptr;
  observability::Counter* m_cycles_ = nullptr;
  observability::Counter* m_escrows_ = nullptr;
  observability::Counter* m_mirrors_ = nullptr;
  observability::Counter* m_victims_ = nullptr;
  observability::Counter* m_gc_removed_ = nullptr;
  std::vector<observability::HistogramMetric*> m_cycle_us_;  ///< per shard

  /// Adaptive metrics (non-null iff metrics set and adaptive enabled).
  observability::Counter* m_adaptive_switches_ = nullptr;
  std::vector<observability::Gauge*> m_adaptive_relaxed_;  ///< per shard
  std::vector<observability::Gauge*> m_adaptive_load_;     ///< per shard

  /// Cached gauges (non-null iff metrics set and durability enabled).
  observability::Gauge* m_snapshot_lsn_ = nullptr;
  observability::Gauge* m_recovery_replayed_ = nullptr;

  /// Notified whenever a worker parks; WaitIdle waits on it.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<bool> stop_{false};
  /// Serializes Start/Stop/Checkpoint (the checkpoint thread parks and
  /// restarts workers through it). The checkpoint thread itself is joined
  /// by Stop() *before* taking this mutex — it calls Checkpoint(), which
  /// takes it.
  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool initialized_ = false;

  /// Background checkpoint thread (durability with interval > 0 only).
  std::thread ckpt_thread_;
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_stop_ = false;
  /// appended_bytes() at the last checkpoint (size-trigger baseline).
  std::atomic<int64_t> ckpt_bytes_mark_{0};
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_SHARDED_SCHEDULER_H_
