#include "scheduler/protocol.h"

#include <algorithm>

#include "common/string_util.h"

namespace declsched::scheduler {

int ProtocolSpec::CodeSize() const {
  if (language == Language::kPassthrough) return 0;
  int count = 0;
  for (const std::string& raw : Split(text, '\n')) {
    const std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (language == Language::kSql && line.substr(0, 2) == "--") continue;
    if (language == Language::kDatalog && line[0] == '%') continue;
    ++count;
  }
  return count;
}

Result<CompiledProtocol> CompiledProtocol::Compile(ProtocolSpec spec,
                                                   RequestStore* store) {
  CompiledProtocol compiled(std::move(spec), store);
  switch (compiled.spec_.language) {
    case ProtocolSpec::Language::kPassthrough:
      return compiled;
    case ProtocolSpec::Language::kSql: {
      DS_ASSIGN_OR_RETURN(sql::PreparedQuery prepared,
                          store->sql_engine()->PrepareQuery(compiled.spec_.text));
      // Map the Table 2 columns by name in the result schema.
      const sql::OutSchema& schema = prepared.schema();
      for (const char* name : {"id", "ta", "intrata", "operation", "object"}) {
        int found = -1;
        for (int i = 0; i < static_cast<int>(schema.size()); ++i) {
          if (EqualsIgnoreCase(schema[i].name, name)) {
            found = i;
            break;
          }
        }
        if (found < 0) {
          return Status::BindError(
              StrFormat("protocol %s: result lacks column '%s'",
                        compiled.spec_.name.c_str(), name));
        }
        compiled.sql_cols_.push_back(found);
      }
      compiled.sql_.emplace(std::move(prepared));
      return compiled;
    }
    case ProtocolSpec::Language::kDatalog: {
      DS_ASSIGN_OR_RETURN(datalog::DatalogProgram program,
                          datalog::DatalogProgram::Create(compiled.spec_.text));
      // The output relation must be derived and have the Table 2 arity.
      const auto& idb = program.idb_predicates();
      if (std::find(idb.begin(), idb.end(), compiled.spec_.datalog_output) ==
          idb.end()) {
        return Status::BindError(
            StrFormat("protocol %s: program does not derive '%s'",
                      compiled.spec_.name.c_str(),
                      compiled.spec_.datalog_output.c_str()));
      }
      compiled.datalog_ = std::make_shared<const datalog::DatalogProgram>(
          std::move(program));
      return compiled;
    }
  }
  return Status::Internal("unhandled protocol language");
}

Result<RequestBatch> CompiledProtocol::Schedule() const {
  switch (spec_.language) {
    case ProtocolSpec::Language::kPassthrough:
      return store_->AllPending();
    case ProtocolSpec::Language::kSql: {
      DS_ASSIGN_OR_RETURN(sql::QueryResult result, sql_->Run());
      RequestBatch batch;
      batch.reserve(result.rows.size());
      for (const storage::Row& row : result.rows) {
        storage::Row core = {row[sql_cols_[0]], row[sql_cols_[1]],
                             row[sql_cols_[2]], row[sql_cols_[3]],
                             row[sql_cols_[4]]};
        DS_ASSIGN_OR_RETURN(Request request, store_->RowToRequest(core));
        batch.push_back(std::move(request));
      }
      if (!spec_.ordered) {
        std::sort(batch.begin(), batch.end(),
                  [](const Request& a, const Request& b) { return a.id < b.id; });
      }
      return batch;
    }
    case ProtocolSpec::Language::kDatalog: {
      DS_ASSIGN_OR_RETURN(datalog::Database result,
                          datalog_->Evaluate(store_->BuildDatalogEdb()));
      RequestBatch batch;
      const datalog::Relation& rel = result.at(spec_.datalog_output);
      batch.reserve(rel.size());
      for (const storage::Row& row : rel) {
        DS_ASSIGN_OR_RETURN(Request request, store_->RowToRequest(row));
        batch.push_back(std::move(request));
      }
      std::sort(batch.begin(), batch.end(),
                [](const Request& a, const Request& b) { return a.id < b.id; });
      return batch;
    }
  }
  return Status::Internal("unhandled protocol language");
}

}  // namespace declsched::scheduler
