#include "scheduler/protocol.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "scheduler/backends/composed_protocol.h"
#include "scheduler/backends/datalog_protocol.h"
#include "scheduler/backends/native_protocol.h"
#include "scheduler/backends/passthrough_protocol.h"
#include "scheduler/backends/sql_protocol.h"

namespace declsched::scheduler {

int ProtocolSpec::CodeSize() const {
  if (backend == "passthrough" || backend == "native") return 0;
  if (backend == "composed") {
    int stages = 0;
    for (const std::string& stage : Split(text, '|')) {
      if (!Trim(stage).empty()) ++stages;
    }
    return stages;
  }
  int count = 0;
  for (const std::string& raw : Split(text, '\n')) {
    const std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (backend == "sql" && line.substr(0, 2) == "--") continue;
    if (backend == "datalog" && line[0] == '%') continue;
    ++count;
  }
  return count;
}

ProtocolFactory& ProtocolFactory::Global() {
  static ProtocolFactory* factory = [] {
    auto* f = new ProtocolFactory();
    DS_CHECK_OK(f->RegisterBackend("sql", CompileSqlProtocol));
    DS_CHECK_OK(f->RegisterBackend("datalog", CompileDatalogProtocol));
    DS_CHECK_OK(f->RegisterBackend("passthrough", CompilePassthroughProtocol));
    DS_CHECK_OK(f->RegisterBackend("native", CompileNativeProtocol));
    DS_CHECK_OK(f->RegisterBackend("composed", CompileComposedProtocol));
    return f;
  }();
  return *factory;
}

Status ProtocolFactory::RegisterBackend(const std::string& backend,
                                        CompileFn compile) {
  if (backend.empty()) {
    return Status::InvalidArgument("backend name must be non-empty");
  }
  if (compile == nullptr) {
    return Status::InvalidArgument("backend compile function must be set");
  }
  if (!backends_.emplace(backend, std::move(compile)).second) {
    return Status::AlreadyExists("backend already registered: " + backend);
  }
  return Status::OK();
}

bool ProtocolFactory::HasBackend(const std::string& backend) const {
  return backends_.count(backend) > 0;
}

std::vector<std::string> ProtocolFactory::Backends() const {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& [name, fn] : backends_) names.push_back(name);
  return names;
}

Result<std::unique_ptr<Protocol>> ProtocolFactory::Compile(
    const ProtocolSpec& spec, RequestStore* store) const {
  if (store == nullptr) {
    return Status::InvalidArgument("protocol compilation needs a RequestStore");
  }
  auto it = backends_.find(spec.backend);
  if (it == backends_.end()) {
    return Status::NotFound(StrFormat("protocol %s: no backend named '%s'",
                                      spec.name.c_str(), spec.backend.c_str()));
  }
  return it->second(spec, store);
}

}  // namespace declsched::scheduler
