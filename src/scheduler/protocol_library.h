// Built-in protocol library across every backend.
//
// Covers the paper's three goals (Section 3.1): (a) traditional consistency
// protocols — SS2PL in SQL (Listing 1, verbatim), in Datalog, and hand-coded
// native C++ (the paper's Figure 2 comparison point); (b) SLA scheduling —
// priority tiers and earliest-deadline-first; (c) application-specific
// consistency — a relaxed read-committed protocol that never blocks readers,
// plus composed stage pipelines that mix consistency, ranking, and admission
// control without new protocol text. A passthrough spec implements the
// paper's non-scheduling mode.

#ifndef DECLSCHED_SCHEDULER_PROTOCOL_LIBRARY_H_
#define DECLSCHED_SCHEDULER_PROTOCOL_LIBRARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler {

/// Strong 2PL as SQL — the paper's Listing 1, verbatim modulo whitespace.
ProtocolSpec Ss2plSql();
/// Strong 2PL as Datalog (the Section 5 "more succinct language").
ProtocolSpec Ss2plDatalog();
/// Strong 2PL hand-coded in C++ (native backend, Figure 2's scheduler).
ProtocolSpec Ss2plNative();
/// First-come-first-served without consistency guarantees: every pending
/// request qualifies, in arrival order.
ProtocolSpec FcfsSql();
/// FCFS hand-coded in C++ (native backend).
ProtocolSpec FcfsNative();
/// SS2PL-safe requests dispatched premium-first (priority column, then id).
ProtocolSpec SlaPrioritySql();
/// The same SLA policy hand-coded in C++ (native backend).
ProtocolSpec SlaPriorityNative();
/// SS2PL-safe requests dispatched by earliest deadline (0 = none, last).
ProtocolSpec EdfSql();
/// The same EDF policy hand-coded in C++ (native backend).
ProtocolSpec EdfNative();
/// Relaxed consistency: readers never block; writers respect write locks
/// (no read locks at all) — lost-update-free but not serializable.
ProtocolSpec ReadCommittedSql();
/// The same relaxed protocol in Datalog.
ProtocolSpec ReadCommittedDatalog();
/// The same relaxed protocol hand-coded in C++ (native backend).
ProtocolSpec ReadCommittedNative();
/// Non-scheduling passthrough (paper Section 3.3 last paragraph).
ProtocolSpec Passthrough();

// --- multi-tenant fairness & QoS (the tenants relation; see
// --- docs/PROTOCOLS.md for all four formulations side by side) ---

/// Weighted fair queueing: SS2PL-safe requests ranked by the submitting
/// tenant's virtual time (ascending, ties by id). A tenant's vtime grows
/// with the service it receives divided by its weight, so light tenants
/// outrank a heavy aggressor.
ProtocolSpec WfqSql();
ProtocolSpec WfqDatalog();
ProtocolSpec WfqNative();
/// Deficit-round fairness: like wfq but ranked by whole service rounds
/// (coarser), round-robin by tenant within a round.
ProtocolSpec DrrSql();
ProtocolSpec DrrDatalog();
ProtocolSpec DrrNative();
/// Tenant throttling: SS2PL-safe requests minus those of throttled
/// tenants (in-flight cap reached, or token bucket empty); dispatch by id.
ProtocolSpec TenantCapSql();
ProtocolSpec TenantCapDatalog();
ProtocolSpec TenantCapNative();
/// The same three policies as composed stage pipelines.
ProtocolSpec ComposedWfq();
ProtocolSpec ComposedDrr();
ProtocolSpec ComposedTenantCap();

/// Composed pipeline: read-committed filter, EDF ranking, and (if cap > 0)
/// an admission cap — the "relaxed consistency + deadline scheduling +
/// admission control" scenario mix, no new SQL required.
ProtocolSpec ComposedReadCommittedEdf(int64_t cap = 0);
/// Composed pipeline: SS2PL filter, priority ranking, optional admission
/// cap — serializable SLA scheduling out of reusable stages.
ProtocolSpec ComposedSs2plPriority(int64_t cap = 0);

/// The interpreted-engine variant of a SQL or Datalog spec: same text and
/// semantics, but evaluated by the interpreter instead of being lowered to
/// the protocol IR ("interp:" text prefix; name prefixed the same way).
/// The differential oracle the equivalence tests and benches run compiled
/// variants against — the `scratch:ss2pl` precedent, for the declarative
/// backends. Specs of other backends are returned unchanged.
ProtocolSpec InterpretedVariant(ProtocolSpec spec);

/// The scalar-executor variant of a SQL or Datalog spec: lowers to the same
/// protocol IR, but the compiled protocol runs the row-at-a-time executor
/// instead of the vectorized default ("scalar:" name prefix; ir_executor =
/// "scalar"). The in-IR differential oracle the vec executor is tested and
/// benched against. Specs that never lower are returned unchanged.
ProtocolSpec ScalarExecVariant(ProtocolSpec spec);

/// Name -> spec registry of every built-in; custom specs can be added.
class ProtocolRegistry {
 public:
  /// A registry pre-loaded with all built-ins above.
  static ProtocolRegistry BuiltIns();

  Status Register(ProtocolSpec spec);
  Result<ProtocolSpec> Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, ProtocolSpec> specs_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_PROTOCOL_LIBRARY_H_
