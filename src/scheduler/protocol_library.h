// Built-in declarative protocol library.
//
// Covers the paper's three goals (Section 3.1): (a) traditional consistency
// protocols — SS2PL in SQL (Listing 1, verbatim) and in Datalog; (b) SLA
// scheduling — priority tiers and earliest-deadline-first; (c) application-
// specific consistency — a relaxed read-committed protocol that never blocks
// readers. A passthrough spec implements the paper's non-scheduling mode.

#ifndef DECLSCHED_SCHEDULER_PROTOCOL_LIBRARY_H_
#define DECLSCHED_SCHEDULER_PROTOCOL_LIBRARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "scheduler/protocol.h"

namespace declsched::scheduler {

/// Strong 2PL as SQL — the paper's Listing 1, verbatim modulo whitespace.
ProtocolSpec Ss2plSql();
/// Strong 2PL as Datalog (the Section 5 "more succinct language").
ProtocolSpec Ss2plDatalog();
/// First-come-first-served without consistency guarantees: every pending
/// request qualifies, in arrival order.
ProtocolSpec FcfsSql();
/// SS2PL-safe requests dispatched premium-first (priority column, then id).
ProtocolSpec SlaPrioritySql();
/// SS2PL-safe requests dispatched by earliest deadline (0 = none, last).
ProtocolSpec EdfSql();
/// Relaxed consistency: readers never block; writers respect write locks
/// (no read locks at all) — lost-update-free but not serializable.
ProtocolSpec ReadCommittedSql();
/// The same relaxed protocol in Datalog.
ProtocolSpec ReadCommittedDatalog();
/// Non-scheduling passthrough (paper Section 3.3 last paragraph).
ProtocolSpec Passthrough();

/// Name -> spec registry of every built-in; custom specs can be added.
class ProtocolRegistry {
 public:
  /// A registry pre-loaded with all built-ins above.
  static ProtocolRegistry BuiltIns();

  Status Register(ProtocolSpec spec);
  Result<ProtocolSpec> Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, ProtocolSpec> specs_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_PROTOCOL_LIBRARY_H_
