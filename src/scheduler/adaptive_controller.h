// Adaptive consistency (paper Section 5 / Section 1): "reduced consistency
// criteria may be used during times of high load". The controller watches
// the scheduler's load and swaps the active protocol between a strict and a
// relaxed spec — possible precisely because protocols are data, not code.

#ifndef DECLSCHED_SCHEDULER_ADAPTIVE_CONTROLLER_H_
#define DECLSCHED_SCHEDULER_ADAPTIVE_CONTROLLER_H_

#include <string>

#include "common/result.h"
#include "scheduler/declarative_scheduler.h"

namespace declsched::scheduler {

class AdaptiveConsistencyController {
 public:
  struct Options {
    ProtocolSpec strict;   // e.g. Ss2plSql()
    ProtocolSpec relaxed;  // e.g. ReadCommittedSql()
    /// Switch to relaxed when load (queued + pending requests) exceeds this.
    int64_t relax_above = 256;
    /// Switch back to strict when load drops below this (hysteresis).
    int64_t tighten_below = 64;
    /// Minimum cycles between switches (anti-flapping).
    int64_t min_cycles_between_switches = 4;

    Options() : strict(Ss2plSql()), relaxed(ReadCommittedSql()) {}
  };

  AdaptiveConsistencyController(Options options, DeclarativeScheduler* scheduler)
      : options_(std::move(options)), scheduler_(scheduler) {}

  /// Call once per cycle with the current load; switches the scheduler's
  /// protocol when a threshold is crossed. Returns true if a switch happened.
  Result<bool> OnCycle(int64_t load);

  bool relaxed_active() const { return relaxed_active_; }
  const std::string& active_protocol() const {
    return relaxed_active_ ? options_.relaxed.name : options_.strict.name;
  }
  int64_t switches() const { return switches_; }

 private:
  Options options_;
  DeclarativeScheduler* scheduler_;
  bool relaxed_active_ = false;
  int64_t switches_ = 0;
  int64_t cycles_since_switch_ = 1 << 20;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_ADAPTIVE_CONTROLLER_H_
