// Adaptive consistency (paper Section 5 / Section 1): "reduced consistency
// criteria may be used during times of high load". The controller watches
// the scheduler's load and swaps the active protocol between a strict and a
// relaxed spec — possible precisely because protocols are data, not code.
//
// Load is described by AdaptiveSignals, sampled at the end of each cycle
// from live sources: the incoming queue, the pending relation (requests the
// protocol left blocked — the lock-conflict wait depth LockTableState
// induces), the TenantAccountant's in-flight count, and its starvation
// scan. The legacy OnCycle(int64_t) entry point still exists for drivers
// that only track a single queue+pending integer.
//
// Switching discipline: hysteresis (relax_above > tighten_below, so load
// noise inside the band changes nothing) plus anti-flap (at least
// min_cycles_between_switches cycles between any two switches).

#ifndef DECLSCHED_SCHEDULER_ADAPTIVE_CONTROLLER_H_
#define DECLSCHED_SCHEDULER_ADAPTIVE_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "scheduler/declarative_scheduler.h"

namespace declsched::scheduler {

/// One cycle's live load signals. All counts are "as of the end of the
/// cycle"; LoadScore() folds them into the scalar the thresholds compare
/// against.
struct AdaptiveSignals {
  /// Requests waiting in the incoming queue (not yet drained).
  int64_t queue_depth = 0;
  /// Requests still pending after the cycle — blocked on locks (the wait
  /// depth the lock table's conflict state induces).
  int64_t wait_depth = 0;
  /// Requests that were available this cycle but failed to qualify
  /// (pending_before + drained - qualified): the cycle's conflict count.
  int64_t conflict_depth = 0;
  /// Dispatched-but-unfinished rows (TenantAccountant in-flight sum).
  int64_t inflight = 0;
  /// Tenants whose oldest pending request exceeded the starvation window
  /// (TenantAccountant::StarvedTenants).
  int64_t starved_tenants = 0;

  /// The scalar the relax/tighten thresholds compare against. Queued and
  /// blocked work dominate; in-flight rows are discounted (they are being
  /// served, not waiting); a starved tenant is worth a whole burst of
  /// blocked requests.
  int64_t LoadScore() const {
    return queue_depth + wait_depth + inflight / 4 + 8 * starved_tenants;
  }
};

class AdaptiveConsistencyController {
 public:
  struct Options {
    /// The strict / relaxed pair the controller swaps between. Lazy
    /// defaults: a spec left with an empty name resolves at controller
    /// construction — strict to Ss2plSql(), relaxed to ReadCommittedSql().
    /// Options() itself constructs no specs (it used to build both
    /// eagerly, which priced two registry lookups into every config struct
    /// that embedded one).
    ProtocolSpec strict;
    ProtocolSpec relaxed;
    /// Switch to relaxed when LoadScore() exceeds this.
    int64_t relax_above = 256;
    /// Switch back to strict when LoadScore() drops below this
    /// (hysteresis; must not exceed relax_above).
    int64_t tighten_below = 64;
    /// Minimum cycles between switches (anti-flapping).
    int64_t min_cycles_between_switches = 4;

    Options() = default;
  };

  /// Resolves lazy defaults; does not validate (constructors cannot return
  /// an error). Validate() runs explicitly or on the first OnCycle.
  AdaptiveConsistencyController(Options options,
                                DeclarativeScheduler* scheduler);

  /// InvalidArgument when strict and relaxed resolve to the same protocol
  /// name (the controller would flap between identical policies — the
  /// config is a typo, not a policy), when the hysteresis band is inverted
  /// (tighten_below > relax_above), or when
  /// min_cycles_between_switches < 0.
  Status Validate() const;

  /// Call once per cycle with the cycle's live signals; switches the
  /// scheduler's protocol when a threshold is crossed. Returns true if a
  /// switch happened. Cycle thread only.
  Result<bool> OnCycle(const AdaptiveSignals& signals);

  /// Legacy raw-load entry point: `load` is taken as the whole score
  /// (queue + pending, as the middleware sim tracks it).
  Result<bool> OnCycle(int64_t load);

  // Cross-thread reads (e.g. /v1/stats): relaxed_active and switches are
  // atomics published by the cycle thread.
  bool relaxed_active() const {
    return relaxed_active_.load(std::memory_order_relaxed);
  }
  const std::string& active_protocol() const {
    return relaxed_active() ? options_.relaxed.name : options_.strict.name;
  }
  int64_t switches() const {
    return switches_.load(std::memory_order_relaxed);
  }
  /// The last LoadScore() observed (0 before the first cycle).
  int64_t last_load() const { return last_load_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  Result<bool> Step(int64_t load);

  Options options_;
  DeclarativeScheduler* scheduler_;
  bool validated_ = false;
  std::atomic<bool> relaxed_active_{false};
  std::atomic<int64_t> switches_{0};
  std::atomic<int64_t> last_load_{0};
  int64_t cycles_since_switch_ = 1 << 20;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_ADAPTIVE_CONTROLLER_H_
