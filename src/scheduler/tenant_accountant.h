// TenantAccountant: O(delta) per-tenant QoS accounting for multi-tenant
// fairness policies (wfq, drr, tenant-cap).
//
// The accountant is the bookkeeping half of the tenant subsystem: the
// scheduler narrates every store mutation it makes (admissions, dispatches,
// injected finisher markers, GC retirements) and the accountant folds each
// delta into per-tenant counters — pending and in-flight request counts,
// cumulative dispatched service micros, weighted-fair virtual time, deficit
// rounds, and token buckets. Once per cycle (BeginCycle, before the
// protocol runs) it refills tokens and flushes every changed tenant into
// the store's `tenants` relation, which is where the policies read the
// state: natively off the typed mirror, declaratively as the `tenants` SQL
// table / `tenantacct` Datalog relation. Policy evaluation therefore never
// depends on this class — a bare store with hand-written tenants rows
// answers identically — the accountant only keeps those rows current at
// O(delta) per cycle.
//
// Staleness contract (same shape as LockTableState): each hook accepts a
// delta only when the store's pending/history epochs advanced exactly as
// that mutation implies; anything else (a store seeded behind the
// scheduler's back, ad-hoc DML, SwitchProtocol does not affect this class)
// marks the accountant unsynced and the next BeginCycle() rebuilds counts
// from the tables — pending/inflight exactly, cumulative counters restart
// from zero and vtime/round/tokens are re-adopted from the `tenants`
// relation (the durable accounting state). Degraded cost, never wrong
// policy inputs.
//
// Thread ownership: cycle thread only, like the protocol it rides along
// with. The one cross-thread surface is PublishedSnapshot(), a
// mutex-guarded copy of the last cycle-boundary state stamped with the
// store epochs it reflects — what ShardedScheduler::TenantSnapshot()
// merges into an epoch-consistent global view.

#ifndef DECLSCHED_SCHEDULER_TENANT_ACCOUNTANT_H_
#define DECLSCHED_SCHEDULER_TENANT_ACCOUNTANT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "scheduler/request.h"
#include "scheduler/request_store.h"

namespace declsched::scheduler {

/// Per-tenant QoS configuration (the declarative knobs; everything else in
/// TenantAcct is accounting). Applied when the tenant's row is first
/// created; afterwards the `tenants` relation is authoritative.
struct TenantQosSpec {
  int64_t weight = 1;  ///< fair-share weight (>= 1)
  int64_t rate = 0;    ///< tokens per simulated second (0 = unlimited)
  int64_t burst = 0;   ///< token bucket capacity
  int64_t cap = 0;     ///< max in-flight requests (0 = unlimited)
};

struct TenantQosConfig {
  /// Explicit per-tenant specs; unlisted tenants get defaults.
  std::map<int64_t, TenantQosSpec> tenants;
  /// Service cost charged per dispatched request, mirroring the server
  /// cost model's calibration (CostModel::statement_service / commit).
  int64_t read_service_us = 352;
  int64_t write_service_us = 352;
  int64_t finisher_service_us = 180;
  /// One drr round = this much service at weight 1 (10 statements).
  int64_t drr_quantum_us = 3520;
  /// Copy the cycle-boundary state into the cross-thread snapshot every
  /// cycle (the sharded scheduler's merge support; off = zero cost).
  bool publish_snapshots = false;
};

class TenantAccountant {
 public:
  /// Virtual-time scale: vtime advances by service_us * kWfqScale / weight
  /// per dispatched request, so integer division keeps sub-weight
  /// resolution.
  static constexpr int64_t kWfqScale = 1024;

  /// Everything known about one tenant. `pending`/`inflight` mirror the
  /// store exactly; `admitted`/`dispatched`/`finished_rows`/`service_us`
  /// are cumulative since construction (or the last staleness rebuild).
  struct TenantTotals {
    int64_t tenant = 0;
    int64_t weight = 1;
    int64_t pending = 0;
    int64_t inflight = 0;
    int64_t admitted = 0;
    int64_t dispatched = 0;
    int64_t finished_rows = 0;
    int64_t service_us = 0;
    int64_t vtime = 0;
    int64_t round = 0;
    int64_t tokens = 0;
  };

  /// Cross-thread view: the state as of this accountant's last completed
  /// cycle, stamped with the store epochs it reflects.
  struct Snapshot {
    uint64_t version = 0;  ///< bumps per publish; 0 = never published
    uint64_t pending_epoch = 0;
    uint64_t history_epoch = 0;
    std::vector<TenantTotals> tenants;  ///< ascending tenant id
  };

  /// Binds to the one store whose mutations will be narrated to it.
  explicit TenantAccountant(TenantQosConfig config, RequestStore* store);

  /// Materializes every configured tenant into the store's `tenants`
  /// relation (weights visible to protocols before any request arrives).
  /// Once, right after construction. For configured tenants the
  /// TenantQosSpec is authoritative: its weight/rate/burst/cap overlay
  /// whatever the relation says, here and after every rebuild.
  Status SeedConfig();

  // --- cycle narration (cycle thread only) ------------------------------

  /// Refills token buckets, absorbs any missed narration (staleness
  /// rebuild), and flushes changed tenants into the store's `tenants`
  /// relation. Once per cycle, after admissions, before the protocol runs.
  Status BeginCycle(SimTime now);

  /// Flushes post-dispatch/GC accounting into the `tenants` relation and,
  /// if configured, publishes the cross-thread snapshot. End of cycle.
  Status EndCycle();

  /// `batch` was drained into pending (after RequestStore::InsertPending).
  void OnAdmitted(const RequestBatch& batch);

  /// `batch` moved from pending to history (after MarkScheduled).
  void OnScheduled(const RequestBatch& batch);

  /// A finisher marker was injected straight into history (deadlock victim
  /// abort or cross-shard escrow mirror), dropping `dropped_by_tenant`
  /// pending requests first. Injected markers charge no service — they are
  /// not client work — but their history row still counts in-flight so GC
  /// retirement balances.
  void OnMarkerInjected(const Request& marker,
                        const std::map<int64_t, int64_t>& dropped_by_tenant);

  /// GC retired `gc.rows_by_tenant` history rows (after
  /// GarbageCollectFinished).
  void OnFinished(const RequestStore::GcResult& gc);

  // --- views (cycle thread) ---------------------------------------------

  std::vector<TenantTotals> Totals() const;
  TenantTotals TotalsFor(int64_t tenant) const;

  /// Starvation guard: how long the tenant's oldest pending request has
  /// waited (simulated micros), or -1 with nothing pending.
  int64_t OldestPendingWaitUs(int64_t tenant, SimTime now) const;

  /// Tenants whose oldest pending request has waited >= `wait_us`.
  std::vector<int64_t> StarvedTenants(SimTime now, int64_t wait_us) const;

  bool synced_with(const RequestStore& store) const;
  int64_t full_rebuilds() const { return full_rebuilds_; }

  // --- cross-thread -----------------------------------------------------

  /// The last published cycle-boundary state (empty version-0 snapshot
  /// before the first publish). Thread-safe; requires
  /// config.publish_snapshots.
  Snapshot PublishedSnapshot() const;

 private:
  struct State {
    TenantAcct acct;  ///< the row flushed to the `tenants` relation
    int64_t pending = 0;
    int64_t admitted = 0;
    int64_t dispatched = 0;
    int64_t finished_rows = 0;
    int64_t service_us = 0;
    /// Service accumulated toward the next drr round.
    int64_t round_progress_us = 0;
    /// Token bucket in micro-tokens (so sub-token refills accumulate).
    int64_t micro_tokens = 0;
    /// Pending requests in admission order: (id, arrival micros). Entries
    /// whose request already left pending are popped lazily on query, so
    /// upkeep is O(1) per admission. Mutable: lazy pops happen from const
    /// starvation queries.
    mutable std::deque<std::pair<int64_t, int64_t>> oldest;
    bool dirty = false;
  };

  static constexpr int64_t kMicro = 1000000;

  /// The state of `tenant`, created on first sight: adopted from an
  /// existing `tenants` row if one exists (config spec fields overlaid),
  /// else defaults from the TenantQosConfig spec.
  State& TenantState(int64_t tenant);
  int64_t ServiceCost(txn::OpType op) const;
  void ChargeDispatch(State& state, const Request& request);
  /// WFQ idle catch-up: a tenant going idle->busy resumes at the minimum
  /// virtual time of the currently busy tenants, never at stale credit.
  void CatchUpVtime(State& state);
  void MarkDirty(int64_t tenant, State& state);
  Status Flush();
  void Rebuild();
  /// True if the store's epochs advanced exactly (`dp`, `dh`) narrated
  /// steps since the last sync; records the new sync point when so.
  bool AcceptDelta(uint64_t dp, uint64_t dh);
  TenantTotals MakeTotals(const State& state) const;

  TenantQosConfig config_;
  RequestStore* store_;
  std::map<int64_t, State> states_;
  std::vector<int64_t> dirty_;
  /// Number of states with a token rate configured (skip refill if 0).
  int64_t rate_limited_ = 0;
  SimTime last_refill_;

  /// Sync point: the store epochs/versions the counters reflect. 0 epochs
  /// = unsynced (stores start at 1).
  uint64_t synced_pending_epoch_ = 0;
  uint64_t synced_history_epoch_ = 0;
  uint64_t synced_history_version_ = 0;
  int64_t full_rebuilds_ = 0;

  mutable std::mutex snapshot_mu_;
  Snapshot published_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_TENANT_ACCOUNTANT_H_
