#include "scheduler/declarative_scheduler.h"

#include <chrono>

#include "common/logging.h"
#include "storage/wal.h"

namespace declsched::scheduler {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DeclarativeScheduler::DeclarativeScheduler(Options options,
                                           server::DatabaseServer* server)
    : options_(std::move(options)),
      server_(server),
      trigger_(options_.trigger),
      next_request_id_(options_.first_request_id) {}

const ProtocolFactory& DeclarativeScheduler::factory() const {
  return options_.factory != nullptr ? *options_.factory
                                     : ProtocolFactory::Global();
}

Status DeclarativeScheduler::Init() {
  DS_ASSIGN_OR_RETURN(protocol_, factory().Compile(options_.protocol, &store_));
  if (options_.tenant_accounting) {
    accountant_ =
        std::make_unique<TenantAccountant>(options_.tenant_qos, &store_);
    DS_RETURN_NOT_OK(accountant_->SeedConfig());
  }
  if (options_.deadlock_detection) {
    DS_ASSIGN_OR_RETURN(DeadlockResolver resolver, DeadlockResolver::Create());
    resolver_.emplace(std::move(resolver));
  }
  return Status::OK();
}

int64_t DeclarativeScheduler::Submit(Request request, SimTime now) {
  request.id = next_request_id_++;
  request.arrival = now;
  queue_.Push(std::move(request));
  ++totals_.admitted;
  return next_request_id_ - 1;
}

void DeclarativeScheduler::SubmitRouted(Request request) {
  // Only the queue (its own mutex). totals_.admitted is Submit()-path
  // state and is deliberately not touched from here — in sharded mode the
  // ShardedScheduler's own totals().submitted is the admission count, and
  // queue()->total_pushed() gives the per-shard number when needed.
  queue_.Push(std::move(request));
}

bool DeclarativeScheduler::ShouldFire(SimTime now) const {
  // Fire on queued work; also fire on stalled pending work (blocked requests
  // can only make progress through another cycle).
  if (trigger_.ShouldFire(now, queue_.size())) return true;
  return queue_.size() == 0 && store_.pending_count() > 0;
}

Status DeclarativeScheduler::SwitchProtocol(const ProtocolSpec& spec) {
  DS_ASSIGN_OR_RETURN(std::unique_ptr<Protocol> compiled,
                      factory().Compile(spec, &store_));
  protocol_ = std::move(compiled);
  options_.protocol = spec;
  return Status::OK();
}

const ProtocolSpec& DeclarativeScheduler::protocol() const {
  return options_.protocol;
}

Status DeclarativeScheduler::AbortTransaction(txn::TxnId ta, SimTime now) {
  // Drop the victim's pending requests, then record an abort marker so the
  // protocol sees its locks released (and GC retires its history rows).
  Request marker;
  marker.id = next_request_id_++;
  marker.ta = ta;
  marker.intrata = 1 << 30;  // after any real intra-transaction number
  marker.op = txn::OpType::kAbort;
  marker.object = Request::kNoObject;
  marker.arrival = now;
  marker.client = -1;
  return InjectFinisherMarker(marker);
}

Status DeclarativeScheduler::ApplyEscrowedFinisher(const Request& marker) {
  DS_CHECK(protocol_ != nullptr);  // Init() was called
  return InjectFinisherMarker(marker);
}

Status DeclarativeScheduler::InjectFinisherMarker(const Request& original) {
  // Each store mutation is narrated to the protocol (and the tenant
  // accountant) right away, so incremental backends stay in lockstep.
  Request marker = original;
  std::map<int64_t, int64_t> dropped_by_tenant;
  if (marker.op == txn::OpType::kAbort) {
    store_.DropPendingOfTransaction(marker.ta, &dropped_by_tenant);
    if (marker.tenant == 0 && !dropped_by_tenant.empty()) {
      // Internally constructed abort markers (deadlock victims, cross-shard
      // victim mirrors) carry no tenant; attribute the marker to the tenant
      // whose pending requests it killed so the QoS charge lands right.
      // Transactions are single-tenant by construction, so take the
      // heaviest key when an adversarial trace mixed tenants within one ta.
      auto best = dropped_by_tenant.begin();
      for (auto it = dropped_by_tenant.begin(); it != dropped_by_tenant.end();
           ++it) {
        if (it->second > best->second) best = it;
      }
      marker.tenant = static_cast<int>(best->first);
    }
  }
  DS_RETURN_NOT_OK(store_.InsertHistory(marker));
  if (accountant_ != nullptr) {
    accountant_->OnMarkerInjected(marker, dropped_by_tenant);
  }
  protocol_->OnScheduled(RequestBatch{marker});
  return Status::OK();
}

Result<CycleStats> DeclarativeScheduler::RunCycle(SimTime now) {
  DS_CHECK(protocol_ != nullptr);  // Init() was called
  CycleStats stats;
  const int64_t cycle_start = NowMicros();

  stats.pending_before = store_.pending_count();
  stats.history_before = store_.history_count();

  // 1. Empty the incoming queue into the pending-request database.
  RequestBatch drained = queue_.DrainAll();
  stats.drained = static_cast<int64_t>(drained.size());
  DS_RETURN_NOT_OK(store_.InsertPending(drained));
  if (!drained.empty()) {
    if (accountant_ != nullptr) accountant_->OnAdmitted(drained);
    protocol_->OnAdmitted(drained);
  }
  // The accountant refills token buckets, absorbs any out-of-band store
  // edit (staleness rebuild), and flushes the changed per-tenant rows into
  // the `tenants` relation — which is what tenant-aware protocols read, so
  // it must be current before Schedule().
  if (accountant_ != nullptr) DS_RETURN_NOT_OK(accountant_->BeginCycle(now));
  stats.insert_us = NowMicros() - cycle_start;

  // 2. Run the declarative protocol.
  const int64_t query_start = NowMicros();
  ScheduleContext context;
  context.store = &store_;
  context.now = now;
  context.shard = options_.shard;
  context.num_shards = options_.num_shards;
  context.escrowed = escrowed_;
  context.tenants = accountant_.get();
  DS_ASSIGN_OR_RETURN(RequestBatch qualified, protocol_->Schedule(context));
  stats.query_us = NowMicros() - query_start;
  if (options_.max_dispatch_per_cycle > 0 &&
      static_cast<int64_t>(qualified.size()) > options_.max_dispatch_per_cycle) {
    qualified.resize(static_cast<size_t>(options_.max_dispatch_per_cycle));
  }
  stats.qualified = static_cast<int64_t>(qualified.size());

  // 3. Qualified requests leave pending and enter history; finished
  //    transactions retire from history. Both mutations are narrated to the
  //    protocol so incremental backends apply the delta instead of
  //    rescanning next cycle.
  const int64_t move_start = NowMicros();
  DS_RETURN_NOT_OK(store_.MarkScheduled(qualified));
  if (!qualified.empty()) {
    if (accountant_ != nullptr) accountant_->OnScheduled(qualified);
    protocol_->OnScheduled(qualified);
  }
  if (options_.history_gc) {
    DS_ASSIGN_OR_RETURN(RequestStore::GcResult gc, store_.GarbageCollectFinished());
    stats.gc_removed = gc.rows_retired;
    if (!gc.txns.empty()) {
      if (accountant_ != nullptr) accountant_->OnFinished(gc);
      protocol_->OnFinished(gc.txns);
    }
  }
  stats.move_us = NowMicros() - move_start;

  // 4. Deadlock resolution: only worth checking when the cycle stalled
  //    (nothing qualified while work is pending).
  last_victims_.clear();
  if (resolver_.has_value() && qualified.empty() && store_.pending_count() > 0) {
    DS_ASSIGN_OR_RETURN(last_victims_, resolver_->FindVictims(store_));
    for (txn::TxnId victim : last_victims_) {
      DS_RETURN_NOT_OK(AbortTransaction(victim, now));
    }
    stats.victims = static_cast<int64_t>(last_victims_.size());
    totals_.victims += stats.victims;
  }

  // 5. Dispatch the batch to the server.
  if (options_.sync_dispatch_wal && store_.wal() != nullptr) {
    DS_RETURN_NOT_OK(store_.wal()->Sync(store_.last_wal_lsn()));
  }
  if (server_ != nullptr && !qualified.empty()) {
    server::StatementBatch batch;
    batch.reserve(qualified.size());
    for (const Request& request : qualified) batch.push_back(request.ToStatement());
    DS_ASSIGN_OR_RETURN(server::DatabaseServer::BatchStats server_stats,
                        server_->ExecuteBatch(batch, options_.shard));
    stats.server_busy = server_stats.busy;
  }
  stats.dispatched = static_cast<int64_t>(qualified.size());
  last_dispatched_ = std::move(qualified);

  // Post-dispatch/GC accounting lands in the tenants relation now, so the
  // relation always holds the cycle-boundary state (and the cross-thread
  // snapshot, when published, is cut at the same boundary).
  if (accountant_ != nullptr) DS_RETURN_NOT_OK(accountant_->EndCycle());

  stats.total_us = NowMicros() - cycle_start;
  trigger_.NotifyFired(now);

  ++totals_.cycles;
  totals_.dispatched += stats.dispatched;
  totals_.total_query_us += stats.query_us;
  totals_.total_cycle_us += stats.total_us;
  totals_.cycle_us.Record(stats.total_us);
  totals_.qualified_per_cycle.Record(stats.qualified);
  return stats;
}

}  // namespace declsched::scheduler
