// Trigger policies: when does the scheduler empty the incoming queue?
//
// Paper Section 3.3: "The trigger condition can be configured (dynamically).
// The best condition has to be evaluated experimentally. Possible conditions
// are, e.g. a lapse of time, a certain fill level of the incoming queue or a
// hybrid version." All three are here; bench_trigger_policies runs the
// evaluation the paper defers.

#ifndef DECLSCHED_SCHEDULER_TRIGGER_POLICY_H_
#define DECLSCHED_SCHEDULER_TRIGGER_POLICY_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace declsched::scheduler {

struct TriggerConfig {
  enum class Kind {
    kTimer,      // fire when `interval` elapsed since the last firing
    kFillLevel,  // fire when the queue holds >= `fill_level` requests
    kHybrid,     // fire on whichever condition is met first
    kEager,      // fire whenever the queue is non-empty
  };
  Kind kind = Kind::kEager;
  SimTime interval = SimTime::FromMillis(10);
  int64_t fill_level = 64;

  static TriggerConfig Timer(SimTime interval) {
    return {Kind::kTimer, interval, 0};
  }
  static TriggerConfig FillLevel(int64_t level) {
    return {Kind::kFillLevel, SimTime(), level};
  }
  static TriggerConfig Hybrid(SimTime interval, int64_t level) {
    return {Kind::kHybrid, interval, level};
  }
  static TriggerConfig Eager() { return {}; }

  std::string ToString() const;
};

/// Stateful evaluation of a TriggerConfig (tracks the last firing time).
class TriggerPolicy {
 public:
  explicit TriggerPolicy(const TriggerConfig& config) : config_(config) {}

  /// True if the scheduler should run a cycle now. Call NotifyFired() after
  /// actually running one.
  bool ShouldFire(SimTime now, int64_t queue_size) const;

  void NotifyFired(SimTime now) { last_fired_ = now; }

  /// The next time at which a timer-based policy could fire (now if already
  /// due or non-timer). Used by simulation harnesses to advance the clock.
  SimTime NextEligible(SimTime now) const;

  const TriggerConfig& config() const { return config_; }

 private:
  TriggerConfig config_;
  SimTime last_fired_;
};

}  // namespace declsched::scheduler

#endif  // DECLSCHED_SCHEDULER_TRIGGER_POLICY_H_
