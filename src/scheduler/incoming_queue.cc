#include "scheduler/incoming_queue.h"

namespace declsched::scheduler {

int64_t IncomingQueue::Push(Request request) {
  int64_t size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(request));
    ++total_pushed_;
    size = static_cast<int64_t>(queue_.size());
  }
  if (notify_) notify_();
  return size;
}

RequestBatch IncomingQueue::DrainAll() {
  std::lock_guard<std::mutex> lock(mu_);
  RequestBatch out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

int64_t IncomingQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t IncomingQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

}  // namespace declsched::scheduler
