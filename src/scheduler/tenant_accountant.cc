#include "scheduler/tenant_accountant.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/table.h"

namespace declsched::scheduler {

TenantAccountant::TenantAccountant(TenantQosConfig config, RequestStore* store)
    : config_(std::move(config)), store_(store) {
  DS_CHECK(store_ != nullptr);
  // A non-positive quantum would divide the drr round update by zero.
  config_.drr_quantum_us = std::max<int64_t>(1, config_.drr_quantum_us);
  if (store_->pending_count() == 0 && store_->history_count() == 0) {
    // Zero counters describe an empty store exactly: adopt the sync point
    // now so the very first narrated delta is accepted (no rebuild). A
    // store that already has rows stays unsynced until the first
    // BeginCycle() rebuild.
    synced_pending_epoch_ = store_->pending_epoch();
    synced_history_epoch_ = store_->history_epoch();
    synced_history_version_ = store_->history_version();
  }
}

int64_t TenantAccountant::ServiceCost(txn::OpType op) const {
  switch (op) {
    case txn::OpType::kRead:
      return config_.read_service_us;
    case txn::OpType::kWrite:
      return config_.write_service_us;
    default:
      return config_.finisher_service_us;
  }
}

TenantAccountant::State& TenantAccountant::TenantState(int64_t tenant) {
  auto it = states_.find(tenant);
  if (it != states_.end()) return it->second;
  State state;
  const auto& mirror = store_->tenants_by_id();
  auto row = mirror.find(tenant);
  const bool fresh = row == mirror.end();
  if (fresh) {
    state.acct.tenant = tenant;
  } else {
    // The relation already has this tenant (test-seeded, auto-created by
    // InsertPending, or surviving a rebuild): adopt its accounting. A
    // hand-written weight below 1 would divide the vtime update by zero.
    state.acct = row->second;
    state.acct.weight = std::max<int64_t>(1, state.acct.weight);
  }
  auto spec = config_.tenants.find(tenant);
  if (spec != config_.tenants.end()) {
    // The configured knobs are authoritative for configured tenants. A
    // rate with no burst would cap every refill at zero — permanent
    // throttling — so a rate implies a bucket of at least one token.
    state.acct.weight = std::max<int64_t>(1, spec->second.weight);
    state.acct.rate = spec->second.rate;
    state.acct.burst = spec->second.rate > 0
                           ? std::max<int64_t>(1, spec->second.burst)
                           : spec->second.burst;
    state.acct.cap = spec->second.cap;
    if (fresh) state.acct.tokens = state.acct.burst;  // bucket starts full
  }
  state.micro_tokens = state.acct.tokens * kMicro;
  if (state.acct.rate > 0) ++rate_limited_;
  auto [inserted, unused] = states_.emplace(tenant, std::move(state));
  (void)unused;
  MarkDirty(tenant, inserted->second);
  return inserted->second;
}

Status TenantAccountant::SeedConfig() {
  for (const auto& [tenant, spec] : config_.tenants) TenantState(tenant);
  return Flush();
}

void TenantAccountant::MarkDirty(int64_t tenant, State& state) {
  if (!state.dirty) {
    state.dirty = true;
    dirty_.push_back(tenant);
  }
}

void TenantAccountant::CatchUpVtime(State& state) {
  int64_t min_busy = -1;
  for (const auto& [tenant, other] : states_) {
    if (&other == &state || other.pending + other.acct.inflight == 0) continue;
    if (min_busy < 0 || other.acct.vtime < min_busy) min_busy = other.acct.vtime;
  }
  if (min_busy > state.acct.vtime) state.acct.vtime = min_busy;
}

bool TenantAccountant::AcceptDelta(uint64_t dp, uint64_t dh) {
  // A hook that did not touch history must also see the content version
  // unmoved — adopting it blindly would launder an out-of-band history
  // edit (ad-hoc DML bumps the version but not the epoch) into the sync
  // point and skip the rebuild the staleness contract promises.
  if (synced_pending_epoch_ == 0 ||
      store_->pending_epoch() != synced_pending_epoch_ + dp ||
      store_->history_epoch() != synced_history_epoch_ + dh ||
      (dh == 0 && store_->history_version() != synced_history_version_)) {
    synced_pending_epoch_ = 0;
    return false;
  }
  synced_pending_epoch_ += dp;
  synced_history_epoch_ += dh;
  synced_history_version_ = store_->history_version();
  return true;
}

void TenantAccountant::OnAdmitted(const RequestBatch& batch) {
  if (batch.empty()) return;
  if (!AcceptDelta(/*dp=*/1, /*dh=*/0)) return;
  State* state = nullptr;
  int64_t last = -1;
  for (const Request& r : batch) {
    if (state == nullptr || r.tenant != last) {
      state = &TenantState(r.tenant);
      last = r.tenant;
    }
    if (state->pending == 0 && state->acct.inflight == 0) {
      CatchUpVtime(*state);
      MarkDirty(r.tenant, *state);
    }
    ++state->pending;
    ++state->admitted;
    state->oldest.emplace_back(r.id, r.arrival.micros());
  }
}

void TenantAccountant::ChargeDispatch(State& state, const Request& request) {
  --state.pending;
  ++state.acct.inflight;
  ++state.dispatched;
  // Keep the starvation FIFO from accumulating stale entries when nobody
  // queries the guard: once it outgrows twice the live pending count, pop
  // the dispatched/dropped fronts. Each entry is appended and popped at
  // most once, so the prune is amortized O(1) per admission.
  if (state.oldest.size() > 16 &&
      static_cast<int64_t>(state.oldest.size()) > 2 * state.pending) {
    const auto& mirror = store_->pending_by_id();
    while (!state.oldest.empty() &&
           mirror.find(state.oldest.front().first) == mirror.end()) {
      state.oldest.pop_front();
    }
  }
  const int64_t cost = ServiceCost(request.op);
  state.service_us += cost;
  state.acct.vtime += cost * kWfqScale / state.acct.weight;
  state.round_progress_us += cost;
  const int64_t per_round = config_.drr_quantum_us * state.acct.weight;
  if (state.round_progress_us >= per_round) {
    state.acct.round += state.round_progress_us / per_round;
    state.round_progress_us %= per_round;
  }
  if (state.acct.rate > 0) {
    // Consume one token; at most one token of debt so a rate-limited
    // tenant that a non-token policy kept dispatching is not buried.
    state.micro_tokens = std::max(state.micro_tokens - kMicro, -kMicro);
    state.acct.tokens = state.micro_tokens / kMicro;
  }
}

void TenantAccountant::OnScheduled(const RequestBatch& batch) {
  if (batch.empty()) return;
  if (!AcceptDelta(/*dp=*/1, /*dh=*/1)) return;
  State* state = nullptr;
  int64_t last = -1;
  for (const Request& r : batch) {
    if (state == nullptr || r.tenant != last) {
      state = &TenantState(r.tenant);
      last = r.tenant;
      MarkDirty(r.tenant, *state);
    }
    ChargeDispatch(*state, r);
  }
}

void TenantAccountant::OnMarkerInjected(
    const Request& marker, const std::map<int64_t, int64_t>& dropped_by_tenant) {
  if (!AcceptDelta(/*dp=*/dropped_by_tenant.empty() ? 0u : 1u, /*dh=*/1)) {
    return;
  }
  for (const auto& [tenant, dropped] : dropped_by_tenant) {
    State& state = TenantState(tenant);
    state.pending -= dropped;
    DS_CHECK(state.pending >= 0);
  }
  // The marker's history row counts in flight (GC will retire it by its
  // row tenant), but charges no service: it is not client work.
  State& state = TenantState(marker.tenant);
  ++state.acct.inflight;
  MarkDirty(marker.tenant, state);
}

void TenantAccountant::OnFinished(const RequestStore::GcResult& gc) {
  if (gc.rows_by_tenant.empty()) return;
  if (!AcceptDelta(/*dp=*/0, /*dh=*/1)) return;
  for (const auto& [tenant, rows] : gc.rows_by_tenant) {
    State& state = TenantState(tenant);
    state.acct.inflight -= rows;
    state.finished_rows += rows;
    DS_CHECK(state.acct.inflight >= 0);
    MarkDirty(tenant, state);
  }
}

Status TenantAccountant::BeginCycle(SimTime now) {
  // Force the store's lazy mirror heal so the epoch comparison below sees
  // any out-of-band pending edit.
  store_->pending_by_id();
  if (synced_pending_epoch_ == 0 ||
      synced_pending_epoch_ != store_->pending_epoch() ||
      synced_history_epoch_ != store_->history_epoch() ||
      synced_history_version_ != store_->history_version()) {
    Rebuild();
  }
  if (rate_limited_ > 0 && now > last_refill_) {
    // Clamp the refill window so rate * dt stays comfortably in 64 bits
    // even across huge simulated gaps.
    const int64_t dt =
        std::min<int64_t>(now.micros() - last_refill_.micros(), kMicro * 1000);
    for (auto& [tenant, state] : states_) {
      if (state.acct.rate <= 0) continue;
      const int64_t ceiling = state.acct.burst * kMicro;
      state.micro_tokens =
          std::min(ceiling, state.micro_tokens + state.acct.rate * dt);
      const int64_t tokens = state.micro_tokens / kMicro;
      if (tokens != state.acct.tokens) {
        state.acct.tokens = tokens;
        MarkDirty(tenant, state);
      }
    }
  }
  if (now > last_refill_) last_refill_ = now;
  return Flush();
}

Status TenantAccountant::EndCycle() {
  DS_RETURN_NOT_OK(Flush());
  if (config_.publish_snapshots) {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    ++published_.version;
    published_.pending_epoch = store_->pending_epoch();
    published_.history_epoch = store_->history_epoch();
    published_.tenants.clear();
    published_.tenants.reserve(states_.size());
    for (const auto& [tenant, state] : states_) {
      published_.tenants.push_back(MakeTotals(state));
    }
  }
  return Status::OK();
}

Status TenantAccountant::Flush() {
  for (int64_t tenant : dirty_) {
    State& state = states_.at(tenant);
    state.dirty = false;
    DS_RETURN_NOT_OK(store_->UpsertTenant(state.acct));
  }
  dirty_.clear();
  return Status::OK();
}

void TenantAccountant::Rebuild() {
  ++full_rebuilds_;
  states_.clear();
  dirty_.clear();
  rate_limited_ = 0;
  // Adopt the `tenants` relation as durable truth for the monotone
  // accounting columns (vtime/round/tokens, configured knobs overlaid),
  // then recount pending/inflight exactly from the request relations.
  // Cumulative counters restart from zero (documented).
  for (const auto& [tenant, acct] : store_->tenants_by_id()) {
    TenantState(tenant);
  }
  for (const auto& [tenant, spec] : config_.tenants) TenantState(tenant);
  for (auto& [tenant, state] : states_) state.acct.inflight = 0;
  for (const auto& [id, r] : store_->pending_by_id()) {
    State& state = TenantState(r.tenant);
    ++state.pending;
    state.oldest.emplace_back(r.id, r.arrival.micros());
  }
  const storage::Table* history = store_->catalog()->GetTable("history");
  history->ForEach([&](storage::RowId, const storage::Row& row) {
    ++TenantState(row[RequestStore::kColTenant].AsInt64()).acct.inflight;
  });
  for (auto& [tenant, state] : states_) MarkDirty(tenant, state);
  synced_pending_epoch_ = store_->pending_epoch();
  synced_history_epoch_ = store_->history_epoch();
  synced_history_version_ = store_->history_version();
}

bool TenantAccountant::synced_with(const RequestStore& store) const {
  return synced_pending_epoch_ != 0 &&
         synced_pending_epoch_ == store.pending_epoch() &&
         synced_history_epoch_ == store.history_epoch() &&
         synced_history_version_ == store.history_version();
}

TenantAccountant::TenantTotals TenantAccountant::MakeTotals(
    const State& state) const {
  TenantTotals t;
  t.tenant = state.acct.tenant;
  t.weight = state.acct.weight;
  t.pending = state.pending;
  t.inflight = state.acct.inflight;
  t.admitted = state.admitted;
  t.dispatched = state.dispatched;
  t.finished_rows = state.finished_rows;
  t.service_us = state.service_us;
  t.vtime = state.acct.vtime;
  t.round = state.acct.round;
  t.tokens = state.acct.tokens;
  return t;
}

std::vector<TenantAccountant::TenantTotals> TenantAccountant::Totals() const {
  std::vector<TenantTotals> out;
  out.reserve(states_.size());
  for (const auto& [tenant, state] : states_) out.push_back(MakeTotals(state));
  return out;
}

TenantAccountant::TenantTotals TenantAccountant::TotalsFor(
    int64_t tenant) const {
  auto it = states_.find(tenant);
  if (it != states_.end()) return MakeTotals(it->second);
  TenantTotals t;
  t.tenant = tenant;
  return t;
}

int64_t TenantAccountant::OldestPendingWaitUs(int64_t tenant,
                                              SimTime now) const {
  auto it = states_.find(tenant);
  if (it == states_.end()) return -1;
  const auto& mirror = store_->pending_by_id();
  auto& oldest = it->second.oldest;
  while (!oldest.empty() && mirror.find(oldest.front().first) == mirror.end()) {
    oldest.pop_front();
  }
  if (oldest.empty()) return -1;
  return now.micros() - oldest.front().second;
}

std::vector<int64_t> TenantAccountant::StarvedTenants(SimTime now,
                                                      int64_t wait_us) const {
  std::vector<int64_t> starved;
  for (const auto& [tenant, state] : states_) {
    if (state.pending <= 0) continue;
    const int64_t wait = OldestPendingWaitUs(tenant, now);
    if (wait >= wait_us) starved.push_back(tenant);
  }
  return starved;
}

TenantAccountant::Snapshot TenantAccountant::PublishedSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return published_;
}

}  // namespace declsched::scheduler
