#include "sim/simulator.h"

#include "common/logging.h"

namespace declsched::sim {

void Simulator::ScheduleAt(SimTime when, Callback cb) {
  DS_CHECK(when >= now_);
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void Simulator::Run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) {
    // priority_queue::top returns const&; the callback must be moved out, so
    // copy the POD fields first and const_cast the functor (safe: we pop
    // immediately and never re-read the moved-from element).
    Event& top = const_cast<Event&>(heap_.top());
    now_ = top.time;
    Callback cb = std::move(top.cb);
    heap_.pop();
    ++events_processed_;
    cb();
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.top().time <= deadline) {
    Event& top = const_cast<Event&>(heap_.top());
    now_ = top.time;
    Callback cb = std::move(top.cb);
    heap_.pop();
    ++events_processed_;
    cb();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace declsched::sim
