// Single-server FIFO resource (models the testbed's single CPU core).

#ifndef DECLSCHED_SIM_RESOURCE_H_
#define DECLSCHED_SIM_RESOURCE_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "sim/simulator.h"

namespace declsched::sim {

/// A work-conserving single server with a FIFO queue. Jobs submitted while
/// the server is busy wait in arrival order; service is non-preemptive.
/// Models the paper's single-core CPU: every statement's execution and every
/// lock-manager action consumes CPU time here.
class FifoResource {
 public:
  explicit FifoResource(Simulator* sim) : sim_(sim) {}

  /// Submits a job needing `service` CPU time. `on_complete` runs at the
  /// virtual time the job finishes.
  void Submit(SimTime service, std::function<void()> on_complete);

  /// Jobs submitted but not yet completed.
  int64_t jobs_in_system() const { return jobs_in_system_; }

  /// Total CPU busy time accumulated so far.
  SimTime busy_time() const { return busy_time_; }

  /// Virtual time at which the server next becomes idle (<= Now() if idle).
  SimTime busy_until() const { return busy_until_; }

 private:
  Simulator* sim_;
  SimTime busy_until_;
  SimTime busy_time_;
  int64_t jobs_in_system_ = 0;
};

}  // namespace declsched::sim

#endif  // DECLSCHED_SIM_RESOURCE_H_
