// Discrete-event simulation kernel.
//
// The paper's evaluation ran on a 2.8 GHz single-core machine for 240-second
// wall-clock windows. We reproduce those experiments on a deterministic
// simulated timeline: components schedule callbacks at future SimTime points
// and the Simulator dispatches them in (time, insertion-order) order. All
// randomness comes from explicitly seeded Rng instances, so a simulation run
// is a pure function of its configuration.

#ifndef DECLSCHED_SIM_SIMULATOR_H_
#define DECLSCHED_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace declsched::sim {

/// Event-driven simulator with a monotonically advancing virtual clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at Now() + delay (delay >= 0).
  void Schedule(SimTime delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  /// Schedules `cb` at an absolute virtual time (>= Now()).
  void ScheduleAt(SimTime when, Callback cb);

  /// Dispatches events until the queue is empty or Stop() is called.
  void Run();

  /// Dispatches events with time <= deadline; leaves later events queued and
  /// sets the clock to the deadline.
  void RunUntil(SimTime deadline);

  /// Makes Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  int64_t events_processed() const { return events_processed_; }
  bool empty() const { return heap_.empty(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_;
  uint64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace declsched::sim

#endif  // DECLSCHED_SIM_SIMULATOR_H_
