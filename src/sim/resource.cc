#include "sim/resource.h"

#include <algorithm>
#include <utility>

namespace declsched::sim {

void FifoResource::Submit(SimTime service, std::function<void()> on_complete) {
  const SimTime start = std::max(sim_->Now(), busy_until_);
  const SimTime end = start + service;
  busy_until_ = end;
  busy_time_ += service;
  ++jobs_in_system_;
  sim_->ScheduleAt(end, [this, cb = std::move(on_complete)]() {
    --jobs_in_system_;
    cb();
  });
}

}  // namespace declsched::sim
