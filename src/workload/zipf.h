// Zipfian object-key generator (YCSB-style), for skewed workload variants.

#ifndef DECLSCHED_WORKLOAD_ZIPF_H_
#define DECLSCHED_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "common/rng.h"

namespace declsched::workload {

/// Draws keys in [0, n) with P(k) proportional to 1/(k+1)^theta, using the
/// Gray et al. rejection-free method. theta = 0 degenerates to uniform;
/// theta ~ 0.99 is the YCSB default "hot-spot" skew.
class ZipfGenerator {
 public:
  ZipfGenerator(int64_t n, double theta);

  int64_t Next(Rng& rng);

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace declsched::workload

#endif  // DECLSCHED_WORKLOAD_ZIPF_H_
