#include "workload/oltp_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace declsched::workload {

OltpWorkloadGenerator::OltpWorkloadGenerator(const WorkloadConfig& config,
                                             uint64_t seed)
    : config_(config),
      rng_(seed),
      zipf_(config.num_objects, config.zipf_theta),
      tenant_zipf_(std::max(config.num_tenants, 1), config.tenant_zipf_theta) {
  DS_CHECK(config.num_objects > 0);
  DS_CHECK(config.reads_per_txn >= 0 && config.writes_per_txn >= 0);
  DS_CHECK(config.reads_per_txn + config.writes_per_txn > 0);
  DS_CHECK(config.num_sla_classes >= 1);
  DS_CHECK(config.num_tenants >= 1);
  if (config.distinct_objects) {
    DS_CHECK(config.reads_per_txn + config.writes_per_txn <= config.num_objects);
  }
  if (!config_.tenant_weights.empty()) {
    DS_CHECK(static_cast<int>(config_.tenant_weights.size()) ==
             config_.num_tenants);
    for (double w : config_.tenant_weights) {
      DS_CHECK(w >= 0);
      tenant_weight_total_ += w;
    }
    DS_CHECK(tenant_weight_total_ > 0);
  }
}

int OltpWorkloadGenerator::DrawTenant() {
  if (config_.num_tenants <= 1) return 0;
  if (!config_.tenant_weights.empty()) {
    double draw = rng_.NextDouble() * tenant_weight_total_;
    for (int t = 0; t < config_.num_tenants; ++t) {
      draw -= config_.tenant_weights[static_cast<size_t>(t)];
      if (draw <= 0) return t;
    }
    return config_.num_tenants - 1;
  }
  return static_cast<int>(tenant_zipf_.Next(rng_));
}

TxnSpec OltpWorkloadGenerator::NextTransaction() {
  const int total = config_.reads_per_txn + config_.writes_per_txn;
  TxnSpec txn;
  txn.tenant = DrawTenant();
  txn.ops.reserve(static_cast<size_t>(total));

  // Draw objects (optionally distinct within the transaction).
  std::vector<txn::ObjectId> objects;
  objects.reserve(static_cast<size_t>(total));
  std::unordered_set<txn::ObjectId> seen;
  for (int i = 0; i < total; ++i) {
    txn::ObjectId object = zipf_.Next(rng_);
    if (config_.distinct_objects) {
      while (seen.count(object) > 0) object = zipf_.Next(rng_);
      seen.insert(object);
    }
    objects.push_back(object);
  }

  // Assign read/write types in the configured order.
  std::vector<bool> is_write;
  is_write.reserve(static_cast<size_t>(total));
  switch (config_.order) {
    case WorkloadConfig::OpOrder::kReadsFirst:
      for (int i = 0; i < config_.reads_per_txn; ++i) is_write.push_back(false);
      for (int i = 0; i < config_.writes_per_txn; ++i) is_write.push_back(true);
      break;
    case WorkloadConfig::OpOrder::kAlternating: {
      int reads = config_.reads_per_txn;
      int writes = config_.writes_per_txn;
      bool next_write = false;
      while (reads + writes > 0) {
        if ((next_write && writes > 0) || reads == 0) {
          is_write.push_back(true);
          --writes;
        } else {
          is_write.push_back(false);
          --reads;
        }
        next_write = !next_write;
      }
      break;
    }
    case WorkloadConfig::OpOrder::kShuffled: {
      for (int i = 0; i < config_.reads_per_txn; ++i) is_write.push_back(false);
      for (int i = 0; i < config_.writes_per_txn; ++i) is_write.push_back(true);
      // Fisher-Yates with our deterministic Rng (vector<bool> proxies cannot
      // be std::swap'ed).
      for (int i = total - 1; i > 0; --i) {
        const int j = static_cast<int>(rng_.UniformInt(0, i));
        const bool tmp = is_write[i];
        is_write[i] = is_write[j];
        is_write[j] = tmp;
      }
      break;
    }
  }

  for (int i = 0; i < total; ++i) {
    txn.ops.push_back(OpSpec{is_write[i], objects[i]});
  }

  // SLA class: weight 1/2^c.
  if (config_.num_sla_classes > 1) {
    double total_weight = 0;
    for (int c = 0; c < config_.num_sla_classes; ++c) total_weight += 1.0 / (1 << c);
    double draw = rng_.NextDouble() * total_weight;
    for (int c = 0; c < config_.num_sla_classes; ++c) {
      draw -= 1.0 / (1 << c);
      if (draw <= 0) {
        txn.sla_class = c;
        break;
      }
      txn.sla_class = config_.num_sla_classes - 1;
    }
  }
  return txn;
}

}  // namespace declsched::workload
