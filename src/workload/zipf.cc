#include "workload/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace declsched::workload {

namespace {
double Zeta(int64_t n, double theta) {
  double sum = 0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(int64_t n, double theta) : n_(n), theta_(theta) {
  DS_CHECK(n > 0);
  DS_CHECK(theta >= 0 && theta < 1.0 + 1e-9);
  if (theta_ == 0) {
    alpha_ = zetan_ = eta_ = zeta2_ = 0;
    return;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

int64_t ZipfGenerator::Next(Rng& rng) {
  if (theta_ == 0) return rng.UniformInt(0, n_ - 1);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const int64_t k = static_cast<int64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(k, n_ - 1);
}

}  // namespace declsched::workload
