// OLTP workload generator: the paper's Section 4.2.1 workload plus the
// knobs (skew, SLA classes, read-only mix) the later experiments need.

#ifndef DECLSCHED_WORKLOAD_OLTP_GENERATOR_H_
#define DECLSCHED_WORKLOAD_OLTP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "txn/types.h"
#include "workload/zipf.h"

namespace declsched::workload {

struct WorkloadConfig {
  /// Table size; statements address one uniform (or Zipfian) random row.
  int64_t num_objects = 100000;
  /// Paper workload: 20 SELECT + 20 UPDATE per transaction.
  int reads_per_txn = 20;
  int writes_per_txn = 20;

  enum class OpOrder {
    kShuffled,    // reads and writes interleaved randomly (default)
    kReadsFirst,  // all reads, then all writes
    kAlternating  // r w r w ...
  };
  OpOrder order = OpOrder::kShuffled;

  /// 0 = uniform (the paper); ~0.99 = YCSB-style hot spot.
  double zipf_theta = 0.0;

  /// The paper's SS2PL query assumes "each transaction accesses an object
  /// only once"; the generator enforces it by redrawing duplicates.
  bool distinct_objects = true;

  /// Number of service classes; class 0 is the highest priority ("premium").
  /// Classes are drawn with probability weight 1/2^class (then normalized).
  int num_sla_classes = 1;

  // --- multi-tenant tagging ---
  /// Number of tenants; each transaction is tagged with one.
  int num_tenants = 1;
  /// Zipf skew of the tenant draw (0 = uniform): with theta ~ 0.99 a few
  /// hot tenants submit most of the load — the aggressor regime the
  /// fairness policies exist for. Tenant 0 is the hottest.
  double tenant_zipf_theta = 0.0;
  /// Explicit per-tenant submission weights (size num_tenants); overrides
  /// the Zipf draw when non-empty. E.g. {10,1,1,...} makes tenant 0 a
  /// 10x aggressor.
  std::vector<double> tenant_weights;
};

/// One operation of a transaction.
struct OpSpec {
  bool is_write = false;
  txn::ObjectId object = 0;
};

/// A generated transaction: its operations plus SLA/tenant metadata.
struct TxnSpec {
  std::vector<OpSpec> ops;
  int sla_class = 0;
  int tenant = 0;
};

/// Deterministic generator (a pure function of config + seed + call order).
class OltpWorkloadGenerator {
 public:
  OltpWorkloadGenerator(const WorkloadConfig& config, uint64_t seed);

  TxnSpec NextTransaction();

  const WorkloadConfig& config() const { return config_; }

 private:
  int DrawTenant();

  WorkloadConfig config_;
  Rng rng_;
  ZipfGenerator zipf_;
  ZipfGenerator tenant_zipf_;
  double tenant_weight_total_ = 0;
};

}  // namespace declsched::workload

#endif  // DECLSCHED_WORKLOAD_OLTP_GENERATOR_H_
