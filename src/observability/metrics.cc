#include "observability/metrics.h"

#include <sstream>

#include "common/logging.h"

namespace declsched::observability {

namespace {

/// Canonical key of a label set: `k1="v1",k2="v2"` in given order.
std::string LabelKey(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += "=\"";
    for (char c : v) {
      if (c == '\\' || c == '"') key += '\\';
      key += c;
    }
    key += '"';
  }
  return key;
}

std::string RenderName(const std::string& name, const std::string& label_key,
                       const std::string& extra = "") {
  std::string out = name;
  if (!label_key.empty() || !extra.empty()) {
    out += '{';
    out += label_key;
    if (!label_key.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  return out;
}

}  // namespace

const std::vector<int64_t>& DefaultLatencyBoundsUs() {
  static const std::vector<int64_t> kBounds = {
      50,     100,    250,    500,     1000,    2500,    5000,    10000,
      25000,  50000,  100000, 250000,  500000,  1000000, 2500000, 5000000};
  return kBounds;
}

MetricsRegistry::Instance* MetricsRegistry::GetInstance(
    const std::string& name, const std::string& help, Kind kind,
    MetricLabels labels, const std::vector<int64_t>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = nullptr;
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    family = it->second;
    DS_CHECK(family->kind == kind);  // one kind per family, ever
  } else {
    auto owned = std::make_unique<Family>();
    owned->name = name;
    owned->help = help;
    owned->kind = kind;
    if (bounds != nullptr) owned->bounds = *bounds;
    family = owned.get();
    families_.push_back(std::move(owned));
    by_name_[name] = family;
  }
  const std::string key = LabelKey(labels);
  auto inst_it = family->by_label_key.find(key);
  if (inst_it != family->by_label_key.end()) return inst_it->second;
  auto inst = std::make_unique<Instance>();
  inst->labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter:
      inst->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      inst->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      inst->histogram = std::make_unique<HistogramMetric>();
      break;
  }
  Instance* raw = inst.get();
  family->instances.push_back(std::move(inst));
  family->by_label_key[key] = raw;
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  return GetInstance(name, help, Kind::kCounter, std::move(labels), nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, MetricLabels labels) {
  return GetInstance(name, help, Kind::kGauge, std::move(labels), nullptr)
      ->gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& help, MetricLabels labels,
    const std::vector<int64_t>& bounds_us) {
  return GetInstance(name, help, Kind::kHistogram, std::move(labels), &bounds_us)
      ->histogram.get();
}

int64_t MetricsRegistry::Value(const std::string& name,
                               const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  auto inst_it = it->second->by_label_key.find(LabelKey(labels));
  if (inst_it == it->second->by_label_key.end()) return 0;
  const Instance& inst = *inst_it->second;
  if (inst.counter) return inst.counter->Value();
  if (inst.gauge) return inst.gauge->Value();
  if (inst.histogram) return inst.histogram->Snapshot().count();
  return 0;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& family : families_) {
    os << "# HELP " << family->name << ' ' << family->help << '\n';
    os << "# TYPE " << family->name << ' ';
    switch (family->kind) {
      case Kind::kCounter:
        os << "counter\n";
        break;
      case Kind::kGauge:
        os << "gauge\n";
        break;
      case Kind::kHistogram:
        os << "histogram\n";
        break;
    }
    for (const auto& inst : family->instances) {
      const std::string key = LabelKey(inst->labels);
      switch (family->kind) {
        case Kind::kCounter:
          os << RenderName(family->name, key) << ' ' << inst->counter->Value()
             << '\n';
          break;
        case Kind::kGauge:
          os << RenderName(family->name, key) << ' ' << inst->gauge->Value()
             << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram snap = inst->histogram->Snapshot();
          for (int64_t bound : family->bounds) {
            os << RenderName(family->name + "_bucket", key,
                             "le=\"" + std::to_string(bound) + "\"")
               << ' ' << snap.CountAtOrBelow(bound) << '\n';
          }
          os << RenderName(family->name + "_bucket", key, "le=\"+Inf\"") << ' '
             << snap.count() << '\n';
          os << RenderName(family->name + "_sum", key) << ' '
             << static_cast<int64_t>(snap.sum()) << '\n';
          os << RenderName(family->name + "_count", key) << ' ' << snap.count()
             << '\n';
          break;
        }
      }
    }
  }
  return os.str();
}

}  // namespace declsched::observability
