// Lock-cheap metrics registry with Prometheus text exposition.
//
// The scrape surface every layer of the stack reports into: the sharded
// scheduler counts admissions/cycles/escrows per shard, the HTTP front door
// counts requests/throttles and times request latency, and GET /metrics
// renders the whole registry in Prometheus text format — so every bench and
// dashboard reads from the same counters the serving path maintains.
//
// Cost model: registration (GetCounter/GetGauge/GetHistogram) takes a mutex
// and should happen once at setup; the returned pointers are stable for the
// registry's lifetime, and every operation on them is a relaxed atomic —
// no lock, no allocation on the hot path. Histograms are the log-bucketed
// common/histogram layout recorded through ConcurrentHistogram (lock-free
// multi-writer) and rendered as fixed cumulative `le` buckets at scrape
// time, so recording cost never depends on the exposition schema.
//
// Naming follows Prometheus conventions: counters end in `_total`, time
// histograms in `_us` (this codebase measures microseconds throughout).
// Labels are ordered (name, value) pairs fixed at registration; the same
// name may be registered many times with different label sets (one metric
// per shard, per tenant, ...) and renders as one family.

#ifndef DECLSCHED_OBSERVABILITY_METRICS_H_
#define DECLSCHED_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace declsched::observability {

/// Ordered label set of one metric instance, fixed at registration.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter. All methods thread-safe, lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time value. All methods thread-safe, lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Multi-writer distribution; renders as a Prometheus histogram with the
/// fixed `le` bounds chosen at registration.
class HistogramMetric {
 public:
  void Record(int64_t value) { histogram_.Record(value); }
  /// Mergeable cut of the recorded distribution (percentiles, mean, ...).
  Histogram Snapshot() const { return histogram_.Snapshot(); }

 private:
  ConcurrentHistogram histogram_;
};

/// Default `le` bounds for microsecond latency histograms: 50us .. 5s.
const std::vector<int64_t>& DefaultLatencyBoundsUs();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds, if this exact name+labels was registered before)
  /// a metric. The pointer stays valid for the registry's lifetime; cache
  /// it — lookup takes the registry mutex. `help` is kept from the first
  /// registration of a family. A name registered as one kind must not be
  /// re-registered as another (returns the existing metric of the first
  /// kind's family if labels match, otherwise aborts — a programming
  /// error, not an input error).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {});
  HistogramMetric* GetHistogram(const std::string& name, const std::string& help,
                                MetricLabels labels = {},
                                const std::vector<int64_t>& bounds_us =
                                    DefaultLatencyBoundsUs());

  /// The whole registry in Prometheus text exposition format, families in
  /// registration order, instances in label order. Thread-safe; values are
  /// a relaxed read per metric (no stop-the-world cut).
  std::string RenderPrometheus() const;

  /// Reads a counter/gauge value back by name+labels (tests, stats
  /// endpoints); 0 if absent.
  int64_t Value(const std::string& name, const MetricLabels& labels = {}) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instance {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<int64_t> bounds;  ///< histogram `le` bounds (us)
    std::vector<std::unique_ptr<Instance>> instances;
    std::map<std::string, Instance*> by_label_key;
  };

  Instance* GetInstance(const std::string& name, const std::string& help,
                        Kind kind, MetricLabels labels,
                        const std::vector<int64_t>* bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
  std::map<std::string, Family*> by_name_;
};

}  // namespace declsched::observability

#endif  // DECLSCHED_OBSERVABILITY_METRICS_H_
