#include "sql/lexer.h"

#include <unordered_set>

#include "common/string_util.h"

namespace declsched::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "WITH",     "AS",     "AND",    "OR",
      "NOT",    "EXISTS", "IN",     "IS",       "NULL",   "DISTINCT",
      "ALL",    "LEFT",   "RIGHT",  "INNER",    "OUTER",  "JOIN",   "ON",
      "EXCEPT", "UNION",  "INTERSECT",          "ORDER",  "BY",     "ASC",
      "DESC",   "LIMIT",  "GROUP",  "HAVING",   "CASE",   "WHEN",   "THEN",
      "ELSE",   "END",    "BETWEEN",            "INSERT", "INTO",   "VALUES",
      "UPDATE", "SET",    "DELETE", "CREATE",   "TABLE",  "DROP",   "TRUE",
      "FALSE",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentCont(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

bool IsReservedKeyword(std::string_view upper) {
  return Keywords().count(std::string(upper)) > 0;
}

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  const size_t n = input.size();

  auto make = [&](TokenType type) {
    Token t;
    t.type = type;
    t.position = static_cast<int>(i);
    t.line = line;
    return t;
  };

  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) {
        if (input[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::ParseError(StrFormat("unterminated block comment at line %d", line));
      }
      i += 2;
      continue;
    }
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      Token t = make(TokenType::kIdentifier);
      size_t start = i;
      while (i < n && IsIdentCont(input[i])) ++i;
      t.text = std::string(input.substr(start, i - start));
      const std::string upper = ToUpper(t.text);
      if (Keywords().count(upper) > 0) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Quoted identifiers.
    if (c == '"') {
      Token t = make(TokenType::kIdentifier);
      ++i;
      size_t start = i;
      while (i < n && input[i] != '"') ++i;
      if (i >= n) {
        return Status::ParseError(StrFormat("unterminated quoted identifier at line %d", line));
      }
      t.text = std::string(input.substr(start, i - start));
      ++i;
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(input[i + 1]))) {
      Token t = make(TokenType::kIntLiteral);
      size_t start = i;
      bool is_double = false;
      while (i < n && IsDigit(input[i])) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && IsDigit(input[i])) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && IsDigit(input[i])) ++i;
      }
      const std::string text(input.substr(start, i - start));
      if (is_double) {
        t.type = TokenType::kDoubleLiteral;
        t.double_value = std::stod(text);
      } else {
        try {
          t.int_value = std::stoll(text);
        } catch (...) {
          return Status::ParseError(StrFormat("integer literal out of range at line %d", line));
        }
      }
      t.text = text;
      tokens.push_back(std::move(t));
      continue;
    }
    // String literals with '' escaping.
    if (c == '\'') {
      Token t = make(TokenType::kStringLiteral);
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        if (input[i] == '\n') ++line;
        body += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError(StrFormat("unterminated string literal at line %d", line));
      }
      t.text = std::move(body);
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators / punctuation.
    Token t = make(TokenType::kEof);
    switch (c) {
      case ',':
        t.type = TokenType::kComma;
        ++i;
        break;
      case '.':
        t.type = TokenType::kDot;
        ++i;
        break;
      case '*':
        t.type = TokenType::kStar;
        ++i;
        break;
      case '(':
        t.type = TokenType::kLParen;
        ++i;
        break;
      case ')':
        t.type = TokenType::kRParen;
        ++i;
        break;
      case ';':
        t.type = TokenType::kSemicolon;
        ++i;
        break;
      case '+':
        t.type = TokenType::kPlus;
        ++i;
        break;
      case '-':
        t.type = TokenType::kMinus;
        ++i;
        break;
      case '/':
        t.type = TokenType::kSlash;
        ++i;
        break;
      case '%':
        t.type = TokenType::kPercent;
        ++i;
        break;
      case '=':
        t.type = TokenType::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          t.type = TokenType::kNe;
          i += 2;
        } else {
          return Status::ParseError(StrFormat("unexpected '!' at line %d", line));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '>') {
          t.type = TokenType::kNe;
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '=') {
          t.type = TokenType::kLe;
          i += 2;
        } else {
          t.type = TokenType::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          t.type = TokenType::kGe;
          i += 2;
        } else {
          t.type = TokenType::kGt;
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' (0x%02x) at line %d", c, c, line));
    }
    tokens.push_back(std::move(t));
  }

  Token eof;
  eof.type = TokenType::kEof;
  eof.position = static_cast<int>(n);
  eof.line = line;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace declsched::sql
