// SQL lexer: text -> Token stream.

#ifndef DECLSCHED_SQL_LEXER_H_
#define DECLSCHED_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace declsched::sql {

/// Tokenizes `input`. Keywords are recognized case-insensitively and emitted
/// upper-cased; identifiers keep their original spelling (matching is
/// case-insensitive downstream). Supports `--` line and `/* */` block
/// comments and '' escaping inside string literals.
Result<std::vector<Token>> Lex(std::string_view input);

/// True if `word` (upper-cased) is a reserved SQL keyword in this dialect.
bool IsReservedKeyword(std::string_view upper);

}  // namespace declsched::sql

#endif  // DECLSCHED_SQL_LEXER_H_
