// SQL abstract syntax tree (parser output, planner input).

#ifndef DECLSCHED_SQL_AST_H_
#define DECLSCHED_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace declsched::sql {

struct SelectStmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

enum class UnOp { kNot, kNeg };

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

struct Expr {
  enum class Kind {
    kLiteral,     // value
    kColumnRef,   // [qualifier.]column
    kStar,        // * or alias.*  (select list / COUNT(*) only)
    kUnary,       // NOT / -
    kBinary,      // comparisons, AND/OR, arithmetic
    kIsNull,      // expr IS [NOT] NULL
    kExists,      // [NOT] EXISTS (subquery)
    kInList,      // expr [NOT] IN (e1, e2, ...)
    kInSubquery,  // expr [NOT] IN (subquery)
    kBetween,     // expr [NOT] BETWEEN lo AND hi
    kAggCall,     // COUNT/SUM/MIN/MAX/AVG([DISTINCT] arg | *)
    kCase,        // CASE [operand] WHEN .. THEN .. [ELSE ..] END
  };

  Kind kind;

  // kLiteral
  storage::Value literal;

  // kColumnRef / kStar
  std::string qualifier;  // may be empty
  std::string column;

  // kUnary / kBinary / kIsNull / kInList / kBetween / kCase
  UnOp un_op = UnOp::kNot;
  BinOp bin_op = BinOp::kEq;
  bool negated = false;  // IS NOT NULL / NOT IN / NOT EXISTS / NOT BETWEEN
  std::vector<std::unique_ptr<Expr>> children;

  // kExists / kInSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kAggCall
  AggFunc agg_func = AggFunc::kCount;
  bool agg_distinct = false;
  bool agg_star = false;  // COUNT(*)

  // kCase: children layout is [operand?] then pairs (when, then)..., [else?]
  bool case_has_operand = false;
  bool case_has_else = false;

  static std::unique_ptr<Expr> Make(Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    return e;
  }
};

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

struct TableRef {
  enum class Kind { kBase, kSubquery, kJoin };
  Kind kind;

  // kBase
  std::string table_name;

  // kBase / kSubquery
  std::string alias;  // empty -> table_name is the binding name

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kJoin
  enum class JoinType { kInner, kLeft };
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  std::unique_ptr<Expr> on;  // may be null for CROSS-like INNER JOIN .. ON TRUE
};

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

struct SelectItem {
  std::unique_ptr<Expr> expr;  // kStar allowed here
  std::string alias;           // optional
};

struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;  // comma-separated factors
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
};

/// Set-operation tree over SELECT cores.
struct SetOpNode {
  enum class Kind { kCore, kUnionAll, kUnionDistinct, kExcept, kIntersect };
  Kind kind = Kind::kCore;
  std::unique_ptr<SelectCore> core;  // iff kCore
  std::unique_ptr<SetOpNode> left;
  std::unique_ptr<SetOpNode> right;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

struct CteDef {
  std::string name;
  std::unique_ptr<SelectStmt> select;
};

struct SelectStmt {
  std::vector<CteDef> ctes;
  std::unique_ptr<SetOpNode> body;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
};

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty -> full schema order
  // Either literal rows or a source select.
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
  std::unique_ptr<SelectStmt> select;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

struct CreateTableStmt {
  std::string table;
  std::vector<std::pair<std::string, storage::ValueType>> columns;
};

struct DropTableStmt {
  std::string table;
};

struct Statement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete, kCreateTable, kDropTable };
  Kind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
};

}  // namespace declsched::sql

#endif  // DECLSCHED_SQL_AST_H_
