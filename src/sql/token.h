// SQL token vocabulary.

#ifndef DECLSCHED_SQL_TOKEN_H_
#define DECLSCHED_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace declsched::sql {

enum class TokenType : uint8_t {
  kEof,
  kIdentifier,   // foo, "quoted"
  kKeyword,      // normalized to upper case in `text`
  kIntLiteral,   // 42
  kDoubleLiteral,  // 1.5
  kStringLiteral,  // 'abc' (text holds the unescaped body)
  // punctuation / operators
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kSemicolon,
  kEq,        // =
  kNe,        // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;    // identifier/keyword/literal body
  int64_t int_value = 0;
  double double_value = 0.0;
  int position = 0;  // byte offset in the input, for error messages
  int line = 1;

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace declsched::sql

#endif  // DECLSCHED_SQL_TOKEN_H_
