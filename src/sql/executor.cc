#include "sql/executor.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace declsched::sql {

namespace {

using storage::Row;
using storage::RowEq;
using storage::RowHash;
using storage::Value;
using storage::ValueEq;
using storage::ValueHash;
using storage::ValueType;

// ---------------------------------------------------------------------------
// Execution context
// ---------------------------------------------------------------------------

struct PartitionCache {
  Relation source;
  std::unordered_map<Value, std::vector<int>, ValueHash, ValueEq> buckets;
};

struct InSetCache {
  std::unordered_set<Value, ValueHash, ValueEq> values;
  bool has_null = false;
};

struct Ctx {
  const PreparedPlan* plan = nullptr;
  std::vector<Relation> cte_results;
  std::vector<const Row*> row_stack;
  std::unordered_map<const SubqueryPlan*, Relation> subquery_cache;
  std::unordered_map<const SubqueryPlan*, PartitionCache> partition_cache;
  std::unordered_map<const SubqueryPlan*, InSetCache> in_set_cache;
};

Result<Relation> ExecNode(const PlanNode& node, Ctx& ctx);
Result<Value> Eval(const BoundExpr& e, Ctx& ctx);

// ---------------------------------------------------------------------------
// Value helpers
// ---------------------------------------------------------------------------

Value Bool(bool b) { return Value::Int64(b ? 1 : 0); }

/// Three-valued comparison: null if either side is null; error on class
/// mismatch (number vs string).
Result<Value> Compare3(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const bool ln = l.is_numeric();
  const bool rn = r.is_numeric();
  if (ln != rn) {
    return Status::TypeError(StrFormat("cannot compare %s with %s",
                                       ValueTypeToString(l.type()),
                                       ValueTypeToString(r.type())));
  }
  const int c = l.Compare(r);
  switch (op) {
    case BinOp::kEq:
      return Bool(c == 0);
    case BinOp::kNe:
      return Bool(c != 0);
    case BinOp::kLt:
      return Bool(c < 0);
    case BinOp::kLe:
      return Bool(c <= 0);
    case BinOp::kGt:
      return Bool(c > 0);
    case BinOp::kGe:
      return Bool(c >= 0);
    default:
      return Status::Internal("not a comparison");
  }
}

Result<Value> Arith(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  const bool use_double =
      l.type() == ValueType::kDouble || r.type() == ValueType::kDouble;
  if (use_double) {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    switch (op) {
      case BinOp::kAdd:
        return Value::Double(a + b);
      case BinOp::kSub:
        return Value::Double(a - b);
      case BinOp::kMul:
        return Value::Double(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        return Value::Double(a / b);
      case BinOp::kMod:
        return Status::TypeError("%% requires integer operands");
      default:
        return Status::Internal("not arithmetic");
    }
  }
  const int64_t a = l.AsInt64();
  const int64_t b = r.AsInt64();
  switch (op) {
    case BinOp::kAdd:
      return Value::Int64(a + b);
    case BinOp::kSub:
      return Value::Int64(a - b);
    case BinOp::kMul:
      return Value::Int64(a * b);
    case BinOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      return Value::Int64(a / b);
    case BinOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      return Value::Int64(a % b);
    default:
      return Status::Internal("not arithmetic");
  }
}

// ---------------------------------------------------------------------------
// Subquery evaluation
// ---------------------------------------------------------------------------

Result<bool> EvalExists(const BoundExpr& e, Ctx& ctx) {
  const SubqueryPlan& sq = *e.subquery;
  if (sq.decorrelated) {
    auto it = ctx.partition_cache.find(&sq);
    if (it == ctx.partition_cache.end()) {
      DS_ASSIGN_OR_RETURN(Relation source, ExecNode(*sq.source, ctx));
      PartitionCache cache;
      cache.source = std::move(source);
      for (int i = 0; i < static_cast<int>(cache.source.rows.size()); ++i) {
        const Value& key = cache.source.rows[i][sq.inner_key_col];
        if (key.is_null()) continue;  // null keys never match an equality
        cache.buckets[key].push_back(i);
      }
      it = ctx.partition_cache.emplace(&sq, std::move(cache)).first;
    }
    const PartitionCache& cache = it->second;
    DS_ASSIGN_OR_RETURN(Value key, Eval(*sq.outer_key, ctx));
    if (key.is_null()) return false;
    auto bucket = cache.buckets.find(key);
    if (bucket == cache.buckets.end()) return false;
    for (int idx : bucket->second) {
      ctx.row_stack.push_back(&cache.source.rows[idx]);
      auto verdict = Eval(*sq.residual, ctx);
      ctx.row_stack.pop_back();
      if (!verdict.ok()) return verdict.status();
      if (ValueIsTrue(*verdict)) return true;
    }
    return false;
  }
  if (!sq.correlated) {
    auto it = ctx.subquery_cache.find(&sq);
    if (it == ctx.subquery_cache.end()) {
      DS_ASSIGN_OR_RETURN(Relation rel, ExecNode(*sq.plan, ctx));
      it = ctx.subquery_cache.emplace(&sq, std::move(rel)).first;
    }
    return !it->second.rows.empty();
  }
  DS_ASSIGN_OR_RETURN(Relation rel, ExecNode(*sq.plan, ctx));
  return !rel.rows.empty();
}

Result<Value> EvalInSubquery(const BoundExpr& e, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Value tested, Eval(*e.children[0], ctx));
  const SubqueryPlan& sq = *e.subquery;

  auto match = [&tested](bool found, bool has_null) -> Value {
    if (tested.is_null()) return Value::Null();
    if (found) return Bool(true);
    if (has_null) return Value::Null();
    return Bool(false);
  };

  Value result = Value::Null();
  if (!sq.correlated) {
    auto it = ctx.in_set_cache.find(&sq);
    if (it == ctx.in_set_cache.end()) {
      DS_ASSIGN_OR_RETURN(Relation rel, ExecNode(*sq.plan, ctx));
      InSetCache cache;
      for (const Row& row : rel.rows) {
        if (row[0].is_null()) {
          cache.has_null = true;
        } else {
          cache.values.insert(row[0]);
        }
      }
      it = ctx.in_set_cache.emplace(&sq, std::move(cache)).first;
    }
    const InSetCache& cache = it->second;
    result = match(!tested.is_null() && cache.values.count(tested) > 0, cache.has_null);
  } else {
    DS_ASSIGN_OR_RETURN(Relation rel, ExecNode(*sq.plan, ctx));
    bool found = false;
    bool has_null = false;
    for (const Row& row : rel.rows) {
      if (row[0].is_null()) {
        has_null = true;
      } else if (!tested.is_null() && row[0].Equals(tested)) {
        found = true;
        break;
      }
    }
    result = match(found, has_null);
  }
  if (!e.negated) return result;
  if (result.is_null()) return result;
  return Bool(!ValueIsTrue(result));
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

Result<Value> Eval(const BoundExpr& e, Ctx& ctx) {
  switch (e.kind) {
    case BoundKind::kConst:
      return e.value;
    case BoundKind::kColRef: {
      const size_t n = ctx.row_stack.size();
      DS_CHECK(e.depth < static_cast<int>(n));
      const Row& row = *ctx.row_stack[n - 1 - e.depth];
      DS_CHECK(e.col < static_cast<int>(row.size()));
      return row[e.col];
    }
    case BoundKind::kBinary: {
      switch (e.bin_op) {
        case BinOp::kAnd: {
          DS_ASSIGN_OR_RETURN(Value l, Eval(*e.children[0], ctx));
          if (!l.is_null() && !ValueIsTrue(l)) return Bool(false);
          DS_ASSIGN_OR_RETURN(Value r, Eval(*e.children[1], ctx));
          if (!r.is_null() && !ValueIsTrue(r)) return Bool(false);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Bool(true);
        }
        case BinOp::kOr: {
          DS_ASSIGN_OR_RETURN(Value l, Eval(*e.children[0], ctx));
          if (!l.is_null() && ValueIsTrue(l)) return Bool(true);
          DS_ASSIGN_OR_RETURN(Value r, Eval(*e.children[1], ctx));
          if (!r.is_null() && ValueIsTrue(r)) return Bool(true);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Bool(false);
        }
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          DS_ASSIGN_OR_RETURN(Value l, Eval(*e.children[0], ctx));
          DS_ASSIGN_OR_RETURN(Value r, Eval(*e.children[1], ctx));
          return Compare3(e.bin_op, l, r);
        }
        default: {
          DS_ASSIGN_OR_RETURN(Value l, Eval(*e.children[0], ctx));
          DS_ASSIGN_OR_RETURN(Value r, Eval(*e.children[1], ctx));
          return Arith(e.bin_op, l, r);
        }
      }
    }
    case BoundKind::kUnary: {
      DS_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], ctx));
      if (e.un_op == UnOp::kNot) {
        if (v.is_null()) return Value::Null();
        return Bool(!ValueIsTrue(v));
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt64) return Value::Int64(-v.AsInt64());
      if (v.type() == ValueType::kDouble) return Value::Double(-v.AsDouble());
      return Status::TypeError("unary minus requires a numeric operand");
    }
    case BoundKind::kIsNull: {
      DS_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], ctx));
      return Bool(v.is_null() != e.negated);
    }
    case BoundKind::kInList: {
      DS_ASSIGN_OR_RETURN(Value tested, Eval(*e.children[0], ctx));
      bool found = false;
      bool saw_null = tested.is_null();
      for (size_t i = 1; i < e.children.size() && !found; ++i) {
        DS_ASSIGN_OR_RETURN(Value item, Eval(*e.children[i], ctx));
        if (item.is_null()) {
          saw_null = true;
        } else if (!tested.is_null() && item.Equals(tested)) {
          found = true;
        }
      }
      Value result = found ? Bool(true) : (saw_null ? Value::Null() : Bool(false));
      if (!e.negated || result.is_null()) return result;
      return Bool(!ValueIsTrue(result));
    }
    case BoundKind::kBetween: {
      DS_ASSIGN_OR_RETURN(Value x, Eval(*e.children[0], ctx));
      DS_ASSIGN_OR_RETURN(Value lo, Eval(*e.children[1], ctx));
      DS_ASSIGN_OR_RETURN(Value hi, Eval(*e.children[2], ctx));
      DS_ASSIGN_OR_RETURN(Value ge, Compare3(BinOp::kGe, x, lo));
      DS_ASSIGN_OR_RETURN(Value le, Compare3(BinOp::kLe, x, hi));
      Value result;
      if ((!ge.is_null() && !ValueIsTrue(ge)) || (!le.is_null() && !ValueIsTrue(le))) {
        result = Bool(false);
      } else if (ge.is_null() || le.is_null()) {
        result = Value::Null();
      } else {
        result = Bool(true);
      }
      if (!e.negated || result.is_null()) return result;
      return Bool(!ValueIsTrue(result));
    }
    case BoundKind::kExists: {
      DS_ASSIGN_OR_RETURN(bool exists, EvalExists(e, ctx));
      return Bool(exists != e.negated);
    }
    case BoundKind::kInSubquery:
      return EvalInSubquery(e, ctx);
    case BoundKind::kCase: {
      size_t i = 0;
      Value operand;
      if (e.case_has_operand) {
        DS_ASSIGN_OR_RETURN(operand, Eval(*e.children[0], ctx));
        i = 1;
      }
      const size_t end = e.children.size() - (e.case_has_else ? 1 : 0);
      for (; i + 1 < end + 1; i += 2) {  // (when, then) pairs occupy [i, end)
        DS_ASSIGN_OR_RETURN(Value when, Eval(*e.children[i], ctx));
        bool hit;
        if (e.case_has_operand) {
          hit = !operand.is_null() && !when.is_null() && operand.Equals(when);
        } else {
          hit = !when.is_null() && ValueIsTrue(when);
        }
        if (hit) return Eval(*e.children[i + 1], ctx);
      }
      if (e.case_has_else) return Eval(*e.children.back(), ctx);
      return Value::Null();
    }
  }
  return Status::Internal("unhandled bound expression kind");
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

Result<Relation> ExecScan(const PlanNode& node, Ctx&) {
  Relation rel;
  rel.rows = node.table->Scan();
  return rel;
}

Result<Relation> ExecFilter(const PlanNode& node, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Relation in, ExecNode(*node.children[0], ctx));
  Relation out;
  out.rows.reserve(in.rows.size());
  for (Row& row : in.rows) {
    ctx.row_stack.push_back(&row);
    auto verdict = Eval(*node.predicate, ctx);
    ctx.row_stack.pop_back();
    if (!verdict.ok()) return verdict.status();
    if (ValueIsTrue(*verdict)) out.rows.push_back(std::move(row));
  }
  return out;
}

Result<Relation> ExecProject(const PlanNode& node, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Relation in, ExecNode(*node.children[0], ctx));
  Relation out;
  out.rows.reserve(in.rows.size());
  for (const Row& row : in.rows) {
    ctx.row_stack.push_back(&row);
    Row projected;
    projected.reserve(node.exprs.size());
    Status status;
    for (const auto& expr : node.exprs) {
      auto v = Eval(*expr, ctx);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      projected.push_back(v.MoveValue());
    }
    ctx.row_stack.pop_back();
    DS_RETURN_NOT_OK(status);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Row ConcatRows(const Row& l, const Row& r) {
  Row out;
  out.reserve(l.size() + r.size());
  out.insert(out.end(), l.begin(), l.end());
  out.insert(out.end(), r.begin(), r.end());
  return out;
}

Row NullExtend(const Row& l, size_t right_width) {
  Row out;
  out.reserve(l.size() + right_width);
  out.insert(out.end(), l.begin(), l.end());
  for (size_t i = 0; i < right_width; ++i) out.push_back(Value::Null());
  return out;
}

Result<Relation> ExecNestedLoopJoin(const PlanNode& node, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Relation left, ExecNode(*node.children[0], ctx));
  DS_ASSIGN_OR_RETURN(Relation right, ExecNode(*node.children[1], ctx));
  const size_t right_width = node.children[1]->schema.size();
  Relation out;
  for (const Row& l : left.rows) {
    bool matched = false;
    for (const Row& r : right.rows) {
      Row combined = ConcatRows(l, r);
      bool keep = true;
      if (node.predicate != nullptr) {
        ctx.row_stack.push_back(&combined);
        auto verdict = Eval(*node.predicate, ctx);
        ctx.row_stack.pop_back();
        if (!verdict.ok()) return verdict.status();
        keep = ValueIsTrue(*verdict);
      }
      if (keep) {
        matched = true;
        out.rows.push_back(std::move(combined));
      }
    }
    if (node.left_outer && !matched) {
      out.rows.push_back(NullExtend(l, right_width));
    }
  }
  return out;
}

Result<Relation> ExecHashJoin(const PlanNode& node, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Relation left, ExecNode(*node.children[0], ctx));
  DS_ASSIGN_OR_RETURN(Relation right, ExecNode(*node.children[1], ctx));
  const size_t right_width = node.children[1]->schema.size();

  // Build on the right side.
  std::unordered_map<Row, std::vector<int>, RowHash, RowEq> table;
  table.reserve(right.rows.size());
  for (int i = 0; i < static_cast<int>(right.rows.size()); ++i) {
    ctx.row_stack.push_back(&right.rows[i]);
    Row key;
    key.reserve(node.right_keys.size());
    bool null_key = false;
    Status status;
    for (const auto& k : node.right_keys) {
      auto v = Eval(*k, ctx);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      if (v->is_null()) {
        null_key = true;
        break;
      }
      key.push_back(v.MoveValue());
    }
    ctx.row_stack.pop_back();
    DS_RETURN_NOT_OK(status);
    if (!null_key) table[std::move(key)].push_back(i);
  }

  Relation out;
  for (const Row& l : left.rows) {
    ctx.row_stack.push_back(&l);
    Row key;
    key.reserve(node.left_keys.size());
    bool null_key = false;
    Status status;
    for (const auto& k : node.left_keys) {
      auto v = Eval(*k, ctx);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      if (v->is_null()) {
        null_key = true;
        break;
      }
      key.push_back(v.MoveValue());
    }
    ctx.row_stack.pop_back();
    DS_RETURN_NOT_OK(status);

    bool matched = false;
    if (!null_key) {
      auto bucket = table.find(key);
      if (bucket != table.end()) {
        for (int idx : bucket->second) {
          Row combined = ConcatRows(l, right.rows[idx]);
          bool keep = true;
          if (node.predicate != nullptr) {
            ctx.row_stack.push_back(&combined);
            auto verdict = Eval(*node.predicate, ctx);
            ctx.row_stack.pop_back();
            if (!verdict.ok()) return verdict.status();
            keep = ValueIsTrue(*verdict);
          }
          if (keep) {
            matched = true;
            out.rows.push_back(std::move(combined));
          }
        }
      }
    }
    if (node.left_outer && !matched) {
      out.rows.push_back(NullExtend(l, right_width));
    }
  }
  return out;
}

Result<Relation> ExecDistinctRows(Relation in) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(in.rows.size());
  Relation out;
  for (Row& row : in.rows) {
    if (seen.insert(row).second) out.rows.push_back(std::move(row));
  }
  return out;
}

Result<Relation> ExecSort(const PlanNode& node, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Relation in, ExecNode(*node.children[0], ctx));
  // Evaluate keys once per row (evaluation can fail; comparators cannot).
  std::vector<Row> keys;
  keys.reserve(in.rows.size());
  for (const Row& row : in.rows) {
    ctx.row_stack.push_back(&row);
    Row key;
    key.reserve(node.sort_keys.size());
    Status status;
    for (const SortKey& sk : node.sort_keys) {
      auto v = Eval(*sk.expr, ctx);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      key.push_back(v.MoveValue());
    }
    ctx.row_stack.pop_back();
    DS_RETURN_NOT_OK(status);
    keys.push_back(std::move(key));
  }
  std::vector<int> order(in.rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    for (size_t k = 0; k < node.sort_keys.size(); ++k) {
      int c = keys[a][k].Compare(keys[b][k]);
      if (node.sort_keys[k].desc) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  });
  Relation out;
  out.rows.reserve(in.rows.size());
  for (int idx : order) out.rows.push_back(std::move(in.rows[idx]));
  return out;
}

Result<Relation> ExecAggregate(const PlanNode& node, Ctx& ctx) {
  DS_ASSIGN_OR_RETURN(Relation in, ExecNode(*node.children[0], ctx));

  struct AggState {
    int64_t count = 0;         // kCount (and denominator of kAvg)
    int64_t isum = 0;
    double dsum = 0.0;
    bool saw_double = false;
    bool any = false;
    Value min, max;
    std::unordered_set<Value, ValueHash, ValueEq> distinct;
  };
  struct Group {
    Row key;
    std::vector<AggState> states;
  };

  std::unordered_map<Row, int, RowHash, RowEq> group_index;
  std::vector<Group> groups;
  const bool global = node.group_exprs.empty();

  for (const Row& row : in.rows) {
    ctx.row_stack.push_back(&row);
    Status status;
    Row key;
    key.reserve(node.group_exprs.size());
    for (const auto& g : node.group_exprs) {
      auto v = Eval(*g, ctx);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      key.push_back(v.MoveValue());
    }
    if (status.ok()) {
      int gi;
      auto it = group_index.find(key);
      if (it == group_index.end()) {
        gi = static_cast<int>(groups.size());
        group_index.emplace(key, gi);
        Group group;
        group.key = key;
        group.states.resize(node.aggs.size());
        groups.push_back(std::move(group));
      } else {
        gi = it->second;
      }
      Group& group = groups[gi];
      for (size_t a = 0; a < node.aggs.size() && status.ok(); ++a) {
        const BoundAggCall& call = node.aggs[a];
        AggState& st = group.states[a];
        if (call.star) {
          ++st.count;
          continue;
        }
        auto v = Eval(*call.arg, ctx);
        if (!v.ok()) {
          status = v.status();
          break;
        }
        if (v->is_null()) continue;  // aggregates skip nulls
        if (call.distinct && !st.distinct.insert(*v).second) continue;
        st.any = true;
        ++st.count;
        switch (call.func) {
          case AggFunc::kCount:
            break;
          case AggFunc::kSum:
          case AggFunc::kAvg:
            if (v->type() == ValueType::kDouble) st.saw_double = true;
            if (v->type() == ValueType::kInt64) {
              st.isum += v->AsInt64();
            }
            st.dsum += v->AsDouble();
            break;
          case AggFunc::kMin:
            if (st.min.is_null() || v->Compare(st.min) < 0) st.min = *v;
            break;
          case AggFunc::kMax:
            if (st.max.is_null() || v->Compare(st.max) > 0) st.max = *v;
            break;
        }
      }
    }
    ctx.row_stack.pop_back();
    DS_RETURN_NOT_OK(status);
  }

  if (global && groups.empty()) {
    Group empty;
    empty.states.resize(node.aggs.size());
    groups.push_back(std::move(empty));
  }

  Relation out;
  out.rows.reserve(groups.size());
  for (Group& group : groups) {
    Row row = std::move(group.key);
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      const BoundAggCall& call = node.aggs[a];
      const AggState& st = group.states[a];
      switch (call.func) {
        case AggFunc::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggFunc::kSum:
          if (!st.any) {
            row.push_back(Value::Null());
          } else if (st.saw_double) {
            row.push_back(Value::Double(st.dsum));
          } else {
            row.push_back(Value::Int64(st.isum));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(st.any ? Value::Double(st.dsum / static_cast<double>(st.count))
                               : Value::Null());
          break;
        case AggFunc::kMin:
          row.push_back(st.min);
          break;
        case AggFunc::kMax:
          row.push_back(st.max);
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<Relation> ExecNode(const PlanNode& node, Ctx& ctx) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return ExecScan(node, ctx);
    case PlanNode::Kind::kCteScan: {
      DS_CHECK(node.cte_index >= 0 &&
               node.cte_index < static_cast<int>(ctx.cte_results.size()));
      return ctx.cte_results[node.cte_index];  // copy
    }
    case PlanNode::Kind::kValuesSingleRow: {
      Relation rel;
      rel.rows.emplace_back();
      return rel;
    }
    case PlanNode::Kind::kFilter:
      return ExecFilter(node, ctx);
    case PlanNode::Kind::kProject:
      return ExecProject(node, ctx);
    case PlanNode::Kind::kNestedLoopJoin:
      return ExecNestedLoopJoin(node, ctx);
    case PlanNode::Kind::kHashJoin:
      return ExecHashJoin(node, ctx);
    case PlanNode::Kind::kDistinct: {
      DS_ASSIGN_OR_RETURN(Relation in, ExecNode(*node.children[0], ctx));
      return ExecDistinctRows(std::move(in));
    }
    case PlanNode::Kind::kUnionAll: {
      DS_ASSIGN_OR_RETURN(Relation left, ExecNode(*node.children[0], ctx));
      DS_ASSIGN_OR_RETURN(Relation right, ExecNode(*node.children[1], ctx));
      for (Row& row : right.rows) left.rows.push_back(std::move(row));
      return left;
    }
    case PlanNode::Kind::kUnionDistinct: {
      DS_ASSIGN_OR_RETURN(Relation left, ExecNode(*node.children[0], ctx));
      DS_ASSIGN_OR_RETURN(Relation right, ExecNode(*node.children[1], ctx));
      for (Row& row : right.rows) left.rows.push_back(std::move(row));
      return ExecDistinctRows(std::move(left));
    }
    case PlanNode::Kind::kExcept: {
      DS_ASSIGN_OR_RETURN(Relation left, ExecNode(*node.children[0], ctx));
      DS_ASSIGN_OR_RETURN(Relation right, ExecNode(*node.children[1], ctx));
      std::unordered_set<Row, RowHash, RowEq> exclude;
      exclude.reserve(right.rows.size());
      for (Row& row : right.rows) exclude.insert(std::move(row));
      DS_ASSIGN_OR_RETURN(Relation dedup, ExecDistinctRows(std::move(left)));
      Relation out;
      for (Row& row : dedup.rows) {
        if (exclude.count(row) == 0) out.rows.push_back(std::move(row));
      }
      return out;
    }
    case PlanNode::Kind::kIntersect: {
      DS_ASSIGN_OR_RETURN(Relation left, ExecNode(*node.children[0], ctx));
      DS_ASSIGN_OR_RETURN(Relation right, ExecNode(*node.children[1], ctx));
      std::unordered_set<Row, RowHash, RowEq> keep;
      keep.reserve(right.rows.size());
      for (Row& row : right.rows) keep.insert(std::move(row));
      DS_ASSIGN_OR_RETURN(Relation dedup, ExecDistinctRows(std::move(left)));
      Relation out;
      for (Row& row : dedup.rows) {
        if (keep.count(row) > 0) out.rows.push_back(std::move(row));
      }
      return out;
    }
    case PlanNode::Kind::kSort:
      return ExecSort(node, ctx);
    case PlanNode::Kind::kLimit: {
      DS_ASSIGN_OR_RETURN(Relation in, ExecNode(*node.children[0], ctx));
      if (static_cast<int64_t>(in.rows.size()) > node.limit) {
        in.rows.resize(static_cast<size_t>(node.limit));
      }
      return in;
    }
    case PlanNode::Kind::kAggregate:
      return ExecAggregate(node, ctx);
  }
  return Status::Internal("unhandled plan node kind");
}

}  // namespace

bool ValueIsTrue(const storage::Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt64) return v.AsInt64() != 0;
  if (v.type() == ValueType::kDouble) return v.AsDouble() != 0.0;
  return false;
}

Result<Relation> ExecutePlan(const PreparedPlan& plan) {
  Ctx ctx;
  ctx.plan = &plan;
  ctx.cte_results.reserve(plan.cte_plans.size());
  for (const auto& cte : plan.cte_plans) {
    DS_ASSIGN_OR_RETURN(Relation rel, ExecNode(*cte, ctx));
    ctx.cte_results.push_back(std::move(rel));
  }
  return ExecNode(*plan.root, ctx);
}

Result<storage::Value> EvalWithRow(const BoundExpr& expr, const storage::Row& row) {
  Ctx ctx;
  ctx.row_stack.push_back(&row);
  return Eval(expr, ctx);
}

}  // namespace declsched::sql
