// Bound (physical) query plans: the planner's output, the executor's input.
//
// The executor is a materializing operator tree over Relation (vector of
// rows). Correlated expressions reference outer rows through a runtime row
// stack: depth 0 is the row of the operator evaluating the expression,
// depth k the row of the k-th enclosing query scope.

#ifndef DECLSCHED_SQL_PLAN_H_
#define DECLSCHED_SQL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/row.h"
#include "storage/table.h"

namespace declsched::sql {

/// One output column of an operator: the binding alias (table alias or empty
/// for derived columns), the column name, and the inferred type.
struct OutCol {
  std::string alias;
  std::string name;
  storage::ValueType type = storage::ValueType::kNull;
};
using OutSchema = std::vector<OutCol>;

/// A materialized intermediate result.
struct Relation {
  std::vector<storage::Row> rows;
};

struct PlanNode;
struct BoundExpr;

/// Payload of EXISTS / IN subqueries.
struct SubqueryPlan {
  /// Generic path: full subplan (projects the subquery's select list; EXISTS
  /// only tests emptiness, IN reads column 0).
  std::unique_ptr<PlanNode> plan;
  /// True if the subplan references enclosing-scope columns; uncorrelated
  /// subqueries are materialized once per execution and cached.
  bool correlated = false;

  // --- EXISTS decorrelation (see planner.cc: TryDecorrelateExists) ---
  // When `decorrelated`, the generic plan is unused. Instead `source` (an
  // uncorrelated scan) is materialized once and hash-partitioned on column
  // `inner_key_col`; per outer row the bucket for `outer_key` is probed with
  // the original predicate `residual` (bound: depth 0 = source row, depth 1 =
  // outer row).
  bool decorrelated = false;
  std::unique_ptr<PlanNode> source;
  int inner_key_col = -1;
  std::unique_ptr<BoundExpr> outer_key;  // bound in the enclosing scope
  std::unique_ptr<BoundExpr> residual;   // never null when decorrelated
};

enum class BoundKind : uint8_t {
  kConst,
  kColRef,
  kBinary,
  kUnary,
  kIsNull,
  kInList,
  kBetween,
  kExists,
  kInSubquery,
  kCase,
};

struct BoundExpr {
  BoundKind kind;
  storage::ValueType type = storage::ValueType::kNull;

  // kConst
  storage::Value value;

  // kColRef
  int depth = 0;
  int col = -1;

  // kBinary / kUnary
  BinOp bin_op = BinOp::kEq;
  UnOp un_op = UnOp::kNot;

  // kIsNull / kInList / kBetween / kExists / kInSubquery
  bool negated = false;

  std::vector<std::unique_ptr<BoundExpr>> children;

  // kExists / kInSubquery
  std::unique_ptr<SubqueryPlan> subquery;

  // kCase: children layout [operand?], (when, then)*, [else?]
  bool case_has_operand = false;
  bool case_has_else = false;

  static std::unique_ptr<BoundExpr> Make(BoundKind kind) {
    auto e = std::make_unique<BoundExpr>();
    e->kind = kind;
    return e;
  }
};

struct BoundAggCall {
  AggFunc func = AggFunc::kCount;
  bool distinct = false;
  bool star = false;                    // COUNT(*)
  std::unique_ptr<BoundExpr> arg;       // null iff star
  storage::ValueType out_type = storage::ValueType::kInt64;
};

struct SortKey {
  std::unique_ptr<BoundExpr> expr;
  bool desc = false;
};

struct PlanNode {
  enum class Kind : uint8_t {
    kScan,            // base table scan
    kCteScan,         // reference to a materialized CTE
    kValuesSingleRow, // single empty row (FROM-less SELECT)
    kFilter,
    kProject,
    kNestedLoopJoin,
    kHashJoin,
    kDistinct,
    kUnionAll,
    kUnionDistinct,
    kExcept,
    kIntersect,
    kSort,
    kLimit,
    kAggregate,
  };

  Kind kind;
  OutSchema schema;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kScan
  const storage::Table* table = nullptr;

  // kCteScan
  int cte_index = -1;

  // kFilter (predicate) / joins (residual predicate over the combined row)
  std::unique_ptr<BoundExpr> predicate;

  // kNestedLoopJoin / kHashJoin
  bool left_outer = false;
  std::vector<std::unique_ptr<BoundExpr>> left_keys;   // over left child rows
  std::vector<std::unique_ptr<BoundExpr>> right_keys;  // over right child rows

  // kProject
  std::vector<std::unique_ptr<BoundExpr>> exprs;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;

  // kAggregate
  std::vector<std::unique_ptr<BoundExpr>> group_exprs;
  std::vector<BoundAggCall> aggs;

  static std::unique_ptr<PlanNode> Make(Kind kind) {
    auto n = std::make_unique<PlanNode>();
    n->kind = kind;
    return n;
  }
};

/// A fully planned SELECT: CTE plans (materialized in order at execution,
/// shared across the whole statement) plus the root operator tree.
struct PreparedPlan {
  std::vector<std::unique_ptr<PlanNode>> cte_plans;
  std::unique_ptr<PlanNode> root;
  OutSchema schema;
};

}  // namespace declsched::sql

#endif  // DECLSCHED_SQL_PLAN_H_
